//! Failure-injection tests: the pipeline must *report* pathological
//! inputs, never silently mis-compile them.
//!
//! * coefficient overflow in exact arithmetic,
//! * unbounded iteration domains (no finite buffer exists),
//! * scratchpad overflow at execution,
//! * out-of-bounds accesses in source programs,
//! * degenerate/empty domains flowing through every pass,
//! * enumeration budget exhaustion (in counting and in the executor),
//! * a panicking block worker surfacing as a typed error.

use polymem::core::smem::{analyze_program, SmemConfig, SmemError};
use polymem::ir::expr::v;
use polymem::ir::{exec_program, ArrayStore, Expr, IrError, LinExpr, ProgramBuilder};
use polymem::linalg::{IMat, LinalgError};
use polymem::poly::count::count_points;
use polymem::poly::{Constraint, PolyError, Polyhedron, Space};

#[test]
fn linalg_overflow_is_reported_not_wrapped() {
    let big = IMat::from_rows(&[&[i64::MAX, i64::MAX]]);
    assert!(matches!(
        big.mul(&big.transpose()),
        Err(LinalgError::Overflow)
    ));
    let v1 = polymem::linalg::IVec::from_slice(&[i64::MAX]);
    assert!(matches!(v1.checked_scale(3), Err(LinalgError::Overflow)));
}

#[test]
fn fm_overflow_propagates_through_poly() {
    // Huge coefficients make the FM combination overflow i64; the
    // operation must fail loudly.
    let p = Polyhedron::new(
        Space::new(["x", "y"], Vec::<String>::new()),
        vec![
            Constraint::ineq(vec![i64::MAX / 2, 1, 0]),
            Constraint::ineq(vec![-(i64::MAX / 2), i64::MAX / 4, 0]),
            Constraint::ineq(vec![0, -1, 100]),
        ],
    );
    match p.eliminate_dim(0) {
        Err(PolyError::Linalg(LinalgError::Overflow)) => {}
        Ok(_) => {} // simplification may discharge it; both acceptable
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
#[allow(clippy::erasing_op)] // `j * 0` below is a deliberately vacuous guard
fn unbounded_domain_yields_unbounded_buffer_error() {
    // for i >= 0 (no upper bound): A's accessed region is unbounded,
    // so no finite scratchpad buffer exists.
    let mut b = ProgramBuilder::new("unbounded", ["N"]);
    b.array("A", &[v("N")]);
    b.array("Out", &[v("N"), v("N")]);
    b.stmt("S")
        .loops(&[
            ("i", LinExpr::c(0), v("N") - 1),
            ("j", LinExpr::c(0), v("N") - 1),
        ])
        .guard_le(v("j") * 0, v("i")) // vacuous; keeps shape
        .write("Out", &[v("i"), v("j")])
        .read("A", &[v("j")])
        .body(Expr::Read(0))
        .done();
    let p = b.build().unwrap();
    // Remove the j upper bound by rebuilding with an open domain.
    let mut open = p.clone();
    let dom = &open.stmts[0].domain;
    let kept: Vec<polymem::poly::Constraint> = dom
        .constraints()
        .iter()
        .filter(|c| c.coeff(1) >= 0) // drop upper bounds on j
        .cloned()
        .collect();
    open.stmts[0].domain = Polyhedron::new(dom.space().clone(), kept);
    let err = analyze_program(
        &open,
        &SmemConfig {
            sample_params: vec![8],
            ..SmemConfig::default()
        },
    );
    assert!(
        matches!(err, Err(SmemError::UnboundedBuffer { .. })),
        "{err:?}"
    );
}

#[test]
fn empty_domains_flow_through_every_pass() {
    // A statement whose domain is empty (lb > ub): analysis yields no
    // buffers and execution does nothing.
    let mut b = ProgramBuilder::new("empty", ["N"]);
    b.array("A", &[v("N")]);
    b.stmt("S")
        .loops(&[("i", LinExpr::c(5), LinExpr::c(1))]) // empty
        .write("A", &[v("i")])
        .read("A", &[v("i")])
        .body(Expr::Read(0))
        .done();
    let p = b.build().unwrap();
    let plan = analyze_program(
        &p,
        &SmemConfig {
            sample_params: vec![8],
            ..SmemConfig::default()
        },
    )
    .unwrap();
    assert!(plan.buffers.is_empty());
    let mut st = ArrayStore::for_program(&p, &[8]).unwrap();
    st.fill_with("A", |ix| ix[0]).unwrap();
    let before = st.data("A").unwrap().to_vec();
    exec_program(&p, &[8], &mut st).unwrap();
    assert_eq!(st.data("A").unwrap(), &before[..]);
}

#[test]
fn out_of_bounds_program_fails_cleanly() {
    let mut b = ProgramBuilder::new("oob", ["N"]);
    b.array("A", &[v("N")]);
    b.stmt("S")
        .loops(&[("i", LinExpr::c(0), v("N"))]) // one past the end
        .write("A", &[v("i")])
        .body(Expr::Const(1))
        .done();
    let p = b.build().unwrap();
    let mut st = ArrayStore::for_program(&p, &[4]).unwrap();
    let err = exec_program(&p, &[4], &mut st);
    assert!(matches!(err, Err(IrError::OutOfBounds { .. })), "{err:?}");
}

#[test]
fn negative_extent_arrays_are_rejected() {
    let mut b = ProgramBuilder::new("neg", ["N"]);
    b.array("A", &[v("N") - 100]);
    b.stmt("S")
        .loops(&[("i", LinExpr::c(0), LinExpr::c(0))])
        .write("A", &[v("i")])
        .body(Expr::Const(0))
        .done();
    let p = b.build().unwrap();
    assert!(matches!(
        ArrayStore::for_program(&p, &[3]),
        Err(IrError::OutOfBounds { .. })
    ));
}

#[test]
fn count_budget_exhaustion_is_typed() {
    let p = Polyhedron::new(
        Space::new(["i", "j"], Vec::<String>::new()),
        vec![
            Constraint::ineq(vec![1, 0, 0]),
            Constraint::ineq(vec![-1, 0, 999]),
            Constraint::ineq(vec![0, 1, 0]),
            Constraint::ineq(vec![0, -1, 999]),
        ],
    );
    assert!(matches!(
        count_points(&p, 100),
        Err(PolyError::TooManyPoints { budget: 100 })
    ));
}

#[test]
fn division_by_zero_in_statement_bodies() {
    let mut b = ProgramBuilder::new("div0", ["N"]);
    b.array("A", &[v("N")]);
    b.stmt("S")
        .loops(&[("i", LinExpr::c(0), v("N") - 1)])
        .write("A", &[v("i")])
        .read("A", &[v("i")])
        .body(Expr::div(Expr::Read(0), Expr::Iter(0))) // /0 at i = 0
        .done();
    let p = b.build().unwrap();
    let mut st = ArrayStore::for_program(&p, &[4]).unwrap();
    st.fill_with("A", |_| 7).unwrap();
    assert!(matches!(
        exec_program(&p, &[4], &mut st),
        Err(IrError::Arithmetic(_))
    ));
}

#[test]
fn executor_enumeration_budget_is_configurable_and_typed() {
    use polymem::kernels::me;
    use polymem::machine::{execute_blocked, MachineConfig, MachineError};
    let size = me::MeSize {
        ni: 8,
        nj: 8,
        ws: 3,
    };
    let p = me::program();
    let mut st = ArrayStore::for_program(&p, &me::params(&size)).unwrap();
    me::init_store(&mut st, 0);
    // A tiny budget: enumerating the instances of even one block
    // exceeds it, and the executor reports which budget it was.
    let mut cfg = MachineConfig::geforce_8800_gtx();
    cfg.enum_budget = 3;
    match execute_blocked(
        &me::blocked_kernel(4, 4, false),
        &me::params(&size),
        &mut st,
        &cfg,
        false,
    ) {
        Err(MachineError::EnumerationBudget { budget }) => assert_eq!(budget, 3),
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
    // The default budget is generous and the same run succeeds.
    cfg.enum_budget = polymem::machine::config::DEFAULT_ENUM_BUDGET;
    execute_blocked(
        &me::blocked_kernel(4, 4, false),
        &me::params(&size),
        &mut st,
        &cfg,
        false,
    )
    .unwrap();
}

#[test]
fn panicking_block_worker_is_a_typed_error() {
    use polymem::kernels::me;
    use polymem::machine::{execute_blocked, MachineConfig, MachineError};
    let size = me::MeSize {
        ni: 8,
        nj: 8,
        ws: 3,
    };
    let p = me::program();
    let mut st = ArrayStore::for_program(&p, &me::params(&size)).unwrap();
    me::init_store(&mut st, 0);
    let cfg = MachineConfig::geforce_8800_gtx();
    // Inject a panic into block worker 1 (env hook used only by this
    // test binary; serial with respect to other env readers because
    // the executor reads it once per launch).
    std::env::set_var("POLYMEM_FAULT_PANIC_BLOCK", "1");
    let res = execute_blocked(
        &me::blocked_kernel(4, 4, false),
        &me::params(&size),
        &mut st,
        &cfg,
        true,
    );
    std::env::remove_var("POLYMEM_FAULT_PANIC_BLOCK");
    match res {
        Err(MachineError::WorkerPanicked { block }) => assert_eq!(block, 1),
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // Without the fault the same parallel launch completes.
    execute_blocked(
        &me::blocked_kernel(4, 4, false),
        &me::params(&size),
        &mut st,
        &cfg,
        true,
    )
    .unwrap();
}

#[test]
fn scratchpad_overflow_error_carries_sizes() {
    use polymem::kernels::me;
    use polymem::machine::{execute_blocked, MachineConfig, MachineError};
    let size = me::MeSize {
        ni: 100,
        nj: 100,
        ws: 4,
    };
    let p = me::program();
    let mut st = ArrayStore::for_program(&p, &me::params(&size)).unwrap();
    me::init_store(&mut st, 0);
    let cfg = MachineConfig::geforce_8800_gtx();
    match execute_blocked(
        &me::blocked_kernel(100, 100, true),
        &me::params(&size),
        &mut st,
        &cfg,
        false,
    ) {
        Err(MachineError::ScratchpadOverflow {
            requested,
            available,
        }) => {
            assert!(requested > available);
            assert_eq!(available, 16 * 1024);
        }
        other => panic!("expected overflow, got {other:?}"),
    }
}
