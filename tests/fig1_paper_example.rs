//! Golden reproduction of the paper's Fig. 1 worked example.
//!
//! The paper allocates, for
//!
//! ```c
//! A[200][200]; B[200][200];
//! for (i=10;i<=14;i++)
//!   for (j=10;j<=14;j++) {
//!     A[i][j+1] = A[i+j][j+1]*3;             // S1
//!     for (k=11;k<=20;k++)
//!       B[i][j+k] = A[i][k] + B[i+j][k];     // S2
//!   }
//! ```
//!
//! the local buffers `LA[19][10]` (offsets 10, 11) and `LB[19][24]`
//! (offsets 10, 11), with move-in code scanning the two disjoint read
//! regions of `A`, and move-out code covering exactly the written
//! regions. This test asserts all of those numbers, the rewritten
//! access functions, the exact transfer sets, and end-to-end execution
//! equivalence through the machine executor.

use polymem::core::smem::movement::{for_each_move_in, for_each_move_out};
use polymem::core::smem::{analyze_program, AccessId, SmemConfig};
use polymem::ir::expr::v;
use polymem::ir::{exec_program, ArrayStore, Expr, LinExpr, Program, ProgramBuilder};
use polymem::machine::{execute_blocked, BlockedKernel, MachineConfig};
use std::collections::HashSet;

fn fig1_program() -> Program {
    let mut b = ProgramBuilder::new("fig1", Vec::<String>::new());
    b.array("A", &[LinExpr::c(200), LinExpr::c(200)]);
    b.array("B", &[LinExpr::c(200), LinExpr::c(200)]);
    b.stmt("S1")
        .loops(&[
            ("i", LinExpr::c(10), LinExpr::c(14)),
            ("j", LinExpr::c(10), LinExpr::c(14)),
        ])
        .write("A", &[v("i"), v("j") + 1])
        .read("A", &[v("i") + v("j"), v("j") + 1])
        .body(Expr::mul(Expr::Read(0), Expr::Const(3)))
        .done();
    b.stmt("S2")
        .loops(&[
            ("i", LinExpr::c(10), LinExpr::c(14)),
            ("j", LinExpr::c(10), LinExpr::c(14)),
            ("k", LinExpr::c(11), LinExpr::c(20)),
        ])
        .write("B", &[v("i"), v("j") + v("k")])
        .read("A", &[v("i"), v("k")])
        .read("B", &[v("i") + v("j"), v("k")])
        .body(Expr::add(Expr::Read(0), Expr::Read(1)))
        .done();
    b.build().expect("fig1 program is well-formed")
}

/// Fig. 1 mode: one buffer per array spanning all accessed regions
/// (the paper's example does not split disjoint regions into separate
/// buffers).
fn fig1_config() -> SmemConfig {
    SmemConfig {
        partition: false,
        sample_params: vec![],
        ..SmemConfig::default()
    }
}

#[test]
fn buffer_shapes_match_the_paper() {
    let p = fig1_program();
    let plan = analyze_program(&p, &fig1_config()).unwrap();
    assert_eq!(plan.buffers.len(), 2);

    let la = &plan.buffers[0];
    assert_eq!(la.array_name, "A");
    // Paper: lb(i) = 10, ub(i) = 28; lb(j) = 11, ub(j) = 20 → LA[19][10].
    assert_eq!(la.offsets(&[]).unwrap(), vec![10, 11]);
    assert_eq!(la.extents(&[]).unwrap(), vec![19, 10]);
    assert_eq!(la.render_decl(&p.params), "LA[19][10];");

    let lb = &plan.buffers[1];
    assert_eq!(lb.array_name, "B");
    // Paper: lb(i) = 10, ub(i) = 28; lb(j) = 11, ub(j) = 34 → LB[19][24].
    assert_eq!(lb.offsets(&[]).unwrap(), vec![10, 11]);
    assert_eq!(lb.extents(&[]).unwrap(), vec![19, 24]);
    assert_eq!(lb.render_decl(&p.params), "LB[19][24];");
}

#[test]
fn rewritten_accesses_match_the_modified_code() {
    let p = fig1_program();
    let plan = analyze_program(&p, &fig1_config()).unwrap();
    // Paper's modified code:
    //   LA[i-10][j+1-11] = LA[i+j-10][j+1-11]*3;
    //   LB[i-10][j+k-11] = LA[i-10][k-11] + LB[i+j-10][k-11];
    let la = &plan.buffers[0];
    let lb = &plan.buffers[1];

    // S1 write A[i][j+1] at (i, j) = (12, 13) → LA[2][3].
    let w = &plan.rewrites[&AccessId::write(0)];
    assert_eq!(w.local_index(la, &[12, 13], &[]).unwrap(), vec![2, 3]);
    // S1 read A[i+j][j+1] at (12, 13) → LA[15][3].
    let r = &plan.rewrites[&AccessId::read(0, 0)];
    assert_eq!(r.local_index(la, &[12, 13], &[]).unwrap(), vec![15, 3]);
    // S2 read A[i][k] at (i, j, k) = (11, 10, 17) → LA[1][6].
    let r = &plan.rewrites[&AccessId::read(1, 0)];
    assert_eq!(r.local_index(la, &[11, 10, 17], &[]).unwrap(), vec![1, 6]);
    // S2 write B[i][j+k] at (11, 10, 17) → LB[1][16].
    let w = &plan.rewrites[&AccessId::write(1)];
    assert_eq!(w.local_index(lb, &[11, 10, 17], &[]).unwrap(), vec![1, 16]);
    // S2 read B[i+j][k] at (11, 10, 17) → LB[11][6].
    let r = &plan.rewrites[&AccessId::read(1, 1)];
    assert_eq!(r.local_index(lb, &[11, 10, 17], &[]).unwrap(), vec![11, 6]);
}

#[test]
fn movement_sets_match_the_papers_copy_loops() {
    let p = fig1_program();
    let plan = analyze_program(&p, &fig1_config()).unwrap();
    let (la, lb) = (&plan.buffers[0], &plan.buffers[1]);
    let (mc_a, mc_b) = (&plan.movement[0], &plan.movement[1]);

    // Move-in A: the paper's two nests cover [10,14]×[11,20] (50
    // elements) plus {(i, j) : 20<=i<=28, max(i-13,11)<=j<=min(15,i-9)}
    // (25 elements), each element exactly once.
    let mut seen = HashSet::new();
    for_each_move_in(mc_a, la, &[], &mut |g, l| {
        assert!(seen.insert((g[0], g[1])), "duplicate transfer {g:?}");
        assert_eq!(l[0], g[0] - 10);
        assert_eq!(l[1], g[1] - 11);
    })
    .unwrap();
    let expected_a: HashSet<(i64, i64)> = {
        let mut s = HashSet::new();
        for i in 10..=14 {
            for j in 11..=20 {
                s.insert((i, j));
            }
        }
        for i in 20..=28i64 {
            for j in (i - 13).max(11)..=(i - 9).min(15) {
                s.insert((i, j));
            }
        }
        s
    };
    assert_eq!(seen, expected_a);
    assert_eq!(mc_a.move_in_count(&[]), 75);

    // Move-out A: the written region [10,14]×[11,15].
    let mut seen = HashSet::new();
    for_each_move_out(mc_a, la, &[], &mut |g, _| {
        seen.insert((g[0], g[1]));
    })
    .unwrap();
    let expected: HashSet<(i64, i64)> = (10..=14)
        .flat_map(|i| (11..=15).map(move |j| (i, j)))
        .collect();
    assert_eq!(seen, expected);
    assert_eq!(mc_a.move_out_count(&[]), 25);

    // Move-in B: [20,28]×[11,20]; move-out B: [10,14]×[21,34].
    let mut seen = HashSet::new();
    for_each_move_in(mc_b, lb, &[], &mut |g, _| {
        seen.insert((g[0], g[1]));
    })
    .unwrap();
    let expected: HashSet<(i64, i64)> = (20..=28)
        .flat_map(|i| (11..=20).map(move |j| (i, j)))
        .collect();
    assert_eq!(seen, expected);
    assert_eq!(mc_b.move_in_count(&[]), 90);

    let mut seen = HashSet::new();
    for_each_move_out(mc_b, lb, &[], &mut |g, _| {
        seen.insert((g[0], g[1]));
    })
    .unwrap();
    let expected: HashSet<(i64, i64)> = (10..=14)
        .flat_map(|i| (21..=34).map(move |j| (i, j)))
        .collect();
    assert_eq!(seen, expected);
    assert_eq!(mc_b.move_out_count(&[]), 70);
}

#[test]
fn volume_bounds_cover_transfers() {
    let p = fig1_program();
    let plan = analyze_program(&p, &fig1_config()).unwrap();
    for (buf, mc) in plan.buffers.iter().zip(&plan.movement) {
        let vin = mc.vin_bound(&p, buf, &[]).unwrap();
        let vout = mc.vout_bound(&p, buf, &[]).unwrap();
        assert!(vin >= mc.move_in_count(&[]), "{}: {vin}", buf.array_name);
        assert!(vout >= mc.move_out_count(&[]), "{}: {vout}", buf.array_name);
    }
}

#[test]
fn executing_through_the_scratchpad_preserves_semantics() {
    let p = fig1_program();
    // Reference: plain interpreter.
    let mut reference = ArrayStore::for_program(&p, &[]).unwrap();
    reference
        .fill_with("A", |ix| ix[0] * 7 + ix[1] * 3 + 1)
        .unwrap();
    reference
        .fill_with("B", |ix| ix[0] * 2 - ix[1] + 5)
        .unwrap();
    let mut staged = reference.clone();
    exec_program(&p, &[], &mut reference).unwrap();

    // Staged: the machine executor with scratchpad staging, the whole
    // block on one simulated multiprocessor.
    let kernel = BlockedKernel {
        program: p.clone(),
        round_dims: vec![],
        block_dims: vec![],
        seq_dims: vec![],
        thread_dims: vec![],
        use_scratchpad: true,
    };
    let cfg = MachineConfig::geforce_8800_gtx();
    let stats = execute_blocked(&kernel, &[], &mut staged, &cfg, false).unwrap();
    assert_eq!(reference.data("A").unwrap(), staged.data("A").unwrap());
    assert_eq!(reference.data("B").unwrap(), staged.data("B").unwrap());
    assert!(stats.moved_in > 0);
    assert!(stats.moved_out > 0);
}

#[test]
fn partitioned_mode_is_tighter_than_the_figure() {
    // With partitioning on (the framework default, §3.1), the
    // disjoint regions of A get separate buffers whose total size is
    // smaller than the Fig. 1 hull buffer — the motivation for
    // partitioning in the first place.
    let p = fig1_program();
    let hull = analyze_program(&p, &fig1_config()).unwrap();
    let parts = analyze_program(
        &p,
        &SmemConfig {
            partition: true,
            sample_params: vec![],
            ..SmemConfig::default()
        },
    )
    .unwrap();
    assert!(parts.buffers.len() > hull.buffers.len());
    let hull_words = hull.total_buffer_words(&[]).unwrap();
    let part_words = parts.total_buffer_words(&[]).unwrap();
    assert!(
        part_words < hull_words,
        "partitioned {part_words} vs hull {hull_words}"
    );
}
