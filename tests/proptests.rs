//! Property-based tests on the core invariants of the pipeline.
//!
//! * Fourier–Motzkin projection soundness: every point of a random
//!   polytope projects into the projection; the projection has no
//!   extra points for unit-coefficient systems (the class the
//!   compiler generates).
//! * Single-visit scanning: the code generator visits every point of a
//!   random union of boxes exactly once, even with heavy overlap.
//! * Buffer containment: local buffers cover every accessed element of
//!   random strided window programs, and rewritten accesses land in
//!   bounds.
//! * Tiling semantics: random tile sizes never change program results.
//! * Tile-size search: never returns an infeasible configuration.

use polymem::codegen::scan_union;
use polymem::core::smem::{analyze_program, SmemConfig};
use polymem::core::tiling::transform::{tile_program, TileSpec};
use polymem::ir::expr::v;
use polymem::ir::{exec_program, ArrayStore, Expr, LinExpr, Program, ProgramBuilder};
use polymem::poly::count::enumerate_points;
use polymem::poly::{Constraint, PolyUnion, Polyhedron, Space};
use proptest::prelude::*;
use std::collections::HashSet;

fn interval_box(ranges: &[(i64, i64)]) -> Polyhedron {
    let n = ranges.len();
    let space = Space::anon(n, 0);
    let mut rows = Vec::new();
    for (d, &(lo, hi)) in ranges.iter().enumerate() {
        let mut r = vec![0i64; n + 1];
        r[d] = 1;
        r[n] = -lo;
        rows.push(Constraint::ineq(r.clone()));
        let mut r = vec![0i64; n + 1];
        r[d] = -1;
        r[n] = hi;
        rows.push(Constraint::ineq(r));
    }
    Polyhedron::new(space, rows)
}

/// RAII guard flipping the polyhedral core into naive mode, restoring
/// fast mode on drop even when an assertion unwinds. The flag is
/// process-global: a concurrent test observing the flipped mode merely
/// takes the other (semantically identical) code path.
struct NaiveModeGuard;

impl NaiveModeGuard {
    fn on() -> Self {
        polymem::poly::set_naive_mode(true);
        NaiveModeGuard
    }
}

impl Drop for NaiveModeGuard {
    fn drop(&mut self) {
        polymem::poly::set_naive_mode(false);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fm_projection_is_sound_for_boxes_with_diagonal_cuts(
        lo0 in -5i64..5, w0 in 0i64..8,
        lo1 in -5i64..5, w1 in 0i64..8,
        cut in -10i64..20,
    ) {
        // Box plus a diagonal half-space x + y <= cut.
        let mut p = interval_box(&[(lo0, lo0 + w0), (lo1, lo1 + w1)]);
        p.add_constraint(Constraint::ineq(vec![-1, -1, cut]));
        let proj = p.eliminate_dim(1).unwrap();
        // Soundness: every (x, y) in p has x in proj.
        let mut pts = Vec::new();
        enumerate_points(&p, 10_000, &mut |q| pts.push(q.to_vec())).unwrap();
        for q in &pts {
            prop_assert!(proj.contains(&[q[0]], &[]), "{q:?} lost by projection");
        }
        // Exactness for this unit-coefficient class: every x in proj
        // lifts back to some y.
        let mut xs = Vec::new();
        enumerate_points(&proj, 10_000, &mut |q| xs.push(q[0])).unwrap();
        let lifted: HashSet<i64> = pts.iter().map(|q| q[0]).collect();
        for x in xs {
            prop_assert!(lifted.contains(&x), "x = {x} does not lift");
        }
    }

    #[test]
    fn union_scanning_visits_each_point_exactly_once(
        boxes in prop::collection::vec(
            (-8i64..8, 0i64..6, -8i64..8, 0i64..6), 1..5)
    ) {
        let members: Vec<Polyhedron> = boxes
            .iter()
            .map(|&(x, w, y, h)| interval_box(&[(x, x + w), (y, y + h)]))
            .collect();
        let u = PolyUnion::from_members(members.clone()).unwrap();
        let ast = scan_union(&u, &[0]).unwrap();
        let mut seen = HashSet::new();
        ast.for_each_point(&[], &mut |_, p| {
            assert!(seen.insert((p[0], p[1])), "revisited {p:?}");
        });
        // Coverage: brute-force over the bounding region.
        for x in -8..16 {
            for y in -8..16 {
                let inside = members.iter().any(|m| m.contains(&[x, y], &[]));
                prop_assert_eq!(
                    inside,
                    seen.contains(&(x, y)),
                    "mismatch at ({}, {})", x, y
                );
            }
        }
    }

    #[test]
    fn buffers_cover_all_accesses_and_rewrites_stay_in_bounds(
        off1 in 0i64..4, off2 in 0i64..4, n in 4i64..12,
    ) {
        // for i in [0, n-1]: Out[i] = A[i + off1] + A[i + off1 + off2]
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 8]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i") + off1])
            .read("A", &[v("i") + off1 + off2])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let plan = analyze_program(
            &p,
            &SmemConfig {
                sample_params: vec![n],
                delta: 0.0,
                must_copy_all: true,
                ..SmemConfig::default()
            },
        )
        .unwrap();
        // Every rewritten access lands inside its buffer's extents for
        // every iteration point.
        for (id, la) in &plan.rewrites {
            let buf = &plan.buffers[la.buffer];
            let extents = buf.extents(&[n]).unwrap();
            let stmt = &p.stmts[id.stmt];
            let dom = stmt.domain.substitute_params(&[n]).unwrap();
            enumerate_points(&dom, 100_000, &mut |pt| {
                let idx = la.local_index(buf, pt, &[n]).unwrap();
                for (x, e) in idx.iter().zip(&extents) {
                    assert!(*x >= 0 && x < e, "{id:?} at {pt:?} -> {idx:?} outside {extents:?}");
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn symbolic_plan_instantiation_equals_fresh_analysis(
        off1 in 0i64..4, off2 in 1i64..4, tile in 2i64..6, n in 6i64..14,
    ) {
        // Random strided-window program, tiled, then: one symbolic
        // analysis (block dim as a parameter) instantiated per block
        // must equal a fresh per-block analysis — same buffer shapes,
        // same move-in element sets — including the boundary tile.
        use polymem::core::smem::analyze_symbolic;
        use polymem::core::smem::movement::for_each_move_in;
        use polymem::core::tiling::transform::fix_dims;
        use std::collections::{BTreeSet, HashMap};
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 8]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i") + off1])
            .read("A", &[v("i") + off1 + off2])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", tile)], "T")).unwrap();
        let cfg = SmemConfig {
            sample_params: vec![n],
            must_copy_all: true,
            ..SmemConfig::default()
        };
        let sp = analyze_symbolic(&t, &[("iT".to_string(), 0)], &cfg).unwrap();
        let n_blocks = (n + tile - 1) / tile;
        for bt in 0..n_blocks {
            let mut fixed = HashMap::new();
            fixed.insert("iT".to_string(), bt);
            let mut view = t.clone();
            for s in &mut view.stmts {
                s.domain = fix_dims(&s.domain, &fixed);
            }
            let fresh = analyze_program(&view, &cfg).unwrap();
            let ext = sp.ext_params(&[n], &fixed).unwrap();
            prop_assert_eq!(sp.plan.buffers.len(), fresh.buffers.len());
            for (sb, fb) in sp.plan.buffers.iter().zip(&fresh.buffers) {
                prop_assert_eq!(sb.array, fb.array);
                prop_assert_eq!(
                    sb.extents(&ext).unwrap(),
                    fb.extents(&[n]).unwrap(),
                    "extents differ at block {}", bt
                );
                prop_assert_eq!(
                    sb.offsets(&ext).unwrap(),
                    fb.offsets(&[n]).unwrap(),
                    "offsets differ at block {}", bt
                );
            }
            let collect = |plan: &polymem::core::smem::SmemPlan, prm: &[i64]| {
                let mut set: BTreeSet<(usize, Vec<i64>)> = BTreeSet::new();
                for mc in &plan.movement {
                    let buf = &plan.buffers[mc.buffer];
                    for_each_move_in(mc, buf, prm, &mut |g, _| {
                        set.insert((buf.array, g.to_vec()));
                    })
                    .unwrap();
                }
                set
            };
            prop_assert_eq!(
                collect(&sp.plan, &ext),
                collect(&fresh, &[n]),
                "move-in sets differ at block {}", bt
            );
        }
    }

    #[test]
    fn descriptors_cover_movement_exactly(
        off1 in 0i64..4, off2 in 0i64..4, w in 1i64..4,
        tile in 1i64..5, n in 4i64..12,
    ) {
        // The coalesced DMA list for each buffer must enumerate exactly
        // the same (global, local) element pairs, in exactly the same
        // order, as the per-element move-in/move-out nests it replaces
        // — descriptors change the granularity of movement, never its
        // contents.
        use polymem::core::smem::descriptors::{transfer_list, flatten_index, Direction};
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 8, v("N") + 8]);
        b.array("Out", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
                ("k", LinExpr::c(0), LinExpr::c(w)),
            ])
            .write("Out", &[v("i"), v("j")])
            .read("Out", &[v("i"), v("j")])
            .read("A", &[v("i") + off1, v("j") + off2 + v("k")])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", tile), ("j", tile)], "T")).unwrap();
        let plan = analyze_program(
            &t,
            &SmemConfig {
                sample_params: vec![n],
                delta: 0.0,
                must_copy_all: true,
                ..SmemConfig::default()
            },
        )
        .unwrap();
        use polymem::core::smem::movement::{for_each_move_in, for_each_move_out};
        prop_assert!(!plan.movement.is_empty(), "nothing staged — vacuous test");
        for mc in &plan.movement {
            let buf = &plan.buffers[mc.buffer];
            let arr_ext = t.arrays[buf.array].eval_extents(&t.params, &[n]).unwrap();
            let buf_ext = buf.extents(&[n]).unwrap();
            for dir in [Direction::In, Direction::Out] {
                let mut reference: Vec<(i64, i64)> = Vec::new();
                let mut push = |g: &[i64], l: &[i64]| {
                    reference.push((
                        flatten_index(g, &arr_ext),
                        flatten_index(l, &buf_ext),
                    ));
                };
                match dir {
                    Direction::In => for_each_move_in(mc, buf, &[n], &mut push).unwrap(),
                    Direction::Out => for_each_move_out(mc, buf, &[n], &mut push).unwrap(),
                }
                let list = transfer_list(mc, buf, dir, &arr_ext, &[n]).unwrap();
                let mut got: Vec<(i64, i64)> = Vec::new();
                list.for_each(&mut |g, l| got.push((g, l)));
                prop_assert_eq!(&got, &reference, "direction {:?}", dir);
                prop_assert_eq!(list.elements, reference.len() as u64);
                // Coalescing must never *increase* the operation count.
                prop_assert!(list.descriptors.len() as u64 <= list.elements.max(1));
            }
        }
    }

    #[test]
    fn random_tilings_preserve_semantics(
        t1 in 1i64..7, t2 in 1i64..7, n in 2i64..10,
    ) {
        // A separable 2-D kernel with an asymmetric access.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 2, v("N") + 2]);
        b.array("C", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("C", &[v("i"), v("j")])
            .read("A", &[v("i") + 1, v("j")])
            .read("A", &[v("i"), v("j") + 2])
            .body(Expr::sub(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", t1), ("j", t2)], "T")).unwrap();
        let mut st0 = ArrayStore::for_program(&p, &[n]).unwrap();
        st0.fill_with("A", |ix| ix[0] * 31 + ix[1] * 7).unwrap();
        let mut st1 = st0.clone();
        exec_program(&p, &[n], &mut st0).unwrap();
        exec_program(&t, &[n], &mut st1).unwrap();
        prop_assert_eq!(st0.data("C").unwrap(), st1.data("C").unwrap());
    }

    #[test]
    fn scratchpad_execution_matches_reference_on_random_windows(
        w in 1i64..4, n in 3i64..9, tile in 1i64..5,
    ) {
        // Windowed sum: Out[i] = sum-ish over A[i..i+w].
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 4]);
        b.array("Out", &[v("N"), LinExpr::c(4)]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("k", LinExpr::c(0), LinExpr::c(w)),
            ])
            .write("Out", &[v("i"), LinExpr::c(0)])
            .read("Out", &[v("i"), LinExpr::c(0)])
            .read("A", &[v("i") + v("k")])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let tiled = tile_program(&p, &TileSpec::new(&[("i", tile)], "T")).unwrap();
        let kernel = polymem::machine::BlockedKernel {
            program: tiled,
            round_dims: vec![],
            block_dims: vec!["iT".into()],
            seq_dims: vec![],
            thread_dims: vec![],
            use_scratchpad: true,
        };
        let mut st0 = ArrayStore::for_program(&p, &[n]).unwrap();
        st0.fill_with("A", |ix| ix[0] * 13 + 1).unwrap();
        let mut st1 = st0.clone();
        exec_program(&p, &[n], &mut st0).unwrap();
        let cfg = polymem::machine::MachineConfig::geforce_8800_gtx();
        polymem::machine::execute_blocked(&kernel, &[n], &mut st1, &cfg, false).unwrap();
        prop_assert_eq!(st0.data("Out").unwrap(), st1.data("Out").unwrap());
    }

    #[test]
    fn pruned_projection_matches_naive_pointwise(
        lo0 in -4i64..4, w0 in 0i64..6,
        lo1 in -4i64..4, w1 in 0i64..6,
        lo2 in -4i64..4, w2 in 0i64..6,
        c1 in -12i64..20, c2 in -12i64..20,
        keep in 0usize..3,
    ) {
        // The optimized projection pipeline (greedy elimination order,
        // syntactic + bounded exact pruning, memoization) must describe
        // exactly the same integer set as the naive fixed-order,
        // prune-free Fourier–Motzkin it replaced.
        let mut p = interval_box(&[(lo0, lo0 + w0), (lo1, lo1 + w1), (lo2, lo2 + w2)]);
        p.add_constraint(Constraint::ineq(vec![-1, -1, 0, c1]));
        p.add_constraint(Constraint::ineq(vec![0, 1, -1, c2]));
        let fast = p.project_onto(&[keep]).unwrap();
        let naive = {
            let _guard = NaiveModeGuard::on();
            p.project_onto(&[keep]).unwrap()
        };
        for x in -16..=16 {
            prop_assert_eq!(
                fast.contains(&[x], &[]),
                naive.contains(&[x], &[]),
                "projections disagree at x = {}", x
            );
        }
    }

    #[test]
    fn rational_emptiness_implies_tightened_fm_emptiness(
        rows in prop::collection::vec(
            (prop::collection::vec(-3i64..4, 3..4), -6i64..7, 0i64..2), 2..8)
    ) {
        // One-directional invariant across the emptiness oracles: the
        // fast path decides *rational* feasibility (capped rational FM,
        // escalating to phase-1 simplex), while the naive path runs
        // integer-tightening FM, which proves at least as much — so a
        // fast-path "empty" must always be confirmed by the naive
        // path, and so must a direct simplex "infeasible". The
        // converse may legitimately differ (tightening can prove
        // integer emptiness of rationally feasible systems).
        let cs: Vec<Constraint> = rows
            .iter()
            .map(|(coef, cst, kind)| {
                let mut r = coef.clone();
                r.push(*cst);
                if *kind == 1 { Constraint::eq(r) } else { Constraint::ineq(r) }
            })
            .collect();
        let p = Polyhedron::new(Space::anon(3, 0), cs);
        let fast_empty = p.is_empty().unwrap();
        let naive_empty = {
            let _guard = NaiveModeGuard::on();
            p.is_empty().unwrap()
        };
        if fast_empty {
            prop_assert!(naive_empty, "fast path claims empty, naive FM disagrees");
        }
        if let Ok(feasible) = polymem::poly::simplex::feasible(p.constraints(), 3) {
            if !feasible {
                prop_assert!(naive_empty, "simplex claims infeasible, naive FM disagrees");
                prop_assert!(fast_empty, "simplex claims infeasible, fast path disagrees");
            }
        }
    }

    #[test]
    fn tile_search_never_violates_constraints(
        mem in 64.0f64..4096.0, p_req in 1u64..128,
    ) {
        use polymem::core::tiling::{search_discrete, TileSizeProblem};
        use polymem::core::tiling::cost::{BufferCost, CostModel, CostParams};
        use polymem::core::smem::dataspace::collect_refs;
        let prog: Program = {
            let mut b = ProgramBuilder::new("jac", ["T", "N"]);
            b.array("A", &[v("N") + 2]);
            b.array("B", &[v("N") + 2]);
            b.stmt("S")
                .loops(&[
                    ("t", LinExpr::c(1), v("T")),
                    ("i", LinExpr::c(1), v("N")),
                ])
                .write("B", &[v("i")])
                .read("A", &[v("i") - 1])
                .read("A", &[v("i") + 1])
                .body(Expr::add(Expr::Read(0), Expr::Read(1)))
                .done();
            b.build().unwrap()
        };
        let a = prog.array_index("A").unwrap();
        let refs = collect_refs(&prog, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let problem = TileSizeProblem {
            cost: CostModel {
                buffers: vec![BufferCost::from_refs("A", &members, &[0], &[0, 1], 2)],
                loop_ranges: vec![1024.0, 8192.0],
            },
            params: CostParams { p: p_req as f64, s: 20.0, l: 1.0 },
            mem_limit: mem,
        };
        let out = search_discrete(&problem, None);
        if out.cost.is_finite() {
            prop_assert!(problem.feasible(&out.sizes), "{:?}", out);
        }
    }
}
