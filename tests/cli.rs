//! Smoke tests of the `polymem` CLI binary.

use std::process::Command;

fn polymem(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_polymem"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Like [`polymem`] but reports the raw exit code and lets the test
/// inject environment variables (for the fault hooks).
fn polymem_code(args: &[&str], env: &[(&str, &str)]) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_polymem"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("not killed by signal"),
    )
}

#[test]
fn figures_subcommand_prints_a_figure() {
    let (stdout, _, ok) = polymem(&["figures", "7"]);
    assert!(ok);
    assert!(stdout.contains("Figure 7"), "{stdout}");
    assert!(stdout.contains("Thread Blocks"), "{stdout}");
}

#[test]
fn analyze_builtin_kernel() {
    let (stdout, _, ok) = polymem(&["analyze", "matmul"]);
    assert!(ok);
    assert!(stdout.contains("Algorithm 1 decisions"), "{stdout}");
    assert!(stdout.contains("LA[N][N];"), "{stdout}");
}

#[test]
fn analyze_poly_file_with_params() {
    let (stdout, _, ok) = polymem(&["analyze", "examples/kernels/blur3.poly", "--params", "32,4"]);
    assert!(ok);
    assert!(stdout.contains("LA[N + 2];"), "{stdout}");
}

#[test]
fn emit_cuda_flavour() {
    let (stdout, _, ok) = polymem(&["emit", "conv2d", "--cuda"]);
    assert!(ok);
    assert!(stdout.contains("__global__ void conv2d_kernel"), "{stdout}");
    assert!(stdout.contains("__shared__"), "{stdout}");
}

#[test]
fn run_validates_against_reference() {
    let (stdout, _, ok) = polymem(&["run", "me", "--size", "8"]);
    assert!(ok);
    assert!(stdout.contains("matches reference"), "{stdout}");
}

#[test]
fn search_prints_paper_optima() {
    let (stdout, _, ok) = polymem(&["search", "jacobi"]);
    assert!(ok);
    assert!(stdout.contains("(32, 256)"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (_, stderr, ok) = polymem(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (_, stderr, ok) = polymem(&["analyze", "nosuchkernel"]);
    assert!(!ok);
    assert!(stderr.contains("unknown kernel"), "{stderr}");
}

// Exit-code classification: one directed test per class, so scripts
// (and the serve daemon's error mapping) can rely on the contract
// `0 ok / 2 usage / 3 compile / 4 runtime`.

#[test]
fn usage_errors_exit_with_code_2() {
    let (_, _, code) = polymem_code(&["frobnicate"], &[]);
    assert_eq!(code, 2);
    let (_, stderr, code) = polymem_code(&["run", "me", "--no-heirarchy"], &[]);
    assert_eq!(code, 2, "typo'd flag must be a usage error: {stderr}");
    assert!(stderr.contains("unknown flag"), "{stderr}");
    let (_, _, code) = polymem_code(&["run", "nosuchkernel"], &[]);
    assert_eq!(code, 2);
}

#[test]
fn compile_errors_exit_with_code_3() {
    let dir = std::env::temp_dir().join("polymem_cli_compile_err");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.poly");
    std::fs::write(&path, "program { this is not a kernel }").unwrap();
    let (_, stderr, code) = polymem_code(&["analyze", path.to_str().unwrap()], &[]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("compile error:"), "{stderr}");
}

#[test]
fn runtime_errors_exit_with_code_4() {
    // The fault hook panics one block worker; the simulation fails
    // after compilation succeeded, which is the runtime class.
    let (_, stderr, code) = polymem_code(
        &["run", "me", "--size", "8"],
        &[("POLYMEM_FAULT_PANIC_BLOCK", "0")],
    );
    assert_eq!(code, 4, "{stderr}");
    assert!(stderr.contains("runtime error:"), "{stderr}");
    assert!(stderr.contains("panicked"), "{stderr}");
}

#[test]
fn key_is_stable_across_processes() {
    // The artifact address must be a pure content hash: two fresh
    // processes — separate ASLR, allocation order, everything —
    // print identical digests.
    let (k1, _, code1) = polymem_code(&["key", "me", "--size", "16"], &[]);
    let (k2, _, code2) = polymem_code(&["key", "me", "--size", "16"], &[]);
    assert_eq!(code1, 0);
    assert_eq!(code2, 0);
    assert_eq!(k1, k2);
    let digest = k1.trim();
    assert_eq!(digest.len(), 32, "two-lane key renders 32 hex digits");
    assert!(digest.chars().all(|c| c.is_ascii_hexdigit()), "{digest}");

    // Different launch parametrization → different address.
    let (k3, _, _) = polymem_code(&["key", "me", "--size", "32"], &[]);
    assert_ne!(k1, k3);
    // Mapping-relevant config flips the key too.
    let (k4, _, _) = polymem_code(&["key", "me", "--size", "16", "--no-hierarchy"], &[]);
    assert_ne!(k1, k4);
}

#[test]
fn tune_ranks_candidates_and_run_tuned_reuses_the_artifact() {
    let dir = std::env::temp_dir().join("polymem_cli_tune");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let d = dir.to_str().unwrap();
    // Cold: the pruned search runs, simulating only the frontier.
    let (out1, _, code1) = polymem_code(
        &[
            "tune",
            "matmul",
            "--size",
            "8",
            "--smoke",
            "--artifact-dir",
            d,
        ],
        &[],
    );
    assert_eq!(code1, 0, "{out1}");
    assert!(out1.contains("plan source: search"), "{out1}");
    assert!(out1.contains("winner:"), "{out1}");
    // The preset row is marked and simulated (pinned into the frontier).
    assert!(out1.contains("*tile["), "{out1}");
    // Warm: a second process answers from the tune artifact.
    let (out2, _, code2) = polymem_code(
        &[
            "tune",
            "matmul",
            "--size",
            "8",
            "--smoke",
            "--artifact-dir",
            d,
        ],
        &[],
    );
    assert_eq!(code2, 0, "{out2}");
    assert!(out2.contains("plan source: artifact"), "{out2}");
    assert!(out2.contains("0 simulated"), "{out2}");
    // The full-space search feeds `run --tuned` (separate key from
    // --smoke): first run searches, second loads the artifact.
    let (out3, _, code3) = polymem_code(
        &[
            "run",
            "matmul",
            "--size",
            "8",
            "--tuned",
            "--artifact-dir",
            d,
        ],
        &[],
    );
    assert_eq!(code3, 0, "{out3}");
    assert!(out3.contains("matches reference"), "{out3}");
    assert!(out3.contains("tuned mapping (search)"), "{out3}");
    let (out4, _, code4) = polymem_code(
        &[
            "run",
            "matmul",
            "--size",
            "8",
            "--tuned",
            "--artifact-dir",
            d,
        ],
        &[],
    );
    assert_eq!(code4, 0, "{out4}");
    assert!(out4.contains("tuned mapping (artifact)"), "{out4}");
}

#[test]
fn tune_json_dumps_the_ranked_table() {
    let (out, _, code) = polymem_code(
        &[
            "tune", "me", "--size", "8", "--smoke", "--top", "2", "--json",
        ],
        &[],
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("\"plan_source\": \"search\""), "{out}");
    assert!(out.contains("\"winner\""), "{out}");
    assert!(out.contains("\"predicted\""), "{out}");
    assert!(out.contains("\"simulated\""), "{out}");
    // Unsimulated rows carry null, not a number.
    assert!(out.contains("\"simulated\": null"), "{out}");
}

#[test]
fn tune_random_fuzzes_generated_programs() {
    let (out, stderr, code) = polymem_code(
        &[
            "tune", "--random", "2", "--seed", "6", "--size", "6", "--smoke",
        ],
        &[("POLYMEM_EXEC_CHECK", "1")],
    );
    assert_eq!(code, 0, "{out}\n{stderr}");
    assert!(out.contains("seed 6:"), "{out}");
    assert!(out.contains("seed 7:"), "{out}");
    assert!(out.contains("winner"), "{out}");
}

#[test]
fn run_reuses_persisted_artifacts_across_processes() {
    let dir = std::env::temp_dir().join("polymem_cli_artifact_reuse");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let d = dir.to_str().unwrap();
    let (out1, _, code1) = polymem_code(&["run", "me", "--size", "8", "--artifact-dir", d], &[]);
    assert_eq!(code1, 0, "{out1}");
    assert!(out1.contains("matches reference"), "{out1}");
    // The store now holds the plan under the address `key` prints.
    let (key, _, _) = polymem_code(&["key", "me", "--size", "8"], &[]);
    let stored = dir.join(format!("{}.plan", key.trim()));
    assert!(stored.exists(), "expected artifact at {stored:?}");
    // A second process skips the §3 passes: compiler time is zero.
    let (out2, _, code2) = polymem_code(
        &["run", "me", "--size", "8", "--artifact-dir", d, "--profile"],
        &[],
    );
    assert_eq!(code2, 0, "{out2}");
    assert!(out2.contains("matches reference"), "{out2}");
    assert!(
        out2.contains("compiler (§3 passes)        0.000 ms"),
        "artifact hit must skip analysis:\n{out2}"
    );
}

// ---------------------------------------------------------------------------
// Machine registry: --machine / --machine-file
// ---------------------------------------------------------------------------

#[test]
fn every_registered_machine_runs_bit_exact() {
    for m in ["gpu", "cell", "host", "pim", "spatial"] {
        let (out, _, ok) = polymem(&["run", "matmul", "--size", "8", "--machine", m]);
        assert!(ok, "{m}: {out}");
        assert!(out.contains("matches reference"), "{m}: {out}");
    }
}

#[test]
fn unknown_machine_names_are_usage_errors() {
    let (_, stderr, code) = polymem_code(&["run", "me", "--machine", "quantum"], &[]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("unknown machine"), "{stderr}");
    assert!(
        stderr.contains("pim") && stderr.contains("spatial"),
        "the error must list the registered names: {stderr}"
    );
    let (_, _, code) = polymem_code(
        &["tune", "matmul", "--size", "8", "--machine", "quantum"],
        &[],
    );
    assert_eq!(code, 2);
    let (_, _, code) = polymem_code(&["key", "me", "--machine", "quantum"], &[]);
    assert_eq!(code, 2);
}

#[test]
fn machine_file_loads_a_custom_description() {
    let dir = std::env::temp_dir().join("polymem_cli_machine_file");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lab.toml");
    let mut d = polymem_machine::desc::spatial();
    d.name = "labmesh".into();
    std::fs::write(&path, d.to_toml()).unwrap();
    let p = path.to_str().unwrap();

    let (out, _, ok) = polymem(&["run", "matmul", "--size", "8", "--machine-file", p]);
    assert!(ok, "{out}");
    assert!(out.contains("matches reference"), "{out}");

    // The two selection flags are mutually exclusive.
    let (_, stderr, code) = polymem_code(
        &["run", "matmul", "--machine", "gpu", "--machine-file", p],
        &[],
    );
    assert_eq!(code, 2, "{stderr}");

    // A malformed description is a usage error, not a crash.
    let bad = dir.join("bad.toml");
    std::fs::write(&bad, "name = \"x\"\nnot_a_key = 1\n").unwrap();
    let (_, _, code) = polymem_code(
        &["run", "matmul", "--machine-file", bad.to_str().unwrap()],
        &[],
    );
    assert_eq!(code, 2);
}

#[test]
fn machine_keys_are_stable_across_processes_and_differ_per_machine() {
    // The PIM and spatial presets address artifacts as pure content
    // hashes: fresh processes agree digit-for-digit.
    let mut keys = Vec::new();
    for m in ["gpu", "pim", "spatial"] {
        let (k1, _, c1) = polymem_code(&["key", "matmul", "--size", "8", "--machine", m], &[]);
        let (k2, _, c2) = polymem_code(&["key", "matmul", "--size", "8", "--machine", m], &[]);
        assert_eq!(c1, 0);
        assert_eq!(c2, 0);
        assert_eq!(k1, k2, "{m} key must be process-independent");
        keys.push(k1.trim().to_string());
    }
    // Mapping-relevant machine differences address different plans.
    assert_ne!(keys[0], keys[1], "gpu vs pim");
    assert_ne!(keys[0], keys[2], "gpu vs spatial");
    assert_ne!(keys[1], keys[2], "pim vs spatial");
}
