//! Smoke tests of the `polymem` CLI binary.

use std::process::Command;

fn polymem(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_polymem"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn figures_subcommand_prints_a_figure() {
    let (stdout, _, ok) = polymem(&["figures", "7"]);
    assert!(ok);
    assert!(stdout.contains("Figure 7"), "{stdout}");
    assert!(stdout.contains("Thread Blocks"), "{stdout}");
}

#[test]
fn analyze_builtin_kernel() {
    let (stdout, _, ok) = polymem(&["analyze", "matmul"]);
    assert!(ok);
    assert!(stdout.contains("Algorithm 1 decisions"), "{stdout}");
    assert!(stdout.contains("LA[N][N];"), "{stdout}");
}

#[test]
fn analyze_poly_file_with_params() {
    let (stdout, _, ok) = polymem(&["analyze", "examples/kernels/blur3.poly", "--params", "32,4"]);
    assert!(ok);
    assert!(stdout.contains("LA[N + 2];"), "{stdout}");
}

#[test]
fn emit_cuda_flavour() {
    let (stdout, _, ok) = polymem(&["emit", "conv2d", "--cuda"]);
    assert!(ok);
    assert!(stdout.contains("__global__ void conv2d_kernel"), "{stdout}");
    assert!(stdout.contains("__shared__"), "{stdout}");
}

#[test]
fn run_validates_against_reference() {
    let (stdout, _, ok) = polymem(&["run", "me", "--size", "8"]);
    assert!(ok);
    assert!(stdout.contains("matches reference"), "{stdout}");
}

#[test]
fn search_prints_paper_optima() {
    let (stdout, _, ok) = polymem(&["search", "jacobi"]);
    assert!(ok);
    assert!(stdout.contains("(32, 256)"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (_, stderr, ok) = polymem(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (_, stderr, ok) = polymem(&["analyze", "nosuchkernel"]);
    assert!(!ok);
    assert!(stderr.contains("unknown kernel"), "{stderr}");
}
