//! Reproduction of the paper's Fig. 2 → Fig. 3 transformation: the
//! multi-level tiled code structure for the ME kernel.
//!
//! Fig. 3's nest is
//!
//! ```text
//! FORALL iT, jT                       <- distribute over thread blocks
//!   FOR i', j', k', l'                <- scratchpad-limited sub-tiles
//!     <move-in>
//!     FORALL it, jt                   <- distribute over threads
//!       FOR i, j, k, l                <- intra-tile
//!     <move-out>
//! ```
//!
//! This test drives the whole §4 pipeline on the ME program: band
//! detection (space loops i, j; time loops k, l), three levels of
//! tiling with the documented dim ordering, placement of movement code
//! and bit-exact execution equivalence of the fully tiled program.

use polymem::core::tiling::transform::{tile_program, TileSpec};
use polymem::core::tiling::{find_permutable_band, tilable_prefix, LoopKind};
use polymem::ir::{exec_program, ArrayStore};
use polymem::kernels::me;

#[test]
fn band_detection_matches_fig2_classification() {
    let p = me::program();
    let band = find_permutable_band(&p).unwrap();
    // i and j are space loops (FORALL in Fig. 2); k is a carried time
    // loop. The fully-permutable band stops at k because the Sad
    // reduction has a (0, 0, +, *) dependence — but all four loops are
    // tilable in the given order (lex-positivity), which is what
    // Fig. 3 exploits.
    assert_eq!(band.loops, vec![0, 1, 2]);
    assert_eq!(
        band.kinds,
        vec![LoopKind::Space, LoopKind::Space, LoopKind::Time]
    );
    assert_eq!(band.space_loops(), vec![0, 1]);
    assert_eq!(tilable_prefix(&p).unwrap(), 4);
}

#[test]
fn three_level_tiling_produces_fig3_nest() {
    let p = me::program();
    // Level 1: distribute (i, j) across thread blocks.
    let l1 = tile_program(&p, &TileSpec::new(&[("i", 64), ("j", 64)], "T")).unwrap();
    // Level 2: scratchpad-limited sub-tiles of all permutable loops,
    // nested inside level 1.
    let l2 = tile_program(
        &l1,
        &TileSpec::new_before(&[("i", 32), ("j", 16), ("k", 16), ("l", 16)], "p", "i"),
    )
    .unwrap();
    // Level 3: distribute intra-sub-tile (i, j) across threads.
    let l3 = tile_program(&l2, &TileSpec::new_before(&[("i", 8), ("j", 8)], "t", "i")).unwrap();
    let s = &l3.stmts[0];
    assert_eq!(
        s.iter_names(),
        &[
            "iT".to_string(),
            "jT".into(),
            "ip".into(),
            "jp".into(),
            "kp".into(),
            "lp".into(),
            "it".into(),
            "jt".into(),
            "i".into(),
            "j".into(),
            "k".into(),
            "l".into(),
        ],
        "Fig. 3 nesting order"
    );
    assert_eq!(s.depth(), 12);
}

#[test]
fn fully_tiled_me_executes_identically() {
    let size = me::MeSize {
        ni: 10,
        nj: 9,
        ws: 4,
    };
    let p = me::program();
    let l1 = tile_program(&p, &TileSpec::new(&[("i", 4), ("j", 4)], "T")).unwrap();
    let l2 = tile_program(
        &l1,
        &TileSpec::new_before(&[("i", 2), ("j", 2), ("k", 2), ("l", 2)], "p", "i"),
    )
    .unwrap();
    let l3 = tile_program(&l2, &TileSpec::new_before(&[("i", 2), ("j", 2)], "t", "i")).unwrap();

    let mut st_ref = ArrayStore::for_program(&p, &me::params(&size)).unwrap();
    me::init_store(&mut st_ref, 99);
    let mut st_tiled = st_ref.clone();
    exec_program(&p, &me::params(&size), &mut st_ref).unwrap();
    exec_program(&l3, &me::params(&size), &mut st_tiled).unwrap();
    assert_eq!(st_ref.data("Sad").unwrap(), st_tiled.data("Sad").unwrap());
}

#[test]
fn movement_placement_matches_fig3() {
    use polymem::core::smem::dataspace::collect_refs;
    use polymem::core::tiling::placement_level;
    let p = me::program();
    // In Fig. 3 the move-in sits inside the (i', j', k', l') loops
    // but the whole window fits a sub-tile, so for Cur/Ref every tile
    // loop below level 2 is *not* redundant (they depend on i, j, k,
    // l), while Sad hoists past the (k', l') tile loops.
    let sad = p.array_index("Sad").unwrap();
    let refs = collect_refs(&p, sad).unwrap();
    let members: Vec<&_> = refs.iter().collect();
    // Tiling loops in original-dim terms: (i, j, k, l) = dims 0..4.
    assert_eq!(placement_level(&members, &[0, 1, 2, 3]), 2);
    let cur = p.array_index("Cur").unwrap();
    let refs = collect_refs(&p, cur).unwrap();
    let members: Vec<&_> = refs.iter().collect();
    assert_eq!(placement_level(&members, &[0, 1, 2, 3]), 4);
}
