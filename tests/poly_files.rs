//! The shipped `.poly` example kernels parse, analyze and execute.

use polymem::core::smem::{analyze_program, SmemConfig};
use polymem::ir::{exec_program, parse_program, ArrayStore};

fn read(name: &str) -> String {
    std::fs::read_to_string(format!("examples/kernels/{name}")).expect("example file exists")
}

#[test]
fn blur3_parses_analyzes_and_runs() {
    let p = parse_program(&read("blur3.poly")).unwrap();
    assert_eq!(p.params, vec!["N", "R"]);
    let plan = analyze_program(
        &p,
        &SmemConfig {
            sample_params: vec![32, 4],
            ..SmemConfig::default()
        },
    )
    .unwrap();
    // A's three overlapping reads pass Algorithm 1; Out does not.
    let a = p.array_index("A").unwrap();
    assert!(plan.buffers.iter().any(|b| b.array == a));
    let out = p.array_index("Out").unwrap();
    assert!(plan.buffers.iter().all(|b| b.array != out));

    let mut st = ArrayStore::for_program(&p, &[8, 2]).unwrap();
    st.fill_with("A", |ix| ix[0] * 3).unwrap();
    exec_program(&p, &[8, 2], &mut st).unwrap();
    // Out[r][i] = (3i + 3(i+1) + 3(i+2)) / 3 = 3i + 3.
    for r in 0..2 {
        for i in 0..8 {
            assert_eq!(st.get("Out", &[r, i]).unwrap(), 3 * i + 3);
        }
    }
}

#[test]
fn seidel_parses_and_matches_inplace_semantics() {
    let p = parse_program(&read("seidel.poly")).unwrap();
    let params = [3i64, 6];
    let mut st = ArrayStore::for_program(&p, &params).unwrap();
    st.fill_with("A", |ix| ix[0] * ix[0]).unwrap();
    let mut expect = st.data("A").unwrap().to_vec();
    exec_program(&p, &params, &mut st).unwrap();
    // Native in-place sweeps.
    for _t in 0..3 {
        for i in 1..=6usize {
            expect[i] = (expect[i - 1] + expect[i] + expect[i + 1]) / 3;
        }
    }
    assert_eq!(st.data("A").unwrap(), &expect[..]);
}

#[test]
fn seidel_band_has_no_parallel_loop() {
    // Gauss-Seidel carries dependences on both loops; the band is the
    // time loop only and has no communication-free loop.
    let p = parse_program(&read("seidel.poly")).unwrap();
    let band = polymem::core::tiling::find_permutable_band(&p).unwrap();
    assert!(band.space_loops().is_empty());
}
