//! The shipped `.poly` example kernels parse, analyze and execute.

use polymem::core::smem::{analyze_program, SmemConfig};
use polymem::ir::{exec_program, parse_program, ArrayStore};

fn read(name: &str) -> String {
    std::fs::read_to_string(format!("examples/kernels/{name}")).expect("example file exists")
}

#[test]
fn blur3_parses_analyzes_and_runs() {
    let p = parse_program(&read("blur3.poly")).unwrap();
    assert_eq!(p.params, vec!["N", "R"]);
    let plan = analyze_program(
        &p,
        &SmemConfig {
            sample_params: vec![32, 4],
            ..SmemConfig::default()
        },
    )
    .unwrap();
    // A's three overlapping reads pass Algorithm 1; Out does not.
    let a = p.array_index("A").unwrap();
    assert!(plan.buffers.iter().any(|b| b.array == a));
    let out = p.array_index("Out").unwrap();
    assert!(plan.buffers.iter().all(|b| b.array != out));

    let mut st = ArrayStore::for_program(&p, &[8, 2]).unwrap();
    st.fill_with("A", |ix| ix[0] * 3).unwrap();
    exec_program(&p, &[8, 2], &mut st).unwrap();
    // Out[r][i] = (3i + 3(i+1) + 3(i+2)) / 3 = 3i + 3.
    for r in 0..2 {
        for i in 0..8 {
            assert_eq!(st.get("Out", &[r, i]).unwrap(), 3 * i + 3);
        }
    }
}

#[test]
fn seidel_parses_and_matches_inplace_semantics() {
    let p = parse_program(&read("seidel.poly")).unwrap();
    let params = [3i64, 6];
    let mut st = ArrayStore::for_program(&p, &params).unwrap();
    st.fill_with("A", |ix| ix[0] * ix[0]).unwrap();
    let mut expect = st.data("A").unwrap().to_vec();
    exec_program(&p, &params, &mut st).unwrap();
    // Native in-place sweeps.
    for _t in 0..3 {
        for i in 1..=6usize {
            expect[i] = (expect[i - 1] + expect[i] + expect[i + 1]) / 3;
        }
    }
    assert_eq!(st.data("A").unwrap(), &expect[..]);
}

#[test]
fn seidel_band_has_no_parallel_loop() {
    // Gauss-Seidel carries dependences on both loops; the band is the
    // time loop only and has no communication-free loop.
    let p = parse_program(&read("seidel.poly")).unwrap();
    let band = polymem::core::tiling::find_permutable_band(&p).unwrap();
    assert!(band.space_loops().is_empty());
}

mod end_to_end {
    use super::read;
    use polymem::ir::{exec_program, parse_program, ArrayStore, Program};
    use polymem::machine::{
        config_for, execute_blocked, generic_candidates, tune, MachineConfig, TuneOptions,
    };

    fn machines() -> [(&'static str, MachineConfig); 2] {
        [
            ("gpu", MachineConfig::geforce_8800_gtx()),
            ("cell", MachineConfig::cell_like()),
        ]
    }

    fn init(_p: &Program, st: &mut ArrayStore) {
        st.fill_with("A", |ix| ix[0] * 3 + 1).unwrap();
    }

    /// Every candidate the band analysis derives for a `.poly` example
    /// executes on the simulator bit-exactly, on both machine models.
    fn check_poly(name: &str, params: &[i64]) {
        let p = parse_program(&read(name)).unwrap();
        let mut reference = ArrayStore::for_program(&p, params).unwrap();
        init(&p, &mut reference);
        exec_program(&p, params, &mut reference).unwrap();
        for (label, base) in machines() {
            let cands = generic_candidates(&p, params, &base, &[2, 4]).unwrap();
            assert!(!cands.is_empty(), "{name} on {label}: empty space");
            for c in &cands {
                let cfg = config_for(&c.desc, &base);
                let mut st = ArrayStore::for_program(&c.kernel.program, params).unwrap();
                init(&p, &mut st);
                execute_blocked(&c.kernel, params, &mut st, &cfg, false)
                    .unwrap_or_else(|e| panic!("{name} on {label}, {}: {e}", c.desc.label()));
                for a in &p.arrays {
                    assert_eq!(
                        st.data(&a.name).unwrap(),
                        reference.data(&a.name).unwrap(),
                        "{name} on {label}, {}: array {} diverges",
                        c.desc.label(),
                        a.name
                    );
                }
            }
        }
    }

    #[test]
    fn blur3_executes_blocked_on_both_machines() {
        check_poly("blur3.poly", &[16, 4]);
    }

    #[test]
    fn seidel_executes_blocked_on_both_machines() {
        check_poly("seidel.poly", &[3, 8]);
    }

    /// `polymem tune` acceptance over a `.poly` example: the pruned
    /// search finds a bit-exact winner, persists it, and a warm re-run
    /// answers from the artifact with zero simulations.
    #[test]
    fn tune_finds_and_persists_a_winner_for_blur3() {
        let p = parse_program(&read("blur3.poly")).unwrap();
        let params = [16i64, 4];
        let dir = std::env::temp_dir().join(format!("polymem-tune-blur3-{}", std::process::id()));
        let mut base = MachineConfig::geforce_8800_gtx();
        base.artifact_dir = Some(dir.to_string_lossy().into_owned());
        let cands = generic_candidates(&p, &params, &base, &[2, 4, 8]).unwrap();
        let opts = TuneOptions {
            top_k: 2,
            space_label: "test:blur3".into(),
            ..TuneOptions::default()
        };
        let init = |st: &mut ArrayStore| st.fill_with("A", |ix| ix[0] * 3 + 1).unwrap();
        let cold = tune(&p, &params, &init, &cands, &base, &opts).unwrap();
        assert_eq!(cold.plan_source, "search");
        assert!(cold.simulated > 0 && cold.simulated < cold.total);
        let warm = tune(&p, &params, &init, &cands, &base, &opts).unwrap();
        assert_eq!(warm.plan_source, "artifact");
        assert_eq!(warm.simulated, 0);
        assert_eq!(warm.winner.to_line(), cold.winner.to_line());
        assert_eq!(warm.winner_cycles, cold.winner_cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
