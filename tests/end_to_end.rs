//! End-to-end pipeline tests across crates: program → dependence
//! analysis → tiling → scratchpad planning → simulated execution, for
//! every kernel, compared bit-exactly against the reference
//! interpreter — plus the §3.1.4 liveness optimisation and the
//! occupancy rule exercised on real plans.

use polymem::core::deps::compute_deps;
use polymem::core::smem::liveness::optimize_movement;
use polymem::core::smem::{analyze_program, SmemConfig};
use polymem::core::tiling::transform::fix_dims;
use polymem::ir::{exec_program, ArrayStore};
use polymem::kernels::{jacobi, jacobi2d, matmul, me};
use polymem::machine::{execute_blocked, MachineConfig};
use polymem::poly::dep::DepKind;
use std::collections::HashMap;

#[test]
fn all_kernels_run_identically_on_all_machine_kinds() {
    let gpu = MachineConfig::geforce_8800_gtx();
    let cell = MachineConfig::cell_like();

    // ME.
    let size = me::MeSize {
        ni: 6,
        nj: 7,
        ws: 3,
    };
    let p = me::program();
    let mut reference = ArrayStore::for_program(&p, &me::params(&size)).unwrap();
    me::init_store(&mut reference, 1);
    let base = reference.clone();
    exec_program(&p, &me::params(&size), &mut reference).unwrap();
    for (cfg, smem) in [(&gpu, false), (&gpu, true), (&cell, true)] {
        let mut st = base.clone();
        let k = me::blocked_kernel(3, 4, smem);
        execute_blocked(&k, &me::params(&size), &mut st, cfg, true).unwrap();
        assert_eq!(
            st.data("Sad").unwrap(),
            reference.data("Sad").unwrap(),
            "ME mismatch (smem={smem}, caps={:?})",
            cfg.caps
        );
    }

    // Jacobi (stepwise and overlapped).
    let s = jacobi::JacobiSize { n: 14, t: 5 };
    let p = jacobi::program();
    let mut reference = ArrayStore::for_program(&p, &jacobi::params(&s)).unwrap();
    jacobi::init_store(&mut reference, 2);
    let base = reference.clone();
    jacobi::reference(&mut reference, &s);
    for kernel in [
        jacobi::stepwise_kernel(4, false),
        jacobi::stepwise_kernel(4, true),
        jacobi::overlapped_kernel(2, 5, false),
    ] {
        let mut st = base.clone();
        execute_blocked(&kernel, &jacobi::params(&s), &mut st, &gpu, true).unwrap();
        assert_eq!(
            st.data("A").unwrap(),
            reference.data("A").unwrap(),
            "jacobi mismatch for {}",
            kernel.program.name
        );
    }

    // Matmul.
    let p = matmul::program();
    let mut reference = ArrayStore::for_program(&p, &[9]).unwrap();
    matmul::init_store(&mut reference, 3);
    let base = reference.clone();
    matmul::reference(&mut reference, 9);
    let mut st = base.clone();
    execute_blocked(
        &matmul::blocked_kernel(3, 4, 5, true),
        &[9],
        &mut st,
        &gpu,
        true,
    )
    .unwrap();
    assert_eq!(st.data("C").unwrap(), reference.data("C").unwrap());

    // Jacobi 2-D.
    let p = jacobi2d::program();
    let prm = jacobi2d::params(2, 7);
    let mut reference = ArrayStore::for_program(&p, &prm).unwrap();
    jacobi2d::init_store(&mut reference, 4);
    let base = reference.clone();
    jacobi2d::reference(&mut reference, 2, 7);
    let mut st = base.clone();
    execute_blocked(
        &jacobi2d::stepwise_kernel(3, 3, true),
        &prm,
        &mut st,
        &gpu,
        true,
    )
    .unwrap();
    assert_eq!(st.data("A").unwrap(), reference.data("A").unwrap());
}

#[test]
fn plan_cache_is_bit_exact_for_every_kernel_and_machine_kind() {
    use polymem::kernels::conv2d;
    use polymem::machine::BlockedKernel;
    let run_both = |kernel: &BlockedKernel, params: &[i64], base: &ArrayStore, out: &str| {
        let mut results = Vec::new();
        for cfg0 in [
            MachineConfig::geforce_8800_gtx(),
            MachineConfig::cell_like(),
        ] {
            let mut on = cfg0.clone();
            on.plan_cache = true;
            let mut off = cfg0.clone();
            off.plan_cache = false;
            let mut st_on = base.clone();
            let s_on = execute_blocked(kernel, params, &mut st_on, &on, true).unwrap();
            let mut st_off = base.clone();
            let s_off = execute_blocked(kernel, params, &mut st_off, &off, true).unwrap();
            assert_eq!(
                st_on.data(out).unwrap(),
                st_off.data(out).unwrap(),
                "cached vs uncached contents differ for {} on {:?}",
                kernel.program.name,
                cfg0.caps
            );
            // Traffic and footprint must also be identical: the
            // instantiated symbolic plan is element-for-element the
            // per-instance plan.
            assert_eq!(s_on.moved_in, s_off.moved_in, "{}", kernel.program.name);
            assert_eq!(s_on.moved_out, s_off.moved_out, "{}", kernel.program.name);
            assert_eq!(
                s_on.max_smem_words, s_off.max_smem_words,
                "{}",
                kernel.program.name
            );
            assert_eq!(s_off.plan_cache_hits, 0);
            results.push(s_on);
        }
        results
    };

    // ME (6x7 frame, deliberately off-tile → boundary blocks).
    let size = me::MeSize {
        ni: 6,
        nj: 7,
        ws: 3,
    };
    let p = me::program();
    let mut base = ArrayStore::for_program(&p, &me::params(&size)).unwrap();
    me::init_store(&mut base, 11);
    let me_stats = run_both(
        &me::blocked_kernel(4, 4, true),
        &me::params(&size),
        &base,
        "Sad",
    );
    assert!(me_stats[0].plan_cache_hits > 0, "{me_stats:?}");

    // Jacobi stepwise (rounds over time steps).
    let s = jacobi::JacobiSize { n: 14, t: 4 };
    let p = jacobi::program();
    let mut base = ArrayStore::for_program(&p, &jacobi::params(&s)).unwrap();
    jacobi::init_store(&mut base, 12);
    let j_stats = run_both(
        &jacobi::stepwise_kernel(4, true),
        &jacobi::params(&s),
        &base,
        "A",
    );
    assert!(j_stats[0].plan_cache_hits > 0, "{j_stats:?}");

    // Matmul with sequential kT sub-tiles (§4.2 hoisting path).
    let p = matmul::program();
    let mut base = ArrayStore::for_program(&p, &[9]).unwrap();
    matmul::init_store(&mut base, 13);
    run_both(
        &matmul::blocked_kernel_hoisted(3, 3, 3, true),
        &[9],
        &base,
        "C",
    );

    // Jacobi 2-D.
    let p = jacobi2d::program();
    let prm = jacobi2d::params(2, 7);
    let mut base = ArrayStore::for_program(&p, &prm).unwrap();
    jacobi2d::init_store(&mut base, 14);
    run_both(&jacobi2d::stepwise_kernel(3, 3, true), &prm, &base, "A");

    // Conv2d.
    let p = conv2d::program();
    let prm = conv2d::params(&conv2d::ConvSize { n: 8, k: 3 });
    let mut base = ArrayStore::for_program(&p, &prm).unwrap();
    conv2d::init_store(&mut base, 15);
    run_both(&conv2d::blocked_kernel(4, 4, true), &prm, &base, "Out");
}

#[test]
fn liveness_optimisation_shrinks_copy_sets_on_tiles() {
    // For a Jacobi time-block, the default framework copies the whole
    // accessed region; §3.1.4 liveness narrows copy-out to data still
    // needed outside the block.
    let p = jacobi::program();
    let deps = compute_deps(&p, &[DepKind::Flow]).unwrap();
    // Block = time steps 3..=4 of a T=8 run (all space).
    let block_dom = {
        let mut d = p.stmts[0].domain.clone();
        let ncols = d.space().n_cols();
        let mut lo = vec![0i64; ncols];
        lo[0] = 1;
        lo[ncols - 1] = -3;
        d.add_constraint(polymem::poly::Constraint::ineq(lo)); // t >= 3
        let mut hi = vec![0i64; ncols];
        hi[0] = -1;
        hi[ncols - 1] = 4;
        d.add_constraint(polymem::poly::Constraint::ineq(hi)); // t <= 4
        d
    };
    let mut block = HashMap::new();
    block.insert(0usize, block_dom.clone());
    let plan = optimize_movement(&p, &deps, &block).unwrap();
    let a = p.array_index("A").unwrap();
    let params = [8i64, 10];
    // Copy-in: only row t=2 feeds the block (N+2 elements at most, the
    // reads touch columns 0..=N+1).
    let cin = plan.copy_in_count(a, &params, 100_000).unwrap();
    assert!(cin <= 12, "copy-in {cin}");
    assert!(plan.copy_in[&a].contains(&[2, 5], &params));
    assert!(!plan.copy_in[&a].contains(&[3, 5], &params));
    // Copy-out: only row t=4 is read after the block.
    let cout = plan.copy_out_count(a, &params, 100_000).unwrap();
    assert!(cout <= 12, "copy-out {cout}");
    assert!(plan.copy_out[&a].contains(&[4, 5], &params));
    assert!(!plan.copy_out[&a].contains(&[3, 5], &params));

    // Contrast: the unoptimised move-out of the same block covers both
    // written rows (t = 3 and 4) — the liveness pass halves it.
    let mut view = p.clone();
    view.stmts[0].domain = block_dom;
    let default_plan = analyze_program(
        &view,
        &SmemConfig {
            sample_params: params.to_vec(),
            ..SmemConfig::default()
        },
    )
    .unwrap();
    let default_out: u64 = default_plan
        .movement
        .iter()
        .map(|m| m.move_out_count(&params))
        .sum();
    assert!(
        cout < default_out,
        "liveness {cout} should beat default {default_out}"
    );
}

#[test]
fn scratchpad_overflow_is_detected_at_execution() {
    // A block footprint exceeding 16 KB must be rejected, matching the
    // paper's constraint that tiles are sized to the scratchpad.
    let k = me::blocked_kernel(80, 80, true); // (80+2)^2 * 2 words >> 16 KB
    let size = me::MeSize {
        ni: 80,
        nj: 80,
        ws: 3,
    };
    let p = me::program();
    let mut st = ArrayStore::for_program(&p, &me::params(&size)).unwrap();
    me::init_store(&mut st, 5);
    let cfg = MachineConfig::geforce_8800_gtx();
    let err = execute_blocked(&k, &me::params(&size), &mut st, &cfg, false);
    assert!(matches!(
        err,
        Err(polymem::machine::MachineError::ScratchpadOverflow { .. })
    ));
}

#[test]
fn per_tile_plans_match_whole_program_footprints() {
    // Restricting the ME program to one tile and planning it yields
    // the same footprint the analytic cost model predicts.
    use polymem::core::smem::dataspace::collect_refs;
    use polymem::core::tiling::cost::FootprintModel;
    let size = me::MeSize {
        ni: 32,
        nj: 32,
        ws: 4,
    };
    let p = me::program();
    let tiled = polymem::core::tiling::transform::tile_program(
        &p,
        &polymem::core::tiling::TileSpec::new(&[("i", 8), ("j", 8)], "T"),
    )
    .unwrap();
    let mut fixed = HashMap::new();
    fixed.insert("iT".to_string(), 1);
    fixed.insert("jT".to_string(), 2);
    let mut view = tiled.clone();
    view.stmts[0].domain = fix_dims(&tiled.stmts[0].domain, &fixed);
    let plan = analyze_program(
        &view,
        &SmemConfig {
            sample_params: me::params(&size),
            ..SmemConfig::default()
        },
    )
    .unwrap();
    let total = plan.total_buffer_words(&me::params(&size)).unwrap();

    // Analytic: widths (8+3)(8+3) for Cur/Ref, 8*8 for Sad.
    let mut expect = 0f64;
    for name in ["Cur", "Ref", "Sad"] {
        let ai = p.array_index(name).unwrap();
        let refs = collect_refs(&p, ai).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let fm = FootprintModel::from_refs(&members, &[0, 1], &[0, 1, 2, 3]);
        expect += fm.volume(&[8.0, 8.0, 4.0, 4.0]);
    }
    assert_eq!(total as f64, expect);
}
