//! Deeper semantic property tests: dependence directions against
//! brute force, liveness coverage, and convex-approximation soundness.

use polymem::core::deps::compute_deps;
use polymem::core::smem::liveness::optimize_movement;
use polymem::ir::expr::v;
use polymem::ir::{Expr, LinExpr, Program, ProgramBuilder};
use polymem::poly::count::enumerate_points;
use polymem::poly::dep::{DepKind, DirSign};
use polymem::poly::{Constraint, PolyUnion, Polyhedron, Space};
use proptest::prelude::*;
use std::collections::HashMap;
use std::collections::HashSet;

/// for i in [1, N]: A[i] = A[i + d1] + A[i + d2]
fn shift_program(d1: i64, d2: i64) -> Program {
    let mut b = ProgramBuilder::new("shift", ["N"]);
    b.array("A", &[v("N") + 8]);
    b.stmt("S")
        .loops(&[("i", LinExpr::c(1), v("N"))])
        .write("A", &[v("i") + 4])
        .read("A", &[v("i") + 4 + d1])
        .read("A", &[v("i") + 4 + d2])
        .body(Expr::add(Expr::Read(0), Expr::Read(1)))
        .done();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The polyhedral direction sign of every dependence agrees with a
    /// brute-force scan over instance pairs.
    #[test]
    fn direction_signs_match_brute_force(d1 in -3i64..=3, d2 in -3i64..=3) {
        let p = shift_program(d1, d2);
        let n = 9i64;
        let deps = compute_deps(
            &p,
            &[DepKind::Flow, DepKind::Anti, DepKind::Output],
        ).unwrap();
        for pd in &deps {
            let poly = pd.dep.poly.substitute_params(&[n]).unwrap();
            let mut signs = HashSet::new();
            enumerate_points(&poly, 100_000, &mut |pt| {
                let delta = pt[1] - pt[0];
                signs.insert(delta.signum());
            }).unwrap();
            let expected = match (signs.contains(&-1), signs.contains(&0), signs.contains(&1)) {
                (false, false, false) => DirSign::Empty,
                (true, false, false) => DirSign::Neg,
                (false, true, false) => DirSign::Zero,
                (false, false, true) => DirSign::Pos,
                _ => DirSign::Star,
            };
            // The polyhedral test is existential over ALL parameter
            // values, so it may see strictly more sign variety than
            // the single instance n = 9; it must never see less.
            let got = pd.dep.direction(0).unwrap();
            let covers = |g: DirSign, e: DirSign| {
                g == e
                    || g == DirSign::Star
                    || e == DirSign::Empty
            };
            prop_assert!(
                covers(got, expected),
                "dep {:?}: got {got:?}, brute force {expected:?}",
                pd.dep.kind
            );
        }
    }

    /// §3.1.4 copy-in is *sound*: every element a block reads whose
    /// producer lies outside the block appears in the copy-in set.
    #[test]
    fn liveness_copy_in_covers_all_live_in(lo in 2i64..5, width in 0i64..4) {
        let p = shift_program(-1, 0); // A[i+4] = A[i+3] + A[i+4]
        let n = 10i64;
        let deps = compute_deps(&p, &[DepKind::Flow]).unwrap();
        let hi = lo + width;
        let block = Polyhedron::new(
            Space::new(["i"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, -lo]),
                Constraint::ineq(vec![-1, 0, hi]),
            ],
        );
        let mut blocks = HashMap::new();
        blocks.insert(0usize, block.clone());
        let plan = optimize_movement(&p, &deps, &blocks).unwrap();
        let a = p.array_index("A").unwrap();

        // Brute force: writes happen at iterations 1..=n (element i+4).
        // For each read in the block, find its producing write (last
        // write before it); if the producer iteration is outside the
        // block, the element is live-in.
        for i in lo..=hi.min(n) {
            for elem in [i + 3, i + 4] {
                // Producer: write to `elem` at iteration elem - 4,
                // valid if within [1, n] and textually before (reads
                // precede the write of the same instance).
                let prod = elem - 4;
                let produced_before = (1..=n).contains(&prod)
                    && (prod < i); // same-instance read precedes write
                let produced_inside = produced_before && prod >= lo && prod <= hi;
                if produced_before && !produced_inside {
                    prop_assert!(
                        plan.copy_in
                            .get(&a)
                            .map(|u| u.contains(&[elem], &[n]))
                            .unwrap_or(false),
                        "element {elem} read at i={i} produced outside at {prod} must be copied in (block [{lo}, {hi}])"
                    );
                }
            }
        }
    }

    /// The template convex approximation always encloses the union.
    #[test]
    fn convex_approx_is_sound(
        boxes in prop::collection::vec((-6i64..6, 0i64..5, -6i64..6, 0i64..5), 1..4)
    ) {
        let members: Vec<Polyhedron> = boxes
            .iter()
            .map(|&(x, w, y, h)| {
                Polyhedron::new(
                    Space::anon(2, 0),
                    vec![
                        Constraint::ineq(vec![1, 0, -x]),
                        Constraint::ineq(vec![-1, 0, x + w]),
                        Constraint::ineq(vec![0, 1, -y]),
                        Constraint::ineq(vec![0, -1, y + h]),
                    ],
                )
            })
            .collect();
        let u = PolyUnion::from_members(members.clone()).unwrap();
        let hull = u.convex_approx().unwrap().unwrap();
        for m in &members {
            enumerate_points(m, 10_000, &mut |pt| {
                assert!(hull.contains(pt, &[]), "{pt:?} escaped the hull");
            }).unwrap();
        }
        // The hull is convex: midpoints of contained points stay in
        // (integer midpoints only).
        let mut pts = Vec::new();
        enumerate_points(&hull.clone(), 20_000, &mut |p| pts.push(p.to_vec())).unwrap();
        if pts.len() >= 2 {
            let a = &pts[0];
            let b = &pts[pts.len() - 1];
            if (a[0] + b[0]) % 2 == 0 && (a[1] + b[1]) % 2 == 0 {
                let mid = [(a[0] + b[0]) / 2, (a[1] + b[1]) / 2];
                prop_assert!(hull.contains(&mid, &[]));
            }
        }
    }
}
