//! Property tests for the autotuner's analytic cost estimator and
//! pruning behaviour.
//!
//! The gates mirror the claims the tuner's design rests on: the
//! estimator's predicted ranking is good enough that the top-K
//! frontier contains the true simulated optimum, and its traffic term
//! is monotone — a mapping with strictly less reuse never gets charged
//! fewer global bytes.

use polymem::core::smem::tune::{estimate, CostEstimate, MappingDesc};
use polymem::ir::ArrayStore;
use polymem::kernels::tunespace;
use polymem::machine::{
    config_for, cost_constants, structure_of, tune, warm_plan, MachineConfig, TuneOptions,
};

/// Price one mapping of a built-in kernel with the analytic estimator
/// (no simulation).
fn price(name: &str, desc: &MappingDesc, base: &MachineConfig, size: i64) -> CostEstimate {
    let kernel = tunespace::build(name, desc).expect("desc rebuilds");
    let (_, params, _) = tunespace::workload(name, size).expect("workload");
    let cfg = config_for(desc, base);
    let st = structure_of(&kernel, &params, &cfg).expect("structure");
    let sp = if kernel.use_scratchpad {
        warm_plan(&kernel, &params, &cfg, None, None)
            .expect("plan")
            .map(|(sp, _)| sp)
    } else {
        None
    };
    estimate(
        &kernel.program,
        sp.as_deref(),
        &params,
        &st,
        &cost_constants(&cfg),
    )
    .expect("estimate")
}

fn square_desc(
    ti: i64,
    tj: i64,
    seq_last: bool,
    residency: bool,
    base: &MachineConfig,
) -> MappingDesc {
    let (block_dims, seq_dims) = if seq_last {
        (vec!["iT".into()], vec!["jT".into()])
    } else {
        (vec!["iT".into(), "jT".into()], vec![])
    };
    MappingDesc {
        scheme: "tile".into(),
        tiles: vec![("i".into(), ti), ("j".into(), tj)],
        round_dims: vec![],
        block_dims,
        seq_dims,
        thread_dims: vec!["i".into()],
        use_scratchpad: true,
        double_buffer: false,
        hierarchy: false,
        residency,
        vector_width: base.vector_width,
    }
}

/// Shrinking the tile shrinks the window reuse each staged tile
/// amortizes (the halo is re-loaded per tile), so the estimator must
/// never predict *fewer* global bytes for a smaller tile.
#[test]
fn estimator_traffic_is_monotone_in_tile_reuse() {
    let base = MachineConfig::geforce_8800_gtx();
    for name in ["conv2d", "me"] {
        let mut prev: Option<(i64, u64)> = None;
        for t in [2i64, 4, 8] {
            let e = price(name, &square_desc(t, t, false, true, &base), &base, 16);
            if let Some((pt, pb)) = prev {
                assert!(
                    pb >= e.global_bytes,
                    "{name}: tile {pt} predicted {pb} B < tile {t}'s {} B — \
                     smaller tiles must never be charged less traffic",
                    e.global_bytes
                );
            }
            prev = Some((t, e.global_bytes));
        }
    }
}

/// Disabling residency re-stages each group's full window at every
/// sequential sub-tile instead of transferring the delta: strictly
/// less reuse, so never fewer predicted global bytes — and with a
/// genuine overlap, strictly more.
#[test]
fn estimator_charges_no_residency_at_least_as_much() {
    let base = MachineConfig::geforce_8800_gtx();
    for name in ["conv2d", "me"] {
        let with = price(name, &square_desc(4, 4, true, true, &base), &base, 16);
        let without = price(name, &square_desc(4, 4, true, false, &base), &base, 16);
        assert!(
            without.global_bytes >= with.global_bytes,
            "{name}: no-residency predicted {} B < residency's {} B",
            without.global_bytes,
            with.global_bytes
        );
    }
}

/// An unstaged mapping (every access to global memory) must never be
/// charged fewer global accesses than the staged one.
#[test]
fn estimator_charges_unstaged_at_least_as_many_global_accesses() {
    let base = MachineConfig::geforce_8800_gtx();
    let staged = square_desc(4, 4, false, true, &base);
    let unstaged = MappingDesc {
        use_scratchpad: false,
        ..staged.clone()
    };
    for name in ["conv2d", "me", "jacobi2d"] {
        let s = price(name, &staged, &base, 16);
        let u = price(name, &unstaged, &base, 16);
        assert!(
            u.global_accesses >= s.global_accesses,
            "{name}: unstaged {} global accesses < staged {}",
            u.global_accesses,
            s.global_accesses
        );
        assert!(u.predicted_cycles >= s.predicted_cycles, "{name}");
    }
}

/// On a small space simulated exhaustively, the pruned top-K frontier
/// must contain the true optimum (same winning cycles), while
/// simulating at least 5× fewer candidates.
#[test]
fn pruned_frontier_contains_the_simulated_optimum() {
    let base = MachineConfig::geforce_8800_gtx();
    for name in ["matmul", "me"] {
        let cands = tunespace::candidates(name, &base, true).expect("space");
        let (program, params, _) = tunespace::workload(name, 8).expect("workload");
        let init = |st: &mut ArrayStore| tunespace::init_store(name, st, 42);
        let exhaustive = tune(
            &program,
            &params,
            &init,
            &cands,
            &base,
            &TuneOptions {
                exhaustive: true,
                space_label: format!("props:{name}:ex"),
                ..TuneOptions::default()
            },
        )
        .expect("exhaustive tune");
        let pruned = tune(
            &program,
            &params,
            &init,
            &cands,
            &base,
            &TuneOptions {
                top_k: 2,
                space_label: format!("props:{name}:pruned"),
                ..TuneOptions::default()
            },
        )
        .expect("pruned tune");
        assert_eq!(
            pruned.winner_cycles, exhaustive.winner_cycles,
            "{name}: pruned winner ({} cycles) missed the true optimum ({} cycles)",
            pruned.winner_cycles, exhaustive.winner_cycles
        );
        assert!(
            exhaustive.simulated >= 5 * pruned.simulated,
            "{name}: pruning only cut {} -> {} simulations",
            exhaustive.simulated,
            pruned.simulated
        );
        // Every simulated candidate was bit-exact.
        for r in &pruned.rows {
            assert!(
                r.simulated.is_none() || r.exact,
                "{name}: simulated candidate {} diverged",
                r.desc.label()
            );
        }
    }
}
