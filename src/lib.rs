//! # polymem
//!
//! A polyhedral compiler framework for **automatic data movement and
//! computation mapping on multi-level parallel architectures with
//! explicitly managed memories** — a faithful, from-scratch Rust
//! reproduction of Baskaran et al., PPoPP 2008.
//!
//! This umbrella crate re-exports the workspace crates:
//!
//! * [`linalg`] — exact rational/integer linear algebra,
//! * [`poly`] — polyhedral sets: Fourier–Motzkin projection, affine
//!   images, dependence polyhedra,
//! * [`ir`] — affine program IR (statements, domains, accesses),
//! * [`codegen`] — CLooG-style polytope scanning into loop ASTs,
//! * [`core`] — the paper's contribution: scratchpad data management
//!   (buffer allocation, access rewriting, movement code) and
//!   multi-level tiling with memory-constrained tile-size search,
//! * [`machine`] — a two-level GPU-like machine simulator with explicit
//!   scratchpad memories,
//! * [`kernels`] — kernel specifications used in the paper's evaluation
//!   (MPEG-4 motion estimation, Jacobi stencils) plus extras,
//! * [`serve`] — the persistent compile service (`polymem serve`):
//!   warm plan cache + content-addressed artifact store behind a
//!   line-delimited JSON protocol.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use polymem_codegen as codegen;
pub use polymem_core as core;
pub use polymem_ir as ir;
pub use polymem_kernels as kernels;
pub use polymem_linalg as linalg;
pub use polymem_machine as machine;
pub use polymem_poly as poly;
pub use polymem_serve as serve;
