//! The polymem command-line driver.
//!
//! ```text
//! polymem figures [4|5|6|7|8]        reproduce the paper's figures
//! polymem analyze <kernel>           print the §3 scratchpad plan
//! polymem emit <kernel> [--cuda]     print transformed code
//! polymem search <me|jacobi>         run the §4.3 tile-size search
//! polymem run <kernel> [--size N]    functional run on the simulator
//! polymem trace <me|jacobi>          phase timeline of a launch
//! ```
//!
//! `<kernel>` is a built-in name (`me`, `jacobi`, `jacobi2d`,
//! `matmul`, `conv2d`) or a path to a `.poly` source file (see
//! `examples/kernels/*.poly` and `polymem_ir::parse`); for files,
//! `--params a,b,c` supplies the representative parameter values
//! (default: 64 per parameter).

use polymem::core::emit::{emit_staged, EmitOptions};
use polymem::core::smem::{
    analyze_program_timed, analyze_symbolic_hier, HierSpec, SmemConfig, SmemPlan,
};
use polymem::ir::{exec_program, init_random_store, random_program, ArrayStore, Program};
use polymem::kernels::{conv2d, jacobi, jacobi2d, matmul, me, tunespace};
use polymem::machine::{
    config_for, execute_blocked_profiled, generic_candidates, plan_artifact_key, tune,
    BlockedKernel, MachineConfig, PassProfiler, TuneOptions, TuneOutcome,
};
use polymem::serve::{ServeConfig, Server};
use std::collections::HashMap;
use std::process::ExitCode;

/// Store initializer threaded into `machine::tune` (boxed so built-in
/// and generated workloads share one code path).
type InitFn = Box<dyn Fn(&mut ArrayStore) + Sync>;

/// Exit code for usage errors: unknown command/kernel/flag, malformed
/// flag values.
const EXIT_USAGE: u8 = 2;
/// Exit code for compile errors: `.poly` parse failures, §3 analysis
/// failures.
const EXIT_COMPILE: u8 = 3;
/// Exit code for runtime errors: simulator failures and result
/// mismatches.
const EXIT_RUNTIME: u8 = 4;

/// Print a compile-class error and exit with [`EXIT_COMPILE`].
fn compile_error(msg: &str) -> ExitCode {
    eprintln!("compile error: {msg}");
    ExitCode::from(EXIT_COMPILE)
}

/// Print a runtime-class error and exit with [`EXIT_RUNTIME`].
fn runtime_error(msg: &str) -> ExitCode {
    eprintln!("runtime error: {msg}");
    ExitCode::from(EXIT_RUNTIME)
}

/// `--profile` on the command line, or `POLYMEM_PROFILE=1` in the
/// environment: print the pass-level wall-clock profile.
fn profile_requested() -> bool {
    std::env::args().any(|a| a == "--profile")
        || std::env::var("POLYMEM_PROFILE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// `--double-buffer` on the command line: map one tile dimension to a
/// sequential intra-block loop and overlap its DMA with compute.
fn double_buffer_requested() -> bool {
    std::env::args().any(|a| a == "--double-buffer")
}

/// `--no-compiled-exec` on the command line: run block compute phases
/// through the per-point interpreter instead of the compiled engine
/// (for timing comparisons and fallback debugging).
fn compiled_exec_disabled() -> bool {
    std::env::args().any(|a| a == "--no-compiled-exec")
}

/// `--no-hierarchy` on the command line: stage through the scratchpad
/// only, without the per-inner-process register-tile level.
fn hierarchy_disabled() -> bool {
    std::env::args().any(|a| a == "--no-hierarchy")
}

/// `--no-residency` on the command line: re-stage every group's full
/// window at each sequential sub-tile instead of retaining the
/// overlap in scratchpad and transferring only the delta.
fn residency_disabled() -> bool {
    std::env::args().any(|a| a == "--no-residency")
}

/// `--json` on the command line: machine-readable output.
fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Resolve the base machine: `--machine-file PATH` loads a TOML
/// description, `--machine NAME` looks up the registry (any registered
/// name or alias, not a hardcoded list), default `gpu`. Returns the
/// lowered config together with the description's name.
fn resolve_machine() -> Result<(MachineConfig, String), String> {
    use polymem::machine::desc;
    if let Some(path) = flag_value("--machine-file") {
        if flag_value("--machine").is_some() {
            return Err("--machine and --machine-file are mutually exclusive".into());
        }
        let d = desc::MachineDesc::from_file(&path)?;
        return Ok((d.config(), d.name));
    }
    let name = flag_value("--machine").unwrap_or_else(|| "gpu".into());
    match desc::lookup(&name) {
        Some(d) => Ok((d.config(), d.name)),
        None => Err(format!(
            "unknown machine `{name}` (registered: {})",
            desc::NAMES.join(", ")
        )),
    }
}

/// The machine configuration every simulating subcommand shares,
/// assembled from the resolved machine description plus the execution
/// flags — `analyze` and `run` must describe/execute the *same*
/// launch.
fn machine_config() -> Result<MachineConfig, String> {
    let (mut cfg, _) = resolve_machine()?;
    cfg.double_buffer = double_buffer_requested();
    cfg.compiled_exec = !compiled_exec_disabled();
    cfg.hierarchy = !hierarchy_disabled();
    cfg.residency = cfg.residency && !residency_disabled();
    cfg.artifact_dir = flag_value("--artifact-dir");
    Ok(cfg)
}

/// The value following a `--flag`, if present.
fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let p = args.iter().position(|a| a == flag)?;
    args.get(p + 1).cloned()
}

/// Flags each subcommand accepts. Anything else starting with `--`
/// (typo'd or misplaced) is an error, not a silent no-op.
fn allowed_flags(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "analyze" => &[
            "--json",
            "--profile",
            "--params",
            "--machine",
            "--machine-file",
            "--double-buffer",
            "--no-compiled-exec",
            "--no-hierarchy",
            "--no-residency",
            "--artifact-dir",
        ],
        "emit" => &["--cuda", "--params"],
        "run" => &[
            "--size",
            "--profile",
            "--machine",
            "--machine-file",
            "--double-buffer",
            "--no-compiled-exec",
            "--no-hierarchy",
            "--no-residency",
            "--vector-width",
            "--artifact-dir",
            "--tuned",
        ],
        "tune" => &[
            "--size",
            "--params",
            "--machine",
            "--machine-file",
            "--top",
            "--reps",
            "--exhaustive",
            "--smoke",
            "--json",
            "--force",
            "--random",
            "--seed",
            "--artifact-dir",
        ],
        "key" => &[
            "--size",
            "--machine",
            "--machine-file",
            "--double-buffer",
            "--no-compiled-exec",
            "--no-hierarchy",
            "--no-residency",
            "--vector-width",
            "--artifact-dir",
        ],
        "serve" => &[
            "--addr",
            "--threads",
            "--lru",
            "--launch-slots",
            "--artifact-dir",
        ],
        _ => &[],
    }
}

/// Reject unknown `--` flags up front (with the usage hint), instead
/// of `args().any(..)` silently ignoring a typo like `--no-heirarchy`
/// and running with the feature still on.
fn validate_flags(cmd: &str, args: &[String]) -> Result<(), String> {
    const VALUED: &[&str] = &[
        "--size",
        "--params",
        "--vector-width",
        "--artifact-dir",
        "--addr",
        "--threads",
        "--lru",
        "--launch-slots",
        "--machine",
        "--machine-file",
        "--top",
        "--reps",
        "--random",
        "--seed",
    ];
    let allowed = allowed_flags(cmd);
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if !allowed.contains(&a) {
                return Err(format!("unknown flag `{a}` for `{cmd}`"));
            }
            if VALUED.contains(&a) {
                i += 1;
                if i >= args.len() {
                    return Err(format!("flag `{a}` needs a value"));
                }
            }
        }
        i += 1;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(cmd) = args.first() {
        if let Err(msg) = validate_flags(cmd, &args[1..]) {
            return usage(&msg);
        }
    }
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("figures") => figures(it.next()),
        Some("analyze") => with_kernel(it.next(), analyze),
        Some("emit") => {
            let k = it.next();
            let cuda = args.iter().any(|a| a == "--cuda");
            with_kernel(k, |name| emit(name, cuda))
        }
        Some("search") => match it.next() {
            Some("me") => {
                let gpu = MachineConfig::geforce_8800_gtx();
                let size = me::MeSize::square(1 << 22, 16);
                let out = me::search_tiles(&size, &gpu, 256);
                println!(
                    "ME tile search (4M positions): (ti, tj, tk, tl) = {:?}, cost {:.0}",
                    out.sizes, out.cost
                );
                ExitCode::SUCCESS
            }
            Some("jacobi") => {
                let gpu = MachineConfig::geforce_8800_gtx();
                let s = jacobi::JacobiSize {
                    n: 512 * 1024,
                    t: 4096,
                };
                let (tt, si, ms) = jacobi::search_tiles(&s, 128, 64, 512, &gpu);
                println!(
                    "Jacobi tile search (N = 512k, M_up = 512 words): (time, space) = ({tt}, {si}), {ms:.1} ms"
                );
                ExitCode::SUCCESS
            }
            other => usage(&format!("unknown search target {other:?}")),
        },
        Some("trace") => match it.next() {
            Some("me") => {
                let gpu = MachineConfig::geforce_8800_gtx();
                let s = me::MeSize::square(16 << 20, 16);
                let p = me::profile(&s, (32, 16), 32, 256, true, &gpu);
                let tl = polymem::machine::Timeline::from_profile(&p, &gpu)
                    .expect("profile fits the machine");
                println!("ME, 16M positions, tiles (32,16,16,16):");
                print!("{}", tl.render(64));
                ExitCode::SUCCESS
            }
            Some("jacobi") => {
                let gpu = MachineConfig::geforce_8800_gtx();
                let s = jacobi::JacobiSize {
                    n: 512 * 1024,
                    t: 4096,
                };
                let p = jacobi::profile_tiled(&s, 32, 256, 128, 64, true, &gpu);
                let tl = polymem::machine::Timeline::from_profile(&p, &gpu)
                    .expect("profile fits the machine");
                println!("Jacobi, N = 512k, tiles (32, 256):");
                print!("{}", tl.render(64));
                ExitCode::SUCCESS
            }
            other => usage(&format!("unknown trace target {other:?}")),
        },
        Some("run") => {
            let k = it.next().map(str::to_string);
            let size = cli_size(&args);
            with_kernel(k.as_deref(), |name| run(name, size))
        }
        Some("key") => {
            let k = it.next().map(str::to_string);
            let size = cli_size(&args);
            with_kernel(k.as_deref(), |name| key(name, size))
        }
        Some("tune") => tune_cmd(&args[1..]),
        Some("serve") => serve(&args[1..]),
        _ => usage(""),
    }
}

/// `--size N` from the command line (default 16).
fn cli_size(args: &[String]) -> i64 {
    args.iter()
        .position(|a| a == "--size")
        .and_then(|p| args.get(p + 1))
        .and_then(|s| s.parse::<i64>().ok())
        .unwrap_or(16)
}

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage: polymem <command>\n\
         \n\
         commands:\n\
         \x20 figures [4|5|6|7|8]      reproduce the paper's evaluation figures\n\
         \x20 analyze <kernel>         print the scratchpad data-management plan\n\
         \x20                          (--json: machine-readable two-level dump)\n\
         \x20 emit <kernel> [--cuda]   print the transformed (staged) code\n\
         \x20 search <me|jacobi>       run the paper's tile-size search\n\
         \x20 run <kernel> [--size N]  functional run on the simulated machine\n\
         \x20 trace <me|jacobi>        phase timeline of a launch\n\
         \x20 key <kernel> [--size N]  print the launch's plan-artifact content address\n\
         \x20 tune <kernel|.poly>      cost-model-pruned mapping search\n\
         \x20      [--size N] [--machine NAME] [--top K] [--reps N]\n\
         \x20      [--exhaustive] [--smoke] [--json] [--force]\n\
         \x20      [--random N] [--seed S] [--artifact-dir DIR]\n\
         \x20 serve [--addr A] [--threads N] [--lru N] [--launch-slots N]\n\
         \x20       [--artifact-dir DIR]\n\
         \x20                          start the persistent compile service\n\
         \n\
         kernels: me, jacobi, jacobi2d, matmul, conv2d\n\
         machines: gpu, cell, host, pim, spatial (any registered name)\n\
         \n\
         `analyze`/`run`/`key`/`tune` target a machine with\n\
         --machine NAME (registry lookup) or --machine-file PATH (a\n\
         declarative TOML machine description; see DESIGN.md for the\n\
         schema). Unknown machine names are a usage error.\n\
         \n\
         `analyze` and `run` accept --profile (or POLYMEM_PROFILE=1) to\n\
         print a pass-level wall-clock profile; `run` also reports plan\n\
         cache hit/miss counters and which engine executed each block,\n\
         and accepts --double-buffer to map one tile dimension\n\
         sequentially and overlap its DMA with compute (DMA statistics\n\
         and the channel timeline appear under --profile).\n\
         `run` uses the compiled block execution engine by default —\n\
         including on register-tile (hierarchy) plans; --no-compiled-exec\n\
         selects the per-point interpreter instead, --vector-width N\n\
         sets the compiled engine's batched lane count (1 = scalar).\n\
         `run` stages per-inner-process register tiles when the mapping\n\
         distributes thread dims; --no-hierarchy keeps all staging in\n\
         the scratchpad. Across sequential sub-tiles `run` keeps each\n\
         group's overlapping window resident in scratchpad and\n\
         transfers only the delta; --no-residency re-stages the full\n\
         window every sub-tile. `analyze --json` honors the same\n\
         execution flags and describes the launch they would run.\n\
         `run`/`analyze`/`serve` accept --artifact-dir DIR to persist\n\
         compiled plans in a content-addressed store (and reuse them\n\
         across processes); `key` prints the store address a launch\n\
         would use. Unknown --flags are rejected.\n\
         `tune` scores every candidate mapping with the analytic cost\n\
         model, simulates only the top-K frontier (plus the pinned\n\
         preset) in parallel, and persists the winner under a\n\
         tune-keyed artifact (--artifact-dir) that `run --tuned` and\n\
         `serve` reload with zero search cost; --exhaustive disables\n\
         pruning, --json dumps the ranked predicted-vs-simulated\n\
         table, --random N tunes N generated affine programs\n\
         (POLYMEM_EXEC_CHECK=1 cross-checks every simulated block).\n\
         \n\
         exit codes: 0 ok, 2 usage error, 3 compile error, 4 runtime error."
    );
    ExitCode::from(EXIT_USAGE)
}

fn figures(which: Option<&str>) -> ExitCode {
    let all = [
        polymem_bench::figure4 as fn() -> polymem_bench::Figure,
        polymem_bench::figure5,
        polymem_bench::figure6,
        polymem_bench::figure7,
        polymem_bench::figure8,
    ];
    match which.and_then(|w| w.parse::<usize>().ok()) {
        Some(n) if (4..=8).contains(&n) => print!("{}", all[n - 4]().to_table()),
        None => {
            for f in all {
                println!("{}", f().to_table());
            }
        }
        Some(n) => return usage(&format!("no figure {n} (the paper has 4..8)")),
    }
    ExitCode::SUCCESS
}

/// Why a kernel argument failed to resolve — drives the exit-code
/// class (`Unknown`/`Usage` → 2, `Compile` → 3).
#[derive(Debug)]
enum KernelError {
    /// Not a built-in name and not a `.poly` path.
    Unknown,
    /// The `.poly` source failed to read or parse.
    Compile(String),
    /// The kernel exists but the flags around it are wrong.
    Usage(String),
}

/// A kernel instance small enough for interactive analysis/emission:
/// a built-in name or a `.poly` file path.
fn kernel_program(name: &str) -> Result<(Program, Vec<i64>), KernelError> {
    Ok(match name {
        "me" => (me::program(), vec![64, 64, 16]),
        "jacobi" => (jacobi::program(), vec![16, 256]),
        "jacobi2d" => (jacobi2d::program(), vec![4, 32]),
        "matmul" => (matmul::program(), vec![64]),
        "conv2d" => (conv2d::program(), vec![64, 5]),
        path if path.ends_with(".poly") => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| KernelError::Compile(format!("cannot read `{path}`: {e}")))?;
            let program = polymem::ir::parse_program(&src)
                .map_err(|e| KernelError::Compile(e.to_string()))?;
            let params = cli_params().unwrap_or_else(|| vec![64; program.params.len()]);
            if params.len() != program.params.len() {
                return Err(KernelError::Usage(format!(
                    "--params needs {} values for {:?}",
                    program.params.len(),
                    program.params
                )));
            }
            (program, params)
        }
        _ => return Err(KernelError::Unknown),
    })
}

/// `--params a,b,c` from the command line, if present.
fn cli_params() -> Option<Vec<i64>> {
    let args: Vec<String> = std::env::args().collect();
    let p = args.iter().position(|a| a == "--params")?;
    let list = args.get(p + 1)?;
    list.split(',')
        .map(|x| x.trim().parse::<i64>().ok())
        .collect()
}

fn with_kernel(name: Option<&str>, f: impl Fn(&str) -> ExitCode) -> ExitCode {
    match name {
        Some(n) => match kernel_program(n) {
            Ok(_) => f(n),
            Err(KernelError::Unknown) => usage(&format!("unknown kernel `{n}`")),
            Err(KernelError::Usage(msg)) => usage(&msg),
            Err(KernelError::Compile(msg)) => compile_error(&msg),
        },
        None => usage("missing kernel name"),
    }
}

fn plan_of_timed(
    program: &Program,
    params: &[i64],
) -> Result<(polymem::core::SmemPlan, polymem::core::smem::PassTimes), String> {
    analyze_program_timed(
        program,
        &SmemConfig {
            sample_params: params.to_vec(),
            ..SmemConfig::default()
        },
    )
    .map_err(|e| e.to_string())
}

/// The canonical blocked mapping of each built-in kernel — one table,
/// shared by `run` (which executes it) and `analyze --json` (which
/// describes it), so the two subcommands can never drift apart. `db`
/// selects the sequential-sub-tile variant that double buffering
/// overlaps.
fn kernel_mapping(name: &str, db: bool) -> Option<BlockedKernel> {
    Some(match name {
        "me" => {
            if db {
                me::blocked_seq_kernel(4, 4, true)
            } else {
                me::blocked_kernel(4, 4, true)
            }
        }
        "jacobi" => jacobi::overlapped_kernel(2, 8, false),
        "jacobi2d" => {
            if db {
                jacobi2d::stepwise_seq_kernel(4, 4, true)
            } else {
                jacobi2d::stepwise_kernel(4, 4, true)
            }
        }
        "matmul" => {
            if db {
                matmul::blocked_kernel_hoisted(4, 4, 8, true)
            } else {
                matmul::blocked_kernel(4, 4, 8, true)
            }
        }
        "conv2d" => {
            if db {
                conv2d::blocked_seq_kernel(4, 4, true)
            } else {
                conv2d::blocked_kernel(4, 4, true)
            }
        }
        _ => return None,
    })
}

/// One memory level of the `analyze --json` dump: buffers with their
/// concrete shapes at the representative block, and per-buffer move
/// volumes. `ext` is the plan's full parameter vector (program params
/// plus representative fixed/thread values).
fn level_json(label: &str, plan: &SmemPlan, ext: &[i64]) -> String {
    let or_null = |v: Option<String>| v.unwrap_or_else(|| "null".into());
    let mut out = format!("    {{\n      \"level\": \"{label}\",\n");
    out.push_str(&format!(
        "      \"total_words\": {},\n",
        or_null(plan.total_buffer_words(ext).ok().map(|w| w.to_string()))
    ));
    out.push_str("      \"buffers\": [\n");
    for (i, b) in plan.buffers.iter().enumerate() {
        out.push_str(&format!(
            "        {{ \"id\": {i}, \"array\": \"{}\", \"extents\": {}, \"offsets\": {}, \"size_words\": {} }}{}\n",
            b.array_name,
            or_null(b.extents(ext).ok().map(|e| format!("{e:?}"))),
            or_null(b.offsets(ext).ok().map(|o| format!("{o:?}"))),
            or_null(b.size_words(ext).ok().map(|w| w.to_string())),
            if i + 1 == plan.buffers.len() { "" } else { "," }
        ));
    }
    out.push_str("      ],\n      \"movement\": [\n");
    for (i, mc) in plan.movement.iter().enumerate() {
        out.push_str(&format!(
            "        {{ \"buffer\": {}, \"array\": \"{}\", \"move_in\": {}, \"move_out\": {} }}{}\n",
            mc.buffer,
            plan.buffers[mc.buffer].array_name,
            mc.move_in_count(ext),
            mc.move_out_count(ext),
            if i + 1 == plan.movement.len() { "" } else { "," }
        ));
    }
    out.push_str("      ],\n      \"decisions\": [\n");
    for (i, (array, d)) in plan.decisions.iter().enumerate() {
        out.push_str(&format!(
            "        {{ \"array\": \"{array}\", \"beneficial\": {}, \"rank_deficient\": {}, \"overlap_fraction\": {} }}{}\n",
            d.beneficial,
            d.order_of_magnitude,
            or_null(d.overlap_fraction.map(|f| format!("{f:.4}"))),
            if i + 1 == plan.decisions.len() { "" } else { "," }
        ));
    }
    out.push_str("      ]\n    }");
    out
}

/// `analyze <kernel> --json`: the machine-readable two-level plan.
/// Built-in kernels dump the per-block symbolic plan of their
/// canonical blocked mapping — the scratchpad level, plus the register
/// level when the mapping's thread dims yield one. `.poly` sources
/// have no blocked mapping, so they dump the whole-program scratchpad
/// plan only.
///
/// Honors the same execution flags as `run` (`--double-buffer`,
/// `--no-hierarchy`, `--no-compiled-exec`): the dump describes the
/// launch those flags would execute, not a hardcoded default.
fn analyze_json(name: &str) -> ExitCode {
    let (program, params) = kernel_program(name).expect("checked");
    let gpu = match machine_config() {
        Ok(c) => c,
        Err(m) => return usage(&m),
    };
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"kernel\": \"{}\",\n  \"params\": {params:?},\n",
        program.name
    ));
    out.push_str(&format!(
        "  \"config\": {{ \"double_buffer\": {}, \"compiled_exec\": {}, \"hierarchy\": {}, \"residency\": {}, \"vector_width\": {} }},\n",
        gpu.double_buffer, gpu.compiled_exec, gpu.hierarchy, gpu.residency, gpu.vector_width
    ));
    match kernel_mapping(name, gpu.double_buffer) {
        Some(kernel) => {
            // The representative block and thread instance: every
            // round/block/seq tile dim and thread dim at 0 (all
            // built-in mappings start there).
            let fixed: Vec<(String, i64)> = kernel
                .round_dims
                .iter()
                .chain(&kernel.block_dims)
                .chain(&kernel.seq_dims)
                .map(|d| (d.clone(), 0))
                .collect();
            let spec = (gpu.hierarchy && !kernel.thread_dims.is_empty()).then(|| HierSpec {
                thread_dims: kernel.thread_dims.clone(),
                thread_reps: kernel.thread_dims.iter().map(|d| (d.clone(), 0)).collect(),
                regs_per_inner: gpu.regs_per_inner,
            });
            let config = SmemConfig {
                sample_params: params.clone(),
                ..SmemConfig::default()
            };
            let sp = analyze_symbolic_hier(&kernel.program, &fixed, &config, spec.as_ref())
                .expect("analysis succeeds on built-in kernels");
            let fixed_map: HashMap<String, i64> = fixed.iter().cloned().collect();
            let ext1 = sp
                .ext_params(&params, &fixed_map)
                .expect("fixed dims covered");
            out.push_str(&format!(
                "  \"mapping\": {{ \"round_dims\": {:?}, \"block_dims\": {:?}, \"seq_dims\": {:?}, \"thread_dims\": {:?} }},\n",
                kernel.round_dims, kernel.block_dims, kernel.seq_dims, kernel.thread_dims
            ));
            out.push_str("  \"levels\": [\n");
            out.push_str(&level_json("scratchpad", &sp.plan, &ext1));
            if let Some(h) = &sp.hier {
                let threads = vec![0i64; h.thread_dims.len()];
                let ext2 = h
                    .ext_params(&params, &fixed_map, &threads)
                    .expect("thread reps covered");
                out.push_str(",\n");
                let mut reg = level_json("register", &h.plan, &ext2);
                // Frames cache level-1 buffers; record which.
                reg = reg.replacen(
                    "\"level\": \"register\",",
                    &format!(
                        "\"level\": \"register\",\n      \"regs_per_inner\": {},\n      \"backing\": {:?},",
                        h.regs_per_inner, h.backing
                    ),
                    1,
                );
                out.push_str(&reg);
            }
            out.push_str("\n  ]\n");
        }
        None => {
            let (plan, _) = match plan_of_timed(&program, &params) {
                Ok(x) => x,
                Err(e) => return compile_error(&e),
            };
            out.push_str("  \"levels\": [\n");
            out.push_str(&level_json("scratchpad", &plan, &params));
            out.push_str("\n  ]\n");
        }
    }
    out.push_str("}\n");
    print!("{out}");
    ExitCode::SUCCESS
}

fn analyze(name: &str) -> ExitCode {
    if json_requested() {
        return analyze_json(name);
    }
    let (program, params) = kernel_program(name).expect("checked");
    println!("== {} ==\n{program}", program.name);
    let (plan, times) = match plan_of_timed(&program, &params) {
        Ok(x) => x,
        Err(e) => return compile_error(&e),
    };
    println!("== Algorithm 1 decisions ==");
    for (array, d) in &plan.decisions {
        println!(
            "  {array}: beneficial = {}, rank-deficient = {}, overlap = {:?}",
            d.beneficial, d.order_of_magnitude, d.overlap_fraction
        );
    }
    println!("\n== Buffers (at {params:?}) ==");
    for b in &plan.buffers {
        println!(
            "  {}  // offsets {:?}, {} words",
            b.render_decl(&program.params),
            b.offsets(&params).expect("bounded"),
            b.size_words(&params).expect("bounded"),
        );
    }
    println!("\n== Movement ==");
    for mc in &plan.movement {
        let b = &plan.buffers[mc.buffer];
        println!(
            "  L{}: move in {} elements, move out {}",
            b.array_name,
            mc.move_in_count(&params),
            mc.move_out_count(&params)
        );
    }
    if profile_requested() {
        println!("\n== Pass profile ==");
        let pr = PassProfiler::new();
        pr.absorb_pass_times(&times);
        print!("{}", pr.report().render());
    }
    ExitCode::SUCCESS
}

fn emit(name: &str, cuda: bool) -> ExitCode {
    let (program, params) = kernel_program(name).expect("checked");
    let plan = match plan_of_timed(&program, &params) {
        Ok((plan, _)) => plan,
        Err(e) => return compile_error(&e),
    };
    let opts = EmitOptions {
        cuda,
        block_dims: vec![],
        thread_dims: vec![],
    };
    print!("{}", emit_staged(&program, &plan, &opts));
    ExitCode::SUCCESS
}

/// The simulator launch each built-in kernel runs at `--size N`:
/// concrete parameter values plus the output array the functional
/// check compares. Shared by `run` (which executes) and `key` (which
/// must address the *same* launch).
fn run_params(name: &str, size: i64) -> Option<(Vec<i64>, &'static str)> {
    Some(match name {
        "me" => {
            let s = me::MeSize {
                ni: size,
                nj: size,
                ws: 4,
            };
            (me::params(&s), "Sad")
        }
        "jacobi" => {
            let s = jacobi::JacobiSize { n: size, t: 8 };
            (jacobi::params(&s), "A")
        }
        "jacobi2d" => (jacobi2d::params(3, size), "A"),
        "matmul" => (vec![size], "C"),
        "conv2d" => {
            let s = conv2d::ConvSize { n: size, k: 3 };
            (conv2d::params(&s), "Out")
        }
        _ => return None,
    })
}

/// Fold `--vector-width N` into the config; `Some(exit)` on a
/// malformed value.
fn apply_vector_width(gpu: &mut MachineConfig) -> Option<ExitCode> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(p) = args.iter().position(|a| a == "--vector-width") {
        match args.get(p + 1).and_then(|s| s.parse::<u64>().ok()) {
            Some(w) if w >= 1 => gpu.vector_width = w,
            _ => return Some(usage("--vector-width needs a positive integer")),
        }
    }
    None
}

fn run(name: &str, size: i64) -> ExitCode {
    let mut gpu = match machine_config() {
        Ok(c) => c,
        Err(m) => return usage(&m),
    };
    if let Some(exit) = apply_vector_width(&mut gpu) {
        return exit;
    }
    // `--tuned`: swap in the autotuned winner (zero search cost when
    // the tune artifact is warm); fall back to the preset mapping with
    // a note when no tuned mapping resolves.
    let mut tuned_note = None;
    let kernel = if std::env::args().any(|a| a == "--tuned") {
        // The tune key hashes the base machine: use the same pristine
        // description `polymem tune <name>` does (run's execution
        // toggles are superseded by the winner's anyway), so a prior
        // `tune` with the same --artifact-dir is found, not
        // re-searched.
        let mut tune_base = match resolve_machine() {
            Ok((c, _)) => c,
            Err(m) => return usage(&m),
        };
        tune_base.artifact_dir = gpu.artifact_dir.clone();
        match tuned_mapping(name, size, &tune_base) {
            Ok((k, cfg, note)) => {
                gpu = cfg;
                tuned_note = Some(note);
                Some(k)
            }
            Err(msg) => {
                eprintln!("tune: {msg}; falling back to the preset mapping");
                kernel_mapping(name, gpu.double_buffer)
            }
        }
    } else {
        kernel_mapping(name, gpu.double_buffer)
    };
    let Some(kernel) = kernel else {
        return usage("unknown kernel");
    };
    let (params, check) = run_params(name, size).expect("kernel_mapping covered the names");
    let base_program = match name {
        "me" => me::program(),
        "jacobi" => jacobi::program(),
        "jacobi2d" => jacobi2d::program(),
        "matmul" => matmul::program(),
        "conv2d" => conv2d::program(),
        _ => unreachable!(),
    };
    let mut st = ArrayStore::for_program(&base_program, &params).expect("store");
    match name {
        "me" => me::init_store(&mut st, 42),
        "jacobi" => jacobi::init_store(&mut st, 42),
        "jacobi2d" => jacobi2d::init_store(&mut st, 42),
        "matmul" => matmul::init_store(&mut st, 42),
        "conv2d" => conv2d::init_store(&mut st, 42),
        _ => unreachable!(),
    }
    let mut reference = st.clone();
    exec_program(&base_program, &params, &mut reference).expect("reference run");
    let profiler = profile_requested().then(PassProfiler::new);
    let stats =
        match execute_blocked_profiled(&kernel, &params, &mut st, &gpu, true, profiler.as_ref()) {
            Ok(s) => s,
            Err(e) => return runtime_error(&format!("simulation failed: {e}")),
        };
    let ok = st.data(check).expect("array") == reference.data(check).expect("array");
    println!(
        "{name} (size {size}): {}",
        if ok {
            "result matches reference ✓"
        } else {
            "MISMATCH ✗"
        }
    );
    if let Some(note) = &tuned_note {
        println!("  {note}");
    }
    println!(
        "  blocks {}, rounds {}, instances {}",
        stats.blocks, stats.rounds, stats.instances
    );
    println!(
        "  global reads/writes {}/{}, smem reads/writes {}/{}",
        stats.global_reads, stats.global_writes, stats.smem_reads, stats.smem_writes
    );
    println!(
        "  moved in/out {}/{}, peak scratchpad {} words",
        stats.moved_in, stats.moved_out, stats.max_smem_words
    );
    println!(
        "  plan cache hits/misses {}/{}",
        stats.plan_cache_hits, stats.plan_cache_misses
    );
    if stats.residency_groups > 0 {
        println!(
            "  residency: {} group instances, {} elements retained, {} via delta transfers, {} flushed as deltas",
            stats.residency_groups, stats.retained_elems, stats.delta_elems,
            stats.flushed_delta_elems
        );
    }
    if stats.hier_groups > 0 {
        println!(
            "  register level: {} frame groups, {} smem loads saved, {} bytes through registers",
            stats.hier_groups, stats.smem_loads_saved, stats.reg_bytes_moved
        );
    }
    // Which engine actually executed, from the per-block tallies —
    // not inferred from the config, so silent fallbacks are visible.
    let engine = if stats.interpreted_blocks == 0 && stats.compiled_blocks > 0 {
        "compiled engine".to_string()
    } else if stats.compiled_blocks == 0 {
        "interpreted".to_string()
    } else {
        format!(
            "mixed: {} compiled / {} interpreted blocks",
            stats.compiled_blocks, stats.interpreted_blocks
        )
    };
    println!(
        "  compute phase {:.3} ms wall ({engine})",
        stats.compute_ns as f64 / 1e6
    );
    if stats.interpreted_blocks > 0 {
        let f = &stats.fallback;
        println!(
            "  interpreter fallbacks: {} engine-off, {} owned-plan, {} shape-uncompiled, {} runtime-decline",
            f.engine_off, f.owned_plan, f.shape_uncompiled, f.runtime_decline
        );
    }
    if stats.dma.descriptors > 0 {
        println!(
            "  dma: {} descriptors, {} bytes ({:.1} B/desc), overlap fraction {:.2}, prefetched/forced-sync groups {}/{}",
            stats.dma.descriptors,
            stats.dma.bytes,
            stats.dma.mean_descriptor_bytes(),
            stats.dma.overlap_fraction(),
            stats.overlap_groups,
            stats.sync_groups,
        );
    }
    if let Some(pr) = &profiler {
        print!("{}", pr.report().render());
        if stats.dma.total_busy_cycles() > 0 {
            println!("DMA channel timeline (hidden vs exposed):");
            print!(
                "{}",
                polymem::machine::Timeline::from_dma(&stats.dma, &gpu).render(64)
            );
            print!("{}", stats.dma.render());
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_RUNTIME)
    }
}

/// `key <kernel> [--size N]`: print the content address under which
/// this launch's plan artifact is (or would be) stored. The address
/// is a pure function of the program, the mapping-relevant machine
/// configuration, and the block-shape parametrization — stable across
/// processes, so two invocations must print the same 32 hex digits.
fn key(name: &str, size: i64) -> ExitCode {
    let mut gpu = match machine_config() {
        Ok(c) => c,
        Err(m) => return usage(&m),
    };
    if let Some(exit) = apply_vector_width(&mut gpu) {
        return exit;
    }
    let Some(kernel) = kernel_mapping(name, gpu.double_buffer) else {
        return usage("`key` needs a built-in kernel (me, jacobi, jacobi2d, matmul, conv2d)");
    };
    let (params, _) = run_params(name, size).expect("kernel_mapping covered the names");
    match plan_artifact_key(&kernel, &params, &gpu) {
        Ok(Some(k)) => {
            println!("{k}");
            ExitCode::SUCCESS
        }
        Ok(None) => {
            // No scratchpad plan (e.g. plan cache disabled): nothing
            // to address, but not an error.
            println!("none");
            ExitCode::SUCCESS
        }
        Err(e) => compile_error(&e.to_string()),
    }
}

/// `--machine NAME` / `--machine-file PATH` for `tune`: the base
/// machine the search prices and simulates against (default `gpu`).
/// Any registered description works — unknown names are a usage error.
fn tune_machine_config() -> Result<(MachineConfig, String), String> {
    let (mut cfg, name) = resolve_machine()?;
    cfg.artifact_dir = flag_value("--artifact-dir");
    Ok((cfg, name))
}

/// The search options `tune` and `run --tuned` must agree on: both
/// derive the artifact key from them, so a tuned run can only reuse a
/// search performed with the same shape.
fn tune_options(label: String) -> Result<TuneOptions, String> {
    let mut opts = TuneOptions {
        space_label: label,
        ..TuneOptions::default()
    };
    if let Some(v) = flag_value("--top") {
        opts.top_k = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("flag `--top` needs a positive integer")?;
    }
    if let Some(v) = flag_value("--reps") {
        opts.reps = v
            .parse::<u32>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("flag `--reps` needs a positive integer")?;
    }
    opts.exhaustive = std::env::args().any(|a| a == "--exhaustive");
    opts.force = std::env::args().any(|a| a == "--force");
    Ok(opts)
}

/// Render one [`TuneOutcome`] — human table or `--json` dump of the
/// ranked predicted-vs-simulated table.
fn print_tune_outcome(target: &str, machine: &str, out: &TuneOutcome, json: bool) {
    if json {
        let mut s = format!(
            "{{\n  \"kernel\": \"{target}\", \"machine\": \"{machine}\",\n  \
             \"key\": \"{}\", \"plan_source\": \"{}\",\n  \
             \"simulated\": {}, \"total\": {},\n  \
             \"winner\": {{ \"mapping\": \"{}\", \"predicted\": {}, \"cycles\": {} }},\n  \
             \"rows\": [\n",
            out.key,
            out.plan_source,
            out.simulated,
            out.total,
            out.winner.label(),
            out.winner_predicted,
            out.winner_cycles
        );
        for (i, r) in out.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"mapping\": \"{}\", \"predicted\": {}, \"simulated\": {}, \
                 \"exact\": {}, \"preset\": {}, \"note\": \"{}\" }}{}\n",
                r.desc.label(),
                r.predicted,
                r.simulated.map_or("null".into(), |c| c.to_string()),
                r.exact,
                r.preset,
                r.note,
                if i + 1 == out.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        print!("{s}");
        return;
    }
    println!(
        "tune {target} ({machine}): {} candidates, {} simulated, plan source: {}",
        out.total, out.simulated, out.plan_source
    );
    println!("  key {}", out.key);
    println!(
        "  winner: {} (predicted {}, simulated {})",
        out.winner.label(),
        out.winner_predicted,
        out.winner_cycles
    );
    println!(
        "  {:>4}  {:>12}  {:>12}  {:5}  mapping",
        "rank", "predicted", "simulated", "exact"
    );
    for (i, r) in out.rows.iter().enumerate() {
        println!(
            "  {:>4}  {:>12}  {:>12}  {:5}  {}{}{}",
            i + 1,
            if r.predicted == u64::MAX {
                "-".into()
            } else {
                r.predicted.to_string()
            },
            r.simulated.map_or("-".into(), |c| c.to_string()),
            if r.simulated.is_some() {
                if r.exact {
                    "yes"
                } else {
                    "NO"
                }
            } else {
                "-"
            },
            if r.preset { "*" } else { "" },
            r.desc.label(),
            if r.note.is_empty() {
                String::new()
            } else {
                format!("  [{}]", r.note)
            }
        );
    }
}

/// `tune <kernel|.poly>` / `tune --random N`: run the cost-model-pruned
/// mapping search and print (or persist) the ranked table.
fn tune_cmd(args: &[String]) -> ExitCode {
    let size = cli_size(args);
    let ((base, machine), json) = match tune_machine_config() {
        Ok(c) => (c, json_requested()),
        Err(m) => return usage(&m),
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let menu: &[i64] = if smoke { &[2, 4, 8] } else { &[2, 4, 8, 16] };

    if let Some(nv) = flag_value("--random") {
        let Some(n) = nv.parse::<u64>().ok().filter(|&n| n >= 1) else {
            return usage("flag `--random` needs a positive integer");
        };
        let seed0 = flag_value("--seed")
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(1);
        return tune_random(n, seed0, size, &base, &machine, menu, json);
    }

    let Some(target) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage("`tune` needs a kernel name, a .poly path, or --random N");
    };

    // Built-in kernels bring their own candidate table (with the CLI
    // preset pinned); .poly programs get the band-derived generic one.
    let (program, params, candidates, init): (Program, Vec<i64>, _, InitFn) =
        match tunespace::candidates(target, &base, smoke) {
            Some(cands) => {
                let (program, params, _) =
                    tunespace::workload(target, size).expect("space implies workload");
                let name = target.clone();
                (
                    program,
                    params,
                    cands,
                    Box::new(move |st: &mut ArrayStore| tunespace::init_store(&name, st, 42)),
                )
            }
            None => {
                let (program, params) = match kernel_program(target) {
                    Ok(x) => x,
                    Err(KernelError::Unknown) => {
                        return usage(&format!("unknown kernel `{target}`"))
                    }
                    Err(KernelError::Usage(m)) => return usage(&m),
                    Err(KernelError::Compile(m)) => return compile_error(&m),
                };
                let cands = match generic_candidates(&program, &params, &base, menu) {
                    Ok(c) => c,
                    Err(e) => return compile_error(&format!("candidate derivation failed: {e}")),
                };
                let p = program.clone();
                (
                    program,
                    params,
                    cands,
                    Box::new(move |st: &mut ArrayStore| init_random_store(&p, st, 42)),
                )
            }
        };
    let opts = match tune_options(format!("cli:{target}:size={size}")) {
        Ok(o) => o,
        Err(m) => return usage(&m),
    };
    match tune(&program, &params, init.as_ref(), &candidates, &base, &opts) {
        Ok(out) => {
            print_tune_outcome(target, &machine, &out, json);
            ExitCode::SUCCESS
        }
        Err(e) => runtime_error(&format!("tune failed: {e}")),
    }
}

/// `tune --random N [--seed S]`: fuzz the whole pipeline — generate N
/// random affine programs, derive generic candidate spaces, and tune
/// each one (set `POLYMEM_EXEC_CHECK=1` to cross-check every simulated
/// block against the interpreter).
fn tune_random(
    n: u64,
    seed0: u64,
    size: i64,
    base: &MachineConfig,
    machine: &str,
    menu: &[i64],
    json: bool,
) -> ExitCode {
    let mut failures = 0u64;
    for k in 0..n {
        let seed = seed0 + k;
        let program = random_program(seed);
        let params = vec![size];
        let candidates = match generic_candidates(&program, &params, base, menu) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("seed {seed}: candidate derivation failed: {e}");
                failures += 1;
                continue;
            }
        };
        let opts = match tune_options(format!("cli:random:{seed}:size={size}")) {
            Ok(o) => o,
            Err(m) => return usage(&m),
        };
        let p = program.clone();
        let init = move |st: &mut ArrayStore| init_random_store(&p, st, 42);
        match tune(&program, &params, &init, &candidates, base, &opts) {
            Ok(out) => {
                if json {
                    print_tune_outcome(&format!("random:{seed}"), machine, &out, true);
                } else {
                    println!(
                        "seed {seed}: {} stmts, {} candidates, {} simulated, winner {} ({} cycles)",
                        program.stmts.len(),
                        out.total,
                        out.simulated,
                        out.winner.label(),
                        out.winner_cycles
                    );
                }
            }
            Err(e) => {
                eprintln!("seed {seed}: tune failed: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        runtime_error(&format!("{failures} of {n} random programs failed"))
    }
}

/// Resolve the tuned mapping for `run --tuned`: consult (or, when the
/// store is cold, perform) the same search `polymem tune <name>` runs,
/// then rebuild the winning kernel and fold its toggles into the
/// config.
fn tuned_mapping(
    name: &str,
    size: i64,
    base: &MachineConfig,
) -> Result<(BlockedKernel, MachineConfig, String), String> {
    let cands = tunespace::candidates(name, base, false)
        .ok_or_else(|| format!("no tune space for `{name}`"))?;
    let (program, params, _) =
        tunespace::workload(name, size).ok_or_else(|| format!("no workload for `{name}`"))?;
    let opts = TuneOptions {
        space_label: format!("cli:{name}:size={size}"),
        ..TuneOptions::default()
    };
    let out = tune(
        &program,
        &params,
        &|st: &mut ArrayStore| tunespace::init_store(name, st, 42),
        &cands,
        base,
        &opts,
    )
    .map_err(|e| e.to_string())?;
    let kernel = tunespace::build(name, &out.winner)
        .ok_or_else(|| format!("winner `{}` does not rebuild", out.winner.label()))?;
    let cfg = config_for(&out.winner, base);
    Ok((
        kernel,
        cfg,
        format!(
            "tuned mapping ({}): {}",
            out.plan_source,
            out.winner.label()
        ),
    ))
}

/// `serve [--addr A] [--threads N] [--lru N] [--launch-slots N]
/// [--artifact-dir DIR]`: start the persistent compile service and
/// block until a protocol `shutdown` request.
fn serve(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig::default();
    let numeric = |flag: &str, default: usize| -> Result<usize, String> {
        match flag_value(flag) {
            None => Ok(default),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("flag `{flag}` needs a positive integer")),
            },
        }
    };
    if let Some(a) = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|p| args.get(p + 1))
    {
        cfg.addr = a.clone();
    }
    cfg.threads = match numeric("--threads", cfg.threads) {
        Ok(n) => n,
        Err(msg) => return usage(&msg),
    };
    cfg.lru_capacity = match numeric("--lru", cfg.lru_capacity) {
        Ok(n) => n,
        Err(msg) => return usage(&msg),
    };
    cfg.launch_slots = match numeric("--launch-slots", cfg.launch_slots) {
        Ok(n) => n,
        Err(msg) => return usage(&msg),
    };
    cfg.artifact_dir = flag_value("--artifact-dir");
    match Server::start(cfg) {
        Ok(handle) => {
            println!("polymem serve listening on {}", handle.addr());
            handle.join();
            ExitCode::SUCCESS
        }
        Err(e) => runtime_error(&format!("cannot start server: {e}")),
    }
}
