//! Checked linear combinations of constraint rows.
//!
//! Fourier–Motzkin elimination spends almost all of its time forming
//! `a·x + b·y` for pairs of constraint rows. This module provides that
//! combination as a single checked operation with a stack-allocated
//! fast path: rows at or below [`ROW_INLINE`] columns (every row the
//! kernel pipeline produces — a handful of dims plus parameters) are
//! accumulated in a fixed `i128` array and flushed into the caller's
//! reusable output buffer in one pass, avoiding per-element `Vec`
//! growth checks and intermediate allocations in the hot loop.

use crate::{LinalgError, Result};

/// Widest row served by the stack-allocated fast path. Wider rows fall
/// back to a heap scratch vector (same semantics, checked the same way).
pub const ROW_INLINE: usize = 16;

/// Compute `a·x + b·y` into `out` (cleared and refilled), erroring on
/// `i64` overflow of any resulting entry. `x` and `y` must have equal
/// lengths. `out`'s capacity is reused across calls — keep one scratch
/// buffer per elimination loop.
pub fn combine_rows_into(a: i64, x: &[i64], b: i64, y: &[i64], out: &mut Vec<i64>) -> Result<()> {
    if x.len() != y.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "combine_rows",
            left: (1, x.len()),
            right: (1, y.len()),
        });
    }
    out.clear();
    let (a, b) = (a as i128, b as i128);
    if x.len() <= ROW_INLINE {
        let mut buf = [0i64; ROW_INLINE];
        for (k, slot) in buf[..x.len()].iter_mut().enumerate() {
            let v = a * (x[k] as i128) + b * (y[k] as i128);
            *slot = i64::try_from(v).map_err(|_| LinalgError::Overflow)?;
        }
        out.extend_from_slice(&buf[..x.len()]);
    } else {
        out.reserve(x.len());
        for (xk, yk) in x.iter().zip(y) {
            let v = a * (*xk as i128) + b * (*yk as i128);
            out.push(i64::try_from(v).map_err(|_| LinalgError::Overflow)?);
        }
    }
    Ok(())
}

/// Allocating convenience wrapper over [`combine_rows_into`].
pub fn combine_rows(a: i64, x: &[i64], b: i64, y: &[i64]) -> Result<Vec<i64>> {
    let mut out = Vec::new();
    combine_rows_into(a, x, b, y, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combines_with_both_signs() {
        assert_eq!(
            combine_rows(2, &[1, -2, 0], -3, &[0, 1, 4]).unwrap(),
            vec![2, -7, -12]
        );
        assert_eq!(combine_rows(1, &[5], 1, &[-5]).unwrap(), vec![0]);
    }

    #[test]
    fn wide_rows_use_fallback_path() {
        let x: Vec<i64> = (0..ROW_INLINE as i64 + 4).collect();
        let y: Vec<i64> = x.iter().map(|v| v * 2).collect();
        let got = combine_rows(3, &x, -1, &y).unwrap();
        assert_eq!(got, x);
    }

    #[test]
    fn overflow_and_shape_errors() {
        assert_eq!(
            combine_rows(i64::MAX, &[2], 0, &[0]).unwrap_err(),
            LinalgError::Overflow
        );
        assert!(matches!(
            combine_rows(1, &[1, 2], 1, &[1]).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn scratch_buffer_is_reused() {
        let mut out = Vec::with_capacity(4);
        combine_rows_into(1, &[1, 2], 1, &[3, 4], &mut out).unwrap();
        assert_eq!(out, vec![4, 6]);
        combine_rows_into(-1, &[1, 2], 2, &[3, 4], &mut out).unwrap();
        assert_eq!(out, vec![5, 6]);
    }
}
