//! Reduced rational numbers over checked `i128`.
//!
//! [`Rat`] is the scalar type of every exact computation that cannot stay
//! integral: Fourier–Motzkin combination coefficients, parametric bound
//! evaluation, cost-model ratios cross-checked against the float solver.
//! Every operation is checked; overflow surfaces as
//! [`LinalgError::Overflow`](crate::LinalgError) through the
//! fallible `checked_*` API, while the `std::ops` implementations panic
//! (they are used in tests and small-coefficient contexts only).

use crate::gcd::gcd_i128;
use crate::{LinalgError, Result};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Build a reduced rational; fails on a zero denominator.
    pub fn new(num: i128, den: i128) -> Result<Rat> {
        if den == 0 {
            return Err(LinalgError::DivisionByZero);
        }
        let sign = if den < 0 { -1 } else { 1 };
        let num = num.checked_mul(sign).ok_or(LinalgError::Overflow)?;
        let den = den.checked_mul(sign).ok_or(LinalgError::Overflow)?;
        let g = gcd_i128(num, den);
        if g == 0 {
            return Ok(Rat { num: 0, den: 1 });
        }
        Ok(Rat {
            num: num / g,
            den: den / g,
        })
    }

    /// An integer as a rational.
    pub fn int(n: i64) -> Rat {
        Rat {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Sign of the value: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        match self.num.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        }
    }

    /// Checked addition.
    pub fn checked_add(&self, rhs: &Rat) -> Result<Rat> {
        let a = self.num.checked_mul(rhs.den).ok_or(LinalgError::Overflow)?;
        let b = rhs.num.checked_mul(self.den).ok_or(LinalgError::Overflow)?;
        let num = a.checked_add(b).ok_or(LinalgError::Overflow)?;
        let den = self.den.checked_mul(rhs.den).ok_or(LinalgError::Overflow)?;
        Rat::new(num, den)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, rhs: &Rat) -> Result<Rat> {
        self.checked_add(&rhs.checked_neg()?)
    }

    /// Checked negation.
    pub fn checked_neg(&self) -> Result<Rat> {
        Ok(Rat {
            num: self.num.checked_neg().ok_or(LinalgError::Overflow)?,
            den: self.den,
        })
    }

    /// Checked multiplication (cross-reduces before multiplying to keep
    /// intermediates small).
    pub fn checked_mul(&self, rhs: &Rat) -> Result<Rat> {
        let g1 = gcd_i128(self.num, rhs.den);
        let g2 = gcd_i128(rhs.num, self.den);
        let (n1, d2) = if g1 != 0 {
            (self.num / g1, rhs.den / g1)
        } else {
            (self.num, rhs.den)
        };
        let (n2, d1) = if g2 != 0 {
            (rhs.num / g2, self.den / g2)
        } else {
            (rhs.num, self.den)
        };
        let num = n1.checked_mul(n2).ok_or(LinalgError::Overflow)?;
        let den = d1.checked_mul(d2).ok_or(LinalgError::Overflow)?;
        Rat::new(num, den)
    }

    /// Checked division.
    pub fn checked_div(&self, rhs: &Rat) -> Result<Rat> {
        if rhs.num == 0 {
            return Err(LinalgError::DivisionByZero);
        }
        self.checked_mul(&Rat::new(rhs.den, rhs.num)?)
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 || self.num % self.den == 0 {
            self.num / self.den
        } else {
            self.num / self.den - 1
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        if self.num <= 0 || self.num % self.den == 0 {
            self.num / self.den
        } else {
            self.num / self.den + 1
        }
    }

    /// Nearest integer (ties round away from zero).
    pub fn round(&self) -> i128 {
        let twice = self.num * 2;
        if self.num >= 0 {
            (twice + self.den) / (2 * self.den)
        } else {
            (twice - self.den) / (2 * self.den)
        }
    }

    /// Lossy conversion to `f64` (for reporting and the float solver only;
    /// never used in exactness-critical paths).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/d as a*d vs c*b; both denominators positive.
        // Overflow in comparison would need |num|,|den| near 2^127
        // simultaneously; values that large have already errored out of
        // the checked constructors upstream.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Self {
        Rat::int(n)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        self.checked_add(&rhs).expect("Rat add overflow")
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self.checked_sub(&rhs).expect("Rat sub overflow")
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        self.checked_mul(&rhs).expect("Rat mul overflow")
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        self.checked_div(&rhs).expect("Rat div by zero/overflow")
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.checked_neg().expect("Rat neg overflow")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Rat::new(4, 8).unwrap();
        assert_eq!((r.num(), r.den()), (1, 2));
        let r = Rat::new(-4, -8).unwrap();
        assert_eq!((r.num(), r.den()), (1, 2));
        let r = Rat::new(4, -8).unwrap();
        assert_eq!((r.num(), r.den()), (-1, 2));
        let r = Rat::new(0, -5).unwrap();
        assert_eq!((r.num(), r.den()), (0, 1));
        assert!(Rat::new(1, 0).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2).unwrap();
        let b = Rat::new(1, 3).unwrap();
        assert_eq!(a + b, Rat::new(5, 6).unwrap());
        assert_eq!(a - b, Rat::new(1, 6).unwrap());
        assert_eq!(a * b, Rat::new(1, 6).unwrap());
        assert_eq!(a / b, Rat::new(3, 2).unwrap());
        assert_eq!(-a, Rat::new(-1, 2).unwrap());
    }

    #[test]
    fn division_by_zero_errors() {
        let a = Rat::int(1);
        assert_eq!(
            a.checked_div(&Rat::ZERO).unwrap_err(),
            LinalgError::DivisionByZero
        );
    }

    #[test]
    fn overflow_is_detected() {
        let big = Rat::new(i128::MAX, 1).unwrap();
        assert_eq!(
            big.checked_add(&Rat::ONE).unwrap_err(),
            LinalgError::Overflow
        );
        assert_eq!(big.checked_mul(&big).unwrap_err(), LinalgError::Overflow);
    }

    #[test]
    fn ordering() {
        let a = Rat::new(1, 3).unwrap();
        let b = Rat::new(1, 2).unwrap();
        let c = Rat::new(-1, 2).unwrap();
        assert!(a < b);
        assert!(c < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn floor_ceil_round() {
        assert_eq!(Rat::new(7, 2).unwrap().floor(), 3);
        assert_eq!(Rat::new(7, 2).unwrap().ceil(), 4);
        assert_eq!(Rat::new(-7, 2).unwrap().floor(), -4);
        assert_eq!(Rat::new(-7, 2).unwrap().ceil(), -3);
        assert_eq!(Rat::new(6, 2).unwrap().floor(), 3);
        assert_eq!(Rat::new(6, 2).unwrap().ceil(), 3);
        assert_eq!(Rat::new(5, 2).unwrap().round(), 3);
        assert_eq!(Rat::new(-5, 2).unwrap().round(), -3);
        assert_eq!(Rat::new(1, 3).unwrap().round(), 0);
        assert_eq!(Rat::new(2, 3).unwrap().round(), 1);
    }

    #[test]
    fn helpers() {
        assert!(Rat::int(5).is_integer());
        assert!(!Rat::new(5, 2).unwrap().is_integer());
        assert!(Rat::ZERO.is_zero());
        assert_eq!(Rat::int(-3).signum(), -1);
        assert_eq!(Rat::ZERO.signum(), 0);
        assert_eq!(Rat::int(3).signum(), 1);
        assert_eq!(Rat::new(-1, 2).unwrap().abs(), Rat::new(1, 2).unwrap());
        assert!((Rat::new(1, 4).unwrap().to_f64() - 0.25).abs() < 1e-12);
        assert_eq!(format!("{}", Rat::new(3, 4).unwrap()), "3/4");
        assert_eq!(format!("{}", Rat::int(7)), "7");
    }
}
