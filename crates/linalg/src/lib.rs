//! Exact rational and integer linear algebra for the polymem polyhedral
//! framework.
//!
//! All polyhedral computations in polymem (Fourier–Motzkin elimination,
//! affine images, rank tests, dependence analysis) require *exact*
//! arithmetic: floating point would silently corrupt constraint systems
//! and integer wrap-around would do the same. This crate provides
//!
//! * [`Rat`] — a reduced rational number over checked `i128`,
//! * [`IVec`] / [`IMat`] — integer vectors and matrices with `i64`
//!   entries and checked arithmetic,
//! * fraction-free Gaussian elimination ([`IMat::rank`],
//!   [`IMat::nullspace`], [`IMat::solve`]),
//! * gcd/lcm helpers used for constraint normalisation.
//!
//! Overflow is a hard error ([`LinalgError::Overflow`]), never silent
//! wrap-around; polyhedral callers surface it to the user as "program
//! coefficients too large".

pub mod gcd;
pub mod mat;
pub mod rat;
pub mod rowops;
pub mod vec;

pub use gcd::{gcd_i128, gcd_i64, lcm_i128, lcm_i64};
pub use mat::IMat;
pub use rat::Rat;
pub use rowops::{combine_rows, combine_rows_into};
pub use vec::IVec;

use std::fmt;

/// Errors produced by exact linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// An intermediate value exceeded the representable range.
    Overflow,
    /// Division by zero (zero denominator or singular pivot).
    DivisionByZero,
    /// Two operands had incompatible shapes; the payload describes them.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand `(rows, cols)`.
        right: (usize, usize),
    },
    /// A linear system had no (rational) solution.
    Inconsistent,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Overflow => write!(f, "integer overflow in exact arithmetic"),
            LinalgError::DivisionByZero => write!(f, "division by zero"),
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Inconsistent => write!(f, "inconsistent linear system"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "mul",
            left: (2, 3),
            right: (2, 3),
        };
        assert!(e.to_string().contains("mul"));
        assert!(LinalgError::Overflow.to_string().contains("overflow"));
        assert!(LinalgError::DivisionByZero.to_string().contains("zero"));
        assert!(LinalgError::Inconsistent
            .to_string()
            .contains("inconsistent"));
    }
}
