//! Greatest-common-divisor and least-common-multiple helpers.
//!
//! Used throughout the polyhedral layer to keep constraint coefficients
//! reduced (normalising `2x + 4y >= 6` to `x + 2y >= 3`) and to combine
//! denominators when clearing fractions after Fourier–Motzkin steps.

use crate::{LinalgError, Result};

/// Non-negative gcd of two `i64` values; `gcd(0, 0) == 0`.
pub fn gcd_i64(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    // The gcd of two i64 magnitudes fits in i64 except gcd(i64::MIN, 0),
    // whose magnitude 2^63 does not. Callers never normalise by such a
    // gcd in practice, but saturate defensively.
    i64::try_from(a).unwrap_or(i64::MAX)
}

/// Non-negative gcd of two `i128` values; `gcd(0, 0) == 0`.
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    i128::try_from(a).unwrap_or(i128::MAX)
}

/// Checked non-negative lcm of two `i64` values; `lcm(0, x) == 0`.
pub fn lcm_i64(a: i64, b: i64) -> Result<i64> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd_i64(a, b);
    (a / g)
        .checked_mul(b)
        .map(i64::abs)
        .ok_or(LinalgError::Overflow)
}

/// Checked non-negative lcm of two `i128` values; `lcm(0, x) == 0`.
pub fn lcm_i128(a: i128, b: i128) -> Result<i128> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd_i128(a, b);
    (a / g)
        .checked_mul(b)
        .map(i128::abs)
        .ok_or(LinalgError::Overflow)
}

/// Gcd of a slice of `i64` values (non-negative; 0 for an all-zero slice).
pub fn gcd_slice(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |acc, &x| gcd_i64(acc, x))
}

/// Floor division `a / b` for `b > 0` (rounds toward negative infinity).
pub fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_floor requires a positive divisor");
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division `a / b` for `b > 0` (rounds toward positive infinity).
pub fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_ceil requires a positive divisor");
    let q = a / b;
    if a % b != 0 && (a < 0) == (b < 0) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd_i64(12, 18), 6);
        assert_eq!(gcd_i64(-12, 18), 6);
        assert_eq!(gcd_i64(0, 0), 0);
        assert_eq!(gcd_i64(0, 7), 7);
        assert_eq!(gcd_i64(7, 0), 7);
        assert_eq!(gcd_i64(1, i64::MAX), 1);
        assert_eq!(gcd_i128(2_i128.pow(100), 2_i128.pow(90)), 2_i128.pow(90));
    }

    #[test]
    fn gcd_of_min_value() {
        // |i64::MIN| is not representable; we saturate instead of panicking.
        assert_eq!(gcd_i64(i64::MIN, 0), i64::MAX);
        assert_eq!(gcd_i64(i64::MIN, 2), 2);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm_i64(4, 6).unwrap(), 12);
        assert_eq!(lcm_i64(-4, 6).unwrap(), 12);
        assert_eq!(lcm_i64(0, 6).unwrap(), 0);
        assert!(lcm_i64(i64::MAX, i64::MAX - 1).is_err());
        assert_eq!(lcm_i128(1 << 70, 1 << 60).unwrap(), 1 << 70);
    }

    #[test]
    fn gcd_slice_basics() {
        assert_eq!(gcd_slice(&[4, 8, 12]), 4);
        assert_eq!(gcd_slice(&[]), 0);
        assert_eq!(gcd_slice(&[0, 0]), 0);
        assert_eq!(gcd_slice(&[3, 5]), 1);
    }

    #[test]
    fn floor_and_ceil_division() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(6, 3), 2);
        assert_eq!(div_floor(-6, 3), -2);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(6, 3), 2);
    }
}
