//! Integer vectors with checked arithmetic.
//!
//! [`IVec`] is a thin wrapper over `Vec<i64>` used for iteration vectors,
//! constraint rows and affine-form coefficient lists. Arithmetic is
//! checked: any overflow yields [`LinalgError::Overflow`](crate::LinalgError).

use crate::gcd::gcd_slice;
use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Deref, Index, IndexMut};

/// A dense integer vector.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct IVec(pub Vec<i64>);

impl IVec {
    /// The zero vector of length `n`.
    pub fn zeros(n: usize) -> IVec {
        IVec(vec![0; n])
    }

    /// The `i`-th standard basis vector of length `n`.
    pub fn unit(n: usize, i: usize) -> IVec {
        let mut v = vec![0; n];
        v[i] = 1;
        IVec(v)
    }

    /// Build from a slice.
    pub fn from_slice(xs: &[i64]) -> IVec {
        IVec(xs.to_vec())
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True iff every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0)
    }

    /// Checked dot product.
    pub fn dot(&self, rhs: &IVec) -> Result<i64> {
        if self.len() != rhs.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "dot",
                left: (1, self.len()),
                right: (1, rhs.len()),
            });
        }
        let mut acc: i128 = 0;
        for (a, b) in self.0.iter().zip(rhs.0.iter()) {
            acc = acc
                .checked_add((*a as i128) * (*b as i128))
                .ok_or(LinalgError::Overflow)?;
        }
        i64::try_from(acc).map_err(|_| LinalgError::Overflow)
    }

    /// Checked elementwise addition.
    pub fn checked_add(&self, rhs: &IVec) -> Result<IVec> {
        if self.len() != rhs.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                left: (1, self.len()),
                right: (1, rhs.len()),
            });
        }
        self.0
            .iter()
            .zip(rhs.0.iter())
            .map(|(a, b)| a.checked_add(*b).ok_or(LinalgError::Overflow))
            .collect::<Result<Vec<_>>>()
            .map(IVec)
    }

    /// Checked elementwise subtraction.
    pub fn checked_sub(&self, rhs: &IVec) -> Result<IVec> {
        if self.len() != rhs.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                left: (1, self.len()),
                right: (1, rhs.len()),
            });
        }
        self.0
            .iter()
            .zip(rhs.0.iter())
            .map(|(a, b)| a.checked_sub(*b).ok_or(LinalgError::Overflow))
            .collect::<Result<Vec<_>>>()
            .map(IVec)
    }

    /// Checked scalar multiplication.
    pub fn checked_scale(&self, k: i64) -> Result<IVec> {
        self.0
            .iter()
            .map(|a| a.checked_mul(k).ok_or(LinalgError::Overflow))
            .collect::<Result<Vec<_>>>()
            .map(IVec)
    }

    /// Divide all entries by their (positive) gcd; the zero vector is
    /// returned unchanged. Returns the gcd used (0 for the zero vector).
    pub fn normalize(&mut self) -> i64 {
        let g = gcd_slice(&self.0);
        if g > 1 {
            for x in &mut self.0 {
                *x /= g;
            }
        }
        g
    }

    /// Lexicographic comparison helper: sign of the first nonzero entry
    /// (0 if the vector is zero).
    pub fn lex_sign(&self) -> i32 {
        for &x in &self.0 {
            if x > 0 {
                return 1;
            }
            if x < 0 {
                return -1;
            }
        }
        0
    }

    /// Concatenate two vectors.
    pub fn concat(&self, rhs: &IVec) -> IVec {
        let mut v = self.0.clone();
        v.extend_from_slice(&rhs.0);
        IVec(v)
    }

    /// Iterate over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, i64> {
        self.0.iter()
    }
}

impl Deref for IVec {
    type Target = [i64];
    fn deref(&self) -> &[i64] {
        &self.0
    }
}

impl<I: std::slice::SliceIndex<[i64]>> Index<I> for IVec {
    type Output = I::Output;
    fn index(&self, i: I) -> &I::Output {
        &self.0[i]
    }
}

impl<I: std::slice::SliceIndex<[i64]>> IndexMut<I> for IVec {
    fn index_mut(&mut self, i: I) -> &mut I::Output {
        &mut self.0[i]
    }
}

impl From<Vec<i64>> for IVec {
    fn from(v: Vec<i64>) -> IVec {
        IVec(v)
    }
}

impl FromIterator<i64> for IVec {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> IVec {
        IVec(iter.into_iter().collect())
    }
}

impl fmt::Debug for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(IVec::zeros(3).0, vec![0, 0, 0]);
        assert_eq!(IVec::unit(3, 1).0, vec![0, 1, 0]);
        assert!(IVec::zeros(2).is_zero());
        assert!(!IVec::from_slice(&[0, 1]).is_zero());
        assert!(IVec::zeros(0).is_empty());
    }

    #[test]
    fn dot_product() {
        let a = IVec::from_slice(&[1, 2, 3]);
        let b = IVec::from_slice(&[4, 5, 6]);
        assert_eq!(a.dot(&b).unwrap(), 32);
        assert!(a.dot(&IVec::zeros(2)).is_err());
        let big = IVec::from_slice(&[i64::MAX, i64::MAX]);
        assert_eq!(big.dot(&big).unwrap_err(), LinalgError::Overflow);
    }

    #[test]
    fn add_sub_scale() {
        let a = IVec::from_slice(&[1, 2]);
        let b = IVec::from_slice(&[3, -4]);
        assert_eq!(a.checked_add(&b).unwrap().0, vec![4, -2]);
        assert_eq!(a.checked_sub(&b).unwrap().0, vec![-2, 6]);
        assert_eq!(a.checked_scale(-3).unwrap().0, vec![-3, -6]);
        assert!(IVec::from_slice(&[i64::MAX])
            .checked_add(&IVec::from_slice(&[1]))
            .is_err());
        assert!(a.checked_add(&IVec::zeros(3)).is_err());
    }

    #[test]
    fn normalize_divides_by_gcd() {
        let mut v = IVec::from_slice(&[4, -8, 12]);
        assert_eq!(v.normalize(), 4);
        assert_eq!(v.0, vec![1, -2, 3]);
        let mut z = IVec::zeros(2);
        assert_eq!(z.normalize(), 0);
        assert_eq!(z.0, vec![0, 0]);
    }

    #[test]
    fn lex_sign_and_concat() {
        assert_eq!(IVec::from_slice(&[0, 0, 2, -1]).lex_sign(), 1);
        assert_eq!(IVec::from_slice(&[0, -2, 1]).lex_sign(), -1);
        assert_eq!(IVec::zeros(3).lex_sign(), 0);
        assert_eq!(
            IVec::from_slice(&[1]).concat(&IVec::from_slice(&[2, 3])).0,
            vec![1, 2, 3]
        );
    }
}
