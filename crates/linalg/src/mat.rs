//! Dense integer matrices with exact (checked) arithmetic.
//!
//! [`IMat`] stores `i64` entries row-major and provides the operations
//! the polyhedral layer needs: multiplication, transpose, stacking,
//! rank / nullspace / linear-system solving via exact rational Gaussian
//! elimination (internally over [`Rat`]). The access-function rank test
//! of the paper's Algorithm 1 (`rank(F) < dim(i)`) and the affine image
//! construction both sit directly on this module.

use crate::rat::Rat;
use crate::vec::IVec;
use crate::{LinalgError, Result};
use std::fmt;

/// A dense row-major integer matrix.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// A `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> IMat {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> IMat {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build from nested rows; panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[i64]]) -> IMat {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "IMat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        IMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a flat row-major vec; panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i64>) -> IMat {
        assert_eq!(data.len(), rows * cols, "IMat::from_vec: wrong length");
        IMat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[i64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy row `i` into an [`IVec`].
    pub fn row_vec(&self, i: usize) -> IVec {
        IVec::from_slice(self.row(i))
    }

    /// Copy column `j` into an [`IVec`].
    pub fn col_vec(&self, j: usize) -> IVec {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Append a row; panics if the width disagrees.
    pub fn push_row(&mut self, row: &[i64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "IMat::push_row: wrong width");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Transpose.
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Checked matrix multiplication.
    pub fn mul(&self, rhs: &IMat) -> Result<IMat> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = IMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc: i128 = 0;
                for k in 0..self.cols {
                    acc = acc
                        .checked_add((self[(i, k)] as i128) * (rhs[(k, j)] as i128))
                        .ok_or(LinalgError::Overflow)?;
                }
                out[(i, j)] = i64::try_from(acc).map_err(|_| LinalgError::Overflow)?;
            }
        }
        Ok(out)
    }

    /// Checked matrix-vector product.
    pub fn mul_vec(&self, x: &IVec) -> Result<IVec> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        (0..self.rows)
            .map(|i| self.row_vec(i).dot(x))
            .collect::<Result<Vec<_>>>()
            .map(IVec)
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn hstack(&self, rhs: &IMat) -> Result<IMat> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = IMat::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.data[i * out.cols..i * out.cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * out.cols + self.cols..(i + 1) * out.cols].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }

    /// Vertical concatenation `[self; rhs]`.
    pub fn vstack(&self, rhs: &IMat) -> Result<IMat> {
        if self.cols != rhs.cols && self.rows != 0 && rhs.rows != 0 {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let cols = if self.rows == 0 { rhs.cols } else { self.cols };
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(IMat {
            rows: self.rows + rhs.rows,
            cols,
            data,
        })
    }

    /// Select a subset of columns (in the given order).
    pub fn select_cols(&self, cols: &[usize]) -> IMat {
        let mut out = IMat::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            for (jj, &j) in cols.iter().enumerate() {
                out[(i, jj)] = self[(i, j)];
            }
        }
        out
    }

    /// Select a subset of rows (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> IMat {
        let mut out = IMat::zeros(rows.len(), self.cols);
        for (ii, &i) in rows.iter().enumerate() {
            out.data[ii * self.cols..(ii + 1) * self.cols].copy_from_slice(self.row(i));
        }
        out
    }

    /// Convert to a rational matrix (row-major `Vec<Vec<Rat>>`).
    fn to_rat(&self) -> Vec<Vec<Rat>> {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|&x| Rat::int(x)).collect())
            .collect()
    }

    /// Rank over the rationals, via exact Gaussian elimination.
    ///
    /// This implements the reuse-detection test of the paper's
    /// Algorithm 1: a reference `F` over an iteration space of
    /// dimensionality `d` has order-of-magnitude reuse iff
    /// `F.rank() < d`.
    pub fn rank(&self) -> Result<usize> {
        let mut m = self.to_rat();
        Ok(rat_row_echelon(&mut m)?.len())
    }

    /// An integer basis of the (right) nullspace `{x : A x = 0}`.
    ///
    /// Each returned vector is primitive (entries share no common factor).
    pub fn nullspace(&self) -> Result<Vec<IVec>> {
        let mut m = self.to_rat();
        let pivots = rat_row_echelon(&mut m)?;
        let pivot_cols: Vec<usize> = pivots.iter().map(|&(_, c)| c).collect();
        let free_cols: Vec<usize> = (0..self.cols).filter(|c| !pivot_cols.contains(c)).collect();
        let mut basis = Vec::with_capacity(free_cols.len());
        for &fc in &free_cols {
            // Back-substitute with the free variable set to 1.
            let mut x = vec![Rat::ZERO; self.cols];
            x[fc] = Rat::ONE;
            for &(r, c) in pivots.iter().rev() {
                // row r: m[r][c]*x_c + sum_{j>c} m[r][j]*x_j = 0
                let mut s = Rat::ZERO;
                for j in (c + 1)..self.cols {
                    if !m[r][j].is_zero() {
                        s = s.checked_add(&m[r][j].checked_mul(&x[j])?)?;
                    }
                }
                x[c] = s.checked_neg()?.checked_div(&m[r][c])?;
            }
            basis.push(clear_denominators(&x)?);
        }
        Ok(basis)
    }

    /// Solve `A x = b` over the rationals. Returns one solution if the
    /// system is consistent, `Err(Inconsistent)` otherwise. Free
    /// variables are set to zero.
    pub fn solve(&self, b: &[Rat]) -> Result<Vec<Rat>> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "solve",
                left: (self.rows, self.cols),
                right: (b.len(), 1),
            });
        }
        // Eliminate on the augmented matrix [A | b].
        let mut m: Vec<Vec<Rat>> = (0..self.rows)
            .map(|i| {
                let mut row: Vec<Rat> = self.row(i).iter().map(|&x| Rat::int(x)).collect();
                row.push(b[i]);
                row
            })
            .collect();
        let pivots = rat_row_echelon_cols(&mut m, self.cols)?;
        // Inconsistency: a row 0 ... 0 | nonzero.
        for row in &m {
            if row[..self.cols].iter().all(Rat::is_zero) && !row[self.cols].is_zero() {
                return Err(LinalgError::Inconsistent);
            }
        }
        let mut x = vec![Rat::ZERO; self.cols];
        for &(r, c) in pivots.iter().rev() {
            let mut s = m[r][self.cols];
            for j in (c + 1)..self.cols {
                if !m[r][j].is_zero() {
                    s = s.checked_sub(&m[r][j].checked_mul(&x[j])?)?;
                }
            }
            x[c] = s.checked_div(&m[r][c])?;
        }
        Ok(x)
    }

    /// True iff the matrix has no rows or no columns.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }
}

/// Row-echelon reduction over `Rat`, considering all columns.
/// Returns the `(row, col)` pivot positions in elimination order.
fn rat_row_echelon(m: &mut [Vec<Rat>]) -> Result<Vec<(usize, usize)>> {
    let cols = m.first().map_or(0, |r| r.len());
    rat_row_echelon_cols(m, cols)
}

/// Row-echelon reduction over `Rat`, restricted to the first
/// `ncols` columns (the rest ride along, e.g. an augmented RHS).
fn rat_row_echelon_cols(m: &mut [Vec<Rat>], ncols: usize) -> Result<Vec<(usize, usize)>> {
    let nrows = m.len();
    let total = m.first().map_or(0, |r| r.len());
    let mut pivots = Vec::new();
    let mut r = 0usize;
    for c in 0..ncols {
        // Find a pivot row at or below r with a nonzero entry in column c.
        let Some(p) = (r..nrows).find(|&i| !m[i][c].is_zero()) else {
            continue;
        };
        m.swap(r, p);
        for i in (r + 1)..nrows {
            if m[i][c].is_zero() {
                continue;
            }
            let f = m[i][c].checked_div(&m[r][c])?;
            // Indexing two distinct rows of `m` (pivot `r`, target `i`)
            // — an iterator can't borrow both mutably.
            #[allow(clippy::needless_range_loop)]
            for j in c..total {
                let sub = f.checked_mul(&m[r][j])?;
                m[i][j] = m[i][j].checked_sub(&sub)?;
            }
        }
        pivots.push((r, c));
        r += 1;
        if r == nrows {
            break;
        }
    }
    Ok(pivots)
}

/// Scale a rational vector to a primitive integer vector.
fn clear_denominators(x: &[Rat]) -> Result<IVec> {
    let mut l: i128 = 1;
    for r in x {
        l = crate::gcd::lcm_i128(l, r.den())?;
    }
    let mut out = Vec::with_capacity(x.len());
    for r in x {
        let v = r
            .num()
            .checked_mul(l / r.den())
            .ok_or(LinalgError::Overflow)?;
        out.push(i64::try_from(v).map_err(|_| LinalgError::Overflow)?);
    }
    let mut v = IVec(out);
    v.normalize();
    Ok(v)
}

impl std::ops::Index<(usize, usize)> for IMat {
    type Output = i64;
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let id = IMat::identity(3);
        assert_eq!(id[(0, 0)], 1);
        assert_eq!(id[(0, 1)], 0);
        assert_eq!(id.rows(), 3);
        assert_eq!(id.cols(), 3);
    }

    #[test]
    fn multiplication() {
        let a = IMat::from_rows(&[&[1, 2], &[3, 4]]);
        let b = IMat::from_rows(&[&[5, 6], &[7, 8]]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c, IMat::from_rows(&[&[19, 22], &[43, 50]]));
        assert!(a.mul(&IMat::zeros(3, 2)).is_err());
        let x = IVec::from_slice(&[1, -1]);
        assert_eq!(a.mul_vec(&x).unwrap().0, vec![-1, -1]);
    }

    #[test]
    fn transpose_and_stacking() {
        let a = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.transpose(), IMat::from_rows(&[&[1, 4], &[2, 5], &[3, 6]]));
        let h = a.hstack(&IMat::identity(2)).unwrap();
        assert_eq!(h.row(0), &[1, 2, 3, 1, 0]);
        let v = a.vstack(&IMat::from_rows(&[&[7, 8, 9]])).unwrap();
        assert_eq!(v.rows(), 3);
        assert_eq!(v.row(2), &[7, 8, 9]);
        assert!(a.hstack(&IMat::zeros(3, 1)).is_err());
    }

    #[test]
    fn selection() {
        let a = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.select_cols(&[2, 0]), IMat::from_rows(&[&[3, 1], &[6, 4]]));
        assert_eq!(a.select_rows(&[1]), IMat::from_rows(&[&[4, 5, 6]]));
        assert_eq!(a.col_vec(1).0, vec![2, 5]);
    }

    #[test]
    fn rank_computation() {
        assert_eq!(IMat::identity(4).rank().unwrap(), 4);
        // Rank-deficient: row3 = row1 + row2.
        let a = IMat::from_rows(&[&[1, 0, 1], &[0, 1, 1], &[1, 1, 2]]);
        assert_eq!(a.rank().unwrap(), 2);
        assert_eq!(IMat::zeros(3, 3).rank().unwrap(), 0);
        // Wide matrix: A[i][k] access in a 3-deep (i,j,k) nest reads
        // F = [[1,0,0],[0,0,1]] with rank 2 < 3 => reuse.
        let f = IMat::from_rows(&[&[1, 0, 0], &[0, 0, 1]]);
        assert_eq!(f.rank().unwrap(), 2);
    }

    #[test]
    fn nullspace_basis() {
        // x + y + z = 0 has a 2-dimensional nullspace.
        let a = IMat::from_rows(&[&[1, 1, 1]]);
        let ns = a.nullspace().unwrap();
        assert_eq!(ns.len(), 2);
        for v in &ns {
            assert_eq!(a.mul_vec(v).unwrap().0, vec![0]);
            assert!(!v.is_zero());
        }
        // Full-rank square matrix: trivial nullspace.
        assert!(IMat::identity(3).nullspace().unwrap().is_empty());
    }

    #[test]
    fn solve_consistent_and_inconsistent() {
        let a = IMat::from_rows(&[&[2, 1], &[1, -1]]);
        let b = vec![Rat::int(5), Rat::int(1)];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, vec![Rat::int(2), Rat::int(1)]);

        // Inconsistent: x + y = 1 and x + y = 2.
        let a = IMat::from_rows(&[&[1, 1], &[1, 1]]);
        let b = vec![Rat::int(1), Rat::int(2)];
        assert_eq!(a.solve(&b).unwrap_err(), LinalgError::Inconsistent);

        // Underdetermined: free variable gets zero.
        let a = IMat::from_rows(&[&[1, 1]]);
        let x = a.solve(&[Rat::int(3)]).unwrap();
        assert_eq!(x, vec![Rat::int(3), Rat::ZERO]);

        // Rational solution.
        let a = IMat::from_rows(&[&[2]]);
        let x = a.solve(&[Rat::int(3)]).unwrap();
        assert_eq!(x, vec![Rat::new(3, 2).unwrap()]);
    }

    #[test]
    fn push_row_grows() {
        let mut m = IMat::zeros(0, 0);
        m.push_row(&[1, 2]);
        m.push_row(&[3, 4]);
        assert_eq!(m, IMat::from_rows(&[&[1, 2], &[3, 4]]));
    }
}
