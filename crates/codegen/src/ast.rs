//! The generated loop AST: `for` nests with `max`/`min` affine bounds,
//! guards, sequences and tagged leaves.
//!
//! Leaves carry a `tag` identifying *what* to do at each visited point
//! (which copy statement, which computation); the interpreter hands
//! the tag and the current iteration vector to a callback. The
//! C-like printer renders the same AST for inspection and golden
//! tests against the paper's Fig. 1.

use polymem_poly::bounds::BoundList;
use polymem_poly::Constraint;

/// Loop bounds: a `max` list for the lower end and a `min` list for
/// the upper end, each over `[outer vars..., params..., 1]`.
#[derive(Clone, Debug)]
pub struct LoopBounds {
    /// Lower bound candidates (effective bound = max of ceils).
    pub lower: BoundList,
    /// Upper bound candidates (effective bound = min of floors).
    pub upper: BoundList,
}

/// A generated abstract syntax tree.
#[derive(Clone, Debug)]
pub enum Ast {
    /// Statements executed in order.
    Seq(Vec<Ast>),
    /// `for (var = max(lb); var <= min(ub); var++) body`
    Loop {
        /// Iterator name (for printing).
        var: String,
        /// Bounds over the enclosing iterators and parameters.
        bounds: LoopBounds,
        /// Loop body.
        body: Box<Ast>,
    },
    /// `if (conds) body` — each constraint is over
    /// `[outer vars..., params..., 1]`.
    Guard {
        /// Conjunction of affine conditions.
        conds: Vec<Constraint>,
        /// Guarded body.
        body: Box<Ast>,
    },
    /// A tagged visit of the current iteration vector.
    Leaf {
        /// Caller-defined payload identifier.
        tag: usize,
    },
    /// Nothing.
    Empty,
}

impl Ast {
    /// Interpret the AST for concrete parameter values, invoking
    /// `visit(tag, point)` at each leaf with the current (fully
    /// enclosing) iteration vector.
    pub fn for_each_point(&self, params: &[i64], visit: &mut dyn FnMut(usize, &[i64])) {
        let mut stack = Vec::new();
        self.walk(params, &mut stack, visit);
    }

    fn walk(&self, params: &[i64], point: &mut Vec<i64>, visit: &mut dyn FnMut(usize, &[i64])) {
        match self {
            Ast::Seq(items) => {
                for it in items {
                    it.walk(params, point, visit);
                }
            }
            Ast::Loop { bounds, body, .. } => {
                let Some(lo) = bounds.lower.eval_lower(point, params) else {
                    return;
                };
                let Some(hi) = bounds.upper.eval_upper(point, params) else {
                    return;
                };
                for v in lo..=hi {
                    point.push(v);
                    body.walk(params, point, visit);
                    point.pop();
                }
            }
            Ast::Guard { conds, body } => {
                if conds.iter().all(|c| c.satisfied(point, params)) {
                    body.walk(params, point, visit);
                }
            }
            Ast::Leaf { tag } => visit(*tag, point),
            Ast::Empty => {}
        }
    }

    /// Count leaf visits for given parameters (used in tests and
    /// volume verification).
    pub fn count_visits(&self, params: &[i64]) -> u64 {
        let mut n = 0;
        self.for_each_point(params, &mut |_, _| n += 1);
        n
    }

    /// Render as C-like text. `param_names` label the parameter
    /// columns; `leaf_text(tag)` renders each leaf (e.g.
    /// `"LA[i-10][j-11] = A[i][j];"`); outer iterator names come from
    /// the loops themselves.
    pub fn to_c(&self, param_names: &[String], leaf_text: &dyn Fn(usize) -> String) -> String {
        let mut out = String::new();
        let mut vars: Vec<String> = Vec::new();
        self.print(param_names, leaf_text, &mut vars, 0, &mut out);
        out
    }

    fn print(
        &self,
        params: &[String],
        leaf_text: &dyn Fn(usize) -> String,
        vars: &mut Vec<String>,
        indent: usize,
        out: &mut String,
    ) {
        let pad = "  ".repeat(indent);
        match self {
            Ast::Seq(items) => {
                for it in items {
                    it.print(params, leaf_text, vars, indent, out);
                }
            }
            Ast::Loop { var, bounds, body } => {
                let fmt_list = |terms: &[polymem_poly::AffineForm], f: &str| -> String {
                    let rendered: Vec<String> =
                        terms.iter().map(|t| t.display(vars, params)).collect();
                    if rendered.len() == 1 {
                        rendered.into_iter().next().expect("len checked")
                    } else {
                        format!("{f}({})", rendered.join(", "))
                    }
                };
                let lb = fmt_list(&bounds.lower.terms, "max");
                let ub = fmt_list(&bounds.upper.terms, "min");
                out.push_str(&format!(
                    "{pad}for ({var} = {lb}; {var} <= {ub}; {var}++) {{\n"
                ));
                vars.push(var.clone());
                body.print(params, leaf_text, vars, indent + 1, out);
                vars.pop();
                out.push_str(&format!("{pad}}}\n"));
            }
            Ast::Guard { conds, body } => {
                let rendered: Vec<String> = conds.iter().map(|c| c.display(vars, params)).collect();
                out.push_str(&format!("{pad}if ({}) {{\n", rendered.join(" && ")));
                body.print(params, leaf_text, vars, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Ast::Leaf { tag } => {
                out.push_str(&format!("{pad}{}\n", leaf_text(*tag)));
            }
            Ast::Empty => {}
        }
    }

    /// Depth of the deepest loop nest in the AST.
    pub fn loop_depth(&self) -> usize {
        match self {
            Ast::Seq(items) => items.iter().map(Ast::loop_depth).max().unwrap_or(0),
            Ast::Loop { body, .. } => 1 + body.loop_depth(),
            Ast::Guard { body, .. } => body.loop_depth(),
            Ast::Leaf { .. } | Ast::Empty => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_poly::bounds::{AffineForm, BoundList};

    fn const_bounds(lo: i64, hi: i64, n_outer: usize, n_params: usize) -> LoopBounds {
        LoopBounds {
            lower: BoundList {
                terms: vec![AffineForm::constant(n_outer, n_params, lo)],
            },
            upper: BoundList {
                terms: vec![AffineForm::constant(n_outer, n_params, hi)],
            },
        }
    }

    #[test]
    fn interprets_rectangular_nest() {
        // for i in 0..=2 { for j in 0..=1 { visit } }
        let ast = Ast::Loop {
            var: "i".into(),
            bounds: const_bounds(0, 2, 0, 0),
            body: Box::new(Ast::Loop {
                var: "j".into(),
                bounds: const_bounds(0, 1, 1, 0),
                body: Box::new(Ast::Leaf { tag: 7 }),
            }),
        };
        let mut pts = Vec::new();
        ast.for_each_point(&[], &mut |tag, p| {
            assert_eq!(tag, 7);
            pts.push(p.to_vec());
        });
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[5], vec![2, 1]);
        assert_eq!(ast.loop_depth(), 2);
        assert_eq!(ast.count_visits(&[]), 6);
    }

    #[test]
    fn triangular_bounds_reference_outer_vars() {
        // for i in 0..=3 { for j in 0..=i { visit } } : 10 visits.
        let ub_j = AffineForm {
            coeffs: vec![1, 0].into(), // j <= i (1 outer var, 0 params)
            div: 1,
        };
        let ast = Ast::Loop {
            var: "i".into(),
            bounds: const_bounds(0, 3, 0, 0),
            body: Box::new(Ast::Loop {
                var: "j".into(),
                bounds: LoopBounds {
                    lower: BoundList {
                        terms: vec![AffineForm::constant(1, 0, 0)],
                    },
                    upper: BoundList { terms: vec![ub_j] },
                },
                body: Box::new(Ast::Leaf { tag: 0 }),
            }),
        };
        assert_eq!(ast.count_visits(&[]), 10);
    }

    #[test]
    fn guards_filter_points() {
        // for i in 0..=5 { if (i - 3 >= 0) visit } : 3 visits.
        let ast = Ast::Loop {
            var: "i".into(),
            bounds: const_bounds(0, 5, 0, 0),
            body: Box::new(Ast::Guard {
                conds: vec![polymem_poly::Constraint::ineq(vec![1, -3])],
                body: Box::new(Ast::Leaf { tag: 0 }),
            }),
        };
        assert_eq!(ast.count_visits(&[]), 3);
    }

    #[test]
    fn empty_bounds_skip_execution() {
        let ast = Ast::Loop {
            var: "i".into(),
            bounds: LoopBounds {
                lower: BoundList { terms: vec![] },
                upper: BoundList {
                    terms: vec![AffineForm::constant(0, 0, 5)],
                },
            },
            body: Box::new(Ast::Leaf { tag: 0 }),
        };
        assert_eq!(ast.count_visits(&[]), 0);
        assert_eq!(Ast::Empty.count_visits(&[]), 0);
    }

    #[test]
    fn seq_runs_in_order() {
        let ast = Ast::Seq(vec![Ast::Leaf { tag: 1 }, Ast::Leaf { tag: 2 }]);
        let mut tags = Vec::new();
        ast.for_each_point(&[], &mut |t, _| tags.push(t));
        assert_eq!(tags, vec![1, 2]);
    }

    #[test]
    fn c_rendering() {
        let ast = Ast::Loop {
            var: "i".into(),
            bounds: const_bounds(0, 4, 0, 1),
            body: Box::new(Ast::Leaf { tag: 0 }),
        };
        let c = ast.to_c(&["N".into()], &|_| "body;".into());
        assert!(c.contains("for (i = 0; i <= 4; i++) {"), "{c}");
        assert!(c.contains("body;"), "{c}");
    }
}
