//! Loop-nest code generation from polyhedra — polymem's CLooG.
//!
//! The paper uses CLooG to (a) find the per-dimension bound
//! expressions of convex data-space unions and (b) emit loop nests
//! that scan unions of data spaces so every element is loaded/stored
//! exactly once. This crate reproduces both roles:
//!
//! * [`scan::scan_polyhedron`] / [`scan::scan_union`] build a loop
//!   [`ast::Ast`] whose bounds are `max`/`min` lists of affine forms
//!   derived by Fourier–Motzkin (outer dims as context);
//! * union scanning first makes the pieces **disjoint** (polyhedral
//!   difference), so the emitted nests have the paper's
//!   single-load/store property even for overlapping references —
//!   exactly the shape of Fig. 1's two move-in nests for array `A`;
//! * the AST can be **pretty-printed** as C-like text (for inspection,
//!   docs and golden tests) and **interpreted** (`for_each_point`),
//!   which is how the machine simulator executes generated data
//!   movement code.

pub mod ast;
pub mod scan;

pub use ast::{Ast, LoopBounds};
pub use scan::{scan_polyhedron, scan_union};

/// Errors from code generation.
pub type CodegenError = polymem_poly::PolyError;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CodegenError>;
