//! Scanning polyhedra into loop nests.
//!
//! [`scan_polyhedron`] emits one loop per dimension, outermost first,
//! with bounds derived by Fourier–Motzkin in the context of the outer
//! dimensions — the standard polyhedral scanning scheme. Because the
//! FM cascade can over-approximate inner ranges for non-unit
//! coefficients, a residual [`Guard`](crate::ast::Ast::Guard) with the
//! original constraints is inserted above the leaf whenever the
//! original system has constraints that the loop bounds alone do not
//! re-imply for every visited point; this keeps the scan exact without
//! costing anything for the common (unit-coefficient) case.
//!
//! [`scan_union`] handles a union of possibly-overlapping polyhedra:
//! it first decomposes the union into disjoint pieces (polyhedral
//! difference) and concatenates their nests — this is what gives the
//! paper's move-in/move-out code its "single load/store per element"
//! property (§3.1.3) and reproduces the two-nest shape of Fig. 1.

use crate::ast::{Ast, LoopBounds};
use crate::Result;
use polymem_poly::bounds::bound_cascade;
use polymem_poly::{Constraint, ConstraintKind, PolyUnion, Polyhedron};

/// Scan one polyhedron into a loop nest whose leaf carries `tag`.
///
/// Returns [`Ast::Empty`] for empty sets.
pub fn scan_polyhedron(poly: &Polyhedron, tag: usize) -> Result<Ast> {
    if poly.is_empty()? {
        return Ok(Ast::Empty);
    }
    // Innermost first: start from the leaf.
    let mut body = Ast::Leaf { tag };

    // Exactness guard: with unit coefficients the FM cascade is exact
    // and the guard would be vacuous, so only add one when some
    // constraint mixes several dims with |coeff| > 1 (the only case
    // where the rational shadow can admit extra integer points).
    if needs_guard(poly) {
        body = Ast::Guard {
            conds: poly.as_ineq_rows(),
            body: Box::new(body),
        };
    }

    let cascade = bound_cascade(poly)?;
    for (d, b) in cascade.into_iter().enumerate().rev() {
        body = Ast::Loop {
            var: poly.space().dim_name(d).to_string(),
            bounds: LoopBounds {
                lower: b.lower,
                upper: b.upper,
            },
            body: Box::new(body),
        };
    }
    // Parameter-only constraints never become loop bounds, yet a piece
    // of a symbolic difference may be feasible only for some parameter
    // values (e.g. `jT >= Nj`): guard the whole nest on them so the
    // scan is exact at every concrete instantiation.
    let n = poly.n_dims();
    let param_rows: Vec<Constraint> = poly
        .constraints()
        .iter()
        .filter(|c| (0..n).all(|j| c.coeff(j) == 0))
        .map(|c| {
            let coeffs: Vec<i64> = (n..c.len()).map(|j| c.coeff(j)).collect();
            match c.kind {
                ConstraintKind::Ineq => Constraint::ineq(coeffs),
                ConstraintKind::Eq => Constraint::eq(coeffs),
            }
        })
        .collect();
    if !param_rows.is_empty() {
        body = Ast::Guard {
            conds: param_rows,
            body: Box::new(body),
        };
    }
    Ok(body)
}

/// Heuristic for when the FM cascade may over-approximate: some
/// constraint has |coefficient| > 1 on a dimension *and* involves
/// another dimension. (Pure single-dim strides are handled exactly by
/// the ceil/floor bound evaluation.)
fn needs_guard(poly: &Polyhedron) -> bool {
    let n = poly.n_dims();
    poly.constraints().iter().any(|c| {
        let nz: Vec<usize> = (0..n).filter(|&j| c.coeff(j) != 0).collect();
        nz.len() >= 2 && nz.iter().any(|&j| c.coeff(j).abs() > 1)
    })
}

/// Scan a union of polyhedra, visiting every point of the union
/// exactly once. `tags[k]` labels the leaf generated for the k-th
/// *disjoint piece*; if `tags` is shorter than the piece list the last
/// tag is reused (pass a single-element slice for a uniform label).
///
/// The generated AST is a [`Ast::Seq`] of one nest per disjoint piece,
/// mirroring the multiple copy nests of the paper's Fig. 1.
pub fn scan_union(union: &PolyUnion, tags: &[usize]) -> Result<Ast> {
    let pieces = union.disjoint_pieces()?;
    let mut items = Vec::with_capacity(pieces.len());
    for (k, piece) in pieces.iter().enumerate() {
        let tag = *tags.get(k).or(tags.last()).unwrap_or(&0);
        match scan_polyhedron(piece, tag)? {
            Ast::Empty => {}
            ast => items.push(ast),
        }
    }
    Ok(match items.len() {
        0 => Ast::Empty,
        1 => items.pop().expect("len checked"),
        _ => Ast::Seq(items),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_poly::{Constraint, Space};
    use std::collections::HashSet;

    fn poly(space: Space, rows: Vec<Constraint>) -> Polyhedron {
        Polyhedron::new(space, rows)
    }

    fn interval(lo: i64, hi: i64) -> Polyhedron {
        poly(
            Space::new(["i"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, -lo]),
                Constraint::ineq(vec![-1, hi]),
            ],
        )
    }

    #[test]
    fn scans_triangle_exactly() {
        let t = poly(
            Space::new(["i", "j"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, 0, 0]),
                Constraint::ineq(vec![-1, 0, 1, -1]),
                Constraint::ineq(vec![0, 1, 0, 0]),
                Constraint::ineq(vec![1, -1, 0, 0]),
            ],
        );
        let ast = scan_polyhedron(&t, 0).unwrap();
        let mut seen = HashSet::new();
        ast.for_each_point(&[5], &mut |_, p| {
            assert!(seen.insert(p.to_vec()), "revisited {p:?}");
            assert!(t.contains(p, &[5]), "outside {p:?}");
        });
        assert_eq!(seen.len(), 15); // 1+2+3+4+5
    }

    #[test]
    fn scans_empty_to_empty_ast() {
        let e = Polyhedron::empty(Space::new(["i"], Vec::<String>::new()));
        assert!(matches!(scan_polyhedron(&e, 0).unwrap(), Ast::Empty));
    }

    #[test]
    fn guard_inserted_for_skewed_strides() {
        // { (i,j) : 0 <= i <= 10, 0 <= j <= 10, 2i + 3j <= 11 } — the
        // mixed constraint forces a guard; the scan must stay exact.
        let p = poly(
            Space::new(["i", "j"], Vec::<String>::new()),
            vec![
                Constraint::ineq(vec![1, 0, 0]),
                Constraint::ineq(vec![-1, 0, 10]),
                Constraint::ineq(vec![0, 1, 0]),
                Constraint::ineq(vec![0, -1, 10]),
                Constraint::ineq(vec![-2, -3, 11]),
            ],
        );
        let ast = scan_polyhedron(&p, 0).unwrap();
        let mut count = 0u64;
        ast.for_each_point(&[], &mut |_, pt| {
            assert!(p.contains(pt, &[]));
            count += 1;
        });
        let exact = polymem_poly::count::count_points(&p, 10_000).unwrap();
        assert_eq!(count, exact);
    }

    #[test]
    fn union_scan_visits_once_despite_overlap() {
        let u = PolyUnion::from_members(vec![interval(0, 6), interval(4, 10)]).unwrap();
        let ast = scan_union(&u, &[1, 2]).unwrap();
        let mut seen = HashSet::new();
        ast.for_each_point(&[], &mut |_, p| {
            assert!(seen.insert(p[0]), "revisited {}", p[0]);
        });
        assert_eq!(seen.len(), 11);
    }

    #[test]
    fn union_scan_tags_pieces() {
        let u = PolyUnion::from_members(vec![interval(0, 2), interval(10, 12)]).unwrap();
        let ast = scan_union(&u, &[7, 8]).unwrap();
        let mut tags = HashSet::new();
        ast.for_each_point(&[], &mut |t, _| {
            tags.insert(t);
        });
        assert_eq!(tags, HashSet::from([7, 8]));
        // A single uniform tag is reused for later pieces.
        let ast = scan_union(&u, &[9]).unwrap();
        let mut tags = HashSet::new();
        ast.for_each_point(&[], &mut |t, _| {
            tags.insert(t);
        });
        assert_eq!(tags, HashSet::from([9]));
    }

    #[test]
    fn union_scan_of_empty_union() {
        let u = PolyUnion::new();
        assert!(matches!(scan_union(&u, &[0]).unwrap(), Ast::Empty));
    }

    #[test]
    fn parametric_scan_adapts_to_parameters() {
        // { i : 0 <= i <= N-1 }
        let p = poly(
            Space::new(["i"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, 0]),
                Constraint::ineq(vec![-1, 1, -1]),
            ],
        );
        let ast = scan_polyhedron(&p, 0).unwrap();
        assert_eq!(ast.count_visits(&[4]), 4);
        assert_eq!(ast.count_visits(&[9]), 9);
        assert_eq!(ast.count_visits(&[0]), 0);
    }

    #[test]
    fn c_output_shape_matches_bounds() {
        let p = poly(
            Space::new(["i"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, -2]),
                Constraint::ineq(vec![-1, 1, 0]),
            ],
        );
        let ast = scan_polyhedron(&p, 0).unwrap();
        let c = ast.to_c(&["N".into()], &|_| "move();".into());
        assert!(c.contains("for (i = 2; i <= N; i++) {"), "{c}");
    }
}
