//! A small constrained nonlinear minimiser.
//!
//! §4.3 phrases tile-size selection as a nonlinear constrained
//! optimisation "that can be solved by a technique such as sequential
//! quadratic programming", relaxing integrality and rounding the
//! result. This module provides the continuous solver: an exterior
//! penalty method over inequality constraints with projected
//! (box-clamped) gradient descent, numeric central-difference
//! gradients, backtracking line search and multiple penalty rounds.
//! It is deterministic and dependency-free — adequate for the small
//! (≤ 8-variable) smooth problems tile-size selection produces, where
//! a full SQP implementation would be overkill.

/// A scalar function of the variable vector (objective or constraint).
pub type ScalarFn<'a> = &'a dyn Fn(&[f64]) -> f64;

/// An inequality-constrained minimisation problem:
/// minimise `objective(x)` subject to `g_i(x) <= 0` and
/// `lo_j <= x_j <= hi_j`.
pub struct NlProblem<'a> {
    /// Objective function.
    pub objective: ScalarFn<'a>,
    /// Inequality constraints, satisfied when `<= 0`.
    pub constraints: Vec<ScalarFn<'a>>,
    /// Per-variable lower bounds.
    pub lo: Vec<f64>,
    /// Per-variable upper bounds.
    pub hi: Vec<f64>,
}

/// Result of a solve.
#[derive(Clone, Debug)]
pub struct NlSolution {
    /// The minimiser found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Maximum constraint violation at `x` (0 = feasible).
    pub violation: f64,
}

/// Solve by penalty + projected gradient descent from `x0`.
pub fn minimize(problem: &NlProblem<'_>, x0: &[f64]) -> NlSolution {
    let n = x0.len();
    let clamp = |x: &mut [f64]| {
        for (j, xj) in x.iter_mut().enumerate().take(n) {
            *xj = xj.clamp(problem.lo[j], problem.hi[j]);
        }
    };
    let violation = |x: &[f64]| -> f64 {
        problem
            .constraints
            .iter()
            .map(|g| g(x).max(0.0))
            .fold(0.0, f64::max)
    };

    let mut x = x0.to_vec();
    clamp(&mut x);
    let mut mu = 1.0;
    for _round in 0..8 {
        // Penalised objective for this round.
        let f = |x: &[f64]| -> f64 {
            let base = (problem.objective)(x);
            let pen: f64 = problem
                .constraints
                .iter()
                .map(|g| {
                    let v = g(x).max(0.0);
                    v * v
                })
                .sum();
            base + mu * pen
        };
        // Projected gradient descent with backtracking.
        let mut fx = f(&x);
        for _iter in 0..200 {
            // Central-difference gradient with relative step.
            let mut grad = vec![0.0; n];
            for j in 0..n {
                let h = (x[j].abs() * 1e-4).max(1e-6);
                let mut xp = x.clone();
                xp[j] = (x[j] + h).min(problem.hi[j]);
                let mut xm = x.clone();
                xm[j] = (x[j] - h).max(problem.lo[j]);
                let denom = xp[j] - xm[j];
                grad[j] = if denom > 0.0 {
                    (f(&xp) - f(&xm)) / denom
                } else {
                    0.0
                };
            }
            let gnorm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < 1e-10 {
                break;
            }
            // Backtracking line search.
            let mut step = x.iter().map(|v| v.abs().max(1.0)).fold(0.0, f64::max) / gnorm;
            let mut improved = false;
            for _bt in 0..40 {
                let mut xn: Vec<f64> = x.iter().zip(&grad).map(|(v, g)| v - step * g).collect();
                clamp(&mut xn);
                let fn_ = f(&xn);
                if fn_ < fx - 1e-12 {
                    x = xn;
                    fx = fn_;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                break;
            }
        }
        if violation(&x) < 1e-9 {
            break;
        }
        mu *= 10.0;
    }
    NlSolution {
        value: (problem.objective)(&x),
        violation: violation(&x),
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_quadratic() {
        let obj = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let p = NlProblem {
            objective: &obj,
            constraints: vec![],
            lo: vec![-10.0, -10.0],
            hi: vec![10.0, 10.0],
        };
        let s = minimize(&p, &[0.0, 0.0]);
        assert!((s.x[0] - 3.0).abs() < 1e-2, "{:?}", s.x);
        assert!((s.x[1] + 1.0).abs() < 1e-2, "{:?}", s.x);
    }

    #[test]
    fn box_bounds_are_respected() {
        let obj = |x: &[f64]| -x[0]; // wants x0 -> +inf
        let p = NlProblem {
            objective: &obj,
            constraints: vec![],
            lo: vec![1.0],
            hi: vec![7.0],
        };
        let s = minimize(&p, &[2.0]);
        assert!((s.x[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn inequality_constraint_binds() {
        // min (x-5)^2 s.t. x <= 2.
        let obj = |x: &[f64]| (x[0] - 5.0).powi(2);
        let g = |x: &[f64]| x[0] - 2.0;
        let p = NlProblem {
            objective: &obj,
            constraints: vec![&g],
            lo: vec![0.0],
            hi: vec![10.0],
        };
        let s = minimize(&p, &[8.0]);
        assert!(s.x[0] <= 2.0 + 1e-3, "{:?}", s.x);
        assert!((s.x[0] - 2.0).abs() < 0.1, "{:?}", s.x);
        assert!(s.violation < 1e-3);
    }

    #[test]
    fn product_constraint_like_memory_limit() {
        // min 100/x + 100/y s.t. x*y <= 64, 1 <= x,y <= 64: symmetric
        // optimum at x = y = 8.
        let obj = |x: &[f64]| 100.0 / x[0] + 100.0 / x[1];
        let g = |x: &[f64]| x[0] * x[1] - 64.0;
        let p = NlProblem {
            objective: &obj,
            constraints: vec![&g],
            lo: vec![1.0, 1.0],
            hi: vec![64.0, 64.0],
        };
        let s = minimize(&p, &[2.0, 2.0]);
        assert!(s.x[0] * s.x[1] <= 64.0 + 1e-2, "{:?}", s.x);
        let v = 100.0 / s.x[0] + 100.0 / s.x[1];
        assert!(v < 26.0, "suboptimal: {v} at {:?}", s.x); // optimum 25
    }
}
