//! The data-movement cost model of §4.3.
//!
//! The paper models the cost of one buffer's data movement as
//!
//! ```text
//! C = N · (P·S + V·L / P)
//! ```
//!
//! where `N` is the number of movement occurrences (the product of the
//! trip counts of the tiling loops *outside* which the movement code
//! could not be hoisted), `P` the number of inner-level processes, `S`
//! the per-process synchronisation cost per occurrence, `V` the volume
//! moved per occurrence, and `L` the per-element transfer cost.
//!
//! Volumes and buffer sizes are functions of the tile sizes. polymem
//! uses an **analytic footprint model**: for a box tile with sizes
//! `t`, an affine reference with row coefficients `a_l` spans, along
//! each array dimension,
//! `width(t) = Σ_l |a_l|·(t_l − 1) + spread + 1`
//! (`spread` = constant-term spread across the buffer's references).
//! This is exact for uniformly generated references — the case the
//! paper's kernels exercise — and a documented estimate otherwise; the
//! test-suite cross-validates it against exact Algorithm-2 sizing on
//! concrete tiles.

use crate::smem::dataspace::RefInfo;

/// Machine constants of the cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Number of inner-level processes (`P`).
    pub p: f64,
    /// Synchronisation cost per process per movement occurrence (`S`).
    pub s: f64,
    /// Transfer cost per element (`L`).
    pub l: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // Dimensionless defaults in "global-memory-access" units:
        // a sync costs ~20 accesses, a transfer 1.
        CostParams {
            p: 64.0,
            s: 20.0,
            l: 1.0,
        }
    }
}

/// Per-reference footprint contribution along one array dimension.
#[derive(Clone, Debug)]
struct RefDim {
    /// `max(a_l, 0)` per tiled loop.
    pos: Vec<f64>,
    /// `min(a_l, 0)` per tiled loop.
    neg: Vec<f64>,
    /// Constant term of the subscript row.
    k: f64,
}

/// Analytic footprint of a set of references, per array dimension, as
/// a function of tile sizes.
#[derive(Clone, Debug)]
pub struct FootprintModel {
    /// Outer: buffer (kept) array dims; inner: references.
    dims: Vec<Vec<RefDim>>,
}

impl FootprintModel {
    /// Build from references: `kept_dims` selects the array dims of
    /// the buffer, `tiled_loops` the iteration dims being tiled.
    pub fn from_refs(refs: &[&RefInfo], kept_dims: &[usize], tiled_loops: &[usize]) -> Self {
        let dims = kept_dims
            .iter()
            .map(|&d| {
                refs.iter()
                    .map(|r| {
                        let m = r.map.matrix();
                        let pos = tiled_loops
                            .iter()
                            .map(|&l| (m[(d, l)] as f64).max(0.0))
                            .collect();
                        let neg = tiled_loops
                            .iter()
                            .map(|&l| (m[(d, l)] as f64).min(0.0))
                            .collect();
                        let k = m[(d, m.cols() - 1)] as f64;
                        RefDim { pos, neg, k }
                    })
                    .collect()
            })
            .collect();
        FootprintModel { dims }
    }

    /// Width along buffer dim `d` at (real-valued) tile sizes `t`.
    pub fn width(&self, d: usize, t: &[f64]) -> f64 {
        let refs = &self.dims[d];
        let hi = refs
            .iter()
            .map(|r| {
                r.k + r
                    .pos
                    .iter()
                    .zip(t)
                    .map(|(a, tl)| a * (tl - 1.0))
                    .sum::<f64>()
            })
            .fold(f64::NEG_INFINITY, f64::max);
        let lo = refs
            .iter()
            .map(|r| {
                r.k + r
                    .neg
                    .iter()
                    .zip(t)
                    .map(|(a, tl)| a * (tl - 1.0))
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        (hi - lo + 1.0).max(0.0)
    }

    /// Total footprint (product of widths) at tile sizes `t` — the
    /// buffer size `M(t)` / per-occurrence volume `V(t)`.
    pub fn volume(&self, t: &[f64]) -> f64 {
        (0..self.dims.len()).map(|d| self.width(d, t)).product()
    }

    /// Number of buffer dims.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// True iff there are no references (empty model).
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|refs| refs.is_empty()) || self.dims.is_empty()
    }
}

/// Cost-model data for one buffer.
#[derive(Clone, Debug)]
pub struct BufferCost {
    /// Label for reporting.
    pub name: String,
    /// Footprint of all references — the buffer size `M_k(t)`.
    pub all: FootprintModel,
    /// Footprint of read references — move-in volume `V_in(t)`
    /// (`None` when the buffer has no reads).
    pub read: Option<FootprintModel>,
    /// Footprint of write references — move-out volume `V_out(t)`.
    pub write: Option<FootprintModel>,
    /// Placement level `r_k`: movement code sits inside the first
    /// `r_k` tiled loops (see [`super::placement`]).
    pub placement: usize,
}

impl BufferCost {
    /// Build from a buffer's references.
    pub fn from_refs(
        name: &str,
        refs: &[&RefInfo],
        kept_dims: &[usize],
        tiled_loops: &[usize],
        placement: usize,
    ) -> BufferCost {
        let reads: Vec<&RefInfo> = refs.iter().copied().filter(|r| !r.id.is_write()).collect();
        let writes: Vec<&RefInfo> = refs.iter().copied().filter(|r| r.id.is_write()).collect();
        BufferCost {
            name: name.to_string(),
            all: FootprintModel::from_refs(refs, kept_dims, tiled_loops),
            read: (!reads.is_empty())
                .then(|| FootprintModel::from_refs(&reads, kept_dims, tiled_loops)),
            write: (!writes.is_empty())
                .then(|| FootprintModel::from_refs(&writes, kept_dims, tiled_loops)),
            placement,
        }
    }
}

/// The §4.3 objective and constraint functions over tile sizes.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Per-buffer footprints and placements.
    pub buffers: Vec<BufferCost>,
    /// Index ranges `N_i` of the tiled loops (same order as tile-size
    /// vectors).
    pub loop_ranges: Vec<f64>,
}

impl CostModel {
    /// Number of movement occurrences for a buffer placed at level
    /// `r`: `Π_{i < r} N_i / t_i` (trip counts of the loops outside
    /// which the code could not hoist).
    fn occurrences(&self, r: usize, t: &[f64]) -> f64 {
        (0..r)
            .map(|i| (self.loop_ranges[i] / t[i]).max(1.0))
            .product()
    }

    /// Total data-movement cost `C(t)` (the §4.3 objective).
    pub fn movement_cost(&self, t: &[f64], params: &CostParams) -> f64 {
        let mut c = 0.0;
        for b in &self.buffers {
            let n = self.occurrences(b.placement, t);
            if let Some(fin) = &b.read {
                c += n * (params.p * params.s + fin.volume(t) * params.l / params.p);
            }
            if let Some(fout) = &b.write {
                c += n * (params.p * params.s + fout.volume(t) * params.l / params.p);
            }
        }
        c
    }

    /// Total scratchpad requirement `Σ M_k(t)` (words).
    pub fn memory(&self, t: &[f64]) -> f64 {
        self.buffers.iter().map(|b| b.all.volume(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::dataspace::collect_refs;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};

    /// for t in [1,T], i in [1,N]: B[i] = (A[i-1]+A[i]+A[i+1])/3
    fn jacobi_body() -> Program {
        let mut b = ProgramBuilder::new("jac", ["T", "N"]);
        b.array("A", &[v("N") + 2]);
        b.array("B", &[v("N") + 2]);
        b.stmt("S")
            .loops(&[("t", LinExpr::c(1), v("T")), ("i", LinExpr::c(1), v("N"))])
            .write("B", &[v("i")])
            .read("A", &[v("i") - 1])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::div(
                Expr::add(Expr::add(Expr::Read(0), Expr::Read(1)), Expr::Read(2)),
                Expr::Const(3),
            ))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn footprint_matches_hand_computation() {
        let p = jacobi_body();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        // Tiled loops (t, i) with sizes (tt, ti): A touches
        // [i-1, i+1] over a ti-wide window → width = ti + 2 (no
        // dependence on tt: coefficient 0).
        let fm = FootprintModel::from_refs(&members, &[0], &[0, 1]);
        assert_eq!(fm.width(0, &[32.0, 10.0]), 12.0);
        assert_eq!(fm.width(0, &[1.0, 1.0]), 3.0);
        assert_eq!(fm.volume(&[4.0, 100.0]), 102.0);
    }

    #[test]
    fn footprint_cross_validates_against_algorithm_2() {
        // Tile the jacobi body and compare the analytic footprint with
        // exact Algorithm 2 buffer sizing on a concrete tile.
        use crate::smem::alloc::allocate_buffer;
        use crate::tiling::transform::{fix_dims, tile_program, TileSpec};
        let p = jacobi_body();
        let tiled = tile_program(&p, &TileSpec::new(&[("t", 4), ("i", 16)], "T")).unwrap();
        let mut fixed = std::collections::HashMap::new();
        fixed.insert("tT".to_string(), 1);
        fixed.insert("iT".to_string(), 2);
        let block = fix_dims(&tiled.stmts[0].domain, &fixed);
        // Build a one-statement program view with the block domain.
        let mut view = tiled.clone();
        view.stmts[0].domain = block;
        let a = view.array_index("A").unwrap();
        let refs = collect_refs(&view, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let buf = allocate_buffer(&view, a, 0, &members).unwrap();
        // Interior tile at T = 100, N = 100: full 4x16 box.
        let exact = buf.size_words(&[100, 100]).unwrap();
        let orig_refs = collect_refs(&p, a).unwrap();
        let orig_members: Vec<&_> = orig_refs.iter().collect();
        let fm = FootprintModel::from_refs(&orig_members, &[0], &[0, 1]);
        assert_eq!(exact as f64, fm.volume(&[4.0, 16.0]));
    }

    #[test]
    fn movement_cost_decreases_with_larger_tiles() {
        let p = jacobi_body();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let bc = BufferCost::from_refs("A", &members, &[0], &[0, 1], 2);
        let cm = CostModel {
            buffers: vec![bc],
            loop_ranges: vec![4096.0, 65536.0],
        };
        let params = CostParams::default();
        let small = cm.movement_cost(&[8.0, 64.0], &params);
        let large = cm.movement_cost(&[32.0, 256.0], &params);
        assert!(
            large < small,
            "larger tiles should amortise sync: {large} vs {small}"
        );
    }

    #[test]
    fn memory_grows_with_tiles() {
        let p = jacobi_body();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let bc = BufferCost::from_refs("A", &members, &[0], &[0, 1], 2);
        let cm = CostModel {
            buffers: vec![bc],
            loop_ranges: vec![4096.0, 65536.0],
        };
        assert!(cm.memory(&[1.0, 256.0]) < cm.memory(&[1.0, 512.0]));
    }

    #[test]
    fn hoisted_buffers_pay_fewer_occurrences() {
        let p = jacobi_body();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let inner = BufferCost::from_refs("A", &members, &[0], &[0, 1], 2);
        let hoisted = BufferCost::from_refs("A", &members, &[0], &[0, 1], 1);
        let ranges = vec![4096.0, 65536.0];
        let params = CostParams::default();
        let c_inner = CostModel {
            buffers: vec![inner],
            loop_ranges: ranges.clone(),
        }
        .movement_cost(&[32.0, 256.0], &params);
        let c_hoisted = CostModel {
            buffers: vec![hoisted],
            loop_ranges: ranges,
        }
        .movement_cost(&[32.0, 256.0], &params);
        assert!(c_hoisted < c_inner);
    }

    #[test]
    fn read_only_buffer_has_no_move_out_term() {
        let p = jacobi_body();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let bc = BufferCost::from_refs("A", &members, &[0], &[0, 1], 2);
        assert!(bc.read.is_some());
        assert!(bc.write.is_none());
    }
}
