//! Tile-size search (paper §4.3).
//!
//! The optimisation problem:
//!
//! ```text
//! minimise   Σ_k N_k(t) · (P·S + V_k(t)·L / P)
//! subject to 0 < t_i <= N_i
//!            Σ_k M_k(t) <= M_up
//!            Π_i t_i >= P
//! ```
//!
//! Two solvers are provided and cross-checked by the test-suite and
//! ablation benches:
//!
//! * [`search_sqp`] — the paper's approach: relax `t ∈ ℝ^m`, solve the
//!   smooth problem with the penalty/projected-gradient solver of
//!   [`super::sqp`], then round to nearby integer candidates and pick
//!   the best feasible one;
//! * [`search_discrete`] — an exact pruned enumeration over a
//!   power-of-two-ish candidate grid (plus loop bounds), used as
//!   ground truth.

use super::cost::{CostModel, CostParams};
use super::sqp::{minimize, NlProblem};

/// A fully specified tile-size selection problem.
#[derive(Clone, Debug)]
pub struct TileSizeProblem {
    /// Objective/constraint functions (footprints, placements, ranges).
    pub cost: CostModel,
    /// Machine constants `P`, `S`, `L`.
    pub params: CostParams,
    /// Scratchpad capacity available to the process, `M_up` (words).
    pub mem_limit: f64,
}

impl TileSizeProblem {
    fn n(&self) -> usize {
        self.cost.loop_ranges.len()
    }

    /// Feasibility of an integer tile-size vector.
    pub fn feasible(&self, t: &[i64]) -> bool {
        let tf: Vec<f64> = t.iter().map(|&x| x as f64).collect();
        t.iter()
            .zip(&self.cost.loop_ranges)
            .all(|(&x, &n)| x >= 1 && (x as f64) <= n)
            && self.cost.memory(&tf) <= self.mem_limit
            && tf.iter().product::<f64>() >= self.params.p
    }

    /// Objective at an integer point.
    pub fn objective(&self, t: &[i64]) -> f64 {
        let tf: Vec<f64> = t.iter().map(|&x| x as f64).collect();
        self.cost.movement_cost(&tf, &self.params)
    }
}

/// Result of a search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The chosen (integer) tile sizes.
    pub sizes: Vec<i64>,
    /// Objective value.
    pub cost: f64,
    /// Which solver produced it.
    pub method: &'static str,
}

/// Candidate values for one loop: powers of two up to the range, plus
/// the range itself (covers "whole loop in one tile").
fn default_candidates(range: f64) -> Vec<i64> {
    let n = range as i64;
    let mut out = Vec::new();
    let mut v = 1i64;
    while v < n {
        out.push(v);
        v *= 2;
    }
    out.push(n.max(1));
    out.dedup();
    out
}

/// Exact pruned enumeration over per-loop candidate grids.
///
/// Pruning: buffer footprints are monotone in every tile size, so once
/// the memory constraint fails for a prefix assignment with all
/// remaining sizes at their minimum, the whole subtree is skipped.
pub fn search_discrete(
    problem: &TileSizeProblem,
    candidates: Option<Vec<Vec<i64>>>,
) -> SearchOutcome {
    let n = problem.n();
    let cands: Vec<Vec<i64>> = candidates.unwrap_or_else(|| {
        problem
            .cost
            .loop_ranges
            .iter()
            .map(|&r| default_candidates(r))
            .collect()
    });
    let mut best: Option<(Vec<i64>, f64)> = None;
    let mut current = vec![1i64; n];
    fn rec(
        problem: &TileSizeProblem,
        cands: &[Vec<i64>],
        depth: usize,
        current: &mut Vec<i64>,
        best: &mut Option<(Vec<i64>, f64)>,
    ) {
        let n = problem.n();
        if depth == n {
            if problem.feasible(current) {
                let c = problem.objective(current);
                // Ties break toward lexicographically larger sizes
                // (larger outer space tiles): the model is symmetric
                // in permutable space dims, but larger outer tiles
                // give better per-block access locality, which the
                // model does not capture (and matches the paper's
                // reported (32, 16, 16, 16) ME optimum).
                let better = match best.as_ref() {
                    None => true,
                    Some((bs, bc)) => c < *bc || (c == *bc && current.as_slice() > bs.as_slice()),
                };
                if better {
                    *best = Some((current.clone(), c));
                }
            }
            return;
        }
        for &v in &cands[depth] {
            current[depth] = v;
            // Prune: minimal memory for the remaining dims is at their
            // smallest candidates; if even that busts the limit, stop
            // (candidates ascend, footprints are monotone).
            let mut probe: Vec<f64> = current[..=depth].iter().map(|&x| x as f64).collect();
            for c in cands.iter().take(n).skip(depth + 1) {
                probe.push(c[0] as f64);
            }
            if problem.cost.memory(&probe) > problem.mem_limit {
                break;
            }
            rec(problem, cands, depth + 1, current, best);
        }
        current[depth] = 1;
    }
    rec(problem, &cands, 0, &mut current, &mut best);
    match best {
        Some((sizes, cost)) => SearchOutcome {
            sizes,
            cost,
            method: "discrete",
        },
        None => SearchOutcome {
            sizes: vec![1; n],
            cost: f64::INFINITY,
            method: "discrete",
        },
    }
}

/// The paper's §4.3 approach: continuous relaxation solved by the
/// SQP-style solver, then integral rounding (each coordinate tried at
/// floor and ceil, best feasible combination wins; falls back to the
/// discrete search if no rounding is feasible).
pub fn search_sqp(problem: &TileSizeProblem) -> SearchOutcome {
    let n = problem.n();
    let obj = |t: &[f64]| problem.cost.movement_cost(t, &problem.params);
    let mem = |t: &[f64]| problem.cost.memory(t) - problem.mem_limit;
    let par = |t: &[f64]| problem.params.p - t.iter().product::<f64>();
    let nl = NlProblem {
        objective: &obj,
        constraints: vec![&mem, &par],
        lo: vec![1.0; n],
        hi: problem.cost.loop_ranges.clone(),
    };
    // A few deterministic starts across the feasible box.
    let starts: Vec<Vec<f64>> = vec![
        vec![2.0; n],
        problem
            .cost
            .loop_ranges
            .iter()
            .map(|r| (r / 4.0).max(1.0))
            .collect(),
        problem
            .cost
            .loop_ranges
            .iter()
            .map(|r| r.sqrt().max(1.0))
            .collect(),
    ];
    let mut best_cont: Option<super::sqp::NlSolution> = None;
    for s in &starts {
        let sol = minimize(&nl, s);
        if sol.violation < 1e-6 && best_cont.as_ref().is_none_or(|b| sol.value < b.value) {
            best_cont = Some(sol);
        }
    }
    let Some(cont) = best_cont else {
        let mut out = search_discrete(problem, None);
        out.method = "sqp-fallback-discrete";
        return out;
    };
    // Round: try floor/ceil per coordinate.
    let mut best: Option<(Vec<i64>, f64)> = None;
    let combos = 1usize << n.min(20);
    for mask in 0..combos {
        let t: Vec<i64> = cont
            .x
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let f = v.floor().max(1.0) as i64;
                if mask >> j & 1 == 1 {
                    f + 1
                } else {
                    f
                }
            })
            .collect();
        if problem.feasible(&t) {
            let c = problem.objective(&t);
            if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                best = Some((t, c));
            }
        }
    }
    match best {
        Some((sizes, cost)) => SearchOutcome {
            sizes,
            cost,
            method: "sqp",
        },
        None => {
            let mut out = search_discrete(problem, None);
            out.method = "sqp-fallback-discrete";
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::dataspace::collect_refs;
    use crate::tiling::cost::BufferCost;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};

    /// Jacobi-style body: one array with a 3-point window over i, no
    /// dependence on t; buffer moved per (tT, iT) tile.
    fn jacobi_problem(mem_limit: f64, p: f64) -> TileSizeProblem {
        let prog: Program = {
            let mut b = ProgramBuilder::new("jac", ["T", "N"]);
            b.array("A", &[v("N") + 2]);
            b.array("B", &[v("N") + 2]);
            b.stmt("S")
                .loops(&[("t", LinExpr::c(1), v("T")), ("i", LinExpr::c(1), v("N"))])
                .write("B", &[v("i")])
                .read("A", &[v("i") - 1])
                .read("A", &[v("i")])
                .read("A", &[v("i") + 1])
                .body(Expr::add(
                    Expr::add(Expr::Read(0), Expr::Read(1)),
                    Expr::Read(2),
                ))
                .done();
            b.build().unwrap()
        };
        let a = prog.array_index("A").unwrap();
        let b_ = prog.array_index("B").unwrap();
        let refs_a = collect_refs(&prog, a).unwrap();
        let refs_b = collect_refs(&prog, b_).unwrap();
        let ma: Vec<&_> = refs_a.iter().collect();
        let mb: Vec<&_> = refs_b.iter().collect();
        let cost = crate::tiling::cost::CostModel {
            buffers: vec![
                BufferCost::from_refs("A", &ma, &[0], &[0, 1], 2),
                BufferCost::from_refs("B", &mb, &[0], &[0, 1], 2),
            ],
            loop_ranges: vec![4096.0, 65536.0],
        };
        TileSizeProblem {
            cost,
            params: CostParams { p, s: 20.0, l: 1.0 },
            mem_limit,
        }
    }

    #[test]
    fn discrete_search_respects_memory_limit() {
        let prob = jacobi_problem(512.0, 64.0);
        let out = search_discrete(&prob, None);
        assert!(prob.feasible(&out.sizes), "{:?}", out);
        let tf: Vec<f64> = out.sizes.iter().map(|&x| x as f64).collect();
        assert!(prob.cost.memory(&tf) <= 512.0);
    }

    #[test]
    fn larger_memory_allows_cheaper_schedules() {
        let small = search_discrete(&jacobi_problem(256.0, 64.0), None);
        let large = search_discrete(&jacobi_problem(4096.0, 64.0), None);
        assert!(large.cost <= small.cost);
    }

    #[test]
    fn sqp_agrees_with_discrete_within_tolerance() {
        let prob = jacobi_problem(1024.0, 64.0);
        let d = search_discrete(&prob, None);
        let s = search_sqp(&prob);
        assert!(prob.feasible(&s.sizes), "{:?}", s);
        // SQP may land slightly off the discrete grid optimum; accept
        // up to 25% regression, flag anything worse.
        assert!(
            s.cost <= d.cost * 1.25 + 1.0,
            "sqp {} vs discrete {}",
            s.cost,
            d.cost
        );
    }

    #[test]
    fn parallelism_constraint_enforced() {
        let prob = jacobi_problem(4096.0, 256.0);
        let out = search_discrete(&prob, None);
        let prod: i64 = out.sizes.iter().product();
        assert!(prod >= 256, "{:?}", out.sizes);
    }

    #[test]
    fn infeasible_problem_reports_infinite_cost() {
        // Memory limit below the smallest possible footprint.
        let prob = jacobi_problem(1.0, 1.0);
        let out = search_discrete(&prob, None);
        assert!(out.cost.is_infinite());
    }

    #[test]
    fn explicit_candidates_are_honoured() {
        let prob = jacobi_problem(4096.0, 1.0);
        let out = search_discrete(&prob, Some(vec![vec![8, 16], vec![64, 128]]));
        assert!(out.sizes[0] == 8 || out.sizes[0] == 16);
        assert!(out.sizes[1] == 64 || out.sizes[1] == 128);
    }
}
