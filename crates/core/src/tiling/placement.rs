//! Optimal placement of data movement code (paper §4.2).
//!
//! A tiling loop is *redundant* for an array reference when the access
//! function does not depend on that loop's iterator. If every
//! reference of a local buffer shares one or more redundant loops at
//! the bottom of the tiling-loop nest, the buffer's move-in/move-out
//! code is hoisted above them: the data stays live in the scratchpad
//! across the iterations of those loops, and the cost model's
//! occurrence count `N` shrinks by their trip counts.

use crate::smem::dataspace::RefInfo;

/// True iff loop dim `l` (an input dim of the access maps) is
/// redundant for all the given references.
pub fn loop_is_redundant(refs: &[&RefInfo], l: usize) -> bool {
    refs.iter().all(|r| {
        let m = r.map.matrix();
        (0..m.rows()).all(|row| m[(row, l)] == 0)
    })
}

/// Placement level of a buffer's movement code in a nest of tiling
/// loops (`tiling_loops` = iterator dims of the tiled program,
/// outermost first): the returned value `r` is the number of tiling
/// loops the movement code remains *inside* — loops `r..` are all
/// redundant for every reference, so the code hoists just above them.
///
/// `r == tiling_loops.len()` means no hoisting is possible.
pub fn placement_level(refs: &[&RefInfo], tiling_loops: &[usize]) -> usize {
    let mut r = tiling_loops.len();
    while r > 0 && loop_is_redundant(refs, tiling_loops[r - 1]) {
        r -= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::dataspace::collect_refs;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};

    /// C[i][j] += A[i][k] * B[k][j] — classic matmul reference shapes.
    fn matmul() -> Program {
        let mut b = ProgramBuilder::new("mm", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.array("B", &[v("N"), v("N")]);
        b.array("C", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
                ("k", LinExpr::c(0), v("N") - 1),
            ])
            .write("C", &[v("i"), v("j")])
            .read("C", &[v("i"), v("j")])
            .read("A", &[v("i"), v("k")])
            .read("B", &[v("k"), v("j")])
            .body(Expr::add(
                Expr::Read(0),
                Expr::mul(Expr::Read(1), Expr::Read(2)),
            ))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn c_hoists_past_k() {
        let p = matmul();
        let c = p.array_index("C").unwrap();
        let refs = collect_refs(&p, c).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        // Loops (i, j, k) = dims (0, 1, 2): k is redundant for C.
        assert!(loop_is_redundant(&members, 2));
        assert!(!loop_is_redundant(&members, 0));
        assert_eq!(placement_level(&members, &[0, 1, 2]), 2);
    }

    #[test]
    fn a_does_not_hoist_past_k_but_past_j() {
        let p = matmul();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        assert!(loop_is_redundant(&members, 1)); // j redundant for A[i][k]
        assert!(!loop_is_redundant(&members, 2));
        // Innermost loop k is not redundant: no hoisting at all.
        assert_eq!(placement_level(&members, &[0, 1, 2]), 3);
        // If the nest were (i, k, j), A would hoist past the inner j.
        assert_eq!(placement_level(&members, &[0, 2, 1]), 2);
    }

    #[test]
    fn fully_invariant_buffer_hoists_to_top() {
        // X[0] is invariant in all loops.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("X", &[LinExpr::c(4)]);
        b.array("Out", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("Out", &[v("i"), v("j")])
            .read("X", &[LinExpr::c(0)])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let x = p.array_index("X").unwrap();
        let refs = collect_refs(&p, x).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        assert_eq!(placement_level(&members, &[0, 1]), 0);
    }
}
