//! The multi-level tiling transformation (paper §4.1, Fig. 3).
//!
//! One [`TileSpec`] application rewrites selected loops `i` into a
//! pair `(iT, i)` with `iT·T ≤ i ≤ iT·T + T − 1`: the new tile
//! iterators form a group of outer loops preceding all original dims.
//! Applying specs repeatedly produces the paper's multi-level
//! structure — outer tiles distributed across outer-level parallel
//! units, a middle sequential level sized to the scratchpad limit, and
//! inner tiles distributed across inner-level units:
//!
//! ```text
//! FORALL iT, jT          <- level 1: across thread blocks
//!   FOR i', j', k', l'   <- level 2: memory-constrained sub-tiles
//!     <move-in>
//!     FORALL it, jt      <- level 3: across threads
//!       FOR i, j, k, l   <- intra-tile
//!     <move-out>
//! ```
//!
//! Tile sizes are compile-time constants, so the tiled domain stays
//! affine and every downstream pass (data management, codegen,
//! execution) applies unchanged to the tiled program. Execution
//! semantics are preserved bit-exactly whenever the tiled band is
//! permutable (validated in tests against the reference interpreter).

use polymem_ir::{Access, Program, Statement};
use polymem_poly::{Constraint, Polyhedron, Space};
use std::collections::HashMap;

/// One level of tiling: which loops (by name) and with what sizes.
#[derive(Clone, Debug)]
pub struct TileSpec {
    /// `(loop name, tile size)` pairs; order defines the order of the
    /// new tile iterators.
    pub tiles: Vec<(String, i64)>,
    /// Suffix appended to loop names for the tile iterators
    /// (e.g. `"T"` turns `i` into `iT`).
    pub suffix: String,
    /// Where to insert the new tile iterators: before the named dim,
    /// or outermost (`None`). Multi-level tiling inserts each level
    /// before the first still-original dim to get the paper's Fig. 3
    /// nesting (`iT, jT, i', j', it, jt, i, j`).
    pub insert_before: Option<String>,
}

impl TileSpec {
    /// Convenience constructor (tile iterators become outermost).
    pub fn new(tiles: &[(&str, i64)], suffix: &str) -> TileSpec {
        TileSpec {
            tiles: tiles.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
            suffix: suffix.to_string(),
            insert_before: None,
        }
    }

    /// Constructor placing the tile iterators just before `dim`.
    pub fn new_before(tiles: &[(&str, i64)], suffix: &str, dim: &str) -> TileSpec {
        TileSpec {
            insert_before: Some(dim.to_string()),
            ..TileSpec::new(tiles, suffix)
        }
    }
}

/// Apply one level of tiling to every statement that contains all the
/// named loops (statements missing a named loop are left unchanged —
/// they do not participate in this band).
///
/// Tile sizes must be positive; a size larger than the loop range
/// simply yields a single tile.
pub fn tile_program(program: &Program, spec: &TileSpec) -> polymem_ir::Result<Program> {
    for (_, s) in &spec.tiles {
        assert!(*s > 0, "tile sizes must be positive");
    }
    let mut out = program.clone();
    for stmt in &mut out.stmts {
        let names = stmt.domain.space().dims().to_vec();
        let idxs: Vec<Option<usize>> = spec
            .tiles
            .iter()
            .map(|(n, _)| names.iter().position(|d| d == n))
            .collect();
        if idxs.iter().any(Option::is_none) {
            continue;
        }
        let idxs: Vec<usize> = idxs.into_iter().map(|i| i.expect("checked")).collect();
        let n_new = idxs.len();
        let pos = spec
            .insert_before
            .as_ref()
            .and_then(|n| names.iter().position(|d| d == n))
            .unwrap_or(0);

        // 1. New domain: insert tile dims as a contiguous group at `pos`.
        let mut dom = stmt.domain.clone();
        for (k, (name, _)) in spec.tiles.iter().enumerate() {
            dom = dom.insert_dim(pos + k, &format!("{name}{}", spec.suffix));
        }
        // 2. Tiling constraints: iT*T <= i <= iT*T + T - 1.
        let ncols = dom.space().n_cols();
        let shifted = |o: usize| if o < pos { o } else { o + n_new };
        for (k, (&orig, (_, size))) in idxs.iter().zip(&spec.tiles).enumerate() {
            let i_col = shifted(orig);
            let t_col = pos + k;
            let mut lower = vec![0i64; ncols];
            lower[i_col] = 1;
            lower[t_col] = -size;
            dom.add_constraint(Constraint::ineq(lower)); // i - iT*T >= 0
            let mut upper = vec![0i64; ncols];
            upper[i_col] = -1;
            upper[t_col] = *size;
            upper[ncols - 1] = size - 1;
            dom.add_constraint(Constraint::ineq(upper)); // iT*T + T-1 - i >= 0
        }

        // 3. Accesses: zero columns for the new dims.
        let new_names: Vec<String> = spec
            .tiles
            .iter()
            .map(|(n, _)| format!("{n}{}", spec.suffix))
            .collect();
        let patch = |a: &Access| Access {
            array: a.array,
            map: a.map.insert_input_dims(pos, &new_names),
        };
        let write = patch(&stmt.write);
        let reads: Vec<Access> = stmt.reads.iter().map(patch).collect();

        // 4. Body: original iterator k at/after `pos` shifts by n_new.
        let body = stmt
            .body
            .map_iters(&|k| if k < pos { k } else { k + n_new });

        *stmt = Statement {
            name: stmt.name.clone(),
            domain: dom,
            write,
            reads,
            body,
        };
    }
    out.validate()?;
    Ok(out)
}

/// Convenience: the tile-iterator names a spec introduces.
pub fn tile_iter_names(spec: &TileSpec) -> Vec<String> {
    spec.tiles
        .iter()
        .map(|(n, _)| format!("{n}{}", spec.suffix))
        .collect()
}

/// Interchange loops of every statement that has all the named loops:
/// the statement's nest is reordered so the named loops appear in the
/// given order at their (sorted) original positions; unnamed loops
/// stay put. Legality is the caller's concern — loops within one
/// permutable [`Band`](super::bands::Band) are always safe, and tests
/// validate by execution.
pub fn interchange_loops(program: &Program, order: &[&str]) -> polymem_ir::Result<Program> {
    let mut out = program.clone();
    for stmt in &mut out.stmts {
        let names = stmt.domain.space().dims().to_vec();
        let idxs: Vec<Option<usize>> = order
            .iter()
            .map(|n| names.iter().position(|d| d == n))
            .collect();
        if idxs.iter().any(Option::is_none) {
            continue;
        }
        let mut targets: Vec<usize> = idxs.into_iter().map(|i| i.expect("checked")).collect();
        let sources = targets.clone();
        targets.sort_unstable();
        // perm[new position] = old position.
        let mut perm: Vec<usize> = (0..names.len()).collect();
        for (slot, src) in targets.iter().zip(&sources) {
            perm[*slot] = *src;
        }
        let domain = stmt.domain.permute_dims(&perm);
        let write = polymem_ir::Access {
            array: stmt.write.array,
            map: stmt.write.map.permute_input_dims(&perm),
        };
        let reads: Vec<polymem_ir::Access> = stmt
            .reads
            .iter()
            .map(|r| polymem_ir::Access {
                array: r.array,
                map: r.map.permute_input_dims(&perm),
            })
            .collect();
        // Body iterators: old dim `perm[new]` is now at `new`.
        let mut inv = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let body = stmt.body.map_iters(&|k| inv.get(k).copied().unwrap_or(k));
        *stmt = polymem_ir::Statement {
            name: stmt.name.clone(),
            domain,
            write,
            reads,
            body,
        };
    }
    out.validate()?;
    Ok(out)
}

/// Restrict a (tiled) statement domain to one concrete tile: fix the
/// named dims to the given values. Used to extract per-tile blocks for
/// the data-management framework and the simulator.
pub fn fix_dims(domain: &Polyhedron, fixed: &HashMap<String, i64>) -> Polyhedron {
    let mut out = domain.clone();
    let ncols = out.space().n_cols();
    let dims: Vec<String> = out.space().dims().to_vec();
    for (name, value) in fixed {
        if let Some(d) = dims.iter().position(|x| x == name) {
            let mut row = vec![0i64; ncols];
            row[d] = 1;
            row[ncols - 1] = -*value;
            out.add_constraint(Constraint::eq(row));
        }
    }
    out
}

/// Project a tiled domain onto a set of named dims (in the named
/// order) — e.g. onto the tile iterators to enumerate tiles.
pub fn project_onto_named(
    domain: &Polyhedron,
    names: &[String],
) -> polymem_poly::Result<Polyhedron> {
    let keep: Vec<usize> = names
        .iter()
        .filter_map(|n| domain.space().find_dim(n))
        .collect();
    domain.project_onto(&keep)
}

/// The space of a (possibly tiled) domain, for reference.
pub fn domain_space(domain: &Polyhedron) -> &Space {
    domain.space()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::expr::v;
    use polymem_ir::{exec_program, ArrayStore, Expr, LinExpr, ProgramBuilder};

    /// for i in [0, N-1], j in [0, N-1]: C[i][j] = A[i][j] * 2
    fn simple2d() -> Program {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.array("C", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("C", &[v("i"), v("j")])
            .read("A", &[v("i"), v("j")])
            .body(Expr::mul(Expr::Read(0), Expr::Const(2)))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn tiling_adds_dims_and_constraints() {
        let p = simple2d();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4), ("j", 4)], "T")).unwrap();
        let s = &t.stmts[0];
        assert_eq!(s.depth(), 4);
        assert_eq!(
            s.iter_names(),
            &["iT".to_string(), "jT".into(), "i".into(), "j".into()]
        );
        // (iT, jT, i, j) = (1, 0, 5, 2) valid: 4 <= 5 <= 7.
        assert!(s.domain.contains(&[1, 0, 5, 2], &[10]));
        assert!(!s.domain.contains(&[1, 0, 8, 2], &[10]));
        assert!(!s.domain.contains(&[0, 0, 5, 2], &[10]));
    }

    #[test]
    fn tiled_execution_matches_original() {
        let p = simple2d();
        let t = tile_program(&p, &TileSpec::new(&[("i", 3), ("j", 5)], "T")).unwrap();
        let params = [11i64]; // non-divisible size exercises partial tiles
        let mut st0 = ArrayStore::for_program(&p, &params).unwrap();
        st0.fill_with("A", |ix| ix[0] * 100 + ix[1]).unwrap();
        let mut st1 = st0.clone();
        exec_program(&p, &params, &mut st0).unwrap();
        exec_program(&t, &params, &mut st1).unwrap();
        assert_eq!(st0.data("C").unwrap(), st1.data("C").unwrap());
    }

    #[test]
    fn two_level_tiling_composes() {
        let p = simple2d();
        let t1 = tile_program(&p, &TileSpec::new(&[("i", 8), ("j", 8)], "T")).unwrap();
        // Second level nests *inside* the first: Fig. 3 ordering.
        let t2 = tile_program(&t1, &TileSpec::new_before(&[("i", 2), ("j", 2)], "t", "i")).unwrap();
        let s = &t2.stmts[0];
        assert_eq!(s.depth(), 6);
        assert_eq!(
            s.iter_names(),
            &[
                "iT".to_string(),
                "jT".into(),
                "it".into(),
                "jt".into(),
                "i".into(),
                "j".into()
            ]
        );
        // Execution still matches.
        let params = [9i64];
        let mut st0 = ArrayStore::for_program(&p, &params).unwrap();
        st0.fill_with("A", |ix| ix[0] * 7 + ix[1]).unwrap();
        let mut st1 = st0.clone();
        exec_program(&p, &params, &mut st0).unwrap();
        exec_program(&t2, &params, &mut st1).unwrap();
        assert_eq!(st0.data("C").unwrap(), st1.data("C").unwrap());
    }

    #[test]
    fn statements_missing_the_loops_are_untouched() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N")]);
        b.array("B", &[v("N"), v("N")]);
        b.stmt("S1")
            .loops(&[("x", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("x")])
            .body(Expr::Const(1))
            .done();
        b.stmt("S2")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("B", &[v("i"), v("j")])
            .body(Expr::Const(2))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4), ("j", 4)], "T")).unwrap();
        assert_eq!(t.stmts[0].depth(), 1); // S1 untouched
        assert_eq!(t.stmts[1].depth(), 4);
    }

    #[test]
    fn body_iterator_indices_are_shifted() {
        // Body uses Iter(0) (= i); after tiling it must still read i,
        // not iT.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .body(Expr::Iter(0))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let params = [10i64];
        let mut st = ArrayStore::for_program(&t, &params).unwrap();
        exec_program(&t, &params, &mut st).unwrap();
        let data = st.data("A").unwrap();
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as i64);
        }
    }

    #[test]
    fn interchange_preserves_semantics_and_reorders() {
        let p = simple2d();
        let x = interchange_loops(&p, &["j", "i"]).unwrap();
        assert_eq!(x.stmts[0].iter_names(), &["j".to_string(), "i".into()]);
        let params = [9i64];
        let mut st0 = ArrayStore::for_program(&p, &params).unwrap();
        st0.fill_with("A", |ix| ix[0] * 17 + ix[1]).unwrap();
        let mut st1 = st0.clone();
        exec_program(&p, &params, &mut st0).unwrap();
        exec_program(&x, &params, &mut st1).unwrap();
        assert_eq!(st0.data("C").unwrap(), st1.data("C").unwrap());
    }

    #[test]
    fn interchange_with_iterator_bodies() {
        // Body uses Iter(0) (= i); after (j, i) interchange, i is
        // iterator 1 and the remapped body must still read i.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("A", &[v("i"), v("j")])
            .body(Expr::mul(Expr::Iter(0), Expr::Const(10)))
            .done();
        let p = b.build().unwrap();
        let x = interchange_loops(&p, &["j", "i"]).unwrap();
        let mut st = ArrayStore::for_program(&x, &[4]).unwrap();
        exec_program(&x, &[4], &mut st).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(st.get("A", &[i, j]).unwrap(), i * 10);
            }
        }
    }

    #[test]
    fn interchange_skips_statements_missing_loops() {
        let p = simple2d();
        let x = interchange_loops(&p, &["i", "zz"]).unwrap();
        assert_eq!(x.stmts[0].iter_names(), p.stmts[0].iter_names());
    }

    #[test]
    fn fix_dims_and_projection_enumerate_tiles() {
        let p = simple2d();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4), ("j", 4)], "T")).unwrap();
        let dom = &t.stmts[0].domain;
        // Tile space for N = 10: iT, jT in [0, 2].
        let tiles = project_onto_named(dom, &["iT".into(), "jT".into()]).unwrap();
        let c = tiles.substitute_params(&[10]).unwrap();
        assert_eq!(polymem_poly::count::count_points(&c, 100).unwrap(), 9);
        // Fixing a tile yields its intra-tile block.
        let mut fixed = HashMap::new();
        fixed.insert("iT".to_string(), 2);
        fixed.insert("jT".to_string(), 0);
        let block = fix_dims(dom, &fixed);
        assert!(block.contains(&[2, 0, 9, 3], &[10]));
        assert!(!block.contains(&[2, 0, 7, 3], &[10]));
    }
}
