//! Computation mapping via multi-level tiling (paper §4).
//!
//! * [`bands`] — find the outermost band of permutable loops from the
//!   program's dependences and classify band loops as **space**
//!   (communication-free, distributed over parallel units) or **time**
//!   (sequential); when no loop is communication-free, all but the
//!   last band loop become space loops for pipelined execution
//!   (paper §4.1, consuming the Bondhugula-framework interface);
//! * [`transform`] — the multi-level tiling rewrite itself: each level
//!   adds tile iterators `iT` with `iT·T ≤ i ≤ iT·T + T − 1`,
//!   producing the loop structure of the paper's Fig. 3;
//! * [`placement`] — hoist data-movement code out of *redundant*
//!   tiling loops (loops no reference of the buffer depends on), so
//!   buffers are reused across the blocks those loops enumerate
//!   (§4.2);
//! * [`cost`] — the data-movement cost model
//!   `C = N · (P·S + V·L / P)` (§4.3);
//! * [`search`] — the memory-constrained tile-size optimisation: a
//!   continuous SQP-style solver over the relaxed problem plus an
//!   exact pruned discrete search, both honouring
//!   `Σ M_i ≤ M_up` and `Π t_i ≥ P`;
//! * [`sqp`] — the generic penalty/projected-gradient solver behind
//!   the continuous search.

pub mod bands;
pub mod cost;
pub mod legality;
pub mod placement;
pub mod search;
pub mod sqp;
pub mod transform;

pub use bands::{find_permutable_band, tilable_prefix, Band, LoopKind};
pub use cost::{CostModel, CostParams, FootprintModel};
pub use legality::{check_tiling, TilingViolation};
pub use placement::placement_level;
pub use search::{search_discrete, search_sqp, SearchOutcome, TileSizeProblem};
pub use transform::{interchange_loops, tile_program, TileSpec};
