//! Size-aware tiling legality validation.
//!
//! Rectangular tiling with *arbitrary* tile sizes is legal only for
//! fully permutable bands (all dependence components non-negative).
//! With *specific* tile sizes more programs qualify — the paper's ME
//! kernel tiles all four loops because its `(0, 0, +, *)` reduction
//! dependence never crosses a `(k, l)` tile boundary when the tile
//! covers the whole 16×16 window. [`check_tiling`] verifies exactly
//! this: scanning the tiled loops outermost-first, a dependence is
//! harmless when, at every level until it is *satisfied* (guaranteed
//! to cross a tile boundary forward, `Δ ≥ tile size`), its component
//! is zero, provably confined to a single tile, or non-negative; a
//! possibly-negative component before satisfaction rejects the spec.
//!
//! Single-tile confinement needs numeric loop extents, so the check
//! takes concrete parameter values; pass `None` for the
//! size-independent (fully-permutable) criterion.

use super::transform::TileSpec;
use crate::deps::compute_deps;
use polymem_ir::Program;
use polymem_poly::bounds::dim_bounds;
use polymem_poly::dep::{DepKind, DirSign};
use polymem_poly::{Constraint, Result};

/// Why a tiling was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TilingViolation {
    /// A named loop does not exist in the shared nest.
    UnknownLoop(String),
    /// The tiled loops are not the outermost prefix of the shared nest.
    NotAPrefix,
    /// A dependence can cross a tile boundary backwards.
    DependenceViolation {
        /// Array whose dependence is violated.
        array: String,
        /// The loop (index into the shared nest) where the backward
        /// crossing can occur.
        loop_idx: usize,
    },
}

impl std::fmt::Display for TilingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TilingViolation::UnknownLoop(n) => write!(f, "unknown loop `{n}`"),
            TilingViolation::NotAPrefix => {
                write!(
                    f,
                    "tiled loops must form the outermost prefix of the shared nest"
                )
            }
            TilingViolation::DependenceViolation { array, loop_idx } => write!(
                f,
                "a dependence on `{array}` can cross a tile boundary backwards at loop {loop_idx}"
            ),
        }
    }
}

/// Check a spec against a program at concrete parameter values.
///
/// Returns `Ok(Ok(()))` when rectangular tiling of the named loops
/// with the given sizes, executed in lexicographic tile order, is
/// dependence-legal.
pub fn check_tiling(
    program: &Program,
    spec: &TileSpec,
    params: Option<&[i64]>,
) -> Result<std::result::Result<(), TilingViolation>> {
    let Some(first) = program.stmts.first() else {
        return Ok(Ok(()));
    };
    let names = first.iter_names().to_vec();
    // Resolve named loops; must form the outermost prefix.
    let mut size_of = vec![None::<i64>; names.len()];
    for (n, s) in &spec.tiles {
        match names.iter().position(|d| d == n) {
            Some(i) => size_of[i] = Some(*s),
            None => return Ok(Err(TilingViolation::UnknownLoop(n.clone()))),
        }
    }
    let depth = size_of.iter().take_while(|s| s.is_some()).count();
    if depth != spec.tiles.len() {
        return Ok(Err(TilingViolation::NotAPrefix));
    }

    let deps = compute_deps(program, &[DepKind::Flow, DepKind::Anti, DepKind::Output])?;
    for pd in &deps {
        let d = &pd.dep;
        let n_src = d.n_src;
        let n_dst = d.poly.n_dims() - n_src;
        let common = depth.min(n_src).min(n_dst);
        'levels: for j in 0..common {
            let t_j = size_of[j].expect("prefix checked");
            // Satisfied: the dependence always jumps at least a full
            // tile forward at this level.
            let mut same_or_near = d.poly.clone();
            let ncols = d.poly.space().n_cols();
            let mut row = vec![0i64; ncols];
            row[n_src + j] = -1;
            row[j] = 1;
            row[ncols - 1] = t_j - 1;
            same_or_near.add_constraint(Constraint::ineq(row)); // Δ_j <= t_j - 1
            if same_or_near.is_empty()? {
                break 'levels; // always crosses forward: satisfied
            }
            // Confined: both endpoints' loop-j extents fit one aligned
            // tile (covers the ME full-window case).
            if let Some(pv) = params {
                if loop_fits_tile(program, pd.dep.src_stmt, j, t_j, pv)?
                    && loop_fits_tile(program, pd.dep.dst_stmt, j, t_j, pv)?
                {
                    continue; // Δtile_j = 0
                }
            }
            match d.direction(j)? {
                DirSign::Zero | DirSign::Empty => continue,
                DirSign::Pos => continue, // Δtile_j in {0, +}: still safe
                DirSign::Neg | DirSign::Star => {
                    return Ok(Err(TilingViolation::DependenceViolation {
                        array: d.array.clone(),
                        loop_idx: j,
                    }));
                }
            }
        }
    }
    Ok(Ok(()))
}

/// Does loop `j` of statement `stmt` span at most one aligned tile of
/// size `t` (i.e. its whole range lies in `[0, t-1]` after the
/// framework's `iT·t` alignment)? Evaluated at concrete params.
fn loop_fits_tile(
    program: &Program,
    stmt: usize,
    j: usize,
    t: i64,
    params: &[i64],
) -> Result<bool> {
    let dom = &program.stmts[stmt].domain;
    let b = dim_bounds(dom, j, 0)?;
    Ok(match b.eval_range(&[], params) {
        Some((lo, hi)) => lo >= 0 && hi < t,
        None => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, ProgramBuilder};

    fn jacobi_like() -> Program {
        let mut b = ProgramBuilder::new("jac", ["T", "N"]);
        b.array("A", &[v("T") + 1, v("N") + 2]);
        b.stmt("S")
            .loops(&[("t", LinExpr::c(1), v("T")), ("i", LinExpr::c(1), v("N"))])
            .write("A", &[v("t"), v("i")])
            .read("A", &[v("t") - 1, v("i") - 1])
            .read("A", &[v("t") - 1, v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        b.build().unwrap()
    }

    fn me_like() -> Program {
        let mut b = ProgramBuilder::new("me", ["Ni", "Nj", "W"]);
        b.array("Cur", &[v("Ni") + v("W"), v("Nj") + v("W")]);
        b.array("Sad", &[v("Ni"), v("Nj")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("Ni") - 1),
                ("j", LinExpr::c(0), v("Nj") - 1),
                ("k", LinExpr::c(0), v("W") - 1),
                ("l", LinExpr::c(0), v("W") - 1),
            ])
            .write("Sad", &[v("i"), v("j")])
            .read("Sad", &[v("i"), v("j")])
            .read("Cur", &[v("i") + v("k"), v("j") + v("l")])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn me_full_window_tiling_is_legal() {
        // The paper's configuration: (k, l) tiles cover the window, so
        // the reduction dependence never crosses a (k, l) tile.
        let p = me_like();
        let spec = TileSpec::new(&[("i", 32), ("j", 16), ("k", 16), ("l", 16)], "T");
        assert_eq!(
            check_tiling(&p, &spec, Some(&[1024, 1024, 16])).unwrap(),
            Ok(())
        );
    }

    #[test]
    fn me_sub_window_tiling_is_rejected() {
        // Tiling the window below its extent lets the (0,0,+,*)
        // reduction dependence cross an l-tile backwards.
        let p = me_like();
        let spec = TileSpec::new(&[("i", 32), ("j", 16), ("k", 8), ("l", 8)], "T");
        assert!(matches!(
            check_tiling(&p, &spec, Some(&[1024, 1024, 16])).unwrap(),
            Err(TilingViolation::DependenceViolation { loop_idx: 3, .. })
        ));
    }

    #[test]
    fn me_space_only_tiling_is_always_legal() {
        let p = me_like();
        let spec = TileSpec::new(&[("i", 32), ("j", 16)], "T");
        assert_eq!(check_tiling(&p, &spec, None).unwrap(), Ok(()));
    }

    #[test]
    fn jacobi_unskewed_time_space_tiling_is_illegal() {
        let p = jacobi_like();
        // The (1, ±1) stencil dependences make 2-D rectangular tiling
        // illegal without skewing (the reason the paper applies the
        // concurrent-start transformation first).
        let spec = TileSpec::new(&[("t", 4), ("i", 16)], "T");
        assert!(matches!(
            check_tiling(&p, &spec, Some(&[64, 256])).unwrap(),
            Err(TilingViolation::DependenceViolation { loop_idx: 1, .. })
        ));
        // Tiling only the time loop is fine.
        let spec = TileSpec::new(&[("t", 4)], "T");
        assert_eq!(check_tiling(&p, &spec, Some(&[64, 256])).unwrap(), Ok(()));
    }

    #[test]
    fn skewed_jacobi_time_space_tiling_is_legal() {
        // s = 2t + i gives dependences (1, {1,2,3}): all non-negative.
        let mut b = ProgramBuilder::new("js", ["T", "N"]);
        b.array("A", &[v("T") + 1, v("T") * 2 + v("N") + 2]);
        b.stmt("S")
            .loops(&[
                ("t", LinExpr::c(1), v("T")),
                ("s", v("t") * 2 + 1, v("t") * 2 + v("N")),
            ])
            .write("A", &[v("t"), v("s") - v("t") * 2])
            .read("A", &[v("t") - 1, v("s") - v("t") * 2 - 1])
            .read("A", &[v("t") - 1, v("s") - v("t") * 2 + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let spec = TileSpec::new(&[("t", 4), ("s", 16)], "T");
        assert_eq!(check_tiling(&p, &spec, Some(&[64, 256])).unwrap(), Ok(()));
    }

    #[test]
    fn non_prefix_and_unknown_loops_are_rejected() {
        let p = jacobi_like();
        let spec = TileSpec::new(&[("i", 4)], "T"); // skips t
        assert_eq!(
            check_tiling(&p, &spec, None).unwrap(),
            Err(TilingViolation::NotAPrefix)
        );
        let spec = TileSpec::new(&[("zz", 4)], "T");
        assert!(matches!(
            check_tiling(&p, &spec, None).unwrap(),
            Err(TilingViolation::UnknownLoop(_))
        ));
    }

    #[test]
    fn violations_render_readably() {
        let v1 = TilingViolation::UnknownLoop("q".into());
        assert!(v1.to_string().contains('q'));
        let v2 = TilingViolation::DependenceViolation {
            array: "A".into(),
            loop_idx: 1,
        };
        assert!(v2.to_string().contains("`A`"));
        assert!(TilingViolation::NotAPrefix.to_string().contains("prefix"));
    }
}
