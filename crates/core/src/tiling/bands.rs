//! Permutable-band detection and space/time classification (§4.1).
//!
//! The paper consumes the Bondhugula et al. transformation framework,
//! which delivers bands of permutable loops plus the classification of
//! band loops into space (communication-free) and time loops. polymem
//! reproduces that interface on the *given* loop order: a prefix of
//! the loops shared by all statements is a permutable band when every
//! dependence has non-negative direction components on every band
//! loop (so any interchange within the band is legal, and the band is
//! tilable). A band loop is a **space loop** when no dependence is
//! carried by it (all components zero); otherwise it is a **time
//! loop**. If the band has no space loop, all but the last band loop
//! are treated as space loops (pipelined/wavefront execution after
//! skewing, as in the paper's Jacobi treatment via its ref. \[27\]).

use crate::deps::{compute_deps, ProgDep};
use polymem_ir::Program;
use polymem_poly::dep::{DepKind, DirSign};
use polymem_poly::Result;

/// Classification of one band loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopKind {
    /// Communication-free: distributed across parallel units.
    Space,
    /// Carries dependences: executed sequentially (or pipelined).
    Time,
}

/// The outermost permutable band of a program.
#[derive(Clone, Debug)]
pub struct Band {
    /// Indices (into the shared loop prefix) of the band loops,
    /// outermost first. Always a prefix `0..len`.
    pub loops: Vec<usize>,
    /// Per-band-loop classification after the paper's rule.
    pub kinds: Vec<LoopKind>,
    /// The dependences used (for reuse by later phases).
    pub deps: Vec<ProgDep>,
}

impl Band {
    /// Indices of space loops.
    pub fn space_loops(&self) -> Vec<usize> {
        self.loops
            .iter()
            .zip(&self.kinds)
            .filter(|(_, k)| **k == LoopKind::Space)
            .map(|(l, _)| *l)
            .collect()
    }

    /// Indices of time loops within the band.
    pub fn time_loops(&self) -> Vec<usize> {
        self.loops
            .iter()
            .zip(&self.kinds)
            .filter(|(_, k)| **k == LoopKind::Time)
            .map(|(l, _)| *l)
            .collect()
    }
}

/// Number of loops shared (by name, as a prefix) by *all* statements.
fn shared_prefix_depth(program: &Program) -> usize {
    let Some(first) = program.stmts.first() else {
        return 0;
    };
    let mut depth = first.depth();
    for s in &program.stmts[1..] {
        let names = s.iter_names();
        let common = first
            .iter_names()
            .iter()
            .zip(names)
            .take_while(|(a, b)| a == b)
            .count();
        depth = depth.min(common);
    }
    depth
}

/// Find the outermost permutable band and classify its loops.
pub fn find_permutable_band(program: &Program) -> Result<Band> {
    let deps = compute_deps(program, &[DepKind::Flow, DepKind::Anti, DepKind::Output])?;
    let depth = shared_prefix_depth(program);

    // Direction sign of every dep at every shared loop.
    let mut signs: Vec<Vec<DirSign>> = Vec::with_capacity(deps.len());
    for d in &deps {
        let mut row = Vec::with_capacity(depth);
        for l in 0..depth {
            row.push(d.dep.direction(l)?);
        }
        signs.push(row);
    }

    // Outermost band: maximal prefix with all components non-negative.
    let mut band_len = 0;
    'grow: for l in 0..depth {
        for row in &signs {
            if !row[l].is_non_negative() {
                break 'grow;
            }
        }
        band_len = l + 1;
    }

    let loops: Vec<usize> = (0..band_len).collect();
    let mut kinds: Vec<LoopKind> = loops
        .iter()
        .map(|&l| {
            let carried = signs
                .iter()
                .any(|row| matches!(row[l], DirSign::Pos | DirSign::Star));
            if carried {
                LoopKind::Time
            } else {
                LoopKind::Space
            }
        })
        .collect();

    // Paper rule: with no communication-free loop in the band, all but
    // the last become space loops (pipeline parallelism).
    if !kinds.is_empty() && kinds.iter().all(|k| *k == LoopKind::Time) {
        let last = kinds.len() - 1;
        for k in kinds.iter_mut().take(last) {
            *k = LoopKind::Space;
        }
    }

    Ok(Band { loops, kinds, deps })
}

/// Largest prefix of the shared loops on which every dependence
/// distance is lexicographically non-negative.
///
/// This is a *necessary* condition for tiling the prefix in the given
/// order and an upper bound on how deep any tiling can go; it is not
/// sufficient for arbitrary tile sizes (a `(+, -)` distance is
/// lex-positive yet forbids 2-D rectangular tiling). The size-aware
/// authority is [`super::legality::check_tiling`], which additionally
/// accounts for tile-boundary crossings — e.g. the ME reduction's
/// `(0, 0, +, *)` dependence admits the paper's Fig. 3 tiling only
/// because its `(k, l)` tiles cover the whole window.
pub fn tilable_prefix(program: &Program) -> Result<usize> {
    let deps = compute_deps(program, &[DepKind::Flow, DepKind::Anti, DepKind::Output])?;
    let depth = shared_prefix_depth(program);
    let mut m = depth;
    for d in &deps {
        let n_src = d.dep.n_src;
        let ncols = d.dep.poly.space().n_cols();
        // Find the first depth j at which the distance can be
        // lex-negative: Δ_0 = … = Δ_{j-1} = 0 and Δ_j <= -1.
        let mut probe = d.dep.poly.clone();
        for j in 0..depth.min(n_src).min(d.dep.poly.n_dims() - n_src) {
            // Can Δ_j be negative with all earlier components zero?
            let mut neg = probe.clone();
            let mut row = vec![0i64; ncols];
            row[n_src + j] = -1;
            row[j] = 1;
            row[ncols - 1] = -1;
            neg.add_constraint(polymem_poly::Constraint::ineq(row));
            if !neg.is_empty()? {
                m = m.min(j);
                break;
            }
            // Pin Δ_j = 0 and continue deeper.
            let mut row = vec![0i64; ncols];
            row[n_src + j] = 1;
            row[j] = -1;
            probe.add_constraint(polymem_poly::Constraint::eq(row));
            if probe.is_empty()? {
                break; // distance strictly positive here: dep satisfied
            }
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, ProgramBuilder};

    /// Fig. 2 shape: FORALL i, j; FOR k, l — fully parallel i, j.
    fn me_like() -> polymem_ir::Program {
        let mut b = ProgramBuilder::new("me", ["Ni", "Nj", "W"]);
        b.array("Cur", &[v("Ni") + 16, v("Nj") + 16]);
        b.array("Ref", &[v("Ni") + 32, v("Nj") + 32]);
        b.array("Sad", &[v("Ni"), v("Nj")]);
        b.stmt("S1")
            .loops(&[
                ("i", LinExpr::c(0), v("Ni") - 1),
                ("j", LinExpr::c(0), v("Nj") - 1),
                ("k", LinExpr::c(0), v("W") - 1),
                ("l", LinExpr::c(0), v("W") - 1),
            ])
            .write("Sad", &[v("i"), v("j")])
            .read("Sad", &[v("i"), v("j")])
            .read("Cur", &[v("i") + v("k"), v("j") + v("l")])
            .read("Ref", &[v("i") + v("k"), v("j") + v("l")])
            .body(Expr::add(
                Expr::Read(0),
                Expr::abs(Expr::sub(Expr::Read(1), Expr::Read(2))),
            ))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn me_kernel_has_parallel_space_loops() {
        let p = me_like();
        let band = find_permutable_band(&p).unwrap();
        assert!(band.loops.len() >= 2);
        assert_eq!(band.kinds[0], LoopKind::Space);
        assert_eq!(band.kinds[1], LoopKind::Space);
        assert_eq!(band.space_loops()[..2], [0, 1]);
    }

    /// Skewed Jacobi-like: for t, for i: A[t][i] = A[t-1][i-1] +
    /// A[t-1][i] + A[t-1][i+1] with i skewed by t would be
    /// pipelined; unskewed, the t loop carries everything and i is
    /// parallel.
    fn jacobi_unskewed() -> polymem_ir::Program {
        let mut b = ProgramBuilder::new("jacobi", ["T", "N"]);
        b.array("A", &[v("T") + 1, v("N") + 2]);
        b.stmt("S")
            .loops(&[("t", LinExpr::c(1), v("T")), ("i", LinExpr::c(1), v("N"))])
            .write("A", &[v("t"), v("i")])
            .read("A", &[v("t") - 1, v("i") - 1])
            .read("A", &[v("t") - 1, v("i")])
            .read("A", &[v("t") - 1, v("i") + 1])
            .body(Expr::div(
                Expr::add(Expr::add(Expr::Read(0), Expr::Read(1)), Expr::Read(2)),
                Expr::Const(3),
            ))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn unskewed_jacobi_band_stops_at_star_component() {
        let p = jacobi_unskewed();
        let band = find_permutable_band(&p).unwrap();
        // t has direction +, i has direction * (A[t-1][i+1] gives
        // negative i-distance): band = [t] only, which then becomes a
        // pipelined... single-loop band: all-time rule keeps last as
        // time, so zero space loops here.
        assert_eq!(band.loops, vec![0]);
        assert_eq!(band.kinds, vec![LoopKind::Time]);
        assert!(band.space_loops().is_empty());
    }

    /// Skewed Jacobi: i' = 2t + i makes all dependence components
    /// non-negative on (t, i'), giving a 2-loop fully-time band →
    /// pipeline rule marks t as space.
    fn jacobi_skewed() -> polymem_ir::Program {
        let mut b = ProgramBuilder::new("jacobi_skew", ["T", "N"]);
        b.array("A", &[v("T") + 1, v("T") * 2 + v("N") + 2]);
        b.stmt("S")
            .loops(&[
                ("t", LinExpr::c(1), v("T")),
                ("s", v("t") * 2 + 1, v("t") * 2 + v("N")),
            ])
            .write("A", &[v("t"), v("s") - v("t") * 2])
            .read("A", &[v("t") - 1, v("s") - v("t") * 2 - 1])
            .read("A", &[v("t") - 1, v("s") - v("t") * 2])
            .read("A", &[v("t") - 1, v("s") - v("t") * 2 + 1])
            .body(Expr::div(
                Expr::add(Expr::add(Expr::Read(0), Expr::Read(1)), Expr::Read(2)),
                Expr::Const(3),
            ))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn skewed_jacobi_gets_pipelined_space_loop() {
        let p = jacobi_skewed();
        let band = find_permutable_band(&p).unwrap();
        assert_eq!(band.loops, vec![0, 1]);
        // Both carry deps → all-time → pipeline rule: first is space.
        assert_eq!(band.kinds, vec![LoopKind::Space, LoopKind::Time]);
        assert_eq!(band.space_loops(), vec![0]);
        assert_eq!(band.time_loops(), vec![1]);
    }

    #[test]
    fn empty_program_has_empty_band() {
        let b = ProgramBuilder::new("empty", ["N"]);
        let p = b.build().unwrap();
        let band = find_permutable_band(&p).unwrap();
        assert!(band.loops.is_empty());
    }
}
