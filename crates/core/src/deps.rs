//! Program-level dependence analysis.
//!
//! Enumerates all access pairs of a [`Program`] that can induce data
//! dependences (flow: write→read, anti: read→write, output:
//! write→write) and builds their dependence polyhedra via
//! [`polymem_poly::dep`]. Shared by tiling legality
//! ([`crate::tiling::bands`]) and the §3.1.4 copy minimisation
//! ([`crate::smem::liveness`]).

use crate::smem::AccessId;
use polymem_ir::Program;
use polymem_poly::dep::{dependence_polyhedra, DepKind, Dependence};
use polymem_poly::Result;

/// A dependence annotated with the accesses that induce it.
#[derive(Clone, Debug)]
pub struct ProgDep {
    /// The polyhedral dependence (src/dst instance pairs).
    pub dep: Dependence,
    /// The source access.
    pub src_access: AccessId,
    /// The target access.
    pub dst_access: AccessId,
}

/// Compute all dependences of the given kinds.
///
/// Textual order: statement `s` precedes `t` inside their common loops
/// iff `s < t` in program order; for `s == t` the write is considered
/// to execute after the reads of the same instance (so a same-instance
/// read→write pair is not an anti dependence, and write→read within
/// one instance is not flow).
pub fn compute_deps(program: &Program, kinds: &[DepKind]) -> Result<Vec<ProgDep>> {
    let mut out = Vec::new();
    let n = program.stmts.len();
    for src in 0..n {
        for dst in 0..n {
            let common = program.common_depth(src, dst);
            let s = &program.stmts[src];
            let t = &program.stmts[dst];
            for kind in kinds {
                // Collect the (src access, dst access) pairs for this kind.
                let pairs: Vec<(AccessId, &polymem_ir::Access, AccessId, &polymem_ir::Access)> =
                    match kind {
                        DepKind::Flow => t
                            .reads
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.array == s.write.array)
                            .map(|(k, r)| {
                                (AccessId::write(src), &s.write, AccessId::read(dst, k), r)
                            })
                            .collect(),
                        DepKind::Anti => s
                            .reads
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.array == t.write.array)
                            .map(|(k, r)| {
                                (AccessId::read(src, k), r, AccessId::write(dst), &t.write)
                            })
                            .collect(),
                        DepKind::Output => {
                            if s.write.array == t.write.array {
                                vec![(
                                    AccessId::write(src),
                                    &s.write,
                                    AccessId::write(dst),
                                    &t.write,
                                )]
                            } else {
                                vec![]
                            }
                        }
                        DepKind::Input => t
                            .reads
                            .iter()
                            .enumerate()
                            .flat_map(|(tk, tr)| {
                                s.reads
                                    .iter()
                                    .enumerate()
                                    .filter(move |(_, sr)| sr.array == tr.array)
                                    .map(move |(sk, sr)| {
                                        (AccessId::read(src, sk), sr, AccessId::read(dst, tk), tr)
                                    })
                            })
                            .collect(),
                    };
                for (src_id, src_acc, dst_id, dst_acc) in pairs {
                    // Within one statement instance, reads happen
                    // before the write: the loop-independent level
                    // exists for flow/input when src < dst textually,
                    // for anti when src <= dst (read before write of
                    // the same instance), for output when src < dst.
                    let textual_before = match kind {
                        DepKind::Anti => src <= dst,
                        _ => src < dst,
                    };
                    let array = program.arrays[match kind {
                        DepKind::Anti => t.write.array,
                        _ => s.write.array,
                    }]
                    .name
                    .clone();
                    let array = if matches!(kind, DepKind::Input) {
                        program.arrays[dst_acc.array].name.clone()
                    } else {
                        array
                    };
                    let deps = dependence_polyhedra(
                        *kind,
                        src,
                        dst,
                        &array,
                        &s.domain,
                        &t.domain,
                        &src_acc.map,
                        &dst_acc.map,
                        common,
                        textual_before,
                    )?;
                    for dep in deps {
                        out.push(ProgDep {
                            dep,
                            src_access: src_id,
                            dst_access: dst_id,
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, ProgramBuilder};
    use polymem_poly::dep::DirSign;

    /// for i in [1, N-1]: A[i] = A[i-1] + A[i]
    fn scan_program() -> polymem_ir::Program {
        let mut b = ProgramBuilder::new("scan", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(1), v("N") - 1)])
            .write("A", &[v("i")])
            .read("A", &[v("i") - 1])
            .read("A", &[v("i")])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn flow_dependence_found_with_distance_one() {
        let p = scan_program();
        let deps = compute_deps(&p, &[DepKind::Flow]).unwrap();
        // A[i] -> A[i-1] at i+1 is the carried flow dep; A[i] -> A[i]
        // same-instance is excluded (read happens before write).
        assert!(!deps.is_empty());
        for d in &deps {
            assert_eq!(d.dep.kind, DepKind::Flow);
            assert!(d.dep.direction(0).unwrap().is_non_negative());
        }
        assert!(deps
            .iter()
            .any(|d| d.dep.direction(0).unwrap() == DirSign::Pos));
    }

    #[test]
    fn anti_dependence_between_read_and_later_write() {
        let p = scan_program();
        let deps = compute_deps(&p, &[DepKind::Anti]).unwrap();
        // Reading A[i] at i, writing A[i] at the same instance: the
        // same-instance anti "dependence" is level-equal and allowed
        // (read before write); carried anti deps: A[i-1]? writes at
        // i-1 happen *before* the read at i, so anti goes from read
        // A[i] at i to write A[i] at ... there is no later write to
        // the same element: writes A[i] happen at iteration i only.
        // So all anti deps are same-instance (Zero) only.
        for d in &deps {
            assert_eq!(d.dep.direction(0).unwrap(), DirSign::Zero);
        }
    }

    #[test]
    fn output_deps_absent_for_single_assignment() {
        let p = scan_program();
        let deps = compute_deps(&p, &[DepKind::Output]).unwrap();
        // Each element written exactly once: no output dependences.
        assert!(deps.is_empty());
    }

    #[test]
    fn independent_statements_have_no_deps() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N")]);
        b.array("B", &[v("N")]);
        b.stmt("S1")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .body(Expr::Const(1))
            .done();
        b.stmt("S2")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("B", &[v("i")])
            .body(Expr::Const(2))
            .done();
        let p = b.build().unwrap();
        let deps = compute_deps(&p, &[DepKind::Flow, DepKind::Anti, DepKind::Output]).unwrap();
        assert!(deps.is_empty());
    }

    #[test]
    fn producer_consumer_flow_across_statements() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N")]);
        b.array("B", &[v("N")]);
        b.stmt("S1")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .body(Expr::Const(1))
            .done();
        b.stmt("S2")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("B", &[v("i")])
            .read("A", &[v("i")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let deps = compute_deps(&p, &[DepKind::Flow]).unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].src_access, AccessId::write(0));
        assert_eq!(deps[0].dst_access, AccessId::read(1, 0));
        assert_eq!(deps[0].dep.direction(0).unwrap(), DirSign::Zero);
    }
}
