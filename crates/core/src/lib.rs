//! The paper's contribution: automatic scratchpad data management and
//! multi-level tiling.
//!
//! `polymem-core` implements both halves of Baskaran et al.
//! (PPoPP 2008) on top of the polyhedral substrate crates:
//!
//! * [`smem`] — **automatic data management in scratchpad memories**
//!   (paper §3): per-reference data spaces, partitioning into maximal
//!   disjoint groups, the Algorithm 1 reuse-benefit test, Algorithm 2
//!   local-buffer allocation with parametric bounds, local access
//!   function rewriting (`F'(y) − g`), generation of single-transfer
//!   move-in/move-out code, moved-volume upper bounds, and the §3.1.4
//!   dependence-based copy-in/copy-out minimisation (future work in
//!   the paper, implemented here as an extension);
//! * [`tiling`] — **computation mapping via multi-level tiling**
//!   (paper §4): permutable-band detection and space/time loop
//!   classification, the multi-level tiling transformation itself
//!   (Fig. 3 shape), data-movement placement/hoisting past redundant
//!   loops, the data-movement cost model
//!   `C = N·(P·S + V·L/P)`, and the memory-constrained tile-size
//!   search (§4.3) with both a continuous SQP-style solver and an
//!   exact pruned discrete search.

pub mod deps;
pub mod emit;
pub mod smem;
pub mod tiling;

pub use smem::{
    analyze_program, AccessId, BufferId, LocalBuffer, ReuseDecision, SmemConfig, SmemError,
    SmemPlan,
};
pub use tiling::{
    find_permutable_band, tile_program, Band, CostModel, CostParams, LoopKind, SearchOutcome,
    TileSizeProblem,
};
