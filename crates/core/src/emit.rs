//! Emission of the transformed block as C/CUDA-like source text.
//!
//! The paper's system emitted CUDA kernels compiled by nvcc; polymem's
//! backend is its own simulator, but for inspection, documentation and
//! golden tests this module renders the *same artefact*: the staged
//! program with local buffer declarations, move-in code, the compute
//! nest with rewritten accesses, and move-out code — optionally in
//! CUDA flavour (`__global__`, `__shared__`, `blockIdx`/`threadIdx`
//! bindings for the block/thread-mapped dimensions).
//!
//! This is a pretty-printer over the compiler's actual data structures
//! (the emitted subscripts are the very `LocalAccess` functions the
//! simulator executes), not a separate code path.

use crate::smem::{AccessId, SmemPlan};
use polymem_ir::{Expr, Program};
use polymem_poly::bounds::dim_bounds;

/// Flavour and mapping options for emission.
#[derive(Clone, Debug, Default)]
pub struct EmitOptions {
    /// CUDA flavour: kernel signature, `__shared__` buffers, and
    /// `blockIdx`/`threadIdx` bindings.
    pub cuda: bool,
    /// Dims bound to `blockIdx.{x,y,z}` (outermost dims of the tiled
    /// program). Ignored unless `cuda`.
    pub block_dims: Vec<String>,
    /// Dims distributed across `threadIdx.{x,y,z}`.
    pub thread_dims: Vec<String>,
}

/// Render the staged block: buffers, move-in, rewritten compute nest,
/// move-out. With `EmitOptions::cuda` the output is a CUDA-like kernel.
pub fn emit_staged(program: &Program, plan: &SmemPlan, opts: &EmitOptions) -> String {
    let mut out = String::new();
    let params = &program.params;
    let mut indent = 0usize;
    let pad = |n: usize| "  ".repeat(n);

    if opts.cuda {
        let mut args: Vec<String> = params.iter().map(|p| format!("int {p}")).collect();
        args.extend(program.arrays.iter().map(|a| format!("int *{}", a.name)));
        out.push_str(&format!(
            "__global__ void {}_kernel({}) {{\n",
            program.name,
            args.join(", ")
        ));
        indent = 1;
        for (k, d) in opts.block_dims.iter().enumerate() {
            let axis = ["x", "y", "z"].get(k).copied().unwrap_or("w");
            out.push_str(&format!("{}int {d} = blockIdx.{axis};\n", pad(indent)));
        }
    }

    // Buffer declarations.
    for buf in &plan.buffers {
        let qual = if opts.cuda { "__shared__ int " } else { "" };
        out.push_str(&format!(
            "{}{}{}\n",
            pad(indent),
            qual,
            buf.render_decl(params)
        ));
    }
    out.push('\n');

    // Move-in code.
    for mc in &plan.movement {
        let buf = &plan.buffers[mc.buffer];
        out.push_str(&format!(
            "{}/* move in: {} -> L{} */\n",
            pad(indent),
            buf.array_name,
            buf.array_name
        ));
        out.push_str(&indent_text(
            &mc.move_in.to_c(params, &copy_leaf(buf, true)),
            indent,
        ));
    }
    if opts.cuda && !plan.movement.is_empty() {
        out.push_str(&format!("{}__syncthreads();\n", pad(indent)));
    }
    out.push('\n');

    // Compute nests, one per statement, with rewritten accesses.
    for (si, stmt) in program.stmts.iter().enumerate() {
        out.push_str(&format!("{}/* {} */\n", pad(indent), stmt.name));
        let dims = stmt.domain.space().dims().to_vec();
        let mut level = indent;
        for (d, name) in dims.iter().enumerate() {
            if opts.cuda && opts.block_dims.contains(name) {
                continue; // bound from blockIdx above
            }
            let annot = if opts.thread_dims.contains(name) {
                "  /* FORALL: threadIdx */"
            } else {
                ""
            };
            let Ok(b) = dim_bounds(&stmt.domain, d, d) else {
                continue;
            };
            let wrap = |terms: &[polymem_poly::AffineForm], f: &str| {
                let rendered: Vec<String> = terms
                    .iter()
                    .map(|t| t.display(&dims[..d], params))
                    .collect();
                if rendered.len() == 1 {
                    rendered.into_iter().next().expect("len checked")
                } else {
                    format!("{f}({})", rendered.join(", "))
                }
            };
            let lb = wrap(&b.lower.terms, "max");
            let ub = wrap(&b.upper.terms, "min");
            out.push_str(&format!(
                "{}for ({name} = {lb}; {name} <= {ub}; {name}++) {{{annot}\n",
                pad(level)
            ));
            level += 1;
        }
        // Body: lhs = f(reads) with rewritten references.
        let lhs = render_ref(program, plan, si, None);
        let rhs = render_body(program, plan, si, &stmt.body);
        out.push_str(&format!("{}{lhs} = {rhs};\n", pad(level)));
        while level > indent {
            level -= 1;
            out.push_str(&format!("{}}}\n", pad(level)));
        }
    }
    out.push('\n');

    // Move-out code.
    if opts.cuda && !plan.movement.is_empty() {
        out.push_str(&format!("{}__syncthreads();\n", pad(indent)));
    }
    for mc in &plan.movement {
        let buf = &plan.buffers[mc.buffer];
        out.push_str(&format!(
            "{}/* move out: L{} -> {} */\n",
            pad(indent),
            buf.array_name,
            buf.array_name
        ));
        out.push_str(&indent_text(
            &mc.move_out.to_c(params, &copy_leaf(buf, false)),
            indent,
        ));
    }

    if opts.cuda {
        out.push_str("}\n");
    }
    out
}

/// Leaf renderer for copy code: `L<A>[..-g] = A[..]` or the reverse.
/// The scanned loop variables are named `<array>_<dim>` by the data
/// space construction.
fn copy_leaf(buf: &crate::smem::LocalBuffer, move_in: bool) -> impl Fn(usize) -> String + '_ {
    move |_| {
        let a = &buf.array_name;
        let global: String = (0..buf.n_array_dims)
            .map(|d| format!("[{a}_{d}]"))
            .collect();
        let none: Vec<String> = Vec::new();
        let local: String = buf
            .kept_dims
            .iter()
            .zip(&buf.bounds)
            .map(|(&d, b)| format!("[{a}_{d} - ({})]", b.display_lower(&none)))
            .collect();
        if move_in {
            format!("L{a}{local} = {a}{global};")
        } else {
            format!("{a}{global} = L{a}{local};")
        }
    }
}

/// Render one reference: rewritten to its local buffer when staged,
/// the original global access otherwise.
fn render_ref(program: &Program, plan: &SmemPlan, stmt: usize, read_idx: Option<usize>) -> String {
    let id = AccessId { stmt, read_idx };
    if let Some(la) = plan.rewrites.get(&id) {
        return la.render(&plan.buffers[la.buffer], &program.params);
    }
    let s = &program.stmts[stmt];
    let acc = match read_idx {
        None => &s.write,
        Some(k) => &s.reads[k],
    };
    program.render_access(acc)
}

/// Render the statement body over rewritten read references.
fn render_body(program: &Program, plan: &SmemPlan, stmt: usize, e: &Expr) -> String {
    let go = |x: &Expr| render_body(program, plan, stmt, x);
    match e {
        Expr::Read(k) => render_ref(program, plan, stmt, Some(*k)),
        Expr::Iter(k) => program.stmts[stmt]
            .domain
            .space()
            .dims()
            .get(*k)
            .cloned()
            .unwrap_or_else(|| format!("iter{k}")),
        Expr::Param(k) => program
            .params
            .get(*k)
            .cloned()
            .unwrap_or_else(|| format!("param{k}")),
        Expr::Const(c) => c.to_string(),
        Expr::Add(a, b) => format!("({} + {})", go(a), go(b)),
        Expr::Sub(a, b) => format!("({} - {})", go(a), go(b)),
        Expr::Mul(a, b) => format!("({} * {})", go(a), go(b)),
        Expr::Div(a, b) => format!("({} / {})", go(a), go(b)),
        Expr::Min(a, b) => format!("min({}, {})", go(a), go(b)),
        Expr::Max(a, b) => format!("max({}, {})", go(a), go(b)),
        Expr::Abs(a) => format!("abs({})", go(a)),
    }
}

fn indent_text(text: &str, levels: usize) -> String {
    let pad = "  ".repeat(levels);
    text.lines().map(|l| format!("{pad}{l}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::{analyze_program, SmemConfig};
    use polymem_ir::expr::v;
    use polymem_ir::{LinExpr, ProgramBuilder};

    fn window_program() -> Program {
        let mut b = ProgramBuilder::new("win", ["N"]);
        b.array("A", &[v("N") + 1]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        b.build().unwrap()
    }

    fn plan_for(p: &Program) -> SmemPlan {
        analyze_program(
            p,
            &SmemConfig {
                sample_params: vec![16],
                ..SmemConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn plain_emission_contains_all_phases() {
        let p = window_program();
        let plan = plan_for(&p);
        let text = emit_staged(&p, &plan, &EmitOptions::default());
        assert!(text.contains("LA["), "{text}");
        assert!(text.contains("/* move in: A -> LA */"), "{text}");
        assert!(text.contains("/* move out"), "{text}");
        assert!(text.contains("LA[i - (0)]"), "{text}");
        assert!(text.contains("for (i = 0; i <= N - 1; i++)"), "{text}");
    }

    #[test]
    fn cuda_emission_has_kernel_scaffolding() {
        let p = window_program();
        let plan = plan_for(&p);
        let opts = EmitOptions {
            cuda: true,
            block_dims: vec![],
            thread_dims: vec!["i".into()],
        };
        let text = emit_staged(&p, &plan, &opts);
        assert!(
            text.contains("__global__ void win_kernel(int N, int *A, int *Out)"),
            "{text}"
        );
        assert!(text.contains("__shared__ int LA["), "{text}");
        assert!(text.contains("__syncthreads();"), "{text}");
        assert!(text.contains("/* FORALL: threadIdx */"), "{text}");
        assert!(text.trim_end().ends_with('}'), "{text}");
    }

    #[test]
    fn block_dims_bind_to_blockidx() {
        use crate::tiling::transform::{tile_program, TileSpec};
        let p = window_program();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let plan = plan_for(&t);
        let opts = EmitOptions {
            cuda: true,
            block_dims: vec!["iT".into()],
            thread_dims: vec!["i".into()],
        };
        let text = emit_staged(&t, &plan, &opts);
        assert!(text.contains("int iT = blockIdx.x;"), "{text}");
        // The iT loop must not be emitted as a for loop.
        assert!(!text.contains("for (iT"), "{text}");
    }

    #[test]
    fn unstaged_references_render_globally() {
        // Prevent staging entirely: delta high, no rank-deficiency...
        // simplest: empty rewrites by using a plan from a program where
        // nothing is beneficial.
        let mut b = ProgramBuilder::new("nostage", ["N"]);
        b.array("A", &[v("N")]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let plan = plan_for(&p); // single non-overlapping refs: no buffers
        assert!(plan.buffers.is_empty());
        let text = emit_staged(&p, &plan, &EmitOptions::default());
        assert!(text.contains("Out[i] = A[i];"), "{text}");
    }
}
