//! Local access-function rewriting (paper §3.1.2).
//!
//! For a reference `A[F(y)]` whose partition got a local buffer, the
//! local reference is `L[F'(y) − g]`: `F'` keeps only the rows of `F`
//! for dimensions present in the buffer, and `g = (lb_1, …, lb_n)` is
//! the buffer's offset vector. Offsets are evaluated per parameter
//! value at execution time and rendered symbolically in generated
//! code.

use super::alloc::LocalBuffer;
use super::dataspace::RefInfo;
use super::{BufferId, Result};
use polymem_poly::{AffineMap, Space};

/// A rewritten (local-buffer) reference.
#[derive(Clone, Debug)]
pub struct LocalAccess {
    /// The buffer this reference now targets.
    pub buffer: BufferId,
    /// `F'`: the original access map restricted to the buffer's kept
    /// dimensions (before offset subtraction).
    pub map: AffineMap,
}

impl LocalAccess {
    /// The local index at a concrete iteration point:
    /// `F'(y) − g(params)`.
    pub fn local_index(
        &self,
        buffer: &LocalBuffer,
        iter: &[i64],
        params: &[i64],
    ) -> Result<Vec<i64>> {
        let raw = self.map.apply(iter, params)?;
        let g = buffer.offsets(params)?;
        Ok(raw.iter().zip(&g).map(|(x, o)| x - o).collect())
    }

    /// Render the local reference, e.g. `LA[i - 10][j + 1 - 11]`.
    pub fn render(&self, buffer: &LocalBuffer, param_names: &[String]) -> String {
        let mut s = format!("L{}", buffer.array_name);
        let in_space = self.map.in_space();
        let m = self.map.matrix();
        for r in 0..self.map.n_out() {
            let mut sub = String::new();
            for j in 0..in_space.n_dims() {
                append(&mut sub, m[(r, j)], in_space.dim_name(j));
            }
            for j in 0..in_space.n_params() {
                append(
                    &mut sub,
                    m[(r, in_space.n_dims() + j)],
                    in_space.param_name(j),
                );
            }
            let k = m[(r, in_space.n_cols() - 1)];
            if k != 0 || sub.is_empty() {
                if sub.is_empty() {
                    sub = k.to_string();
                } else if k > 0 {
                    sub.push_str(&format!(" + {k}"));
                } else {
                    sub.push_str(&format!(" - {}", -k));
                }
            }
            let lb = buffer.bounds[r].display_lower(param_names);
            s.push_str(&format!("[{sub} - ({lb})]"));
        }
        s
    }
}

fn append(s: &mut String, c: i64, name: &str) {
    if c == 0 {
        return;
    }
    if s.is_empty() {
        if c == -1 {
            s.push('-');
        } else if c != 1 {
            s.push_str(&format!("{c}*"));
        }
    } else if c > 0 {
        s.push_str(" + ");
        if c != 1 {
            s.push_str(&format!("{c}*"));
        }
    } else {
        s.push_str(" - ");
        if c != -1 {
            s.push_str(&format!("{}*", -c));
        }
    }
    s.push_str(name);
}

/// Derive the local access function for one original reference
/// (the `F → F'` row selection of §3.1.2).
pub fn rewrite_access(buffer: &LocalBuffer, r: &RefInfo) -> Result<LocalAccess> {
    let out_space = Space::new(
        buffer
            .kept_dims
            .iter()
            .map(|&d| format!("l{}_{d}", buffer.array_name)),
        r.map.in_space().params().to_vec(),
    );
    let map = r.map.select_outputs(&buffer.kept_dims, out_space);
    Ok(LocalAccess {
        buffer: buffer.id,
        map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::alloc::allocate_buffer;
    use crate::smem::dataspace::collect_refs;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};

    fn window_program() -> Program {
        // for i in [10, 14]: Out[i - 10] = A[i + 1]
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[LinExpr::c(100)]);
        b.array("Out", &[LinExpr::c(100)]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(10), LinExpr::c(14))])
            .write("Out", &[v("i") - 10])
            .read("A", &[v("i") + 1])
            .body(Expr::Read(0))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn local_index_subtracts_offset() {
        let p = window_program();
        let ai = p.array_index("A").unwrap();
        let refs = collect_refs(&p, ai).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let buf = allocate_buffer(&p, ai, 0, &members).unwrap();
        // Data space of A[i+1] is [11, 15]: offset 11.
        assert_eq!(buf.offsets(&[0]).unwrap(), vec![11]);
        let la = rewrite_access(&buf, &refs[0]).unwrap();
        // At i = 12: global index 13, local index 13 - 11 = 2.
        assert_eq!(la.local_index(&buf, &[12], &[0]).unwrap(), vec![2]);
        // First iteration maps to local 0.
        assert_eq!(la.local_index(&buf, &[10], &[0]).unwrap(), vec![0]);
    }

    #[test]
    fn rewrite_drops_degenerate_dims() {
        // D[i][i]: buffer keeps dim 0 only; F' is the first row.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("D", &[v("N"), v("N")]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("D", &[v("i"), v("i")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let di = p.array_index("D").unwrap();
        let refs = collect_refs(&p, di).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let buf = allocate_buffer(&p, di, 0, &members).unwrap();
        let la = rewrite_access(&buf, &refs[0]).unwrap();
        assert_eq!(la.map.n_out(), 1);
        assert_eq!(la.local_index(&buf, &[7], &[9]).unwrap(), vec![7]);
    }

    #[test]
    fn rendering_matches_paper_shape() {
        let p = window_program();
        let ai = p.array_index("A").unwrap();
        let refs = collect_refs(&p, ai).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let buf = allocate_buffer(&p, ai, 0, &members).unwrap();
        let la = rewrite_access(&buf, &refs[0]).unwrap();
        let r = la.render(&buf, &p.params);
        assert_eq!(r, "LA[i + 1 - (11)]");
    }
}
