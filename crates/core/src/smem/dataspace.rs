//! Per-reference data spaces.
//!
//! For each reference `F` to an array in statement `S` with iteration
//! polytope `I`, the data space is the affine image `F·I` — "the set
//! of elements accessed by the affine reference" (paper §2). This
//! module collects, for one array, every reference in the block with
//! its data space and reuse rank information; the rest of the pipeline
//! consumes these [`RefInfo`]s.

use super::Result;
use polymem_ir::Program;
use polymem_linalg::IMat;
use polymem_poly::{AffineMap, ConstraintKind, Polyhedron};

/// Identity of one array reference in a program block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AccessId {
    /// Statement index.
    pub stmt: usize,
    /// `None` = the write access; `Some(k)` = the k-th read.
    pub read_idx: Option<usize>,
}

impl AccessId {
    /// The write access of statement `stmt`.
    pub fn write(stmt: usize) -> AccessId {
        AccessId {
            stmt,
            read_idx: None,
        }
    }

    /// The `k`-th read access of statement `stmt`.
    pub fn read(stmt: usize, k: usize) -> AccessId {
        AccessId {
            stmt,
            read_idx: Some(k),
        }
    }

    /// True iff this is a write access.
    pub fn is_write(&self) -> bool {
        self.read_idx.is_none()
    }
}

/// One reference to the array under analysis, with its data space.
#[derive(Clone, Debug)]
pub struct RefInfo {
    /// Which reference this is.
    pub id: AccessId,
    /// The access function (subscript map).
    pub map: AffineMap,
    /// The data space `F·I` (dims = array dims, params = program params).
    pub data_space: Polyhedron,
    /// `rank(F)` restricted to the affine hull of the iteration
    /// domain (dims pinned by equality constraints contribute 0).
    pub rank: usize,
    /// Dimensionality of the affine hull of the statement's iteration
    /// domain (raw dims minus independent equality-pinned directions).
    pub iter_dims: usize,
}

impl RefInfo {
    /// The paper's Condition (1): `rank(F) < dim(is)` — the reference
    /// touches each element Ω(trip-count) times ("order of magnitude"
    /// reuse).
    pub fn has_order_of_magnitude_reuse(&self) -> bool {
        self.rank < self.iter_dims
    }
}

/// Dimensionality of the affine hull of `domain` and the rank of
/// `map` restricted to it. Raw column counts over-state both when a
/// view pins dims with equality constraints (e.g. the executor's
/// per-block restriction of a tiled program): a pinned dim is a
/// degenerate direction with no trips, so it must fire neither side of
/// Condition (1). With `E` the dim-part of the equality rows and `F`
/// the dim-part of the access, the hull has dimension
/// `n − rank(E)` and `F` restricted to `null(E)` has rank
/// `rank([F; E]) − rank(E)`.
fn effective_dims_and_rank(domain: &Polyhedron, map: &AffineMap) -> Result<(usize, usize)> {
    let space = domain.space();
    let n = space.n_dims();
    let rank_of = |rows: &[Vec<i64>]| -> Result<usize> {
        if rows.is_empty() || n == 0 {
            return Ok(0);
        }
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        Ok(IMat::from_rows(&refs)
            .rank()
            .map_err(polymem_poly::PolyError::from)?)
    };
    let eq_rows: Vec<Vec<i64>> = domain
        .constraints()
        .iter()
        .filter(|c| c.kind == ConstraintKind::Eq)
        .map(|c| (0..n).map(|d| c.coeff(space.dim_col(d))).collect())
        .collect();
    let e_rank = rank_of(&eq_rows)?;
    let m = map.matrix();
    let mut stacked: Vec<Vec<i64>> = (0..m.rows())
        .map(|r| (0..n).map(|d| m[(r, space.dim_col(d))]).collect())
        .collect();
    stacked.extend(eq_rows);
    let f_rank = rank_of(&stacked)?.saturating_sub(e_rank);
    Ok((n - e_rank, f_rank))
}

/// Collect every reference to array `array_idx` in the block.
pub fn collect_refs(program: &Program, array_idx: usize) -> Result<Vec<RefInfo>> {
    let mut out = Vec::new();
    for (si, stmt) in program.stmts.iter().enumerate() {
        let mut push = |id: AccessId, map: &AffineMap| -> Result<()> {
            let (iter_dims, rank) = effective_dims_and_rank(&stmt.domain, map)?;
            out.push(RefInfo {
                id,
                map: map.clone(),
                data_space: map.image(&stmt.domain)?,
                rank,
                iter_dims,
            });
            Ok(())
        };
        if stmt.write.array == array_idx {
            push(AccessId::write(si), &stmt.write.map)?;
        }
        for (k, r) in stmt.reads.iter().enumerate() {
            if r.array == array_idx {
                push(AccessId::read(si, k), &r.map)?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, ProgramBuilder};

    /// The matvec-like kernel: for i, j in [0, N-1]^2:
    /// `Y[i] = Y[i] + A[i][j] * X[j]`.
    fn matvec() -> Program {
        let mut b = ProgramBuilder::new("matvec", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.array("X", &[v("N")]);
        b.array("Y", &[v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("Y", &[v("i")])
            .read("Y", &[v("i")])
            .read("A", &[v("i"), v("j")])
            .read("X", &[v("j")])
            .body(Expr::add(
                Expr::Read(0),
                Expr::mul(Expr::Read(1), Expr::Read(2)),
            ))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn collects_reads_and_writes() {
        let p = matvec();
        let y = p.array_index("Y").unwrap();
        let refs = collect_refs(&p, y).unwrap();
        assert_eq!(refs.len(), 2);
        assert!(refs.iter().any(|r| r.id.is_write()));
        assert!(refs.iter().any(|r| r.id == AccessId::read(0, 0)));
    }

    #[test]
    fn rank_classifies_reuse() {
        let p = matvec();
        // A[i][j]: rank 2 = iter dims 2 → no order-of-magnitude reuse.
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].rank, 2);
        assert!(!refs[0].has_order_of_magnitude_reuse());
        // X[j]: rank 1 < 2 → reuse along i.
        let x = p.array_index("X").unwrap();
        let refs = collect_refs(&p, x).unwrap();
        assert!(refs[0].has_order_of_magnitude_reuse());
        // Y[i]: rank 1 < 2 → reuse along j (both refs).
        let y = p.array_index("Y").unwrap();
        for r in collect_refs(&p, y).unwrap() {
            assert!(r.has_order_of_magnitude_reuse());
        }
    }

    #[test]
    fn data_spaces_are_images() {
        let p = matvec();
        let x = p.array_index("X").unwrap();
        let refs = collect_refs(&p, x).unwrap();
        let ds = &refs[0].data_space;
        assert!(ds.contains(&[0], &[5]));
        assert!(ds.contains(&[4], &[5]));
        assert!(!ds.contains(&[5], &[5]));
    }

    #[test]
    fn pinned_dims_do_not_fake_reuse() {
        use crate::tiling::transform::fix_dims;
        use std::collections::HashMap;
        let p = matvec();
        let mut view = p.clone();
        // Pin i = 3 (the executor's per-block restriction): A[i][j]
        // now sweeps a 1-d slice with a 1-d effective domain — still
        // no order-of-magnitude reuse; Y[i] becomes a single element
        // read over the j trips — now *genuine* reuse.
        let mut fixed = HashMap::new();
        fixed.insert("i".to_string(), 3);
        for s in &mut view.stmts {
            s.domain = fix_dims(&s.domain, &fixed);
        }
        let a = view.array_index("A").unwrap();
        let r = &collect_refs(&view, a).unwrap()[0];
        assert_eq!((r.iter_dims, r.rank), (1, 1));
        assert!(!r.has_order_of_magnitude_reuse());
        let y = view.array_index("Y").unwrap();
        let r = &collect_refs(&view, y).unwrap()[0];
        assert_eq!((r.iter_dims, r.rank), (1, 0));
        assert!(r.has_order_of_magnitude_reuse());
    }

    #[test]
    fn access_id_helpers() {
        assert!(AccessId::write(3).is_write());
        assert!(!AccessId::read(3, 0).is_write());
        assert_ne!(AccessId::write(0), AccessId::read(0, 0));
    }
}
