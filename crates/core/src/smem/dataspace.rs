//! Per-reference data spaces.
//!
//! For each reference `F` to an array in statement `S` with iteration
//! polytope `I`, the data space is the affine image `F·I` — "the set
//! of elements accessed by the affine reference" (paper §2). This
//! module collects, for one array, every reference in the block with
//! its data space and reuse rank information; the rest of the pipeline
//! consumes these [`RefInfo`]s.

use super::Result;
use polymem_ir::Program;
use polymem_poly::{AffineMap, Polyhedron};

/// Identity of one array reference in a program block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AccessId {
    /// Statement index.
    pub stmt: usize,
    /// `None` = the write access; `Some(k)` = the k-th read.
    pub read_idx: Option<usize>,
}

impl AccessId {
    /// The write access of statement `stmt`.
    pub fn write(stmt: usize) -> AccessId {
        AccessId {
            stmt,
            read_idx: None,
        }
    }

    /// The `k`-th read access of statement `stmt`.
    pub fn read(stmt: usize, k: usize) -> AccessId {
        AccessId {
            stmt,
            read_idx: Some(k),
        }
    }

    /// True iff this is a write access.
    pub fn is_write(&self) -> bool {
        self.read_idx.is_none()
    }
}

/// One reference to the array under analysis, with its data space.
#[derive(Clone, Debug)]
pub struct RefInfo {
    /// Which reference this is.
    pub id: AccessId,
    /// The access function (subscript map).
    pub map: AffineMap,
    /// The data space `F·I` (dims = array dims, params = program params).
    pub data_space: Polyhedron,
    /// `rank(F)` over the iteration-dimension columns.
    pub rank: usize,
    /// Dimensionality of the statement's iteration space.
    pub iter_dims: usize,
}

impl RefInfo {
    /// The paper's Condition (1): `rank(F) < dim(is)` — the reference
    /// touches each element Ω(trip-count) times ("order of magnitude"
    /// reuse).
    pub fn has_order_of_magnitude_reuse(&self) -> bool {
        self.rank < self.iter_dims
    }
}

/// Collect every reference to array `array_idx` in the block.
pub fn collect_refs(program: &Program, array_idx: usize) -> Result<Vec<RefInfo>> {
    let mut out = Vec::new();
    for (si, stmt) in program.stmts.iter().enumerate() {
        let mut push = |id: AccessId, map: &AffineMap| -> Result<()> {
            out.push(RefInfo {
                id,
                map: map.clone(),
                data_space: map.image(&stmt.domain)?,
                rank: map.dim_rank().map_err(polymem_poly::PolyError::from)?,
                iter_dims: stmt.domain.n_dims(),
            });
            Ok(())
        };
        if stmt.write.array == array_idx {
            push(AccessId::write(si), &stmt.write.map)?;
        }
        for (k, r) in stmt.reads.iter().enumerate() {
            if r.array == array_idx {
                push(AccessId::read(si, k), &r.map)?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::{Expr, LinExpr, ProgramBuilder};
    use polymem_ir::expr::v;

    /// The matvec-like kernel: for i, j in [0, N-1]^2:
    /// `Y[i] = Y[i] + A[i][j] * X[j]`.
    fn matvec() -> Program {
        let mut b = ProgramBuilder::new("matvec", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.array("X", &[v("N")]);
        b.array("Y", &[v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("Y", &[v("i")])
            .read("Y", &[v("i")])
            .read("A", &[v("i"), v("j")])
            .read("X", &[v("j")])
            .body(Expr::add(
                Expr::Read(0),
                Expr::mul(Expr::Read(1), Expr::Read(2)),
            ))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn collects_reads_and_writes() {
        let p = matvec();
        let y = p.array_index("Y").unwrap();
        let refs = collect_refs(&p, y).unwrap();
        assert_eq!(refs.len(), 2);
        assert!(refs.iter().any(|r| r.id.is_write()));
        assert!(refs.iter().any(|r| r.id == AccessId::read(0, 0)));
    }

    #[test]
    fn rank_classifies_reuse() {
        let p = matvec();
        // A[i][j]: rank 2 = iter dims 2 → no order-of-magnitude reuse.
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].rank, 2);
        assert!(!refs[0].has_order_of_magnitude_reuse());
        // X[j]: rank 1 < 2 → reuse along i.
        let x = p.array_index("X").unwrap();
        let refs = collect_refs(&p, x).unwrap();
        assert!(refs[0].has_order_of_magnitude_reuse());
        // Y[i]: rank 1 < 2 → reuse along j (both refs).
        let y = p.array_index("Y").unwrap();
        for r in collect_refs(&p, y).unwrap() {
            assert!(r.has_order_of_magnitude_reuse());
        }
    }

    #[test]
    fn data_spaces_are_images() {
        let p = matvec();
        let x = p.array_index("X").unwrap();
        let refs = collect_refs(&p, x).unwrap();
        let ds = &refs[0].data_space;
        assert!(ds.contains(&[0], &[5]));
        assert!(ds.contains(&[4], &[5]));
        assert!(!ds.contains(&[5], &[5]));
    }

    #[test]
    fn access_id_helpers() {
        assert!(AccessId::write(3).is_write());
        assert!(!AccessId::read(3, 0).is_write());
        assert_ne!(AccessId::write(0), AccessId::read(0, 0));
    }
}
