//! Recursive second-level planning: per-thread register tiles.
//!
//! The paper's scheme (§2, §4) is recursive — every level of the
//! tiling hierarchy gets its own explicitly managed buffer with its
//! own copy-in/copy-out. This module applies the §3 pipeline a second
//! time: after the global→scratchpad plan for a block is known, the
//! *intra-tile* subnest (the innermost FOR levels left after fixing
//! round/block/seq dims **and** the per-thread dims) is analysed
//! against the level-1 local buffers as the new "global" arrays. The
//! result is a set of **frames** — tiny register tiles staged per
//! inner-process instance with smem→reg move-in and reg→smem
//! move-out.
//!
//! Mechanically this reuses the [`cache`](super::cache) machinery
//! unchanged: the program is parametrised once over the *union* of the
//! level-1 fixed dims and the thread dims, so all level-2 affine
//! structures take `params ++ sorted(fixed ∪ thread)` as their
//! parameter vector. Frames come out of [`analyze_program_timed`] as
//! ordinary [`LocalBuffer`]s in **global array coordinates**; a
//! post-filter then keeps only the groups that are
//!
//! 1. *backed*: every member access is rewritten at level 1, and all
//!    to the same level-1 buffer (registers cache scratchpad-resident
//!    data only — the group's elements are then guaranteed staged);
//! 2. *thread-complete*: every owning statement iterates all thread
//!    dims (otherwise no per-thread instance owns the frame);
//! 3. *beneficial*: Algorithm 1's reuse gate, re-run over the subnest
//!    (rank-full, low-overlap references keep reading scratchpad);
//! 4. *resident*: the running footprint at the representative block
//!    stays within [`HierSpec::regs_per_inner`] words.
//!
//! Soundness of the split between promoted and unpromoted accesses
//! follows from §3.1 partitioning: group disjointness is established
//! symbolically (existentially in all parameters, which now include
//! the thread dims), so a frame's elements never alias any direct
//! scratchpad access of the same instance, at *every* thread value.
//! The executor stages frames per thread value and flushes dirty
//! frames before the thread value changes, which keeps cross-value
//! overlap (e.g. sliding windows) exact.
//!
//! [`LocalBuffer`]: super::LocalBuffer
//! [`analyze_program_timed`]: super::analyze_program_timed

use super::cache::parametrize_dims;
use super::{analyze_program_timed, BufferId, Result, SmemConfig, SmemError, SmemPlan};
use polymem_ir::Program;
use std::collections::HashMap;

/// The explicitly managed memory levels of the machine model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemLevel {
    /// Level 1: the per-outer-unit scratchpad (global → smem).
    Scratchpad,
    /// Level 2: per-inner-process register tiles (smem → reg).
    Register,
}

/// Specification of the register-tile level for one blocked mapping.
#[derive(Clone, Debug)]
pub struct HierSpec {
    /// Iteration dims distributed across inner processes (threads);
    /// fixed per instance group, parametrised for the level-2 view.
    pub thread_dims: Vec<String>,
    /// Representative values for the thread dims (Algorithm 1's
    /// volume test); must cover `thread_dims` exactly.
    pub thread_reps: Vec<(String, i64)>,
    /// Register-file capacity per inner process, in words.
    pub regs_per_inner: u64,
}

/// The level-2 plan: register frames over the level-1 local buffers.
///
/// All affine structures in `plan` take `params ++ ext values` as
/// their parameter vector, where the extension order is `ext_names`.
#[derive(Clone, Debug)]
pub struct HierPlan {
    /// The filtered level-2 plan. Buffer bounds are in **global array
    /// coordinates**; translation to level-1 local coordinates goes
    /// through `backing` and the level-1 buffer's kept dims.
    pub plan: SmemPlan,
    /// Names appended as parameters: `sorted(fixed ∪ thread_dims)`.
    pub ext_names: Vec<String>,
    /// The thread dims, in the order thread values are keyed.
    pub thread_dims: Vec<String>,
    /// Per original statement: indices of the dims that remain
    /// iteration dims in the level-2 view (the intra-thread subnest).
    pub kept_dims: Vec<Vec<usize>>,
    /// Per original statement: positions of each thread dim in the
    /// statement's dim order (`thread_dims` order), or `None` if the
    /// statement does not iterate every thread dim (its accesses are
    /// never redirected to frames).
    pub stmt_thread_pos: Vec<Option<Vec<usize>>>,
    /// For each frame (level-2 buffer id): the level-1 buffer holding
    /// the data it caches.
    pub backing: Vec<BufferId>,
    /// The capacity the plan was gated against, in words.
    pub regs_per_inner: u64,
}

impl HierPlan {
    /// The extended parameter vector `params ++ ext values` for one
    /// concrete (block, thread) instance. `fixed` holds the level-1
    /// fixed-dim values, `threads` the thread-dim values in
    /// `thread_dims` order. `None` on a shape mismatch.
    pub fn ext_params(
        &self,
        params: &[i64],
        fixed: &HashMap<String, i64>,
        threads: &[i64],
    ) -> Option<Vec<i64>> {
        if threads.len() != self.thread_dims.len() {
            return None;
        }
        let mut out = Vec::with_capacity(params.len() + self.ext_names.len());
        out.extend_from_slice(params);
        for name in &self.ext_names {
            match self.thread_dims.iter().position(|t| t == name) {
                Some(k) => out.push(threads[k]),
                None => out.push(*fixed.get(name)?),
            }
        }
        Some(out)
    }

    /// Project a full-space iteration point of statement `stmt` down
    /// to the level-2 view's kept dims (the intra-thread subnest).
    pub fn project_point(&self, stmt: usize, point: &[i64]) -> Vec<i64> {
        self.kept_dims[stmt].iter().map(|&d| point[d]).collect()
    }

    /// The thread-dim values of one instance, in `thread_dims` order,
    /// or `None` if the statement does not iterate every thread dim.
    pub fn thread_key(&self, stmt: usize, point: &[i64]) -> Option<Vec<i64>> {
        self.stmt_thread_pos[stmt]
            .as_ref()
            .map(|pos| pos.iter().map(|&d| point[d]).collect())
    }
}

/// Run the §3 pipeline a second time over the intra-thread subnest and
/// filter the result down to backed, thread-complete, resident frames.
///
/// `fixed` are the level-1 fixed dims with representative values (the
/// same pairs handed to [`analyze_symbolic`]); `level1` is the level-1
/// symbolic plan they produced. Returns `Ok(None)` when no frame
/// survives the gates — the mapping then simply has no register level.
///
/// [`analyze_symbolic`]: super::analyze_symbolic
pub fn analyze_hierarchy(
    program: &Program,
    fixed: &[(String, i64)],
    spec: &HierSpec,
    level1: &SmemPlan,
    config: &SmemConfig,
) -> Result<Option<HierPlan>> {
    if spec.thread_dims.is_empty() {
        return Ok(None);
    }
    for t in &spec.thread_dims {
        if !spec.thread_reps.iter().any(|(n, _)| n == t) {
            return Err(SmemError::Ir(polymem_ir::IrError::UnknownName(format!(
                "thread dim `{t}` has no representative value"
            ))));
        }
    }
    let mut pairs: Vec<(String, i64)> = fixed.to_vec();
    for (n, v) in &spec.thread_reps {
        pairs.push((n.clone(), *v));
    }
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    if pairs.windows(2).any(|w| w[0].0 == w[1].0) {
        return Err(SmemError::Ir(polymem_ir::IrError::UnknownName(
            "thread dim collides with a fixed dim".into(),
        )));
    }
    let ext_names: Vec<String> = pairs.iter().map(|p| p.0.clone()).collect();

    // One parametrisation over the union: all level-2 affine
    // structures are affine in `params ++ ext_names`.
    let symbolic = parametrize_dims(program, &ext_names)?;
    let mut cfg = config.clone();
    // Registers are an optional cache even on must-copy machines: the
    // reuse gate alone decides promotion.
    cfg.must_copy_all = false;
    cfg.sample_params.extend(pairs.iter().map(|p| p.1));
    let (raw, _) = analyze_program_timed(&symbolic, &cfg)?;
    let rep_ext = cfg.sample_params.clone();

    let kept_dims: Vec<Vec<usize>> = program
        .stmts
        .iter()
        .map(|s| {
            let dims = s.domain.space().dims();
            (0..dims.len())
                .filter(|&i| !ext_names.iter().any(|n| *n == dims[i]))
                .collect()
        })
        .collect();
    let stmt_thread_pos: Vec<Option<Vec<usize>>> = program
        .stmts
        .iter()
        .map(|s| {
            let dims = s.domain.space().dims();
            spec.thread_dims
                .iter()
                .map(|t| dims.iter().position(|d| d == t))
                .collect()
        })
        .collect();

    // Member accesses per raw level-2 buffer.
    let mut members: Vec<Vec<super::AccessId>> = vec![Vec::new(); raw.buffers.len()];
    for (id, la) in &raw.rewrites {
        members[la.buffer].push(*id);
    }

    // The gates: backed, thread-complete, bounded, resident.
    let mut keep: Vec<Option<usize>> = vec![None; raw.buffers.len()];
    let mut backing: Vec<BufferId> = Vec::new();
    let mut resident_words = 0u64;
    for (bi, buf) in raw.buffers.iter().enumerate() {
        let mem = &members[bi];
        let Some(first) = mem.first().and_then(|id| level1.rewrites.get(id)) else {
            continue;
        };
        let b1 = first.buffer;
        let backed = mem
            .iter()
            .all(|id| level1.rewrites.get(id).map(|la| la.buffer) == Some(b1));
        let complete = mem.iter().all(|id| stmt_thread_pos[id.stmt].is_some());
        if !backed || !complete {
            continue;
        }
        let Ok(words) = buf.size_words(&rep_ext) else {
            continue;
        };
        if resident_words.saturating_add(words) > spec.regs_per_inner {
            continue;
        }
        resident_words += words;
        keep[bi] = Some(backing.len());
        backing.push(b1);
    }
    if backing.is_empty() {
        return Ok(None);
    }

    // Rebuild the plan with the surviving frames renumbered densely.
    let mut buffers = Vec::new();
    let mut movement = Vec::new();
    for (bi, buf) in raw.buffers.iter().enumerate() {
        if let Some(nid) = keep[bi] {
            let mut b = buf.clone();
            b.id = nid;
            buffers.push(b);
            let mut mc = raw
                .movement
                .iter()
                .find(|m| m.buffer == bi)
                .expect("movement exists for every buffer")
                .clone();
            mc.buffer = nid;
            movement.push(mc);
        }
    }
    let rewrites = raw
        .rewrites
        .iter()
        .filter_map(|(id, la)| {
            keep[la.buffer].map(|nid| {
                let mut la = la.clone();
                la.buffer = nid;
                (*id, la)
            })
        })
        .collect();

    Ok(Some(HierPlan {
        plan: SmemPlan {
            buffers,
            rewrites,
            movement,
            decisions: raw.decisions,
        },
        ext_names,
        thread_dims: spec.thread_dims.clone(),
        kept_dims,
        stmt_thread_pos,
        backing,
        regs_per_inner: spec.regs_per_inner,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::analyze_symbolic;
    use crate::tiling::transform::{tile_program, TileSpec};
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, ProgramBuilder};

    /// Square matmul C[i][j] += A[i][k] * B[k][j], tiled 4×4×4 with
    /// the k tile sequential (the hoisted mapping's program shape).
    fn tiled_matmul() -> Program {
        let mut b = ProgramBuilder::new("mm", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.array("B", &[v("N"), v("N")]);
        b.array("C", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
                ("k", LinExpr::c(0), v("N") - 1),
            ])
            .write("C", &[v("i"), v("j")])
            .read("C", &[v("i"), v("j")])
            .read("A", &[v("i"), v("k")])
            .read("B", &[v("k"), v("j")])
            .body(Expr::add(
                Expr::Read(0),
                Expr::mul(Expr::Read(1), Expr::Read(2)),
            ))
            .done();
        let p = b.build().unwrap();
        tile_program(&p, &TileSpec::new(&[("i", 4), ("j", 4), ("k", 4)], "T")).unwrap()
    }

    fn fixed() -> Vec<(String, i64)> {
        vec![
            ("iT".to_string(), 0),
            ("jT".to_string(), 0),
            ("kT".to_string(), 0),
        ]
    }

    fn spec(regs: u64) -> HierSpec {
        HierSpec {
            thread_dims: vec!["i".to_string()],
            thread_reps: vec![("i".to_string(), 0)],
            regs_per_inner: regs,
        }
    }

    fn cfg() -> SmemConfig {
        SmemConfig {
            sample_params: vec![8],
            ..SmemConfig::default()
        }
    }

    #[test]
    fn matmul_promotes_reused_rows_but_not_streaming_b() {
        let t = tiled_matmul();
        let cfg = cfg();
        let sp = analyze_symbolic(&t, &fixed(), &cfg).unwrap();
        let h = analyze_hierarchy(&t, &fixed(), &spec(64), &sp.plan, &cfg)
            .unwrap()
            .expect("matmul has register frames");
        let arrays: Vec<&str> = h
            .plan
            .buffers
            .iter()
            .map(|b| b.array_name.as_str())
            .collect();
        // Over the (j, k) subnest, C[i][j] and A[i][k] are
        // rank-deficient (one reused row each); B[k][j] is rank-full
        // with no overlap — the reuse gate keeps it in scratchpad.
        assert!(arrays.contains(&"C"), "{arrays:?}");
        assert!(arrays.contains(&"A"), "{arrays:?}");
        assert!(!arrays.contains(&"B"), "{arrays:?}");
        // Every frame is backed by the level-1 buffer of its array.
        assert_eq!(h.backing.len(), h.plan.buffers.len());
        for (f, &b1) in h.plan.buffers.iter().zip(&h.backing) {
            assert_eq!(sp.plan.buffers[b1].array, f.array);
        }
    }

    #[test]
    fn frame_footprints_fit_the_register_capacity() {
        let t = tiled_matmul();
        let cfg = cfg();
        let sp = analyze_symbolic(&t, &fixed(), &cfg).unwrap();
        let h = analyze_hierarchy(&t, &fixed(), &spec(64), &sp.plan, &cfg)
            .unwrap()
            .unwrap();
        // Representative ext vector: params ++ sorted(fixed ∪ thread).
        let mut pairs = fixed();
        pairs.push(("i".to_string(), 0));
        pairs.sort();
        let mut ext = vec![8i64];
        ext.extend(pairs.iter().map(|p| p.1));
        let total: u64 = h
            .plan
            .buffers
            .iter()
            .map(|b| b.size_words(&ext).unwrap())
            .sum();
        // One C row (4) + one A row (4) at 4×4×4 tiles.
        assert_eq!(total, 8);
        assert!(total <= h.regs_per_inner);
    }

    #[test]
    fn capacity_gate_drops_frames_that_do_not_fit() {
        let t = tiled_matmul();
        let cfg = cfg();
        let sp = analyze_symbolic(&t, &fixed(), &cfg).unwrap();
        // 4 words hold one row but not two: exactly one frame survives.
        let h = analyze_hierarchy(&t, &fixed(), &spec(4), &sp.plan, &cfg)
            .unwrap()
            .unwrap();
        assert_eq!(h.plan.buffers.len(), 1);
        // And a capacity of 0 leaves no register level at all.
        let none = analyze_hierarchy(&t, &fixed(), &spec(0), &sp.plan, &cfg).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn missing_thread_rep_is_a_typed_error() {
        let t = tiled_matmul();
        let cfg = cfg();
        let sp = analyze_symbolic(&t, &fixed(), &cfg).unwrap();
        let bad = HierSpec {
            thread_dims: vec!["i".to_string()],
            thread_reps: vec![],
            regs_per_inner: 64,
        };
        assert!(analyze_hierarchy(&t, &fixed(), &bad, &sp.plan, &cfg).is_err());
    }

    #[test]
    fn thread_key_and_ext_params_line_up() {
        let t = tiled_matmul();
        let cfg = cfg();
        let sp = analyze_symbolic(&t, &fixed(), &cfg).unwrap();
        let h = analyze_hierarchy(&t, &fixed(), &spec(64), &sp.plan, &cfg)
            .unwrap()
            .unwrap();
        // Tiled dims: (iT, jT, kT, i, j, k) — thread dim i at 3.
        let point = [0i64, 0, 0, 2, 1, 3];
        assert_eq!(h.thread_key(0, &point), Some(vec![2]));
        assert_eq!(h.project_point(0, &point), vec![1, 3]);
        let fx: HashMap<String, i64> = fixed().into_iter().collect();
        let ext = h.ext_params(&[8], &fx, &[2]).unwrap();
        // ext_names sorted: i, iT, jT, kT.
        assert_eq!(ext, vec![8, 2, 0, 0, 0]);
    }
}
