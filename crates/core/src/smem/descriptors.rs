//! §3 movement loops → Cell-style DMA lists (strided transfer
//! descriptors).
//!
//! The executor replays [`movement`](super::movement) copy nests
//! element by element, which models a machine issuing one bus
//! transaction per word. Real explicitly-managed-memory targets batch:
//! the Cell's MFC takes *DMA lists* (each entry a contiguous chunk at
//! a global address), and GPUs coalesce a half-warp's loads into one
//! wide transaction. This pass scans a buffer's move-in/move-out union
//! in **exactly the enumeration order** of
//! [`for_each_move_in`](super::movement::for_each_move_in) /
//! [`for_each_move_out`](super::movement::for_each_move_out) and fuses
//! maximal constant-stride runs into [`TransferDescriptor`]s —
//! `(global_base, local_base, elem_count, stride, n_rows)` plus the
//! row strides — so each descriptor is one strided bulk transfer and
//! the whole [`TransferList`] covers the same element multiset as the
//! per-element loops: each element exactly once, no gaps, no overlaps.

use super::alloc::LocalBuffer;
use super::movement::{for_each_move_in, for_each_move_out, MovementCode};
use super::{BufferId, Result};

/// One strided bulk transfer: `n_rows` rows of `elem_count` elements.
///
/// Element `(r, e)` (row `r`, position `e`) lives at flat global
/// offset `global_base + r·global_row_stride + e·stride` and flat
/// local offset `local_base + r·local_row_stride + e·local_stride`.
/// The canonical Cell-list case is `stride == 1` (contiguous rows in
/// global memory) with packed local rows; the extra stride fields keep
/// the descriptor exact for transposed/strided layouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferDescriptor {
    /// Flat element offset of the first element in the global array
    /// (row-major over the array extents).
    pub global_base: i64,
    /// Flat element offset of the first element in the local buffer
    /// (row-major over the buffer extents).
    pub local_base: i64,
    /// Elements per row.
    pub elem_count: i64,
    /// Global stride between consecutive elements of a row.
    pub stride: i64,
    /// Number of rows.
    pub n_rows: i64,
    /// Global stride between consecutive row starts.
    pub global_row_stride: i64,
    /// Local stride between consecutive elements of a row.
    pub local_stride: i64,
    /// Local stride between consecutive row starts.
    pub local_row_stride: i64,
}

impl TransferDescriptor {
    /// Total elements this descriptor transfers.
    pub fn elements(&self) -> u64 {
        (self.elem_count.max(0) as u64) * (self.n_rows.max(0) as u64)
    }

    /// Total bytes at the given word size.
    pub fn bytes(&self, word_bytes: u64) -> u64 {
        self.elements() * word_bytes
    }

    /// Whether every row is contiguous on both sides (the pure
    /// Cell-DMA-list entry shape).
    pub fn contiguous(&self) -> bool {
        self.stride == 1 && self.local_stride == 1
    }

    /// Replay the transfer as `(global_flat, local_flat)` pairs, in
    /// issue order.
    pub fn for_each(&self, f: &mut dyn FnMut(i64, i64)) {
        for r in 0..self.n_rows {
            for e in 0..self.elem_count {
                f(
                    self.global_base + r * self.global_row_stride + e * self.stride,
                    self.local_base + r * self.local_row_stride + e * self.local_stride,
                );
            }
        }
    }
}

/// The DMA list for one direction of one buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransferList {
    /// Descriptors in issue order (the movement scan order).
    pub descriptors: Vec<TransferDescriptor>,
    /// Total elements across all descriptors (the per-plan count; the
    /// per-descriptor counts are [`TransferDescriptor::elements`]).
    pub elements: u64,
}

impl TransferList {
    /// No descriptors at all.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Replay every descriptor, in order.
    pub fn for_each(&self, f: &mut dyn FnMut(i64, i64)) {
        for d in &self.descriptors {
            d.for_each(f);
        }
    }
}

/// Move-in and move-out DMA lists for one buffer.
#[derive(Clone, Debug)]
pub struct TransferPlan {
    /// The buffer the lists serve.
    pub buffer: BufferId,
    /// Global array index.
    pub array: usize,
    /// Global → local list (read data spaces).
    pub move_in: TransferList,
    /// Local → global list (write data spaces).
    pub move_out: TransferList,
}

impl TransferPlan {
    /// Total elements moved by both directions.
    pub fn elements(&self) -> u64 {
        self.move_in.elements + self.move_out.elements
    }

    /// Total descriptors across both directions.
    pub fn descriptors(&self) -> u64 {
        (self.move_in.descriptors.len() + self.move_out.descriptors.len()) as u64
    }
}

/// Which movement direction to descriptorise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Global → local (the move-in nest).
    In,
    /// Local → global (the move-out nest).
    Out,
}

/// Row-major flat offset of a multi-dimensional index.
pub fn flatten_index(idx: &[i64], extents: &[i64]) -> i64 {
    let mut off = 0i64;
    for (&i, &e) in idx.iter().zip(extents) {
        off = off * e.max(1) + i;
    }
    off
}

/// Build the DMA list for one direction of a buffer's movement code.
///
/// `array_extents` are the concrete extents of the global array (its
/// declaration evaluated at the *program* parameters); `params` is the
/// parameter vector `code`/`buffer` are affine in (the extended
/// `params ++ fixed` vector for symbolic plans). Global indices are
/// flattened row-major over the array extents, local indices row-major
/// over the buffer extents — matching the executor's `LocalStore`
/// layout — then maximal constant-stride runs are fused.
pub fn transfer_list(
    code: &MovementCode,
    buffer: &LocalBuffer,
    dir: Direction,
    array_extents: &[i64],
    params: &[i64],
) -> Result<TransferList> {
    let buf_extents = buffer.extents(params)?;
    let mut pairs: Vec<(i64, i64)> = Vec::new();
    let mut push = |g: &[i64], l: &[i64]| {
        pairs.push((
            flatten_index(g, array_extents),
            flatten_index(l, &buf_extents),
        ));
    };
    match dir {
        Direction::In => for_each_move_in(code, buffer, params, &mut push)?,
        Direction::Out => for_each_move_out(code, buffer, params, &mut push)?,
    }
    Ok(coalesce(&pairs))
}

/// Build the DMA list for a residency delta: the scan order of
/// [`for_each_delta_in`](super::residency::for_each_delta_in) fused
/// into strided descriptors exactly like [`transfer_list`]. The list
/// covers only the elements that still cross the global bus; retained
/// atoms are re-based by a scratchpad-local copy and never appear.
pub fn delta_transfer_list(
    rp: &super::residency::RetainPlan,
    buffer: &LocalBuffer,
    array_extents: &[i64],
    params: &[i64],
) -> Result<TransferList> {
    let buf_extents = buffer.extents(params)?;
    let mut pairs: Vec<(i64, i64)> = Vec::new();
    super::residency::for_each_delta_in(rp, buffer, params, &mut |g, l| {
        pairs.push((
            flatten_index(g, array_extents),
            flatten_index(l, &buf_extents),
        ));
    })?;
    Ok(coalesce(&pairs))
}

/// Build the DMA list for a residency flush delta: the scan order of
/// [`for_each_flush_delta`](super::residency::for_each_flush_delta)
/// fused into strided descriptors exactly like [`transfer_list`]. The
/// list covers only the move-out elements the successor sub-tile does
/// not overwrite; valid to issue in place of the full move-out list
/// only when [`RetainPlan::flush_legal`](super::residency::RetainPlan)
/// holds.
pub fn flush_transfer_list(
    rp: &super::residency::RetainPlan,
    buffer: &LocalBuffer,
    array_extents: &[i64],
    params: &[i64],
) -> Result<TransferList> {
    let buf_extents = buffer.extents(params)?;
    let mut pairs: Vec<(i64, i64)> = Vec::new();
    super::residency::for_each_flush_delta(rp, buffer, params, &mut |g, l| {
        pairs.push((
            flatten_index(g, array_extents),
            flatten_index(l, &buf_extents),
        ));
    })?;
    Ok(coalesce(&pairs))
}

/// Build both directions for a buffer ([`transfer_list`] twice).
pub fn build_transfers(
    code: &MovementCode,
    buffer: &LocalBuffer,
    array_extents: &[i64],
    params: &[i64],
) -> Result<TransferPlan> {
    Ok(TransferPlan {
        buffer: code.buffer,
        array: buffer.array,
        move_in: transfer_list(code, buffer, Direction::In, array_extents, params)?,
        move_out: transfer_list(code, buffer, Direction::Out, array_extents, params)?,
    })
}

/// A maximal constant-delta run of consecutive scan elements.
struct Run {
    g0: i64,
    l0: i64,
    n: i64,
    dg: i64,
    dl: i64,
}

/// Fuse an ordered `(global_flat, local_flat)` sequence into
/// descriptors: first maximal constant-stride runs (the innermost
/// loop), then consecutive same-shape runs whose bases advance by a
/// constant stride (the row loop). Element order is preserved exactly.
fn coalesce(pairs: &[(i64, i64)]) -> TransferList {
    let mut runs: Vec<Run> = Vec::new();
    for &(g, l) in pairs {
        if let Some(r) = runs.last_mut() {
            if r.n == 1 && g != r.g0 {
                r.n = 2;
                r.dg = g - r.g0;
                r.dl = l - r.l0;
                continue;
            }
            if r.n > 1 && g == r.g0 + r.n * r.dg && l == r.l0 + r.n * r.dl {
                r.n += 1;
                continue;
            }
        }
        // Singleton runs use stride 1 canonically so that scattered
        // single elements can still fuse into one strided descriptor.
        runs.push(Run {
            g0: g,
            l0: l,
            n: 1,
            dg: 1,
            dl: 1,
        });
    }

    let mut descriptors: Vec<TransferDescriptor> = Vec::new();
    let mut i = 0usize;
    while i < runs.len() {
        let base = &runs[i];
        let mut n_rows = 1i64;
        let (mut grs, mut lrs) = (0i64, 0i64);
        let mut j = i + 1;
        while j < runs.len() {
            let r = &runs[j];
            if r.n != base.n || r.dg != base.dg || r.dl != base.dl {
                break;
            }
            let prev = &runs[j - 1];
            let (g_step, l_step) = (r.g0 - prev.g0, r.l0 - prev.l0);
            if n_rows == 1 {
                grs = g_step;
                lrs = l_step;
            } else if g_step != grs || l_step != lrs {
                break;
            }
            n_rows += 1;
            j += 1;
        }
        descriptors.push(TransferDescriptor {
            global_base: base.g0,
            local_base: base.l0,
            elem_count: base.n,
            stride: base.dg,
            n_rows,
            global_row_stride: grs,
            local_stride: base.dl,
            local_row_stride: lrs,
        });
        i = j;
    }
    TransferList {
        descriptors,
        elements: pairs.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::alloc::allocate_buffer;
    use crate::smem::dataspace::collect_refs;
    use crate::smem::movement::generate_movement;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};

    fn setup(p: &Program, arr: &str) -> (LocalBuffer, MovementCode, Vec<i64>) {
        let ai = p.array_index(arr).unwrap();
        let refs = collect_refs(p, ai).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let buf = allocate_buffer(p, ai, 0, &members).unwrap();
        let code = generate_movement(p, &buf, &members).unwrap();
        (buf, code, Vec::new())
    }

    /// Expand the list back into pairs and compare against the raw
    /// movement enumeration — order included.
    fn assert_exact_cover(
        code: &MovementCode,
        buf: &LocalBuffer,
        dir: Direction,
        ext: &[i64],
        params: &[i64],
    ) {
        let list = transfer_list(code, buf, dir, ext, params).unwrap();
        let mut expanded = Vec::new();
        list.for_each(&mut |g, l| expanded.push((g, l)));
        let bext = buf.extents(params).unwrap();
        let mut raw = Vec::new();
        let mut push = |g: &[i64], l: &[i64]| {
            raw.push((flatten_index(g, ext), flatten_index(l, &bext)));
        };
        match dir {
            Direction::In => for_each_move_in(code, buf, params, &mut push).unwrap(),
            Direction::Out => for_each_move_out(code, buf, params, &mut push).unwrap(),
        }
        assert_eq!(expanded, raw);
        assert_eq!(list.elements, raw.len() as u64);
        assert_eq!(
            list.descriptors.iter().map(|d| d.elements()).sum::<u64>(),
            raw.len() as u64
        );
    }

    /// for i in [0, N-1]: Out[i] = A[i] + A[i+1] — a contiguous 1-D
    /// window collapses to a single contiguous descriptor.
    #[test]
    fn contiguous_window_is_one_descriptor() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 1]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let (buf, code, _) = setup(&p, "A");
        let list = transfer_list(&code, &buf, Direction::In, &[11], &[10]).unwrap();
        assert_eq!(list.descriptors.len(), 1);
        let d = &list.descriptors[0];
        assert_eq!((d.elem_count, d.n_rows), (11, 1));
        assert!(d.contiguous());
        assert_exact_cover(&code, &buf, Direction::In, &[11], &[10]);
    }

    /// A 2-D tile of a wider array becomes one descriptor with
    /// `n_rows` rows and a row stride equal to the array width.
    #[test]
    fn tile_rows_fuse_with_row_stride() {
        let mut b = ProgramBuilder::new("p", [] as [&str; 0]);
        b.array("A", &[LinExpr::c(20), LinExpr::c(30)]);
        b.array("Out", &[LinExpr::c(20), LinExpr::c(30)]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(4), LinExpr::c(7)),
                ("j", LinExpr::c(10), LinExpr::c(14)),
            ])
            .write("Out", &[v("i"), v("j")])
            .read("A", &[v("i"), v("j")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let (buf, code, _) = setup(&p, "A");
        let list = transfer_list(&code, &buf, Direction::In, &[20, 30], &[]).unwrap();
        assert_eq!(list.descriptors.len(), 1);
        let d = &list.descriptors[0];
        assert_eq!((d.elem_count, d.n_rows), (5, 4));
        assert_eq!(d.global_row_stride, 30);
        assert_eq!(d.local_row_stride, 5);
        assert_eq!(d.global_base, 4 * 30 + 10);
        assert_eq!(d.local_base, 0);
        assert!(d.contiguous());
        assert_eq!(list.elements, 20);
        assert_exact_cover(&code, &buf, Direction::In, &[20, 30], &[]);
    }

    /// Strided global access (`A[2i]`): the descriptor records the
    /// element stride instead of falling apart into singletons.
    #[test]
    fn strided_access_keeps_one_descriptor() {
        let mut b = ProgramBuilder::new("p", [] as [&str; 0]);
        b.array("A", &[LinExpr::c(40)]);
        b.array("Out", &[LinExpr::c(16)]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), LinExpr::c(15))])
            .write("Out", &[v("i")])
            .read("A", &[v("i") * 2])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let (buf, code, _) = setup(&p, "A");
        let list = transfer_list(&code, &buf, Direction::In, &[40], &[]).unwrap();
        // Whether the data space keeps the stride (exact image) or is
        // relaxed to its hull (rational projection), the scan is a
        // single constant-stride run → exactly one descriptor.
        assert_eq!(list.descriptors.len(), 1);
        assert_exact_cover(&code, &buf, Direction::In, &[40], &[]);
    }

    /// Move-out lists cover the write spaces.
    #[test]
    fn move_out_descriptors_cover_writes() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 1]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let (buf, code, _) = setup(&p, "A");
        let plan = build_transfers(&code, &buf, &[11], &[10]).unwrap();
        assert_eq!(plan.move_out.elements, 10);
        assert_eq!(plan.move_in.elements, 11);
        assert_eq!(plan.elements(), 21);
        assert!(plan.descriptors() >= 2);
        assert_exact_cover(&code, &buf, Direction::Out, &[11], &[10]);
    }

    /// The coalescer itself: scattered singletons with a constant gap
    /// fuse into one n_rows descriptor; irregular gaps split.
    #[test]
    fn coalescer_handles_degenerate_sequences() {
        // Constant-gap singletons (both sides stride 7/1).
        let pairs: Vec<(i64, i64)> = (0..5).map(|k| (k * 7, k)).collect();
        let list = coalesce(&pairs);
        assert_eq!(list.descriptors.len(), 1);
        let d = &list.descriptors[0];
        assert!(d.elements() == 5);
        // Irregular sequence: falls apart but still exact.
        let pairs = vec![(0, 0), (1, 1), (2, 2), (10, 3), (11, 4), (40, 5)];
        let list = coalesce(&pairs);
        let mut expanded = Vec::new();
        list.for_each(&mut |g, l| expanded.push((g, l)));
        assert_eq!(expanded, pairs);
        // Empty input.
        let list = coalesce(&[]);
        assert!(list.is_empty());
        assert_eq!(list.elements, 0);
    }
}
