//! Strided (flat-offset) lowering of affine accesses.
//!
//! The compiled block execution engine replaces per-point
//! `AffineMap::apply` + multi-index bounds checks with a single flat
//! offset per access, updated incrementally as the instance iterator
//! carries. This module provides the machinery:
//!
//! * [`LoweredRow`] — one output dimension of an affine access split
//!   into coefficients over the *enumerated* dims (the kept symbolic
//!   block dims), coefficients over the *extended* parameters
//!   (program params followed by the fixed block-origin dims), and a
//!   constant — exactly the column layout
//!   [`parametrize_dims`](crate::smem::cache::parametrize_dims)
//!   produces;
//! * [`row_major_weights`] — the flattening weights of a row-major
//!   array;
//! * [`prove_flat`] — per block, collapse rows × weights into a base
//!   offset and per-dim strides *and prove them safe*: every row must
//!   stay inside its target extent over the enumerated box, and every
//!   partial sum of the strided walk must stay in `i64`. If any proof
//!   fails the caller keeps a guarded (checked-per-point) path.
//!
//! All arithmetic here is checked: an overflow never produces a wrong
//! offset, it produces `None`, which downgrades the access to the
//! guarded path.

use polymem_poly::AffineMap;

/// One output dimension of an affine access in lowered form: the
/// value is `Σ kcoef[k]·point[k] + Σ pcoef[p]·ext_params[p] + konst`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoweredRow {
    /// Coefficients over the enumerated (kept) dims.
    pub kcoef: Vec<i64>,
    /// Coefficients over the extended parameters.
    pub pcoef: Vec<i64>,
    /// Constant term.
    pub konst: i64,
}

impl LoweredRow {
    /// The row's parameter-dependent constant at concrete extended
    /// parameter values, i.e. its value at `point = 0`. `None` on
    /// overflow.
    pub fn constant_at(&self, ext_params: &[i64]) -> Option<i64> {
        let mut acc = self.konst;
        for (&c, &p) in self.pcoef.iter().zip(ext_params) {
            acc = acc.checked_add(c.checked_mul(p)?)?;
        }
        Some(acc)
    }

    /// Evaluate the row at a concrete point (checked).
    pub fn eval(&self, point: &[i64], ext_params: &[i64]) -> Option<i64> {
        let mut acc = self.constant_at(ext_params)?;
        for (&c, &x) in self.kcoef.iter().zip(point) {
            acc = acc.checked_add(c.checked_mul(x)?)?;
        }
        Some(acc)
    }

    /// Interval of the row over a per-dim box of the enumerated dims
    /// (`boxes[k] = (lo, hi)`, inclusive). `None` on overflow.
    pub fn interval(&self, boxes: &[(i64, i64)], ext_params: &[i64]) -> Option<(i64, i64)> {
        let mut lo = self.constant_at(ext_params)?;
        let mut hi = lo;
        for (&c, &(blo, bhi)) in self.kcoef.iter().zip(boxes) {
            let (a, b) = mul_interval(c, blo, bhi)?;
            lo = lo.checked_add(a)?;
            hi = hi.checked_add(b)?;
        }
        Some((lo, hi))
    }
}

/// `(c·lo, c·hi)` sorted, checked.
fn mul_interval(c: i64, lo: i64, hi: i64) -> Option<(i64, i64)> {
    let a = c.checked_mul(lo)?;
    let b = c.checked_mul(hi)?;
    Some((a.min(b), a.max(b)))
}

/// Split an affine map with column layout `[dims, params, 1]` into
/// one [`LoweredRow`] per output dimension.
pub fn lower_rows(map: &AffineMap) -> Vec<LoweredRow> {
    let n_in = map.n_in();
    let n_par = map.in_space().n_params();
    let m = map.matrix();
    (0..m.rows())
        .map(|r| {
            let row = m.row(r);
            LoweredRow {
                kcoef: row[..n_in].to_vec(),
                pcoef: row[n_in..n_in + n_par].to_vec(),
                konst: row[n_in + n_par],
            }
        })
        .collect()
}

/// Row-major flattening weights of an array with the given extents:
/// `weights[r] = Π extents[r+1..]`. `None` if any extent is negative
/// or the array size overflows `i64`.
pub fn row_major_weights(extents: &[i64]) -> Option<Vec<i64>> {
    if extents.iter().any(|&e| e < 0) {
        return None;
    }
    let mut w = vec![1i64; extents.len()];
    for r in (0..extents.len().saturating_sub(1)).rev() {
        w[r] = w[r + 1].checked_mul(extents[r + 1])?;
    }
    Some(w)
}

/// A proven strided address stream: the flat offset of the access at
/// an enumerated point `p` is `base + Σ strides[k]·p[k]`, guaranteed
/// in-bounds and overflow-free for every point of the proven box.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatAffine {
    /// Flat offset at `p = 0` (already relative to the buffer
    /// origin, i.e. the target's per-dim offsets are subtracted).
    pub base: i64,
    /// Per-enumerated-dim flat strides.
    pub strides: Vec<i64>,
}

/// Try to lower an access (its [`LoweredRow`]s) into a proven
/// [`FlatAffine`] for one block.
///
/// * `ext_params` — concrete extended parameter values for the block;
/// * `extents`/`offsets` — the target storage's per-dim extents and
///   origin (`offsets = None` ⇒ all zero, the global-array case);
/// * `boxes` — inclusive per-dim bounds of the enumerated dims,
///   covering every point the block will visit.
///
/// Returns `None` (caller keeps a guarded path) unless it can prove,
/// for every point in the box: each row lands inside
/// `[offset_r, offset_r + extent_r)`, and every partial sum of
/// `base + Σ strides[k]·p[k]` stays in `i64`. Per-row containment is
/// what makes the flat offset equal the multi-index flattening — the
/// final sum needs no separate range check.
pub fn prove_flat(
    rows: &[LoweredRow],
    ext_params: &[i64],
    weights: &[i64],
    extents: &[i64],
    offsets: Option<&[i64]>,
    boxes: &[(i64, i64)],
) -> Option<FlatAffine> {
    if rows.len() != extents.len() || weights.len() != extents.len() {
        return None;
    }
    let n_dims = boxes.len();
    if boxes.iter().any(|&(lo, hi)| lo > hi) {
        // Empty box: the block visits no point of this statement, so
        // any stream is vacuously safe (it will never be evaluated).
        return Some(FlatAffine {
            base: 0,
            strides: vec![0; n_dims],
        });
    }
    let mut base = 0i64;
    let mut strides = vec![0i64; n_dims];
    for (r, row) in rows.iter().enumerate() {
        if row.kcoef.len() != n_dims {
            return None;
        }
        let off_r = offsets.map_or(0, |o| o[r]);
        // Row containment proof over the box.
        let (lo, hi) = row.interval(boxes, ext_params)?;
        if lo < off_r || hi >= off_r.checked_add(extents[r])? {
            return None;
        }
        // Fold this row into the flat base/strides.
        let w = weights[r];
        let c0 = row.constant_at(ext_params)?.checked_sub(off_r)?;
        base = base.checked_add(w.checked_mul(c0)?)?;
        for (k, &c) in row.kcoef.iter().enumerate() {
            strides[k] = strides[k].checked_add(w.checked_mul(c)?)?;
        }
    }
    // No-overflow proof for the incremental walk: every partial sum
    // `base + Σ_{k<j} strides[k]·p[k]` must stay in i64 over the box.
    let mut lo = base;
    let mut hi = base;
    for (k, &s) in strides.iter().enumerate() {
        let (blo, bhi) = boxes[k];
        let (a, b) = mul_interval(s, blo, bhi)?;
        lo = lo.checked_add(a)?;
        hi = hi.checked_add(b)?;
    }
    Some(FlatAffine { base, strides })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(kcoef: &[i64], pcoef: &[i64], konst: i64) -> LoweredRow {
        LoweredRow {
            kcoef: kcoef.to_vec(),
            pcoef: pcoef.to_vec(),
            konst,
        }
    }

    #[test]
    fn weights_are_row_major() {
        assert_eq!(row_major_weights(&[3, 4, 5]).unwrap(), vec![20, 5, 1]);
        assert_eq!(row_major_weights(&[7]).unwrap(), vec![1]);
        assert_eq!(row_major_weights(&[]).unwrap(), Vec::<i64>::new());
        assert!(row_major_weights(&[2, i64::MAX, i64::MAX]).is_none());
        assert!(row_major_weights(&[2, -1]).is_none());
    }

    #[test]
    fn proven_stream_matches_pointwise_flattening() {
        // A[i+1][j+p] over i in 0..3, j in 0..4, extents 5×8, p = 2.
        let rows = [row(&[1, 0], &[0], 1), row(&[0, 1], &[1], 0)];
        let ext = [5i64, 8];
        let w = row_major_weights(&ext).unwrap();
        let boxes = [(0i64, 3i64), (0i64, 4i64)];
        let fa = prove_flat(&rows, &[2], &w, &ext, None, &boxes).unwrap();
        for i in 0..=3 {
            for j in 0..=4 {
                let flat = fa.base + fa.strides[0] * i + fa.strides[1] * j;
                let want = (i + 1) * 8 + (j + 2);
                assert_eq!(flat, want, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn offsets_shift_the_base() {
        // Local buffer with origin g = (2, 3): L[(i) - 2][(j) - 3].
        let rows = [row(&[1, 0], &[], 0), row(&[0, 1], &[], 0)];
        let ext = [4i64, 4];
        let w = row_major_weights(&ext).unwrap();
        let boxes = [(2i64, 5i64), (3i64, 6i64)];
        let fa = prove_flat(&rows, &[], &w, &ext, Some(&[2, 3]), &boxes).unwrap();
        assert_eq!(fa.base + fa.strides[0] * 2 + fa.strides[1] * 3, 0);
        assert_eq!(fa.base + fa.strides[0] * 5 + fa.strides[1] * 6, 15);
    }

    #[test]
    fn out_of_extent_row_fails_the_proof() {
        // A[i+1] over i in 0..4 against extent 4: i = 3 lands at 4.
        let rows = [row(&[1], &[], 1)];
        let w = row_major_weights(&[4]).unwrap();
        assert!(prove_flat(&rows, &[], &w, &[4], None, &[(0, 3)]).is_none());
        // In-extent variant passes.
        assert!(prove_flat(&rows, &[], &w, &[4], None, &[(0, 2)]).is_some());
    }

    #[test]
    fn overflow_in_any_step_fails_the_proof() {
        let rows = [row(&[i64::MAX / 2], &[], 0)];
        let w = [1i64];
        assert!(prove_flat(&rows, &[], &w, &[i64::MAX], None, &[(0, 4)]).is_none());
    }

    #[test]
    fn empty_box_is_trivially_proven() {
        // lo > hi: the block visits nothing, so even a wildly
        // out-of-extent row proves (it will never be evaluated).
        let rows = [row(&[1], &[], 1_000_000)];
        let w = row_major_weights(&[4]).unwrap();
        let fa = prove_flat(&rows, &[], &w, &[4], None, &[(3, 0)]);
        assert!(fa.is_some());
    }
}
