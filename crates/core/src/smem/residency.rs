//! Inter-block scratchpad residency: delta transfers between
//! lexicographically consecutive sub-tile instances.
//!
//! The §3 movement model re-stages each group's full data space on
//! every block instance, even when consecutive instances overlap (a
//! sliding stencil window re-transfers almost everything). Following
//! the usage-based dataflow partitioning of Ferry/Derrien/Rajopadhye
//! ("Maximal Atomic irRedundant Sets"), this pass decomposes each
//! group's move-in window — symbolically in the block/round/seq
//! parameters of a [`SymbolicPlan`](super::SymbolicPlan) — into
//! *atomic usage sets* with respect to the lexicographic predecessor
//! along the innermost sequential dimension:
//!
//! * the **retained** atoms `W(s) ∩ W(s-1)`: live-in to instance `s`
//!   and already resident from instance `s-1` — kept in the
//!   scratchpad (re-based by a local copy when the buffer window
//!   slides) instead of being re-transferred;
//! * the **delta** atoms `W(s) \ W(s-1)`: live-in to `s` but not
//!   resident — the only elements that still cross the global-memory
//!   bus.
//!
//! Together the atoms partition the window exactly (each element in
//! exactly one atom), so `retained ∪ delta` covers precisely the
//! elements [`for_each_move_in`](super::movement::for_each_move_in)
//! would have transferred, each exactly once — the irredundant
//! decomposition. The symbolic predecessor window is obtained by the
//! parametric lex-successor substitution `s → s − 1`, which on a
//! constraint row only shifts the constant column by the seq-param
//! coefficient.
//!
//! **Retention legality.** A retained element is served from a copy
//! loaded one sub-tile ago, so it must provably equal global memory at
//! use time. Writes through the *same* buffer are coherent (the local
//! copy holds the newest value and move-out flushes it every
//! sub-tile); writes that bypass the buffer are not. The pass
//! conservatively denies retention for a group when (a) any write to
//! the array is not rewritten into a local buffer, or (b) another
//! buffer of the same array has a write space that can intersect the
//! group's window at *any* pair of seq values (checked on the
//! seq-relaxed sets: all constraints involving the seq parameter
//! dropped, an over-approximation of the union over seq values).
//! Cross-block writes need no check: block overlays merge at round
//! barriers, so global memory as seen by one block run is constant
//! across its sub-tiles.
//!
//! The pass also emits the **outgoing flush delta**
//! `move_out(s) \ writes(s+1)` — the store-side dual (elements whose
//! flush the successor would not overwrite). When
//! [`RetainPlan::flush_legal`] holds, the executors flush only the
//! delta: every skipped element lies in the successor's write set, so
//! the successor (or, inductively, a later sub-tile, terminating at
//! the last one whose flush is always full) writes it back with a
//! value at least as new. Skipping is *observable* only if something
//! reads the element from global memory while its flush is pending;
//! [`flush_legal`](RetainPlan::flush_legal) conservatively requires
//! that no such read exists:
//!
//! * the successor's own delta move-in (its retained atoms are served
//!   from the local copy, which holds the newest value) must not
//!   touch any skipped element — checked exactly at seq distance 1,
//!   which covers every distance by induction (an element still
//!   pending at distance `k` is in the writes of every intervening
//!   sub-tile, so the distance-1 check applies at each step);
//! * no *other* buffer of the same array may read a skipped element
//!   at any seq distance (seq-relaxed over-approximation);
//! * no unrewritten read of the array may touch a skipped element at
//!   any seq distance (same relaxation).
//!
//! When `flush_legal` is false the executors fall back to the full
//! move-out flush; the decomposition stays available for analysis.

use super::alloc::LocalBuffer;
use super::movement::MovementCode;
use super::{BufferId, Result, SmemPlan};
use polymem_codegen::{scan_union, Ast};
use polymem_ir::Program;
use polymem_poly::diff::difference_all;
use polymem_poly::{Constraint, ConstraintKind, PolyUnion, Polyhedron};
use std::collections::HashMap;

/// The residency decomposition for one buffer: retained / delta /
/// flush-delta sets, all parametric in the same extended parameter
/// vector as the owning [`SymbolicPlan`](super::SymbolicPlan).
#[derive(Clone, Debug)]
pub struct RetainPlan {
    /// The buffer this plan serves.
    pub buffer: BufferId,
    /// The atomic usage sets: pairwise-disjoint polyhedra partitioning
    /// the move-in window of instance `s` into retained atoms
    /// (intersections with the predecessor window) followed by delta
    /// atoms (the remainder).
    pub atoms: Vec<Polyhedron>,
    /// `W(s) ∩ W(s-1)`: elements already resident from the
    /// predecessor (raw pairwise intersections; may overlap).
    pub retained: PolyUnion,
    /// `W(s) \ W(s-1)`: elements that must still be transferred
    /// (disjoint pieces).
    pub delta_in: PolyUnion,
    /// `move_out(s) \ writes(s+1)`: flushed elements the successor
    /// does not overwrite (disjoint pieces).
    pub flush_delta: PolyUnion,
    /// Scan nest over the retained set (each element exactly once), in
    /// the same form as the movement ASTs.
    pub retained_scan: Ast,
    /// Scan nest over the delta set.
    pub delta_scan: Ast,
    /// Scan nest over the flush-delta set (move-out elements the
    /// successor does not overwrite).
    pub flush_scan: Ast,
    /// Whether flushing only the flush delta is provably unobservable
    /// (see the module docs for the exact conditions). Executors fall
    /// back to the full move-out flush when false.
    pub flush_legal: bool,
}

/// Per-group residency plans for one symbolic scratchpad plan, keyed
/// by buffer id. Buffers without an entry stage their full window
/// (retention denied by legality, or nothing retainable).
#[derive(Clone, Debug)]
pub struct ResidencyPlan {
    /// The innermost sequential dimension (a parameter of the
    /// symbolic view) along which consecutive instances retain data.
    pub seq_param: String,
    /// Buffer id → its retain/delta decomposition.
    pub plans: HashMap<BufferId, RetainPlan>,
}

impl ResidencyPlan {
    /// True iff no group retains anything.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// Substitute `seq → seq + shift` in a polyhedron whose space has the
/// seq dim as parameter column `param_idx`: exact on constraint rows
/// (only the constant column moves, by `coeff · shift`).
pub(super) fn shift_seq(poly: &Polyhedron, param_idx: usize, shift: i64) -> Polyhedron {
    let space = poly.space();
    let pcol = space.param_col(param_idx);
    let ccol = space.const_col();
    let rows: Vec<Constraint> = poly
        .constraints()
        .iter()
        .map(|c| {
            let mut coeffs: Vec<i64> = c.coeffs.iter().copied().collect();
            coeffs[ccol] += coeffs[pcol] * shift;
            match c.kind {
                ConstraintKind::Ineq => Constraint::ineq(coeffs),
                ConstraintKind::Eq => Constraint::eq(coeffs),
            }
        })
        .collect();
    Polyhedron::new(space.clone(), rows)
}

/// Drop every constraint involving the seq parameter: the result
/// over-approximates the union of the set over all seq values (used
/// for the conservative retention-legality test).
fn relax_seq(poly: &Polyhedron, param_idx: usize) -> Polyhedron {
    let pcol = poly.space().param_col(param_idx);
    let rows: Vec<Constraint> = poly
        .constraints()
        .iter()
        .filter(|c| c.coeff(pcol) == 0)
        .cloned()
        .collect();
    Polyhedron::new(poly.space().clone(), rows)
}

/// Whether retaining `mc`'s window across sub-tiles is legal: no write
/// to the array can reach global memory behind the retained copy's
/// back. See the module docs for the exact conditions.
fn retention_legal(
    program: &Program,
    plan: &SmemPlan,
    mc: &MovementCode,
    buffer: &LocalBuffer,
    seq_idx: usize,
) -> Result<bool> {
    // (a) An unrewritten write updates global memory directly; the
    // retained copy goes stale only if that write's data space can
    // touch the retained window at some seq distance. Writes to
    // disjoint regions (e.g. a stencil's next time plane) are
    // harmless.
    for r in super::dataspace::collect_refs(program, buffer.array)? {
        if !r.id.is_write() || plan.rewrites.contains_key(&r.id) {
            continue;
        }
        let wr = relax_seq(&r.data_space, seq_idx);
        for rd in &mc.read_spaces {
            if !relax_seq(rd, seq_idx).intersect(&wr)?.is_empty()? {
                return Ok(false);
            }
        }
    }
    // (b) A write staged through a *different* buffer of the same
    // array reaches global memory at that buffer's move-out without
    // updating this buffer's retained copy. Deny retention if any
    // such write space can touch this window at any seq distance.
    for other in &plan.movement {
        if other.buffer == mc.buffer || plan.buffers[other.buffer].array != buffer.array {
            continue;
        }
        for w in &other.write_spaces {
            let wr = relax_seq(w, seq_idx);
            for r in &mc.read_spaces {
                if !relax_seq(r, seq_idx).intersect(&wr)?.is_empty()? {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// Whether flushing only the flush delta of `mc` is unobservable. The
/// *skip set* `K = move_out(s) ∩ writes(s+1)` holds the elements a
/// delta flush leaves pending in the scratchpad; each is rewritten by
/// the successor's flush (or a later one), so only an intervening
/// global read of a pending element can tell the difference. The
/// module docs spell out the three read classes checked here.
fn flush_delta_legal(
    program: &Program,
    plan: &SmemPlan,
    mc: &MovementCode,
    buffer: &LocalBuffer,
    seq_idx: usize,
    delta_pieces: &[Polyhedron],
) -> Result<bool> {
    let mut skip = Vec::new();
    for w in &mc.write_spaces {
        for succ in &mc.write_spaces {
            let k = w.intersect(&shift_seq(succ, seq_idx, 1))?;
            if !k.is_empty()? {
                skip.push(k);
            }
        }
    }
    if skip.is_empty() {
        // Nothing ever skipped: the flush delta is the full move-out.
        return Ok(true);
    }
    for k in &skip {
        // (1) The successor's global delta reads, exactly at distance
        // 1 (covers every distance by induction — see module docs).
        for d in delta_pieces {
            if !k.intersect(&shift_seq(d, seq_idx, 1))?.is_empty()? {
                return Ok(false);
            }
        }
        let kr = relax_seq(k, seq_idx);
        // (2) Reads staged through other buffers of the same array, at
        // any seq distance.
        for other in &plan.movement {
            if other.buffer == mc.buffer || plan.buffers[other.buffer].array != buffer.array {
                continue;
            }
            for r in &other.read_spaces {
                if !relax_seq(r, seq_idx).intersect(&kr)?.is_empty()? {
                    return Ok(false);
                }
            }
        }
        // (3) Unrewritten reads of the array touch global directly.
        for r in super::dataspace::collect_refs(program, buffer.array)? {
            if r.id.is_write() || plan.rewrites.contains_key(&r.id) {
                continue;
            }
            if !relax_seq(&r.data_space, seq_idx)
                .intersect(&kr)?
                .is_empty()?
            {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Build the residency decomposition for every group of `plan`.
///
/// `program` is the symbolic view the plan was analysed on (its
/// parameters include the fixed dims); `seq_param` names the innermost
/// sequential dimension among them. Groups whose retained set is
/// infeasible (nothing can ever be retained) or whose retention is
/// illegal get no entry.
pub fn plan_residency(
    program: &Program,
    plan: &SmemPlan,
    seq_param: &str,
) -> Result<ResidencyPlan> {
    let mut plans = HashMap::new();
    for mc in &plan.movement {
        if mc.read_spaces.is_empty() {
            continue;
        }
        let buffer = &plan.buffers[mc.buffer];
        let Some(seq_idx) = mc.read_spaces[0].space().find_param(seq_param) else {
            continue;
        };
        if !retention_legal(program, plan, mc, buffer, seq_idx)? {
            continue;
        }
        let prev: Vec<Polyhedron> = mc
            .read_spaces
            .iter()
            .map(|r| shift_seq(r, seq_idx, -1))
            .collect();
        // Retained: every pairwise window/predecessor intersection.
        let mut retained_members = Vec::new();
        for r in &mc.read_spaces {
            for p in &prev {
                let inter = r.intersect(p)?;
                if !inter.is_empty()? {
                    retained_members.push(inter);
                }
            }
        }
        if retained_members.is_empty() {
            continue;
        }
        let retained = PolyUnion::from_members(retained_members)?;
        let retained_pieces = retained.disjoint_pieces()?;
        // Delta: the window minus the whole predecessor window,
        // disjoint by construction (window pieces are disjoint and
        // each shrinks further).
        let window = PolyUnion::from_members(mc.read_spaces.clone())?;
        let mut delta_pieces = Vec::new();
        for piece in window.disjoint_pieces()? {
            delta_pieces.extend(difference_all(&piece, &prev)?);
        }
        let delta_in = PolyUnion::from_members(delta_pieces.clone())?;
        // Flush delta: move-out window minus the successor's writes.
        let next: Vec<Polyhedron> = mc
            .write_spaces
            .iter()
            .map(|w| shift_seq(w, seq_idx, 1))
            .collect();
        let out_window = PolyUnion::from_members(mc.write_spaces.clone())?;
        let mut flush_pieces = Vec::new();
        for piece in out_window.disjoint_pieces()? {
            flush_pieces.extend(difference_all(&piece, &next)?);
        }
        let flush_delta = PolyUnion::from_members(flush_pieces)?;
        let flush_legal = flush_delta_legal(program, plan, mc, buffer, seq_idx, &delta_pieces)?;
        let retained_scan = scan_union(&retained, &[0])?;
        let delta_scan = scan_union(&delta_in, &[0])?;
        let flush_scan = scan_union(&flush_delta, &[0])?;
        let mut atoms = retained_pieces;
        atoms.extend(delta_pieces);
        plans.insert(
            mc.buffer,
            RetainPlan {
                buffer: mc.buffer,
                atoms,
                retained,
                delta_in,
                flush_delta,
                retained_scan,
                delta_scan,
                flush_scan,
                flush_legal,
            },
        );
    }
    Ok(ResidencyPlan {
        seq_param: seq_param.to_string(),
        plans,
    })
}

/// Enumerate the retained set at concrete extended parameters as
/// `(global_index, local_index)` pairs, exactly once per element (the
/// movement-code calling convention of
/// [`for_each_move_in`](super::movement::for_each_move_in)).
pub fn for_each_retained(
    rp: &RetainPlan,
    buffer: &LocalBuffer,
    params: &[i64],
    copy: &mut dyn FnMut(&[i64], &[i64]),
) -> Result<()> {
    super::movement::for_each_scan(&rp.retained_scan, buffer, params, copy)
}

/// Enumerate the delta set at concrete extended parameters (the
/// elements that still cross the global bus).
pub fn for_each_delta_in(
    rp: &RetainPlan,
    buffer: &LocalBuffer,
    params: &[i64],
    copy: &mut dyn FnMut(&[i64], &[i64]),
) -> Result<()> {
    super::movement::for_each_scan(&rp.delta_scan, buffer, params, copy)
}

/// Enumerate the flush-delta set at concrete extended parameters (the
/// move-out elements the successor sub-tile does not overwrite).
pub fn for_each_flush_delta(
    rp: &RetainPlan,
    buffer: &LocalBuffer,
    params: &[i64],
    copy: &mut dyn FnMut(&[i64], &[i64]),
) -> Result<()> {
    super::movement::for_each_scan(&rp.flush_scan, buffer, params, copy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::cache::analyze_symbolic;
    use crate::smem::movement::for_each_move_in;
    use crate::smem::SmemConfig;
    use crate::tiling::transform::{tile_program, TileSpec};
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};
    use std::collections::BTreeSet;

    /// Sliding 1-D window: Out[i] = A[i] + A[i+1] + A[i+2], i-tiles
    /// of 4 — consecutive tiles share two elements of A.
    fn tiled_window() -> Program {
        let mut b = ProgramBuilder::new("w", ["N"]);
        b.array("A", &[v("N") + 2]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .read("A", &[v("i") + 2])
            .body(Expr::add(
                Expr::add(Expr::Read(0), Expr::Read(1)),
                Expr::Read(2),
            ))
            .done();
        let p = b.build().unwrap();
        tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap()
    }

    fn symbolic_with_residency(p: &Program) -> (crate::smem::SymbolicPlan, Vec<i64>) {
        let n = 12i64;
        let cfg = SmemConfig {
            sample_params: vec![n],
            must_copy_all: true,
            residency_dim: Some("iT".to_string()),
            ..SmemConfig::default()
        };
        let sp = analyze_symbolic(p, &[("iT".to_string(), 1)], &cfg).unwrap();
        (sp, vec![n])
    }

    fn collect_region(f: impl Fn(&mut dyn FnMut(&[i64], &[i64]))) -> BTreeSet<Vec<i64>> {
        let mut set = BTreeSet::new();
        f(&mut |g, _| {
            assert!(set.insert(g.to_vec()), "duplicate element {g:?}");
        });
        set
    }

    #[test]
    fn retained_plus_delta_partition_the_window() {
        let t = tiled_window();
        let (sp, params) = symbolic_with_residency(&t);
        let res = sp.residency.as_ref().expect("residency planned");
        assert_eq!(res.seq_param, "iT");
        // The A buffer (read-only, sliding) must have a retain plan.
        let a = t.array_index("A").unwrap();
        let (mc, buf) = sp
            .plan
            .movement
            .iter()
            .map(|mc| (mc, &sp.plan.buffers[mc.buffer]))
            .find(|(_, b)| b.array == a)
            .unwrap();
        let rp = res.plans.get(&mc.buffer).expect("A group retains");
        for bt in 1..3 {
            let ext: Vec<i64> = params.iter().copied().chain([bt]).collect();
            let window = collect_region(|f| for_each_move_in(mc, buf, &ext, f).unwrap());
            let retained = collect_region(|f| for_each_retained(rp, buf, &ext, f).unwrap());
            let delta = collect_region(|f| for_each_delta_in(rp, buf, &ext, f).unwrap());
            // Disjoint and exactly covering.
            assert!(retained.is_disjoint(&delta), "tile {bt}");
            let union: BTreeSet<Vec<i64>> = retained.union(&delta).cloned().collect();
            assert_eq!(union, window, "tile {bt}");
            // Tiles of 4 with a +2 window: exactly 2 elements shared.
            assert_eq!(retained.len(), 2, "tile {bt}");
            // Every retained element sits in the predecessor window.
            let prev_ext: Vec<i64> = params.iter().copied().chain([bt - 1]).collect();
            let prev = collect_region(|f| for_each_move_in(mc, buf, &prev_ext, f).unwrap());
            assert!(retained.is_subset(&prev), "tile {bt}");
        }
    }

    #[test]
    fn atoms_are_disjoint_and_cover_the_window() {
        let t = tiled_window();
        let (sp, params) = symbolic_with_residency(&t);
        let res = sp.residency.as_ref().unwrap();
        let a = t.array_index("A").unwrap();
        let (mc, buf) = sp
            .plan
            .movement
            .iter()
            .map(|mc| (mc, &sp.plan.buffers[mc.buffer]))
            .find(|(_, b)| b.array == a)
            .unwrap();
        let rp = &res.plans[&mc.buffer];
        let ext: Vec<i64> = params.iter().copied().chain([1]).collect();
        let window = collect_region(|f| for_each_move_in(mc, buf, &ext, f).unwrap());
        for g in &window {
            let n = rp.atoms.iter().filter(|p| p.contains(g, &ext)).count();
            assert_eq!(n, 1, "element {g:?} lies in {n} atoms");
        }
    }

    #[test]
    fn flush_delta_excludes_successor_overwrites() {
        // Two in-place updates, A[i] and A[i+2], i-tiles of 4: tile t
        // writes [4t, 4t+5] and tile t+1 writes [4t+4, 4t+9], so the
        // flush delta is [4t, 4t+3] — 4 of the 6 flushed elements; the
        // other 2 get overwritten by the successor anyway.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 2]);
        b.stmt("S1")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .read("A", &[v("i")])
            .body(Expr::Read(0))
            .done();
        b.stmt("S2")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i") + 2])
            .read("A", &[v("i") + 2])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let cfg = SmemConfig {
            sample_params: vec![12],
            must_copy_all: true,
            residency_dim: Some("iT".to_string()),
            ..SmemConfig::default()
        };
        let sp = analyze_symbolic(&t, &[("iT".to_string(), 1)], &cfg).unwrap();
        let res = sp.residency.as_ref().unwrap();
        let a = t.array_index("A").unwrap();
        let mc = sp
            .plan
            .movement
            .iter()
            .find(|mc| sp.plan.buffers[mc.buffer].array == a)
            .unwrap();
        let rp = res.plans.get(&mc.buffer).expect("in-place group retains");
        let ext = [12i64, 1];
        let mut flushed = std::collections::BTreeSet::new();
        for piece in rp.flush_delta.members() {
            let conc = piece.substitute_params(&ext).unwrap();
            polymem_poly::count::enumerate_points(&conc, 1 << 16, &mut |g| {
                flushed.insert(g.to_vec());
            })
            .unwrap();
        }
        let want: BTreeSet<Vec<i64>> = (4..8).map(|i| vec![i]).collect();
        assert_eq!(flushed, want);
        // Every skipped element is overwritten by the successor and
        // nothing reads it from global in between: legal to act on.
        assert!(rp.flush_legal, "in-place update chain is flush-legal");
        // The scan nest enumerates exactly the same set.
        let buf = &sp.plan.buffers[mc.buffer];
        let scanned = collect_region(|f| for_each_flush_delta(rp, buf, &ext, f).unwrap());
        assert_eq!(scanned, want);
    }

    #[test]
    fn successor_delta_read_denies_flush_delta() {
        // Tile t writes A[4t..4t+3] (S1) and A[4t+4..4t+7] (S2), and
        // S3 reads the sliding window A[4t..4t+4]. The skip set is
        // [4t+4, 4t+7]; the successor's delta move-in [4t+5, 4t+8]
        // would read skipped (unflushed) elements from global memory,
        // so the delta flush must be denied while retention itself
        // stays legal.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 5]);
        b.array("B", &[v("N")]);
        b.array("C", &[v("N")]);
        b.stmt("S1")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .read("B", &[v("i")])
            .body(Expr::Read(0))
            .done();
        b.stmt("S2")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i") + 4])
            .read("B", &[v("i")])
            .body(Expr::Read(0))
            .done();
        b.stmt("S3")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("C", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let cfg = SmemConfig {
            sample_params: vec![12],
            must_copy_all: true,
            residency_dim: Some("iT".to_string()),
            ..SmemConfig::default()
        };
        let sp = analyze_symbolic(&t, &[("iT".to_string(), 1)], &cfg).unwrap();
        let res = sp.residency.as_ref().unwrap();
        let a = t.array_index("A").unwrap();
        let mc = sp
            .plan
            .movement
            .iter()
            .find(|mc| sp.plan.buffers[mc.buffer].array == a && !mc.read_spaces.is_empty())
            .unwrap();
        let rp = res.plans.get(&mc.buffer).expect("sliding read retains");
        assert!(
            !rp.flush_legal,
            "successor delta reads skipped elements: must deny"
        );
    }

    #[test]
    fn unrewritten_read_denies_flush_delta() {
        // Same in-place update chain as the flush-delta test (legal
        // when everything is rewritten), but with the read rewrites
        // stripped: an unrewritten read fetches straight from global
        // memory and could observe a skipped flush at any distance.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 2]);
        b.stmt("S1")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .read("A", &[v("i")])
            .body(Expr::Read(0))
            .done();
        b.stmt("S2")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i") + 2])
            .read("A", &[v("i") + 2])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let sym = crate::smem::cache::parametrize_dims(&t, &["iT".to_string()]).unwrap();
        let cfg = SmemConfig {
            sample_params: vec![12, 1],
            must_copy_all: true,
            ..SmemConfig::default()
        };
        let plan = crate::smem::analyze_program(&sym, &cfg).unwrap();
        let res = plan_residency(&sym, &plan, "iT").unwrap();
        let rp = res.plans.values().next().expect("chain retains");
        assert!(rp.flush_legal, "fully rewritten chain is flush-legal");
        let mut crippled = plan.clone();
        crippled.rewrites.retain(|id, _| id.is_write());
        let res = plan_residency(&sym, &crippled, "iT").unwrap();
        let rp = res
            .plans
            .values()
            .next()
            .expect("retention itself stays legal");
        assert!(
            !rp.flush_legal,
            "unrewritten read must deny the delta flush"
        );
    }

    #[test]
    fn cross_buffer_write_overlap_denies_retention() {
        // Reads A[i], A[i+1] (sliding window [4T, 4T+4], which WOULD
        // retain its halo) and writes A[i+8] (window [4T+8, 4T+11]):
        // disjoint within a tile, so they form two buffers — but a
        // later tile's read window is an earlier tile's write window,
        // so a retained read copy would be stale. Legality must deny
        // retention for the read group.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 8]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i") + 8])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let cfg = SmemConfig {
            sample_params: vec![12],
            must_copy_all: true,
            residency_dim: Some("iT".to_string()),
            ..SmemConfig::default()
        };
        let sp = analyze_symbolic(&t, &[("iT".to_string(), 1)], &cfg).unwrap();
        let res = sp.residency.as_ref().expect("residency ran");
        let a = t.array_index("A").unwrap();
        for mc in &sp.plan.movement {
            if sp.plan.buffers[mc.buffer].array == a && !mc.read_spaces.is_empty() {
                assert!(
                    !res.plans.contains_key(&mc.buffer),
                    "stale cross-buffer retention must be denied"
                );
            }
        }
    }

    #[test]
    fn unrewritten_write_denies_retention() {
        // In-place stencil A[i] = A[i] + A[i+1], i-tiles of 4: one
        // buffer, write rewritten into it → retention of the sliding
        // halo is legal. Stripping the write rewrite (modelling a
        // write that bypasses the local store) must deny it.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 1]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let sym = crate::smem::cache::parametrize_dims(&t, &["iT".to_string()]).unwrap();
        let cfg = SmemConfig {
            sample_params: vec![12, 1],
            must_copy_all: true,
            ..SmemConfig::default()
        };
        let plan = crate::smem::analyze_program(&sym, &cfg).unwrap();
        let res = plan_residency(&sym, &plan, "iT").unwrap();
        assert!(!res.plans.is_empty(), "in-place stencil retains its halo");
        let mut crippled = plan.clone();
        crippled.rewrites.retain(|id, _| !id.is_write());
        let res = plan_residency(&sym, &crippled, "iT").unwrap();
        assert!(res.plans.is_empty(), "bypassing write must deny retention");
    }

    #[test]
    fn disjoint_tiles_retain_nothing() {
        // Out[i] = In[i] with 4-tiles: consecutive windows are
        // disjoint, so no retain plan is emitted at all.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("In", &[v("N")]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("In", &[v("i")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let cfg = SmemConfig {
            sample_params: vec![12],
            must_copy_all: true,
            residency_dim: Some("iT".to_string()),
            ..SmemConfig::default()
        };
        let sp = analyze_symbolic(&t, &[("iT".to_string(), 1)], &cfg).unwrap();
        let res = sp.residency.as_ref().unwrap();
        assert!(res.is_empty());
    }
}
