//! §4.3-style analytic mapping cost estimator and tune artifacts.
//!
//! The paper's tile-size search (§4.3) ranks candidate mappings with a
//! closed-form data-movement cost model instead of executing them.
//! This module reproduces that lever for the *whole* mapping space the
//! executor exposes (tile shape, blocked/sequential dim split, thread
//! dims, double buffering, hierarchy, residency): [`estimate`] prices
//! one candidate from its [`SymbolicPlan`] alone — global-traffic
//! bytes from the movement/residency sets, DMA descriptor setup from
//! the coalesced transfer lists, per-instance compute and memory ops
//! from exact polyhedral point counts, and the §5 occupancy/sync terms
//! — mirroring the executor's cycle formulas term by term, with **no
//! simulation**.
//!
//! Two mapping knobs are deliberately *absent* from the predicted
//! cycles: `vector_width` and the compiled-vs-interpreted engine
//! toggle. Both change wall-clock only; the executor's modeled-cycle
//! counters (`n_inst`, `n_smem`, `n_glob`) are engine-identical by
//! construction (the `POLYMEM_EXEC_CHECK` oracle asserts it), so a
//! faithful estimator must not price them.
//!
//! The module also defines the persistent *tune artifact*: the ranked
//! candidate table plus the winning [`MappingDesc`], stored next to
//! the plan artifacts under a key derived from the program, the
//! machine salt and the candidate-space description, so later runs
//! (`polymem run --tuned`, `polymem serve`) load the best mapping with
//! zero search cost.

use super::artifact::{hash_program, schema_hash, ArtifactKey, KeyHasher};
use super::descriptors::{
    delta_transfer_list, flush_transfer_list, transfer_list, Direction, TransferList,
};
use super::{AccessId, Result, SmemError, SymbolicPlan};
use crate::tiling::transform::fix_dims;
use polymem_ir::Program;
use polymem_poly::count::{count_points, enumerate_points};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version stamp of the tune key derivation and artifact codec.
pub const TUNE_FORMAT_VERSION: u64 = 1;

/// A machine-independent description of one candidate mapping: enough
/// to reconstruct the [`BlockedKernel`] (tiling + dim split) and the
/// per-mapping machine toggles. This is what the tune artifact
/// persists, so `run --tuned` can rebuild the winner without
/// re-searching.
///
/// `scheme` names the reconstruction recipe: `"tile"` means "tile the
/// base program by `tiles` (suffix `T`) and split dims as listed";
/// other schemes (e.g. `"jacobi_overlapped"`) are owned by
/// kernel-specific rebuilders.
///
/// [`BlockedKernel`]: https://docs.rs/polymem-machine
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MappingDesc {
    /// Reconstruction recipe name.
    pub scheme: String,
    /// `(loop name, tile size)` pairs fed to the tiler.
    pub tiles: Vec<(String, i64)>,
    /// Dims enumerated as device-sync rounds.
    pub round_dims: Vec<String>,
    /// Dims distributed across thread blocks.
    pub block_dims: Vec<String>,
    /// Dims run sequentially inside a block (§4.2 sub-tiles).
    pub seq_dims: Vec<String>,
    /// Dims distributed across inner processes (threads).
    pub thread_dims: Vec<String>,
    /// Stage buffers in the scratchpad at all.
    pub use_scratchpad: bool,
    /// Overlap sub-tile DMA with compute.
    pub double_buffer: bool,
    /// Enable the level-2 register-frame plan.
    pub hierarchy: bool,
    /// Enable inter-sub-tile residency (delta transfers).
    pub residency: bool,
    /// SIMD lanes of the compiled engine (wall-clock only; never
    /// priced by [`estimate`]).
    pub vector_width: u64,
}

fn join_list(v: &[String]) -> String {
    v.join(",")
}

fn split_list(s: &str) -> Vec<String> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split(',').map(|x| x.to_string()).collect()
    }
}

impl MappingDesc {
    /// Compact human-readable label, e.g.
    /// `tile[i=4,j=8] blk[iT] seq[jT] thr[i] spad db res vw8`.
    pub fn label(&self) -> String {
        let tiles: Vec<String> = self.tiles.iter().map(|(n, t)| format!("{n}={t}")).collect();
        let mut s = format!("{}[{}]", self.scheme, tiles.join(","));
        if !self.round_dims.is_empty() {
            s.push_str(&format!(" rnd[{}]", join_list(&self.round_dims)));
        }
        if !self.block_dims.is_empty() {
            s.push_str(&format!(" blk[{}]", join_list(&self.block_dims)));
        }
        if !self.seq_dims.is_empty() {
            s.push_str(&format!(" seq[{}]", join_list(&self.seq_dims)));
        }
        if !self.thread_dims.is_empty() {
            s.push_str(&format!(" thr[{}]", join_list(&self.thread_dims)));
        }
        if self.use_scratchpad {
            s.push_str(" spad");
        }
        if self.double_buffer {
            s.push_str(" db");
        }
        if self.hierarchy {
            s.push_str(" hier");
        }
        if self.residency {
            s.push_str(" res");
        }
        s.push_str(&format!(" vw{}", self.vector_width));
        s
    }

    /// Fold the full description into an artifact key hasher.
    pub fn hash_into(&self, h: &mut KeyHasher) {
        h.str(&self.scheme);
        h.u64(self.tiles.len() as u64);
        for (n, t) in &self.tiles {
            h.str(n);
            h.i64(*t);
        }
        for dims in [
            &self.round_dims,
            &self.block_dims,
            &self.seq_dims,
            &self.thread_dims,
        ] {
            h.u64(dims.len() as u64);
            for d in dims.iter() {
                h.str(d);
            }
        }
        let bits = (self.use_scratchpad as u64)
            | (self.double_buffer as u64) << 1
            | (self.hierarchy as u64) << 2
            | (self.residency as u64) << 3;
        h.u64(bits);
        h.u64(self.vector_width);
    }

    /// Single-line serialisation for the tune artifact (inverse of
    /// [`MappingDesc::parse_line`]). Loop names are identifiers, so
    /// the `;`/`,`/`=` separators are unambiguous.
    pub fn to_line(&self) -> String {
        let tiles: Vec<String> = self.tiles.iter().map(|(n, t)| format!("{n}={t}")).collect();
        format!(
            "scheme={};tiles={};round={};block={};seq={};thread={};spad={};db={};hier={};res={};vw={}",
            self.scheme,
            tiles.join(","),
            join_list(&self.round_dims),
            join_list(&self.block_dims),
            join_list(&self.seq_dims),
            join_list(&self.thread_dims),
            self.use_scratchpad as u8,
            self.double_buffer as u8,
            self.hierarchy as u8,
            self.residency as u8,
            self.vector_width,
        )
    }

    /// Parse a [`MappingDesc::to_line`] string; `None` on any
    /// malformed field.
    pub fn parse_line(line: &str) -> Option<MappingDesc> {
        let mut fields: HashMap<&str, &str> = HashMap::new();
        for part in line.split(';') {
            let (k, v) = part.split_once('=')?;
            fields.insert(k, v);
        }
        let tiles_raw = *fields.get("tiles")?;
        let mut tiles = Vec::new();
        if !tiles_raw.is_empty() {
            for t in tiles_raw.split(',') {
                let (n, v) = t.split_once('=')?;
                tiles.push((n.to_string(), v.parse().ok()?));
            }
        }
        let flag = |k: &str| -> Option<bool> { Some(*fields.get(k)? == "1") };
        Some(MappingDesc {
            scheme: fields.get("scheme")?.to_string(),
            tiles,
            round_dims: split_list(fields.get("round")?),
            block_dims: split_list(fields.get("block")?),
            seq_dims: split_list(fields.get("seq")?),
            thread_dims: split_list(fields.get("thread")?),
            use_scratchpad: flag("spad")?,
            double_buffer: flag("db")?,
            hierarchy: flag("hier")?,
            residency: flag("res")?,
            vector_width: fields.get("vw")?.parse().ok()?,
        })
    }
}

/// The machine's performance constants, mirrored from the simulator's
/// config so the estimator can live machine-independently in `core`.
/// Every term corresponds one-to-one to a field the executor reads.
#[derive(Clone, Debug)]
pub struct CostConstants {
    /// Cycles per statement instance.
    pub cycles_per_op: f64,
    /// Cycles per scratchpad access.
    pub smem_latency: f64,
    /// Cycles per global access before overlap division.
    pub global_latency: f64,
    /// Latency-hiding divisor for global accesses.
    pub global_overlap: f64,
    /// Bytes per array element.
    pub word_bytes: u64,
    /// Scratchpad bytes per outer unit (0 = unlimited).
    pub smem_bytes: u64,
    /// Device-wide barrier base cycles per round.
    pub device_sync_base: f64,
    /// Barrier cycles per block per round.
    pub device_sync_per_block: f64,
    /// DMA channels per outer unit (0 = per-element movement).
    pub dma_channels: u64,
    /// Per-descriptor setup cycles.
    pub dma_setup_cycles: f64,
    /// DMA bandwidth in bytes per cycle.
    pub dma_bytes_per_cycle: f64,
    /// Outer-level parallel units.
    pub n_outer: u64,
    /// Hardware cap on concurrent blocks per outer unit.
    pub max_blocks_per_outer: u64,
    /// Point budget for exact instance counting.
    pub count_budget: u64,
    /// PE-mesh rows on spatial machines (0 = no placement-priced NoC;
    /// DMA descriptors then pay no route term).
    pub mesh_rows: u64,
    /// PE-mesh columns (hop distance from the west-edge memory ports
    /// grows with the column index).
    pub mesh_cols: u64,
    /// NoC cycles per hop per DMA descriptor.
    pub hop_cycles: f64,
}

impl CostConstants {
    /// The §5 occupancy rule, mirroring `MachineConfig::concurrent_blocks`.
    pub fn concurrent_blocks(&self, smem_per_block: u64) -> u64 {
        let hw = self.n_outer * self.max_blocks_per_outer;
        if smem_per_block == 0 || self.smem_bytes == 0 {
            return hw.max(1);
        }
        let per_unit = (self.smem_bytes / smem_per_block).min(self.max_blocks_per_outer);
        (per_unit * self.n_outer).max(1).min(hw.max(1))
    }

    /// The worst per-descriptor NoC route any of `blocks` concurrent
    /// blocks pays under column-major mesh placement, mirroring
    /// `MachineConfig::max_route_cycles` — the estimator prices the
    /// representative block as the round's critical path. 0 without a
    /// mesh.
    pub fn max_route_cycles(&self, blocks: u64) -> u64 {
        if self.mesh_rows == 0 || self.mesh_cols == 0 || blocks == 0 {
            return 0;
        }
        let pes = (self.mesh_rows * self.mesh_cols).max(1);
        let col = (blocks.min(pes) - 1) / self.mesh_rows.max(1);
        ((col + 1) as f64 * self.hop_cycles).round() as u64
    }
}

/// The enumerated shape of one candidate's launch, computed by the
/// driver from the kernel dims (rounds × blocks × sequential
/// sub-tiles) plus the representative fixed-dim values the symbolic
/// plan is evaluated at.
#[derive(Clone, Debug)]
pub struct Structure {
    /// Number of device-sync rounds.
    pub rounds: u64,
    /// Blocks per round (≥ 1).
    pub blocks: u64,
    /// Sequential sub-tiles per block (≥ 1).
    pub seqs: u64,
    /// Round/block/seq dims pinned at their first enumerated values.
    pub rep_first: HashMap<String, i64>,
    /// Same, with the innermost seq dim advanced to its second value
    /// (present only when `seqs > 1`); evaluation point for the
    /// residency delta/flush sets.
    pub rep_mid: Option<HashMap<String, i64>>,
    /// Arrays whose staging hoists past the seq loop (moved in once,
    /// written back once per block).
    pub hoisted_arrays: Vec<usize>,
    /// Whether the candidate double-buffers sub-tile DMA.
    pub double_buffer: bool,
}

/// The analytic price of one candidate mapping.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostEstimate {
    /// Predicted modeled cycles for the whole launch (the ranking
    /// figure; mirrors `ExecStats::modeled_cycles`).
    pub predicted_cycles: u64,
    /// Bytes crossing the global bus (movement lists + unstaged
    /// accesses), whole launch.
    pub global_bytes: u64,
    /// DMA descriptors issued per block (setup-cost occurrences).
    pub dma_descriptors: u64,
    /// Device-sync cycles across all rounds.
    pub sync_cycles: u64,
    /// Statement instances across the whole launch.
    pub compute_ops: u64,
    /// Scratchpad accesses per representative sub-block.
    pub smem_accesses: u64,
    /// Global accesses (compute-side) per representative sub-block.
    pub global_accesses: u64,
    /// Scratchpad words resident per block.
    pub smem_words: u64,
}

/// Tiny deterministic replica of the simulator's `DmaEngine` cost
/// model (least-busy channel, setup + bandwidth per descriptor), used
/// to price transfer lists without touching the machine crate.
struct DmaSim {
    channels: Vec<u64>,
    setup: f64,
    bpc: f64,
    word_bytes: u64,
    /// Per-descriptor NoC route cycles (spatial machines; 0 elsewhere),
    /// mirroring `DmaEngine::with_route`.
    route: u64,
    descriptors: u64,
    elements: u64,
}

impl DmaSim {
    fn new(cc: &CostConstants, route: u64) -> DmaSim {
        DmaSim {
            channels: vec![0; cc.dma_channels.max(1) as usize],
            setup: cc.dma_setup_cycles.max(0.0),
            bpc: cc.dma_bytes_per_cycle.max(1e-9),
            word_bytes: cc.word_bytes,
            route,
            descriptors: 0,
            elements: 0,
        }
    }

    /// Queue a whole list at `now`; returns the completion cycle of
    /// its last descriptor.
    fn issue_list(&mut self, list: &TransferList, now: u64) -> u64 {
        let mut last = now;
        for d in &list.descriptors {
            let bytes = d.bytes(self.word_bytes);
            let ch = self
                .channels
                .iter()
                .enumerate()
                .min_by_key(|(i, &busy)| (busy, *i))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let start = now.max(self.channels[ch]);
            let cost = (self.setup + (bytes as f64 / self.bpc).ceil())
                .round()
                .max(1.0) as u64
                + self.route;
            let done = start + cost;
            self.channels[ch] = done;
            self.descriptors += 1;
            last = last.max(done);
        }
        self.elements += list.elements;
        last
    }

    fn drain(&self) -> u64 {
        self.channels.iter().copied().max().unwrap_or(0)
    }
}

/// Per-movement-group pricing inputs gathered once per candidate.
struct GroupLists {
    array: usize,
    hoisted: bool,
    move_in: TransferList,
    move_out: TransferList,
    /// Residency delta move-in for non-first sub-tiles.
    delta_in: Option<TransferList>,
    /// Legal flush-delta move-out for non-last sub-tiles.
    flush_out: Option<TransferList>,
}

fn shape_err(what: &str) -> SmemError {
    SmemError::Ir(polymem_ir::IrError::UnknownName(format!(
        "tune estimator shape mismatch: {what}"
    )))
}

/// Price one candidate mapping from its symbolic plan alone.
///
/// `program` is the candidate's (tiled) program; `sp` its symbolic
/// plan (`None` for unstaged mappings); `structure` the enumerated
/// launch shape. The returned `predicted_cycles` mirrors the
/// executor's accounting exactly where the plan permits: per sub-block
/// `n_inst·cycles_per_op + n_smem·smem_latency + n_glob·(global_latency
/// / global_overlap)`, DMA lists priced by the channel model, rounds
/// charged `block_cycles · ⌈blocks / concurrent⌉ + sync`.
pub fn estimate(
    program: &Program,
    sp: Option<&SymbolicPlan>,
    params: &[i64],
    structure: &Structure,
    cc: &CostConstants,
) -> Result<CostEstimate> {
    let fixed = &structure.rep_first;
    let hier = sp.and_then(|s| s.hier.as_ref());

    // Compute-side counters of the representative sub-block, with the
    // executor's exact access classification: level-2 frame hits are
    // free, level-1 staged accesses pay smem latency, the rest go to
    // global memory.
    let (mut n_inst, mut n_smem, mut n_glob) = (0u64, 0u64, 0u64);
    for (si, stmt) in program.stmts.iter().enumerate() {
        let dom = fix_dims(&stmt.domain, fixed)
            .substitute_params(params)
            .map_err(SmemError::Poly)?;
        let c = count_points(&dom, cc.count_budget).map_err(SmemError::Poly)?;
        if c == 0 {
            continue;
        }
        n_inst += c;
        for k in 0..stmt.reads.len() {
            let id = AccessId::read(si, k);
            if hier.is_some_and(|h| h.plan.rewrites.contains_key(&id)) {
                // Register-frame hit: no smem access in the cycle model.
            } else if sp.is_some_and(|s| s.plan.rewrites.contains_key(&id)) {
                n_smem += c;
            } else {
                n_glob += c;
            }
        }
        let wid = AccessId::write(si);
        if hier.is_some_and(|h| h.plan.rewrites.contains_key(&wid)) {
            // Frame write: reaches scratchpad at flush, priced below.
        } else if sp.is_some_and(|s| s.plan.rewrites.contains_key(&wid)) {
            n_smem += c;
        } else {
            n_glob += c;
        }
    }

    // Level-2 frame staging traffic: per distinct thread key the
    // executor moves every frame's move-in elements from scratchpad
    // and flushes the written ones back — each element one smem
    // access.
    if let Some(h) = hier {
        let mut n_keys = 0u64;
        let mut thread_rep: Option<Vec<i64>> = None;
        for (si, stmt) in program.stmts.iter().enumerate() {
            if h.stmt_thread_pos[si].is_none() {
                continue;
            }
            let dom = fix_dims(&stmt.domain, fixed);
            let keep: Vec<usize> = h
                .thread_dims
                .iter()
                .filter_map(|n| dom.space().find_dim(n))
                .collect();
            if keep.len() != h.thread_dims.len() {
                continue;
            }
            let proj = dom
                .project_onto(&keep)
                .and_then(|p| p.substitute_params(params))
                .map_err(SmemError::Poly)?;
            let mut first: Option<Vec<i64>> = None;
            let mut count = 0u64;
            enumerate_points(&proj, cc.count_budget, &mut |p| {
                if first.is_none() {
                    first = Some(p.to_vec());
                }
                count += 1;
            })
            .map_err(SmemError::Poly)?;
            if count > n_keys {
                n_keys = count;
                thread_rep = first;
            }
        }
        if let (Some(tvals), true) = (thread_rep, n_keys > 0) {
            let fixed_pairs: HashMap<String, i64> = fixed.clone();
            let ext2 = h
                .ext_params(params, &fixed_pairs, &tvals)
                .ok_or_else(|| shape_err("level-2 ext params"))?;
            let mut per_key = 0u64;
            for mc in &h.plan.movement {
                per_key += mc.move_in_count(&ext2) + mc.move_out_count(&ext2);
            }
            n_smem = n_smem.saturating_add(n_keys.saturating_mul(per_key));
        }
    }

    let l = cc.global_latency / cc.global_overlap.max(1.0);
    let compute =
        (n_inst as f64 * cc.cycles_per_op + n_smem as f64 * cc.smem_latency + n_glob as f64 * l)
            .round() as u64;

    // Movement lists of the representative sub-block.
    let mut groups: Vec<GroupLists> = Vec::new();
    let mut smem_words = 0u64;
    if let Some(sp) = sp {
        let ext = sp
            .ext_params(params, fixed)
            .ok_or_else(|| shape_err("level-1 ext params"))?;
        let ext_mid = structure
            .rep_mid
            .as_ref()
            .and_then(|m| sp.ext_params(params, m));
        smem_words = sp.plan.total_buffer_words(&ext)?;
        for mc in &sp.plan.movement {
            let buf = &sp.plan.buffers[mc.buffer];
            let aext = program.arrays[buf.array]
                .eval_extents(&program.params, params)
                .map_err(SmemError::Ir)?;
            let move_in = transfer_list(mc, buf, Direction::In, &aext, &ext)?;
            let move_out = transfer_list(mc, buf, Direction::Out, &aext, &ext)?;
            let rp = sp.residency.as_ref().and_then(|r| r.plans.get(&mc.buffer));
            let (delta_in, flush_out) = match (rp, &ext_mid) {
                (Some(rp), Some(em)) => (
                    Some(delta_transfer_list(rp, buf, &aext, em)?),
                    rp.flush_legal
                        .then(|| flush_transfer_list(rp, buf, &aext, em))
                        .transpose()?,
                ),
                _ => (None, None),
            };
            groups.push(GroupLists {
                array: buf.array,
                hoisted: structure.hoisted_arrays.contains(&buf.array),
                move_in,
                move_out,
                delta_in,
                flush_out,
            });
        }
    }

    // Walk the block's sub-tile schedule with the DMA channel model,
    // pricing the representative block as the round's NoC critical
    // path (the easternmost concurrently placed block's route).
    let seqs = structure.seqs.max(1);
    let mut dma = DmaSim::new(cc, cc.max_route_cycles(structure.blocks.max(1)));
    let mut now = 0u64;
    let mut moved_elems = 0u64;
    if structure.double_buffer && seqs > 1 && !groups.is_empty() {
        // Pipelined: iteration s+1's move-in issues during compute of
        // s; only the first stage is exposed.
        let mut ready = 0u64;
        for g in &groups {
            ready = ready.max(dma.issue_list(&g.move_in, now));
            moved_elems += g.move_in.elements;
        }
        for s in 0..seqs {
            now = now.max(ready);
            let start = now;
            ready = 0;
            if s + 1 < seqs {
                for g in groups.iter().filter(|g| !g.hoisted) {
                    ready = ready.max(dma.issue_list(&g.move_in, start));
                    moved_elems += g.move_in.elements;
                }
            }
            now += compute;
            for g in groups.iter().filter(|g| !g.hoisted) {
                now = now.max(dma.issue_list(&g.move_out, now));
                moved_elems += g.move_out.elements;
            }
        }
    } else {
        for s in 0..seqs {
            let first = s == 0;
            let last = s + 1 == seqs;
            for g in &groups {
                if g.hoisted && !first {
                    continue;
                }
                let list = match (&g.delta_in, first) {
                    (Some(d), false) => d,
                    _ => &g.move_in,
                };
                now = dma.issue_list(list, now);
                moved_elems += list.elements;
            }
            now += compute;
            for g in groups.iter().filter(|g| !g.hoisted) {
                let list = match (&g.flush_out, last) {
                    (Some(f), false) => f,
                    _ => &g.move_out,
                };
                now = dma.issue_list(list, now);
                moved_elems += list.elements;
            }
        }
    }
    for g in groups.iter().filter(|g| g.hoisted) {
        let _ = g.array;
        now = dma.issue_list(&g.move_out, now);
        moved_elems += g.move_out.elements;
    }
    now = now.max(dma.drain());
    let block_cycles = now;

    let blocks = structure.blocks.max(1);
    let rounds = structure.rounds.max(1);
    let conc = cc.concurrent_blocks(smem_words * cc.word_bytes).max(1);
    let sync = (cc.device_sync_base + cc.device_sync_per_block * blocks as f64).round() as u64;
    let predicted = rounds.saturating_mul(
        block_cycles
            .saturating_mul(blocks.div_ceil(conc))
            .saturating_add(sync),
    );
    let per_block_glob = moved_elems + n_glob.saturating_mul(seqs);
    Ok(CostEstimate {
        predicted_cycles: predicted,
        global_bytes: per_block_glob
            .saturating_mul(blocks)
            .saturating_mul(rounds)
            .saturating_mul(cc.word_bytes),
        dma_descriptors: dma.descriptors,
        sync_cycles: rounds * sync,
        compute_ops: n_inst
            .saturating_mul(seqs)
            .saturating_mul(blocks)
            .saturating_mul(rounds),
        smem_accesses: n_smem,
        global_accesses: n_glob,
        smem_words,
    })
}

/// The content-addressed key a tune artifact is stored under:
/// program × params × machine salt × candidate-space description.
/// Any change to the space (new candidates, new toggles) changes the
/// key, so stale winners can never shadow a wider search.
pub fn tune_key(program: &Program, params: &[i64], salt: &[u64], space: &str) -> ArtifactKey {
    let mut h = KeyHasher::new();
    h.u64(TUNE_FORMAT_VERSION);
    h.u64(schema_hash());
    hash_program(&mut h, program);
    h.u64(params.len() as u64);
    for &p in params {
        h.i64(p);
    }
    h.u64(salt.len() as u64);
    for &w in salt {
        h.u64(w);
    }
    h.str(space);
    h.finish()
}

/// One ranked candidate in a tune artifact.
#[derive(Clone, Debug)]
pub struct TuneRow {
    /// The candidate mapping.
    pub desc: MappingDesc,
    /// Analytic prediction (modeled cycles).
    pub predicted: u64,
    /// Simulated modeled cycles, when the candidate survived pruning.
    pub simulated: Option<u64>,
    /// Whether the simulated outputs matched the reference interpreter
    /// bit-exactly (vacuously true for unsimulated candidates).
    pub exact: bool,
    /// Whether this is a preset (hand-picked) mapping.
    pub preset: bool,
    /// Failure note (estimator or executor error), empty if none.
    pub note: String,
}

/// The persisted result of one tuning run.
#[derive(Clone, Debug)]
pub struct TuneArtifact {
    /// The key the artifact is stored under.
    pub key: ArtifactKey,
    /// The winning mapping.
    pub winner: MappingDesc,
    /// The winner's predicted cycles.
    pub winner_predicted: u64,
    /// The winner's simulated modeled cycles.
    pub winner_cycles: u64,
    /// The full ranked table (predicted ascending).
    pub rows: Vec<TuneRow>,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn escape_note(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "-".to_string()
    } else {
        cleaned
    }
}

impl TuneArtifact {
    /// File name under the artifact directory.
    pub fn path_for(dir: &Path, key: &ArtifactKey) -> PathBuf {
        dir.join(format!("{key}.tune"))
    }

    fn encode(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "polymem-tune v{TUNE_FORMAT_VERSION} {}\n",
            self.key
        ));
        body.push_str(&format!("winner {}\n", self.winner.to_line()));
        body.push_str(&format!(
            "winner_cycles {} {}\n",
            self.winner_predicted, self.winner_cycles
        ));
        for r in &self.rows {
            let sim = r
                .simulated
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".to_string());
            body.push_str(&format!(
                "row {} {} {} {} {} {}\n",
                r.predicted,
                sim,
                r.exact as u8,
                r.preset as u8,
                escape_note(&r.note),
                r.desc.to_line(),
            ));
        }
        let sum = fnv64(body.as_bytes());
        body.push_str(&format!("checksum {sum:016x}\n"));
        body
    }

    /// Atomically persist under `dir` (temp file + rename, like the
    /// plan artifact store). Returns the final path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = TuneArtifact::path_for(dir, &self.key);
        let tmp = dir.join(format!(".{}.{}.tune.tmp", self.key, std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.encode().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Load and validate (checksum + key match); `None` on any
    /// mismatch or parse failure — callers then re-run the search.
    pub fn load(dir: &Path, key: &ArtifactKey) -> Option<TuneArtifact> {
        let text = std::fs::read_to_string(TuneArtifact::path_for(dir, key)).ok()?;
        let (body, sum_line) = text.rsplit_once("checksum ")?;
        let sum = u64::from_str_radix(sum_line.trim(), 16).ok()?;
        if fnv64(body.as_bytes()) != sum {
            return None;
        }
        let mut lines = body.lines();
        let header = lines.next()?;
        let mut hp = header.split_whitespace();
        if hp.next()? != "polymem-tune" || hp.next()? != format!("v{TUNE_FORMAT_VERSION}") {
            return None;
        }
        if hp.next()? != format!("{key}") {
            return None;
        }
        let winner_line = lines.next()?.strip_prefix("winner ")?;
        let winner = MappingDesc::parse_line(winner_line)?;
        let wc = lines.next()?.strip_prefix("winner_cycles ")?;
        let mut wcp = wc.split_whitespace();
        let winner_predicted = wcp.next()?.parse().ok()?;
        let winner_cycles = wcp.next()?.parse().ok()?;
        let mut rows = Vec::new();
        for line in lines {
            let Some(rest) = line.strip_prefix("row ") else {
                continue;
            };
            let mut it = rest.splitn(6, ' ');
            let predicted = it.next()?.parse().ok()?;
            let sim_raw = it.next()?;
            let simulated = if sim_raw == "-" {
                None
            } else {
                Some(sim_raw.parse().ok()?)
            };
            let exact = it.next()? == "1";
            let preset = it.next()? == "1";
            let note_raw = it.next()?;
            let note = if note_raw == "-" {
                String::new()
            } else {
                note_raw.to_string()
            };
            let desc = MappingDesc::parse_line(it.next()?)?;
            rows.push(TuneRow {
                desc,
                predicted,
                simulated,
                exact,
                preset,
                note,
            });
        }
        Some(TuneArtifact {
            key: *key,
            winner,
            winner_predicted,
            winner_cycles,
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> MappingDesc {
        MappingDesc {
            scheme: "tile".into(),
            tiles: vec![("i".into(), 4), ("j".into(), 8)],
            round_dims: vec![],
            block_dims: vec!["iT".into()],
            seq_dims: vec!["jT".into()],
            thread_dims: vec!["i".into()],
            use_scratchpad: true,
            double_buffer: true,
            hierarchy: false,
            residency: true,
            vector_width: 8,
        }
    }

    #[test]
    fn desc_line_round_trips() {
        let d = desc();
        let line = d.to_line();
        assert_eq!(MappingDesc::parse_line(&line), Some(d.clone()));
        assert!(d.label().contains("blk[iT]"));
        assert!(d.label().contains("db"));
    }

    #[test]
    fn desc_hash_distinguishes_toggles() {
        let d = desc();
        let mut h1 = KeyHasher::new();
        d.hash_into(&mut h1);
        let mut d2 = d.clone();
        d2.residency = false;
        let mut h2 = KeyHasher::new();
        d2.hash_into(&mut h2);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn tune_artifact_round_trips_via_disk() {
        let dir = std::env::temp_dir().join(format!("polymem-tune-test-{}", std::process::id()));
        let key = ArtifactKey {
            lo: 0x1234,
            hi: 0xabcd,
        };
        let art = TuneArtifact {
            key,
            winner: desc(),
            winner_predicted: 100,
            winner_cycles: 90,
            rows: vec![
                TuneRow {
                    desc: desc(),
                    predicted: 100,
                    simulated: Some(90),
                    exact: true,
                    preset: false,
                    note: String::new(),
                },
                TuneRow {
                    desc: desc(),
                    predicted: 200,
                    simulated: None,
                    exact: true,
                    preset: true,
                    note: "scratchpad overflow: block needs 1 B".into(),
                },
            ],
        };
        art.save(&dir).unwrap();
        let back = TuneArtifact::load(&dir, &key).expect("loads");
        assert_eq!(back.winner, art.winner);
        assert_eq!(back.winner_cycles, 90);
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.rows[0].simulated, Some(90));
        assert_eq!(back.rows[1].simulated, None);
        assert!(back.rows[1].preset);
        assert!(back.rows[1].note.contains("overflow"));
        // A corrupted byte fails the checksum.
        let path = TuneArtifact::path_for(&dir, &key);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(TuneArtifact::load(&dir, &key).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tune_key_depends_on_space() {
        let p = {
            use polymem_ir::expr::v;
            use polymem_ir::{Expr, LinExpr, ProgramBuilder};
            let mut b = ProgramBuilder::new("t", ["N"]);
            b.array("A", &[v("N")]);
            b.stmt("S")
                .loops(&[("i", LinExpr::c(0), v("N") - 1)])
                .write("A", &[v("i")])
                .body(Expr::Const(1))
                .done();
            b.build().unwrap()
        };
        let k1 = tune_key(&p, &[8], &[1, 2], "a|b");
        let k2 = tune_key(&p, &[8], &[1, 2], "a|b|c");
        let k3 = tune_key(&p, &[16], &[1, 2], "a|b");
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(k1, tune_key(&p, &[8], &[1, 2], "a|b"));
    }
}
