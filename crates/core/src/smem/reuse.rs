//! Algorithm 1 — the reuse-benefit test.
//!
//! A partition of data spaces is worth copying into scratchpad memory
//! when either
//!
//! 1. some reference has **order-of-magnitude reuse**
//!    (`rank(F) < dim(is)`, Condition (1) of the paper), or
//! 2. the partition has significant **constant reuse**: the summed
//!    volume of pairwise intersections of member data spaces exceeds
//!    a fraction δ of the total volume of the set (paper: δ = 30 %,
//!    fixed empirically).
//!
//! Volumes need concrete numbers, so the constant-reuse test
//! substitutes the caller's representative parameter values
//! (`SmemConfig::sample_params`) before counting integer points
//! (exactly, with a bounding-box fallback under a point budget).

use super::dataspace::RefInfo;
use super::{Result, SmemConfig, SmemError};
use polymem_poly::count::count_or_estimate;
use polymem_poly::PolyUnion;

/// The paper's empirically fixed overlap threshold δ.
pub const DEFAULT_DELTA: f64 = 0.30;

/// Outcome of Algorithm 1 for one partition.
#[derive(Clone, Debug, PartialEq)]
pub struct ReuseDecision {
    /// Should this partition live in scratchpad memory?
    pub beneficial: bool,
    /// Did Condition (1) (`rank < dim`) fire for some reference?
    pub order_of_magnitude: bool,
    /// Measured overlap fraction (only computed when Condition (1)
    /// did not fire and parameters were available).
    pub overlap_fraction: Option<f64>,
}

/// Run Algorithm 1 on one partition of references.
pub fn evaluate_group(members: &[&RefInfo], config: &SmemConfig) -> Result<ReuseDecision> {
    // In-place-compute machines (PIM): a local copy can never beat
    // touching the data where it lives, so no amount of reuse makes
    // staging beneficial. Answer before measuring anything.
    if !config.staging_pays {
        return Ok(ReuseDecision {
            beneficial: false,
            order_of_magnitude: false,
            overlap_fraction: None,
        });
    }
    // Lines 1–5: mark yes if any reference has rank < iteration dims.
    if members.iter().any(|m| m.has_order_of_magnitude_reuse()) {
        return Ok(ReuseDecision {
            beneficial: true,
            order_of_magnitude: true,
            overlap_fraction: None,
        });
    }
    // Lines 6–10: constant-reuse volume test. A singleton partition
    // has no pairwise overlap, so only the residency extension below
    // can make it beneficial.
    let mut fraction = 0.0f64;
    if members.len() >= 2 {
        let n_params = members[0].data_space.n_params();
        if config.sample_params.len() != n_params {
            return Err(SmemError::MissingSampleParams);
        }
        let concrete: Vec<_> = members
            .iter()
            .map(|m| m.data_space.substitute_params(&config.sample_params))
            .collect::<std::result::Result<_, _>>()?;
        let union = PolyUnion::from_members(concrete)?;
        let (total, _) = union.count_or_estimate(config.count_budget)?;
        if total > 0 {
            let mut overlap = 0u64;
            for i in 0..union.members().len() {
                for j in (i + 1)..union.members().len() {
                    let inter = union.members()[i].intersect(&union.members()[j])?;
                    let (v, _) = count_or_estimate(&inter, config.count_budget)?;
                    overlap = overlap.saturating_add(v);
                }
            }
            fraction = overlap as f64 / total as f64;
        }
        if fraction > config.delta {
            return Ok(ReuseDecision {
                beneficial: true,
                order_of_magnitude: false,
                overlap_fraction: Some(fraction),
            });
        }
    }
    // Residency extension: with an innermost sequential dim configured,
    // constant reuse also arises *across* consecutive sub-tiles — the
    // fraction of the window retained under the seq shift. A sliding
    // stencil window whose columns are disjoint within one instance
    // (pairwise fraction below δ) still earns its buffer when most of
    // it survives into the next instance as a delta transfer.
    if let Some(seq) = config.residency_dim.as_deref() {
        if let Some(idx) = members[0].data_space.space().find_param(seq) {
            if config.sample_params.len() == members[0].data_space.n_params() {
                let seq_fraction = seq_overlap_fraction(members, idx, config)?;
                fraction = fraction.max(seq_fraction);
            }
        }
    }
    Ok(ReuseDecision {
        beneficial: fraction > config.delta,
        order_of_magnitude: false,
        overlap_fraction: Some(fraction),
    })
}

/// Fraction of the group's window (union of member data spaces) that
/// is still covered by the window of the lexicographically *next* seq
/// instance, measured at the sample parameters. The shift is applied
/// symbolically (it rewrites the seq parameter's column) *before*
/// substitution; shifting forward keeps the test well-defined even
/// when the representative fixed values name the first sub-tile,
/// whose predecessor window is empty.
fn seq_overlap_fraction(members: &[&RefInfo], seq_idx: usize, config: &SmemConfig) -> Result<f64> {
    let window: Vec<_> = members
        .iter()
        .map(|m| m.data_space.substitute_params(&config.sample_params))
        .collect::<std::result::Result<_, _>>()?;
    let (total, _) = PolyUnion::from_members(window)?.count_or_estimate(config.count_budget)?;
    if total == 0 {
        return Ok(0.0);
    }
    let mut retained = Vec::new();
    for m in members {
        for p in members {
            let next = super::residency::shift_seq(&p.data_space, seq_idx, 1);
            let inter = m.data_space.intersect(&next)?;
            retained.push(inter.substitute_params(&config.sample_params)?);
        }
    }
    let (kept, _) = PolyUnion::from_members(retained)?.count_or_estimate(config.count_budget)?;
    Ok(kept.min(total) as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::dataspace::collect_refs;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};

    fn one_stmt_program(reads: &[(Vec<LinExpr>, &str)]) -> Program {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") * 4 + 4]);
        b.array("B", &[v("N"), v("N")]);
        b.array("Out", &[v("N")]);
        let mut s = b
            .stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")]);
        for (subs, arr) in reads {
            s = s.read(arr, subs);
        }
        s.body(Expr::Const(0)).done();
        b.build().unwrap()
    }

    fn config(params: &[i64]) -> SmemConfig {
        SmemConfig {
            sample_params: params.to_vec(),
            ..SmemConfig::default()
        }
    }

    #[test]
    fn in_place_compute_defeats_every_reuse_condition() {
        // The strongest possible case for staging — rank-deficient
        // reuse (condition 1) — still loses when staging can't pay:
        // a PIM bank touches the data in place for free.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("X", &[v("N")]);
        b.array("Out", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("Out", &[v("i"), v("j")])
            .read("X", &[v("j")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let x = p.array_index("X").unwrap();
        let refs = collect_refs(&p, x).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let cfg = SmemConfig {
            staging_pays: false,
            ..config(&[8])
        };
        let d = evaluate_group(&members, &cfg).unwrap();
        assert!(!d.beneficial);
        assert!(!d.order_of_magnitude);
        assert_eq!(d.overlap_fraction, None);
    }

    #[test]
    fn rank_deficiency_triggers_condition_one() {
        // B[i][0] in a 1-deep nest has rank 1 = dim 1 — no condition 1.
        // But B[0][i]... also rank 1. Use a 2-deep nest instead.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("X", &[v("N")]);
        b.array("Out", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("Out", &[v("i"), v("j")])
            .read("X", &[v("j")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let x = p.array_index("X").unwrap();
        let refs = collect_refs(&p, x).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let d = evaluate_group(&members, &config(&[8])).unwrap();
        assert!(d.beneficial);
        assert!(d.order_of_magnitude);
    }

    #[test]
    fn heavy_overlap_passes_delta_test() {
        // A[i] and A[i+1]: overlap N-1 of N+1 total ≈ 78% > 30%.
        let p = one_stmt_program(&[(vec![v("i")], "A"), (vec![v("i") + 1], "A")]);
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let d = evaluate_group(&members, &config(&[10])).unwrap();
        assert!(d.beneficial);
        assert!(!d.order_of_magnitude);
        let f = d.overlap_fraction.unwrap();
        assert!(f > 0.5, "fraction {f}");
    }

    #[test]
    fn light_overlap_fails_delta_test() {
        // A[2i] and A[2i + 2N]: never overlap... choose a 1-point
        // overlap instead: A[i] over [0,N-1] and A[i + N - 1] over
        // [N-1, 2N-2]: 1 of 2N-1 points ≈ 5% < 30%.
        let p = one_stmt_program(&[(vec![v("i")], "A"), (vec![v("i") + v("N") - 1], "A")]);
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let d = evaluate_group(&members, &config(&[10])).unwrap();
        assert!(!d.beneficial);
        assert!(d.overlap_fraction.unwrap() < 0.30);
    }

    #[test]
    fn singleton_without_rank_reuse_is_not_beneficial() {
        let p = one_stmt_program(&[(vec![v("i")], "A")]);
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let d = evaluate_group(&members, &config(&[10])).unwrap();
        assert!(!d.beneficial);
        assert_eq!(d.overlap_fraction, Some(0.0));
    }

    #[test]
    fn missing_sample_params_is_an_error() {
        let p = one_stmt_program(&[(vec![v("i")], "A"), (vec![v("i") + 1], "A")]);
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let cfg = SmemConfig::default(); // no sample params
        assert_eq!(
            evaluate_group(&members, &cfg).unwrap_err(),
            SmemError::MissingSampleParams
        );
    }

    #[test]
    fn seq_shift_overlap_counts_as_constant_reuse() {
        // A[i + s] over i in [0, N-1] with seq param s: the window
        // [s, s+N-1] shares N-1 of its N points with the next seq
        // instance's window — beneficial only under the residency
        // extension (a singleton has no pairwise overlap).
        let mut b = ProgramBuilder::new("p", ["N", "s"]);
        b.array("A", &[v("N") * 2]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i") + v("s")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();

        let without = config(&[8, 0]);
        let d = evaluate_group(&members, &without).unwrap();
        assert!(!d.beneficial);

        let mut with = config(&[8, 0]);
        with.residency_dim = Some("s".into());
        let d = evaluate_group(&members, &with).unwrap();
        assert!(d.beneficial);
        assert!(!d.order_of_magnitude);
        let f = d.overlap_fraction.unwrap();
        assert!((f - 7.0 / 8.0).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    fn delta_is_configurable() {
        let p = one_stmt_program(&[(vec![v("i")], "A"), (vec![v("i") + v("N") - 1], "A")]);
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let mut cfg = config(&[10]);
        cfg.delta = 0.01; // even 5% overlap now counts
        let d = evaluate_group(&members, &cfg).unwrap();
        assert!(d.beneficial);
    }
}
