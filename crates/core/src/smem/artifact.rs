//! Content-addressed on-disk store of compiled plan artifacts.
//!
//! Symbolic scratchpad plans are pure functions of (program IR,
//! analysis configuration, block-shape parametrization): the same
//! inputs always produce the same [`SymbolicPlan`]. That makes the
//! expensive §3 pipeline a perfect candidate for a persistent,
//! content-addressed cache — a compile service (or a later run of the
//! CLI) can skip dataspace/partition/reuse/alloc/movement entirely
//! when an artifact for the same key already exists.
//!
//! # Key derivation
//!
//! [`plan_key`] hashes, with a 128-bit FNV-1a pair (two independent
//! lanes with distinct offset bases):
//!
//! * the **canonical program IR**: parameter names, array declarations
//!   (extent [`LinExpr`]s in `BTreeMap` coefficient order), and every
//!   statement's domain (space names plus constraint rows as
//!   `(kind, coefficients)` — the same canonical-content discipline
//!   the polyhedral memoizer keys with), access matrices and body
//!   expression trees;
//! * the **analysis configuration** ([`SmemConfig`]): δ, copy-all,
//!   sample parameters, count budget, partitioning, residency dim,
//!   plus the optional register-level [`HierSpec`];
//! * the **block-shape parametrization**: the sorted
//!   `(fixed dim, representative value)` pairs of the symbolic view;
//! * caller-supplied **salt words** — the machine layer folds in its
//!   mapping-relevant [`MachineConfig`] fields here, so a GPU plan is
//!   never served to a Cell-like launch.
//!
//! # Artifact contents and load validation
//!
//! A [`PlanArtifact`] carries the full two-level [`SymbolicPlan`]
//! (buffers, rewrites, movement ASTs, register level, residency
//! plans) plus three derived streams: the per-statement **bytecode**
//! instruction streams, the **lowered address rows** of every
//! rewritten access, and representative **DMA descriptor lists** per
//! movement group. Loads are validated in layers, and any failure
//! makes [`ArtifactStore::load`] return `None` so the caller falls
//! back to a fresh compile — a corrupt or stale artifact can cost a
//! recompile, never incorrect execution:
//!
//! 1. envelope: magic, [`FORMAT_VERSION`], [`SCHEMA_HASH`] (a hash of
//!    the codec layout descriptor, bumped whenever any encoded type
//!    changes shape), payload checksum, and key equality;
//! 2. structural decode: every length is bounds-checked against the
//!    remaining payload, every polyhedron/map is rebuilt through the
//!    same validating constructors the passes use, and bytecode
//!    streams must re-pass [`BodyCode::from_ops`]'s stack-discipline
//!    and slot-range proof;
//! 3. re-proof against the program: the bytecode, lowered rows and
//!    descriptor lists are *recomputed* from the decoded plan and the
//!    live program and must match the stored streams bit-for-bit
//!    ([`PlanArtifact::validate`]) — so an artifact built from a
//!    different program version (stale content under a colliding or
//!    hand-edited key) is rejected rather than trusted.

use super::cache::SymbolicPlan;
use super::dataspace::AccessId;
use super::descriptors::{transfer_list, Direction, TransferList};
use super::hierarchy::{HierPlan, HierSpec};
use super::lowering::{lower_rows, LoweredRow};
use super::movement::MovementCode;
use super::residency::{ResidencyPlan, RetainPlan};
use super::reuse::ReuseDecision;
use super::{LocalBuffer, SmemConfig, SmemPlan};
use polymem_codegen::ast::{Ast, LoopBounds};
use polymem_ir::{BodyCode, ByteOp, Expr, LinExpr, Program};
use polymem_linalg::{IMat, IVec};
use polymem_poly::bounds::{AffineForm, BoundList};
use polymem_poly::{AffineMap, Constraint, ConstraintKind, PolyUnion, Polyhedron, Space};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// On-disk format version; bump on any envelope change.
pub const FORMAT_VERSION: u32 = 1;

/// File magic: "polymem plan artifact".
pub const MAGIC: [u8; 4] = *b"PMPA";

/// Layout descriptor of every type the codec serializes. The schema
/// hash stored in each artifact is the FNV of this string, so editing
/// any encoder (and this descriptor with it) invalidates old files
/// even within the same [`FORMAT_VERSION`].
const SCHEMA: &str = "v1:ivec,imat,space,constraint(kind,coeffs),poly,union,map,\
     affform(coeffs,div),boundlist,ast(seq,loop,guard,leaf,empty),\
     accessid,localaccess,droppeddim,unionbound,localbuffer,\
     reusedecision,movement(in,out,rspaces,wspaces),smemplan,\
     passtimes:nanos6,hier(plan,ext,threads,kept,stpos,backing,regs),\
     retain(buffer,atoms,retained,delta,flushdelta,scans3,legal),\
     residency,symbolic(plan,fixed,kept,times,hier,residency),\
     byteop,loweredrow,transferlist,artifact(key,plan,bodies,lowered,\
     tparams,transfers)";

/// Schema hash baked into every artifact (see [`SCHEMA`]).
pub fn schema_hash() -> u64 {
    fnv1a(FNV_OFFSET, SCHEMA.as_bytes())
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_HI: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit content address of one compiled plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Primary FNV-1a lane.
    pub lo: u64,
    /// Secondary lane (distinct offset basis), halving collision odds.
    pub hi: u64,
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Incremental two-lane FNV-1a hasher used for key derivation. The
/// write methods length-prefix variable-size inputs, so adjacent
/// fields can never alias (`"ab","c"` hashes differently from
/// `"a","bc"`).
#[derive(Clone, Debug)]
pub struct KeyHasher {
    lo: u64,
    hi: u64,
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    /// A fresh hasher at the FNV offset bases.
    pub fn new() -> KeyHasher {
        KeyHasher {
            lo: FNV_OFFSET,
            hi: FNV_OFFSET_HI,
        }
    }

    /// Raw bytes, length-prefixed.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.lo = fnv1a(self.lo, b);
        self.hi = fnv1a(self.hi, b);
    }

    /// One word, no prefix.
    pub fn u64(&mut self, v: u64) {
        let b = v.to_le_bytes();
        self.lo = fnv1a(self.lo, &b);
        self.hi = fnv1a(self.hi, &b);
    }

    /// One signed word.
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64)
    }

    /// A string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes())
    }

    /// The finished key.
    pub fn finish(&self) -> ArtifactKey {
        ArtifactKey {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

fn hash_linexpr(h: &mut KeyHasher, e: &LinExpr) {
    // BTreeMap iteration order is deterministic by key.
    h.u64(e.coeffs.len() as u64);
    for (name, c) in &e.coeffs {
        h.str(name);
        h.i64(*c);
    }
    h.i64(e.constant);
}

fn hash_space(h: &mut KeyHasher, s: &Space) {
    h.u64(s.dims().len() as u64);
    for d in s.dims() {
        h.str(d);
    }
    h.u64(s.params().len() as u64);
    for p in s.params() {
        h.str(p);
    }
}

fn hash_poly(h: &mut KeyHasher, p: &Polyhedron) {
    hash_space(h, p.space());
    h.u64(p.constraints().len() as u64);
    for c in p.constraints() {
        h.u64(match c.kind {
            ConstraintKind::Ineq => 0,
            ConstraintKind::Eq => 1,
        });
        h.u64(c.coeffs.0.len() as u64);
        for &v in &c.coeffs.0 {
            h.i64(v);
        }
    }
}

fn hash_map(h: &mut KeyHasher, m: &AffineMap) {
    hash_space(h, m.in_space());
    hash_space(h, m.out_space());
    let mat = m.matrix();
    h.u64(mat.rows() as u64);
    h.u64(mat.cols() as u64);
    for r in 0..mat.rows() {
        for &v in mat.row(r) {
            h.i64(v);
        }
    }
}

fn hash_expr(h: &mut KeyHasher, e: &Expr) {
    match e {
        Expr::Read(i) => {
            h.u64(0);
            h.u64(*i as u64);
        }
        Expr::Iter(i) => {
            h.u64(1);
            h.u64(*i as u64);
        }
        Expr::Param(i) => {
            h.u64(2);
            h.u64(*i as u64);
        }
        Expr::Const(c) => {
            h.u64(3);
            h.i64(*c);
        }
        Expr::Add(a, b) => {
            h.u64(4);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Sub(a, b) => {
            h.u64(5);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Mul(a, b) => {
            h.u64(6);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Div(a, b) => {
            h.u64(7);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Min(a, b) => {
            h.u64(8);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Max(a, b) => {
            h.u64(9);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Abs(a) => {
            h.u64(10);
            hash_expr(h, a);
        }
    }
}

/// Fold a program's canonical form into `h` — the same
/// content-not-identity discipline the polyhedral memoizer uses for
/// constraint systems, extended over the whole IR.
pub fn hash_program(h: &mut KeyHasher, program: &Program) {
    h.str(&program.name);
    h.u64(program.params.len() as u64);
    for p in &program.params {
        h.str(p);
    }
    h.u64(program.arrays.len() as u64);
    for a in &program.arrays {
        h.str(&a.name);
        h.u64(a.extents.len() as u64);
        for e in &a.extents {
            hash_linexpr(h, e);
        }
    }
    h.u64(program.stmts.len() as u64);
    for s in &program.stmts {
        h.str(&s.name);
        hash_poly(h, &s.domain);
        h.u64(s.write.array as u64);
        hash_map(h, &s.write.map);
        h.u64(s.reads.len() as u64);
        for r in &s.reads {
            h.u64(r.array as u64);
            hash_map(h, &r.map);
        }
        hash_expr(h, &s.body);
    }
}

/// The stable content address of the symbolic plan produced by
/// `analyze_symbolic_hier(program, pairs, cfg, hier)`. `salt` is for
/// the caller's own mapping-relevant knobs (machine model fields);
/// same inputs ⇒ same key, across processes and machines.
pub fn plan_key(
    program: &Program,
    cfg: &SmemConfig,
    pairs: &[(String, i64)],
    hier: Option<&HierSpec>,
    salt: &[u64],
) -> ArtifactKey {
    let mut h = KeyHasher::new();
    h.u64(FORMAT_VERSION as u64);
    h.u64(schema_hash());
    hash_program(&mut h, program);
    // Analysis configuration.
    h.u64(cfg.delta.to_bits());
    h.u64(cfg.must_copy_all as u64);
    h.u64(cfg.staging_pays as u64);
    h.u64(cfg.sample_params.len() as u64);
    for &p in &cfg.sample_params {
        h.i64(p);
    }
    h.u64(cfg.count_budget);
    h.u64(cfg.partition as u64);
    match &cfg.residency_dim {
        Some(d) => {
            h.u64(1);
            h.str(d);
        }
        None => h.u64(0),
    }
    // Block-shape parametrization, order-independent.
    let mut sorted: Vec<&(String, i64)> = pairs.iter().collect();
    sorted.sort();
    h.u64(sorted.len() as u64);
    for (name, v) in sorted {
        h.str(name);
        h.i64(*v);
    }
    // Register level.
    match hier {
        Some(spec) => {
            h.u64(1);
            h.u64(spec.thread_dims.len() as u64);
            for d in &spec.thread_dims {
                h.str(d);
            }
            h.u64(spec.thread_reps.len() as u64);
            for (d, v) in &spec.thread_reps {
                h.str(d);
                h.i64(*v);
            }
            h.u64(spec.regs_per_inner);
        }
        None => h.u64(0),
    }
    h.u64(salt.len() as u64);
    for &w in salt {
        h.u64(w);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// Decode failure (any structural violation). Carries no detail: the
/// only recovery is a fresh compile, and the store treats every
/// corrupt artifact identically.
#[derive(Debug)]
struct Corrupt;

type DResult<T> = std::result::Result<T, Corrupt>;

/// Append-only encoder.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Enc, &T)) {
        match v {
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
            None => self.u8(0),
        }
    }
    fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Enc, &T)) {
        self.usize(items.len());
        for it in items {
            f(self, it);
        }
    }
}

/// Bounds-checked cursor over an encoded payload. Every read
/// validates against the remaining bytes; a `Vec` length prefix may
/// never exceed the remaining payload (each element costs ≥ 1 byte),
/// so a corrupt length cannot trigger an outsized allocation.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn take(&mut self, n: usize) -> DResult<&'a [u8]> {
        if n > self.remaining() {
            return Err(Corrupt);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> DResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> DResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> DResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> DResult<i64> {
        Ok(self.u64()? as i64)
    }
    fn usize(&mut self) -> DResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| Corrupt)
    }
    fn boolean(&mut self) -> DResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Corrupt),
        }
    }
    fn f64(&mut self) -> DResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn len(&mut self) -> DResult<usize> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(Corrupt);
        }
        Ok(n)
    }
    fn str(&mut self) -> DResult<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Corrupt)
    }
    fn opt<T>(&mut self, f: impl FnOnce(&mut Dec<'a>) -> DResult<T>) -> DResult<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            _ => Err(Corrupt),
        }
    }
    fn seq<T>(&mut self, mut f: impl FnMut(&mut Dec<'a>) -> DResult<T>) -> DResult<Vec<T>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

// --- polyhedral substrate ---

fn put_ivec(e: &mut Enc, v: &IVec) {
    e.seq(&v.0, |e, &x| e.i64(x));
}

fn get_ivec(d: &mut Dec) -> DResult<IVec> {
    Ok(IVec(d.seq(|d| d.i64())?))
}

fn put_imat(e: &mut Enc, m: &IMat) {
    e.usize(m.rows());
    e.usize(m.cols());
    for r in 0..m.rows() {
        for &v in m.row(r) {
            e.i64(v);
        }
    }
}

fn get_imat(d: &mut Dec) -> DResult<IMat> {
    let rows = d.usize()?;
    let cols = d.usize()?;
    let cells = rows.checked_mul(cols).ok_or(Corrupt)?;
    if cells.checked_mul(8).ok_or(Corrupt)? > d.remaining() {
        return Err(Corrupt);
    }
    let mut data = Vec::with_capacity(cells);
    for _ in 0..cells {
        data.push(d.i64()?);
    }
    Ok(IMat::from_vec(rows, cols, data))
}

fn put_space(e: &mut Enc, s: &Space) {
    e.seq(s.dims(), |e, d| e.str(d));
    e.seq(s.params(), |e, p| e.str(p));
}

fn get_space(d: &mut Dec) -> DResult<Space> {
    let dims = d.seq(|d| d.str())?;
    let params = d.seq(|d| d.str())?;
    Ok(Space::new(dims, params))
}

fn put_constraint(e: &mut Enc, c: &Constraint) {
    e.u8(match c.kind {
        ConstraintKind::Ineq => 0,
        ConstraintKind::Eq => 1,
    });
    put_ivec(e, &c.coeffs);
}

fn get_constraint(d: &mut Dec) -> DResult<Constraint> {
    let kind = match d.u8()? {
        0 => ConstraintKind::Ineq,
        1 => ConstraintKind::Eq,
        _ => return Err(Corrupt),
    };
    let coeffs = get_ivec(d)?;
    Ok(Constraint { coeffs, kind })
}

fn put_poly(e: &mut Enc, p: &Polyhedron) {
    put_space(e, p.space());
    e.seq(p.constraints(), put_constraint);
}

fn get_poly(d: &mut Dec) -> DResult<Polyhedron> {
    let space = get_space(d)?;
    let cs = d.seq(get_constraint)?;
    // `Polyhedron::new` asserts row width; re-check here so a corrupt
    // file degrades to a decode failure instead of a panic.
    let width = space.n_cols();
    if cs.iter().any(|c| c.coeffs.0.len() != width) {
        return Err(Corrupt);
    }
    Ok(Polyhedron::new(space, cs))
}

fn put_union(e: &mut Enc, u: &PolyUnion) {
    e.seq(u.members(), put_poly);
}

fn get_union(d: &mut Dec) -> DResult<PolyUnion> {
    let members = d.seq(get_poly)?;
    PolyUnion::from_members(members).map_err(|_| Corrupt)
}

fn put_affmap(e: &mut Enc, m: &AffineMap) {
    put_space(e, m.in_space());
    put_space(e, m.out_space());
    put_imat(e, m.matrix());
}

fn get_affmap(d: &mut Dec) -> DResult<AffineMap> {
    let in_space = get_space(d)?;
    let out_space = get_space(d)?;
    let matrix = get_imat(d)?;
    // Mirror `AffineMap::new`'s assertions as decode checks.
    if matrix.rows() != out_space.n_dims()
        || matrix.cols() != in_space.n_cols()
        || in_space.n_params() != out_space.n_params()
    {
        return Err(Corrupt);
    }
    Ok(AffineMap::new(in_space, out_space, matrix))
}

fn put_affform(e: &mut Enc, f: &AffineForm) {
    put_ivec(e, &f.coeffs);
    e.i64(f.div);
}

fn get_affform(d: &mut Dec) -> DResult<AffineForm> {
    let coeffs = get_ivec(d)?;
    let div = d.i64()?;
    if div == 0 {
        return Err(Corrupt);
    }
    Ok(AffineForm { coeffs, div })
}

fn put_boundlist(e: &mut Enc, b: &BoundList) {
    e.seq(&b.terms, put_affform);
}

fn get_boundlist(d: &mut Dec) -> DResult<BoundList> {
    Ok(BoundList {
        terms: d.seq(get_affform)?,
    })
}

// --- generated loop ASTs ---

/// Nesting cap for decoded ASTs: real movement nests are at most a
/// handful of loops deep; a corrupt file must not recurse unboundedly.
const MAX_AST_DEPTH: usize = 512;

fn put_ast(e: &mut Enc, a: &Ast) {
    match a {
        Ast::Seq(items) => {
            e.u8(0);
            e.seq(items, put_ast);
        }
        Ast::Loop { var, bounds, body } => {
            e.u8(1);
            e.str(var);
            put_boundlist(e, &bounds.lower);
            put_boundlist(e, &bounds.upper);
            put_ast(e, body);
        }
        Ast::Guard { conds, body } => {
            e.u8(2);
            e.seq(conds, put_constraint);
            put_ast(e, body);
        }
        Ast::Leaf { tag } => {
            e.u8(3);
            e.usize(*tag);
        }
        Ast::Empty => e.u8(4),
    }
}

fn get_ast(d: &mut Dec, depth: usize) -> DResult<Ast> {
    if depth > MAX_AST_DEPTH {
        return Err(Corrupt);
    }
    Ok(match d.u8()? {
        0 => Ast::Seq(d.seq(|d| get_ast(d, depth + 1))?),
        1 => {
            let var = d.str()?;
            let lower = get_boundlist(d)?;
            let upper = get_boundlist(d)?;
            let body = Box::new(get_ast(d, depth + 1)?);
            Ast::Loop {
                var,
                bounds: LoopBounds { lower, upper },
                body,
            }
        }
        2 => {
            let conds = d.seq(get_constraint)?;
            let body = Box::new(get_ast(d, depth + 1)?);
            Ast::Guard { conds, body }
        }
        3 => Ast::Leaf { tag: d.usize()? },
        4 => Ast::Empty,
        _ => return Err(Corrupt),
    })
}

// --- plan types ---

fn put_access_id(e: &mut Enc, id: &AccessId) {
    e.usize(id.stmt);
    e.opt(&id.read_idx, |e, &k| e.usize(k));
}

fn get_access_id(d: &mut Dec) -> DResult<AccessId> {
    let stmt = d.usize()?;
    let read_idx = d.opt(|d| d.usize())?;
    Ok(AccessId { stmt, read_idx })
}

fn put_buffer(e: &mut Enc, b: &LocalBuffer) {
    e.usize(b.id);
    e.usize(b.array);
    e.str(&b.array_name);
    e.usize(b.n_array_dims);
    e.seq(&b.kept_dims, |e, &k| e.usize(k));
    e.seq(&b.dropped, |e, dd| {
        e.usize(dd.dim);
        put_affform(e, &dd.expr);
    });
    e.seq(&b.bounds, |e, ub| {
        e.seq(&ub.lowers, put_boundlist);
        e.seq(&ub.uppers, put_boundlist);
    });
    e.seq(&b.data_spaces, put_poly);
}

fn get_buffer(d: &mut Dec) -> DResult<LocalBuffer> {
    use super::alloc::{DroppedDim, UnionBound};
    Ok(LocalBuffer {
        id: d.usize()?,
        array: d.usize()?,
        array_name: d.str()?,
        n_array_dims: d.usize()?,
        kept_dims: d.seq(|d| d.usize())?,
        dropped: d.seq(|d| {
            Ok(DroppedDim {
                dim: d.usize()?,
                expr: get_affform(d)?,
            })
        })?,
        bounds: d.seq(|d| {
            Ok(UnionBound {
                lowers: d.seq(get_boundlist)?,
                uppers: d.seq(get_boundlist)?,
            })
        })?,
        data_spaces: d.seq(get_poly)?,
    })
}

fn put_movement(e: &mut Enc, m: &MovementCode) {
    e.usize(m.buffer);
    put_ast(e, &m.move_in);
    put_ast(e, &m.move_out);
    e.seq(&m.read_spaces, put_poly);
    e.seq(&m.write_spaces, put_poly);
}

fn get_movement(d: &mut Dec) -> DResult<MovementCode> {
    Ok(MovementCode {
        buffer: d.usize()?,
        move_in: get_ast(d, 0)?,
        move_out: get_ast(d, 0)?,
        read_spaces: d.seq(get_poly)?,
        write_spaces: d.seq(get_poly)?,
    })
}

fn put_smem_plan(e: &mut Enc, p: &SmemPlan) {
    e.seq(&p.buffers, put_buffer);
    // HashMap: canonical (sorted) order so identical plans encode to
    // identical bytes — round-trip tests and dedup depend on it.
    let mut ids: Vec<&AccessId> = p.rewrites.keys().collect();
    ids.sort_by_key(|id| (id.stmt, id.read_idx.is_some(), id.read_idx));
    e.usize(ids.len());
    for id in ids {
        put_access_id(e, id);
        let la = &p.rewrites[id];
        e.usize(la.buffer);
        put_affmap(e, &la.map);
    }
    e.seq(&p.movement, put_movement);
    e.seq(&p.decisions, |e, (name, dec)| {
        e.str(name);
        e.boolean(dec.beneficial);
        e.boolean(dec.order_of_magnitude);
        e.opt(&dec.overlap_fraction, |e, &f| e.f64(f));
    });
}

fn get_smem_plan(d: &mut Dec) -> DResult<SmemPlan> {
    use super::access::LocalAccess;
    let buffers = d.seq(get_buffer)?;
    let n = d.len()?;
    let mut rewrites = HashMap::with_capacity(n);
    for _ in 0..n {
        let id = get_access_id(d)?;
        let buffer = d.usize()?;
        let map = get_affmap(d)?;
        if rewrites.insert(id, LocalAccess { buffer, map }).is_some() {
            return Err(Corrupt);
        }
    }
    let movement = d.seq(get_movement)?;
    let decisions = d.seq(|d| {
        let name = d.str()?;
        let beneficial = d.boolean()?;
        let order_of_magnitude = d.boolean()?;
        let overlap_fraction = d.opt(|d| d.f64())?;
        Ok((
            name,
            ReuseDecision {
                beneficial,
                order_of_magnitude,
                overlap_fraction,
            },
        ))
    })?;
    // Referential integrity: every rewrite and movement group must
    // point at an existing buffer.
    if rewrites.values().any(|la| la.buffer >= buffers.len())
        || movement.iter().any(|m| m.buffer >= buffers.len())
    {
        return Err(Corrupt);
    }
    Ok(SmemPlan {
        buffers,
        rewrites,
        movement,
        decisions,
    })
}

fn put_duration(e: &mut Enc, t: &Duration) {
    e.u64(t.as_nanos().min(u64::MAX as u128) as u64);
}

fn get_duration(d: &mut Dec) -> DResult<Duration> {
    Ok(Duration::from_nanos(d.u64()?))
}

fn put_hier(e: &mut Enc, h: &HierPlan) {
    put_smem_plan(e, &h.plan);
    e.seq(&h.ext_names, |e, s| e.str(s));
    e.seq(&h.thread_dims, |e, s| e.str(s));
    e.seq(&h.kept_dims, |e, ks| e.seq(ks, |e, &k| e.usize(k)));
    e.seq(&h.stmt_thread_pos, |e, pos| {
        e.opt(pos, |e, ps| e.seq(ps, |e, &p| e.usize(p)))
    });
    e.seq(&h.backing, |e, &b| e.usize(b));
    e.u64(h.regs_per_inner);
}

fn get_hier(d: &mut Dec) -> DResult<HierPlan> {
    Ok(HierPlan {
        plan: get_smem_plan(d)?,
        ext_names: d.seq(|d| d.str())?,
        thread_dims: d.seq(|d| d.str())?,
        kept_dims: d.seq(|d| d.seq(|d| d.usize()))?,
        stmt_thread_pos: d.seq(|d| d.opt(|d| d.seq(|d| d.usize())))?,
        backing: d.seq(|d| d.usize())?,
        regs_per_inner: d.u64()?,
    })
}

fn put_retain(e: &mut Enc, r: &RetainPlan) {
    e.usize(r.buffer);
    e.seq(&r.atoms, put_poly);
    put_union(e, &r.retained);
    put_union(e, &r.delta_in);
    put_union(e, &r.flush_delta);
    put_ast(e, &r.retained_scan);
    put_ast(e, &r.delta_scan);
    put_ast(e, &r.flush_scan);
    e.boolean(r.flush_legal);
}

fn get_retain(d: &mut Dec) -> DResult<RetainPlan> {
    Ok(RetainPlan {
        buffer: d.usize()?,
        atoms: d.seq(get_poly)?,
        retained: get_union(d)?,
        delta_in: get_union(d)?,
        flush_delta: get_union(d)?,
        retained_scan: get_ast(d, 0)?,
        delta_scan: get_ast(d, 0)?,
        flush_scan: get_ast(d, 0)?,
        flush_legal: d.boolean()?,
    })
}

fn put_residency(e: &mut Enc, r: &ResidencyPlan) {
    e.str(&r.seq_param);
    let mut ids: Vec<&usize> = r.plans.keys().collect();
    ids.sort();
    e.usize(ids.len());
    for &id in ids {
        e.usize(id);
        put_retain(e, &r.plans[&id]);
    }
}

fn get_residency(d: &mut Dec) -> DResult<ResidencyPlan> {
    let seq_param = d.str()?;
    let n = d.len()?;
    let mut plans = HashMap::with_capacity(n);
    for _ in 0..n {
        let id = d.usize()?;
        let rp = get_retain(d)?;
        if plans.insert(id, rp).is_some() {
            return Err(Corrupt);
        }
    }
    Ok(ResidencyPlan { seq_param, plans })
}

fn put_symbolic(e: &mut Enc, sp: &SymbolicPlan) {
    put_smem_plan(e, &sp.plan);
    e.seq(&sp.fixed, |e, s| e.str(s));
    e.seq(&sp.kept_dims, |e, ks| e.seq(ks, |e, &k| e.usize(k)));
    put_duration(e, &sp.pass_times.dataspace);
    put_duration(e, &sp.pass_times.partition);
    put_duration(e, &sp.pass_times.reuse);
    put_duration(e, &sp.pass_times.alloc);
    put_duration(e, &sp.pass_times.movement);
    put_duration(e, &sp.pass_times.hierarchy);
    e.opt(&sp.hier, put_hier);
    e.opt(&sp.residency, put_residency);
}

fn get_symbolic(d: &mut Dec) -> DResult<SymbolicPlan> {
    let plan = get_smem_plan(d)?;
    let fixed = d.seq(|d| d.str())?;
    let kept_dims = d.seq(|d| d.seq(|d| d.usize()))?;
    let pass_times = super::PassTimes {
        dataspace: get_duration(d)?,
        partition: get_duration(d)?,
        reuse: get_duration(d)?,
        alloc: get_duration(d)?,
        movement: get_duration(d)?,
        hierarchy: get_duration(d)?,
    };
    let hier = d.opt(get_hier)?;
    let residency = d.opt(get_residency)?;
    Ok(SymbolicPlan {
        plan,
        fixed,
        kept_dims,
        pass_times,
        hier,
        residency,
    })
}

// --- derived streams ---

fn put_byteop(e: &mut Enc, op: &ByteOp) {
    match op {
        ByteOp::Read(i) => {
            e.u8(0);
            e.u32(*i);
        }
        ByteOp::Iter(i) => {
            e.u8(1);
            e.u32(*i);
        }
        ByteOp::Param(i) => {
            e.u8(2);
            e.u32(*i);
        }
        ByteOp::Const(c) => {
            e.u8(3);
            e.i64(*c);
        }
        ByteOp::Add => e.u8(4),
        ByteOp::Sub => e.u8(5),
        ByteOp::Mul => e.u8(6),
        ByteOp::CheckDiv => e.u8(7),
        ByteOp::Div => e.u8(8),
        ByteOp::Min => e.u8(9),
        ByteOp::Max => e.u8(10),
        ByteOp::Abs => e.u8(11),
    }
}

fn get_byteop(d: &mut Dec) -> DResult<ByteOp> {
    Ok(match d.u8()? {
        0 => ByteOp::Read(d.u32()?),
        1 => ByteOp::Iter(d.u32()?),
        2 => ByteOp::Param(d.u32()?),
        3 => ByteOp::Const(d.i64()?),
        4 => ByteOp::Add,
        5 => ByteOp::Sub,
        6 => ByteOp::Mul,
        7 => ByteOp::CheckDiv,
        8 => ByteOp::Div,
        9 => ByteOp::Min,
        10 => ByteOp::Max,
        11 => ByteOp::Abs,
        _ => return Err(Corrupt),
    })
}

fn put_lowered_row(e: &mut Enc, r: &LoweredRow) {
    e.seq(&r.kcoef, |e, &v| e.i64(v));
    e.seq(&r.pcoef, |e, &v| e.i64(v));
    e.i64(r.konst);
}

fn get_lowered_row(d: &mut Dec) -> DResult<LoweredRow> {
    Ok(LoweredRow {
        kcoef: d.seq(|d| d.i64())?,
        pcoef: d.seq(|d| d.i64())?,
        konst: d.i64()?,
    })
}

fn put_transfer_list(e: &mut Enc, t: &TransferList) {
    e.seq(&t.descriptors, |e, td| {
        e.i64(td.global_base);
        e.i64(td.local_base);
        e.i64(td.elem_count);
        e.i64(td.stride);
        e.i64(td.n_rows);
        e.i64(td.global_row_stride);
        e.i64(td.local_stride);
        e.i64(td.local_row_stride);
    });
    e.u64(t.elements);
}

fn get_transfer_list(d: &mut Dec) -> DResult<TransferList> {
    use super::descriptors::TransferDescriptor;
    Ok(TransferList {
        descriptors: d.seq(|d| {
            Ok(TransferDescriptor {
                global_base: d.i64()?,
                local_base: d.i64()?,
                elem_count: d.i64()?,
                stride: d.i64()?,
                n_rows: d.i64()?,
                global_row_stride: d.i64()?,
                local_stride: d.i64()?,
                local_row_stride: d.i64()?,
            })
        })?,
        elements: d.u64()?,
    })
}

// ---------------------------------------------------------------------------
// The artifact
// ---------------------------------------------------------------------------

/// One serialized compile result: the symbolic plan plus the derived
/// streams the compiled execution engine consumes, all revalidated on
/// load (see the module docs).
#[derive(Clone, Debug)]
pub struct PlanArtifact {
    /// Content address this artifact was compiled under.
    pub key: ArtifactKey,
    /// The full two-level symbolic plan (scratchpad + register +
    /// residency).
    pub plan: SymbolicPlan,
    /// Per-statement bytecode instruction streams of the program
    /// bodies, in statement order.
    pub bodies: Vec<Vec<ByteOp>>,
    /// Lowered address rows of every rewritten (scratchpad-level)
    /// access, sorted by access id.
    pub lowered: Vec<(AccessId, Vec<LoweredRow>)>,
    /// Extended parameter vector (program params ++ representative
    /// fixed values) the descriptor lists below were generated at;
    /// empty when no representative was available.
    pub transfer_params: Vec<i64>,
    /// Representative move-in DMA descriptor lists, one per movement
    /// group (empty list where generation failed, e.g. unbounded
    /// scans).
    pub transfers: Vec<TransferList>,
}

impl PlanArtifact {
    /// Assemble an artifact from a freshly analysed plan. `ext` is
    /// the plan's extended parameter vector (program params then the
    /// representative fixed values, in `plan.fixed` order); pass an
    /// empty slice to skip descriptor generation.
    pub fn build(
        program: &Program,
        plan: &SymbolicPlan,
        key: ArtifactKey,
        ext: &[i64],
    ) -> super::Result<PlanArtifact> {
        let mut bodies = Vec::with_capacity(program.stmts.len());
        for s in &program.stmts {
            let code = BodyCode::compile(&s.body, s.reads.len(), s.depth(), program.params.len())?;
            bodies.push(code.ops().to_vec());
        }
        let mut ids: Vec<&AccessId> = plan.plan.rewrites.keys().collect();
        ids.sort_by_key(|id| (id.stmt, id.read_idx.is_some(), id.read_idx));
        let lowered = ids
            .into_iter()
            .map(|id| (*id, lower_rows(&plan.plan.rewrites[id].map)))
            .collect();
        let ok_ext = ext.len() == program.params.len() + plan.fixed.len();
        let transfers = plan
            .plan
            .movement
            .iter()
            .map(|mc| {
                if !ok_ext {
                    return empty_list();
                }
                let buffer = &plan.plan.buffers[mc.buffer];
                let aext = program.arrays[buffer.array]
                    .eval_extents(&program.params, &ext[..program.params.len()]);
                match aext {
                    Ok(aext) => transfer_list(mc, buffer, Direction::In, &aext, ext)
                        .unwrap_or_else(|_| empty_list()),
                    Err(_) => empty_list(),
                }
            })
            .collect();
        Ok(PlanArtifact {
            key,
            plan: plan.clone(),
            bodies,
            lowered,
            transfer_params: if ok_ext { ext.to_vec() } else { Vec::new() },
            transfers,
        })
    }

    /// Re-prove the derived streams against the live program: the
    /// bytecode, lowered rows and descriptor lists are recomputed
    /// from the decoded plan and must match the stored bytes exactly.
    /// `false` means the artifact is stale (or the key collided) and
    /// must be recompiled.
    pub fn validate(&self, program: &Program) -> bool {
        let Ok(fresh) = PlanArtifact::build(program, &self.plan, self.key, &self.transfer_params)
        else {
            return false;
        };
        // Stored bytecode must also stand on its own: `from_ops`
        // re-proves stack discipline and slot ranges even though the
        // equality check below would catch today's compiler output.
        for (ops, s) in self.bodies.iter().zip(&program.stmts) {
            if BodyCode::from_ops(ops.clone(), s.reads.len(), s.depth(), program.params.len())
                .is_err()
            {
                return false;
            }
        }
        let enc = |a: &PlanArtifact| {
            let mut e = Enc::default();
            e.seq(&a.bodies, |e, ops| e.seq(ops, put_byteop));
            e.usize(a.lowered.len());
            for (id, rows) in &a.lowered {
                put_access_id(&mut e, id);
                e.seq(rows, put_lowered_row);
            }
            e.seq(&a.transfer_params, |e, &p| e.i64(p));
            e.seq(&a.transfers, put_transfer_list);
            e.buf
        };
        enc(self) == enc(&fresh)
    }
}

fn empty_list() -> TransferList {
    TransferList {
        descriptors: Vec::new(),
        elements: 0,
    }
}

/// Serialize an artifact to its on-disk byte representation
/// (envelope + payload + checksum).
pub fn encode_artifact(a: &PlanArtifact) -> Vec<u8> {
    let mut p = Enc::default();
    put_symbolic(&mut p, &a.plan);
    p.seq(&a.bodies, |e, ops| e.seq(ops, put_byteop));
    p.usize(a.lowered.len());
    for (id, rows) in &a.lowered {
        put_access_id(&mut p, id);
        p.seq(rows, put_lowered_row);
    }
    p.seq(&a.transfer_params, |e, &v| e.i64(v));
    p.seq(&a.transfers, put_transfer_list);
    let payload = p.buf;

    let mut e = Enc::default();
    e.buf.extend_from_slice(&MAGIC);
    e.u32(FORMAT_VERSION);
    e.u64(schema_hash());
    e.u64(a.key.lo);
    e.u64(a.key.hi);
    e.usize(payload.len());
    e.buf.extend_from_slice(&payload);
    e.u64(fnv1a(FNV_OFFSET, &payload));
    e.buf
}

/// Decode an on-disk artifact. `None` on any envelope or structural
/// violation (wrong magic/version/schema, bad checksum, truncated or
/// corrupt payload) — never a panic, never partial data.
pub fn decode_artifact(bytes: &[u8]) -> Option<PlanArtifact> {
    decode_inner(bytes).ok()
}

fn decode_inner(bytes: &[u8]) -> DResult<PlanArtifact> {
    let mut d = Dec::new(bytes);
    if d.take(4)? != MAGIC {
        return Err(Corrupt);
    }
    if d.u32()? != FORMAT_VERSION {
        return Err(Corrupt);
    }
    if d.u64()? != schema_hash() {
        return Err(Corrupt);
    }
    let key = ArtifactKey {
        lo: d.u64()?,
        hi: d.u64()?,
    };
    let plen = d.len()?;
    let payload = d.take(plen)?;
    if d.u64()? != fnv1a(FNV_OFFSET, payload) {
        return Err(Corrupt);
    }
    if d.remaining() != 0 {
        return Err(Corrupt);
    }
    let mut p = Dec::new(payload);
    let plan = get_symbolic(&mut p)?;
    let bodies = p.seq(|d| d.seq(get_byteop))?;
    let n = p.len()?;
    let mut lowered = Vec::with_capacity(n);
    for _ in 0..n {
        let id = get_access_id(&mut p)?;
        let rows = p.seq(get_lowered_row)?;
        lowered.push((id, rows));
    }
    let transfer_params = p.seq(|d| d.i64())?;
    let transfers = p.seq(get_transfer_list)?;
    if p.remaining() != 0 {
        return Err(Corrupt);
    }
    Ok(PlanArtifact {
        key,
        plan,
        bodies,
        lowered,
        transfer_params,
        transfers,
    })
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// A directory of content-addressed plan artifacts, one file per key
/// (`<key>.plan`). Writes are atomic (temp file + rename), so
/// concurrent daemons sharing a store directory can only ever observe
/// complete artifacts; loads validate everything and fall back to
/// `None` on any mismatch.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path of one key's artifact.
    pub fn path_for(&self, key: &ArtifactKey) -> PathBuf {
        self.dir.join(format!("{key}.plan"))
    }

    /// Load and fully validate the artifact at `key`: envelope and
    /// structural checks, key equality, and the derived-stream
    /// re-proof against `program`. Any failure (including a missing
    /// file) returns `None` — the caller compiles fresh.
    pub fn load(&self, key: &ArtifactKey, program: &Program) -> Option<PlanArtifact> {
        let bytes = std::fs::read(self.path_for(key)).ok()?;
        let artifact = decode_artifact(&bytes)?;
        if artifact.key != *key || !artifact.validate(program) {
            return None;
        }
        Some(artifact)
    }

    /// Persist an artifact under its own key, atomically.
    pub fn save(&self, artifact: &PlanArtifact) -> io::Result<PathBuf> {
        let bytes = encode_artifact(artifact);
        let path = self.path_for(&artifact.key);
        let tmp = self
            .dir
            .join(format!(".{}.{}.tmp", artifact.key, std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::cache::analyze_symbolic_hier;
    use super::*;
    use polymem_ir::builder::ProgramBuilder;
    use polymem_ir::expr::v;

    fn tiled_program() -> Program {
        // A 1-D tiled kernel with enough structure to populate every
        // plan layer: two statements, a shared array, a seq dim.
        let mut b = ProgramBuilder::new("art", ["N"]);
        b.array("A", &[v("N") + 4]);
        b.array("B", &[v("N")]);
        b.stmt("S1")
            .loops(&[
                ("iT", LinExpr::c(0), LinExpr::c(3)),
                ("i", v("iT") * 4, v("iT") * 4 + 3),
            ])
            .write("A", &[v("i")])
            .read("A", &[v("i")])
            .read("B", &[v("i")])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        b.build().unwrap()
    }

    fn plan_for(program: &Program) -> SymbolicPlan {
        let cfg = SmemConfig {
            sample_params: vec![16],
            must_copy_all: true,
            residency_dim: Some("iT".into()),
            ..SmemConfig::default()
        };
        analyze_symbolic_hier(program, &[("iT".into(), 0)], &cfg, None).unwrap()
    }

    fn cfg() -> SmemConfig {
        SmemConfig {
            sample_params: vec![16],
            must_copy_all: true,
            residency_dim: Some("iT".into()),
            ..SmemConfig::default()
        }
    }

    #[test]
    fn encode_decode_is_identity_on_the_wire() {
        let program = tiled_program();
        let sp = plan_for(&program);
        let key = plan_key(&program, &cfg(), &[("iT".into(), 0)], None, &[1, 2]);
        let art = PlanArtifact::build(&program, &sp, key, &[16, 0]).unwrap();
        let bytes = encode_artifact(&art);
        let back = decode_artifact(&bytes).expect("decodes");
        // Decoded artifacts re-encode to the same bytes (canonical
        // form is a fixpoint) and survive the full re-proof.
        assert_eq!(encode_artifact(&back), bytes);
        assert!(back.validate(&program));
        assert_eq!(back.key, key);
        assert_eq!(back.plan.fixed, sp.fixed);
    }

    #[test]
    fn store_round_trips_and_misses_cleanly() {
        let dir = std::env::temp_dir().join(format!("polymem-art-{}", std::process::id()));
        let store = ArtifactStore::open(&dir).unwrap();
        let program = tiled_program();
        let sp = plan_for(&program);
        let key = plan_key(&program, &cfg(), &[("iT".into(), 0)], None, &[]);
        assert!(store.load(&key, &program).is_none(), "cold store misses");
        let art = PlanArtifact::build(&program, &sp, key, &[16, 0]).unwrap();
        store.save(&art).unwrap();
        let loaded = store.load(&key, &program).expect("hit after save");
        assert_eq!(encode_artifact(&loaded), encode_artifact(&art));
        let other = ArtifactKey { lo: 1, hi: 2 };
        assert!(store.load(&other, &program).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_mismatched_artifacts_are_rejected() {
        let program = tiled_program();
        let sp = plan_for(&program);
        let key = plan_key(&program, &cfg(), &[("iT".into(), 0)], None, &[]);
        let art = PlanArtifact::build(&program, &sp, key, &[16, 0]).unwrap();
        let bytes = encode_artifact(&art);
        // Version mismatch.
        let mut v = bytes.clone();
        v[4] ^= 0xff;
        assert!(decode_artifact(&v).is_none());
        // Schema mismatch.
        let mut s = bytes.clone();
        s[8] ^= 0xff;
        assert!(decode_artifact(&s).is_none());
        // Truncation at every prefix length stays a clean None.
        for cut in [0, 3, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_artifact(&bytes[..cut]).is_none(), "cut {cut}");
        }
        // Payload bit-flip breaks the checksum.
        let mut c = bytes.clone();
        let mid = 40 + (bytes.len() - 48) / 2;
        c[mid] ^= 0x01;
        assert!(decode_artifact(&c).is_none());
        // A *stale* artifact — valid bytes, different program — fails
        // the derived-stream re-proof instead of being trusted.
        let mut other = tiled_program();
        other.stmts[0].body = Expr::Sub(Box::new(Expr::Read(0)), Box::new(Expr::Read(1)));
        let art2 = decode_artifact(&bytes).unwrap();
        assert!(art2.validate(&program));
        assert!(!art2.validate(&other));
    }

    #[test]
    fn keys_are_stable_and_sensitive() {
        let program = tiled_program();
        let pairs = [("iT".to_string(), 0i64)];
        let k1 = plan_key(&program, &cfg(), &pairs, None, &[7]);
        let k2 = plan_key(&program, &cfg(), &pairs, None, &[7]);
        assert_eq!(k1, k2, "same inputs, same key");
        // Each input dimension moves the key.
        assert_ne!(k1, plan_key(&program, &cfg(), &pairs, None, &[8]));
        let mut c2 = cfg();
        c2.sample_params = vec![32];
        assert_ne!(k1, plan_key(&program, &c2, &pairs, None, &[7]));
        assert_ne!(
            k1,
            plan_key(&program, &cfg(), &[("iT".into(), 1)], None, &[7])
        );
        let mut p2 = tiled_program();
        p2.stmts[0].body = Expr::Read(0);
        assert_ne!(k1, plan_key(&p2, &cfg(), &pairs, None, &[7]));
        // Pair order is canonicalized away.
        let two = [("a".to_string(), 1i64), ("b".to_string(), 2i64)];
        let rev = [two[1].clone(), two[0].clone()];
        assert_eq!(
            plan_key(&program, &cfg(), &two, None, &[]),
            plan_key(&program, &cfg(), &rev, None, &[])
        );
    }
}
