//! Automatic data management in scratchpad memories (paper §3).
//!
//! The pipeline, per array `A` of the input block (Algorithm 2):
//!
//! 1. [`dataspace`] — compute the data space `F·I` of every reference;
//! 2. [`partition`] — split the set of data spaces into maximal
//!    disjoint groups (connected components of the overlap graph);
//! 3. [`reuse`] — Algorithm 1: keep groups with order-of-magnitude
//!    reuse (`rank(F) < dim(is)`) or ≥ δ pairwise-overlap volume;
//! 4. [`alloc`] — allocate one local buffer per kept group, sized by
//!    the parametric per-dimension bounds of the group's convex union;
//! 5. [`access`] — rewrite each reference to `L[F'(y) − g]`;
//! 6. [`movement`] — emit move-in (read spaces) and move-out (write
//!    spaces) loop nests with the single-transfer property, plus
//!    volume upper bounds;
//! 7. [`liveness`] — (§3.1.4 extension) shrink copy sets using
//!    dependence information.
//!
//! [`analyze_program`] runs 1–6 for every array and returns a
//! [`SmemPlan`].

pub mod access;
pub mod alloc;
pub mod artifact;
pub mod cache;
pub mod dataspace;
pub mod descriptors;
pub mod hierarchy;
pub mod liveness;
pub mod lowering;
pub mod movement;
pub mod partition;
pub mod residency;
pub mod reuse;
pub mod tune;

pub use access::LocalAccess;
pub use alloc::{LocalBuffer, UnionBound};
pub use artifact::{
    decode_artifact, encode_artifact, plan_key, ArtifactKey, ArtifactStore, KeyHasher, PlanArtifact,
};
pub use cache::{analyze_symbolic, analyze_symbolic_hier, parametrize_dims, SymbolicPlan};
pub use dataspace::{AccessId, RefInfo};
pub use descriptors::{
    build_transfers, delta_transfer_list, flush_transfer_list, transfer_list, Direction,
    TransferDescriptor, TransferList, TransferPlan,
};
pub use hierarchy::{analyze_hierarchy, HierPlan, HierSpec, MemLevel};
pub use liveness::LivenessPlan;
pub use lowering::{lower_rows, prove_flat, row_major_weights, FlatAffine, LoweredRow};
pub use movement::MovementCode;
pub use residency::{plan_residency, ResidencyPlan, RetainPlan};
pub use reuse::{ReuseDecision, DEFAULT_DELTA};
pub use tune::{
    estimate, tune_key, CostConstants, CostEstimate, MappingDesc, Structure, TuneArtifact, TuneRow,
};

use polymem_ir::Program;
use polymem_poly::{Polyhedron, Space};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of a local buffer within a [`SmemPlan`].
pub type BufferId = usize;

/// Errors from the data-management framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmemError {
    /// Polyhedral substrate failure.
    Poly(polymem_poly::PolyError),
    /// IR-level failure.
    Ir(polymem_ir::IrError),
    /// A buffer dimension is unbounded, so no finite local storage
    /// exists (the paper assumes bounded blocks).
    UnboundedBuffer {
        /// Array name.
        array: String,
        /// Offending dimension.
        dim: usize,
    },
    /// Sample parameter values were required (for volume estimation)
    /// but not supplied.
    MissingSampleParams,
}

impl fmt::Display for SmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmemError::Poly(e) => write!(f, "polyhedral error: {e}"),
            SmemError::Ir(e) => write!(f, "IR error: {e}"),
            SmemError::UnboundedBuffer { array, dim } => {
                write!(f, "buffer for `{array}` unbounded in dimension {dim}")
            }
            SmemError::MissingSampleParams => {
                write!(f, "sample parameter values required for volume estimation")
            }
        }
    }
}

impl std::error::Error for SmemError {}

impl From<polymem_poly::PolyError> for SmemError {
    fn from(e: polymem_poly::PolyError) -> Self {
        SmemError::Poly(e)
    }
}

impl From<polymem_ir::IrError> for SmemError {
    fn from(e: polymem_ir::IrError) -> Self {
        SmemError::Ir(e)
    }
}

/// Convenience alias used across the module.
pub type Result<T> = std::result::Result<T, SmemError>;

/// Configuration of the framework.
#[derive(Clone, Debug)]
pub struct SmemConfig {
    /// Overlap-volume threshold δ of Algorithm 1 (paper: 0.30).
    pub delta: f64,
    /// Architectures like the Cell *must* copy everything into local
    /// store (`true`); GPU-like architectures copy only beneficial
    /// partitions (`false`, paper default for the GPU testbed).
    pub must_copy_all: bool,
    /// Whether staging a copy into local memory can save cycles at
    /// all on the target (`true` everywhere the paper looks). On
    /// processing-in-memory machines "global" data already sits next
    /// to the compute unit, so Algorithm 1 answers "not beneficial"
    /// for every group and the program runs in place. Overridden by
    /// `must_copy_all`.
    pub staging_pays: bool,
    /// Representative parameter values for exact volume counting in
    /// Algorithm 1's constant-reuse test.
    pub sample_params: Vec<i64>,
    /// Budget on exact point counting before falling back to
    /// bounding-box estimates.
    pub count_budget: u64,
    /// Partition data spaces into maximal disjoint groups (paper §3.1,
    /// default). With `false`, all references of an array share one
    /// buffer spanning the convex union of everything accessed — the
    /// layout of the paper's Fig. 1 worked example.
    pub partition: bool,
    /// Innermost sequential dimension of the symbolic view along which
    /// [`analyze_symbolic`] plans inter-block residency (delta
    /// transfers between lexicographically consecutive sub-tiles).
    /// Must name one of the fixed dims; `None` disables the pass.
    pub residency_dim: Option<String>,
}

impl Default for SmemConfig {
    fn default() -> Self {
        SmemConfig {
            delta: DEFAULT_DELTA,
            must_copy_all: false,
            staging_pays: true,
            sample_params: Vec::new(),
            count_budget: 1 << 20,
            partition: true,
            residency_dim: None,
        }
    }
}

/// The result of analysing a program block: buffers, rewrites and
/// movement code.
#[derive(Clone, Debug)]
pub struct SmemPlan {
    /// Allocated local buffers.
    pub buffers: Vec<LocalBuffer>,
    /// Rewritten accesses: which local buffer (if any) each original
    /// reference now targets.
    pub rewrites: HashMap<AccessId, LocalAccess>,
    /// Per-buffer data movement code.
    pub movement: Vec<MovementCode>,
    /// Reuse decisions, including for partitions that were *not*
    /// buffered (useful for reporting/ablation).
    pub decisions: Vec<(String, ReuseDecision)>,
}

impl SmemPlan {
    /// Total local-memory words needed by all buffers at concrete
    /// parameter values.
    pub fn total_buffer_words(&self, params: &[i64]) -> Result<u64> {
        let mut total = 0u64;
        for b in &self.buffers {
            total = total.saturating_add(b.size_words(params)?);
        }
        Ok(total)
    }
}

/// Wall-clock time spent in each compiler pass of one
/// [`analyze_program`] run (the pass-level profile of the §3 pipeline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassTimes {
    /// Data-space computation (`F·I` images) per reference.
    pub dataspace: Duration,
    /// §3.1 partitioning into maximal disjoint groups.
    pub partition: Duration,
    /// Algorithm 1 reuse-benefit evaluation.
    pub reuse: Duration,
    /// Algorithm 2 buffer allocation + access rewriting.
    pub alloc: Duration,
    /// Move-in / move-out loop-nest generation.
    pub movement: Duration,
    /// Recursive level-2 (register-tile) planning, including its own
    /// nested runs of the passes above.
    pub hierarchy: Duration,
}

impl PassTimes {
    /// Total time across all passes.
    pub fn total(&self) -> Duration {
        self.dataspace + self.partition + self.reuse + self.alloc + self.movement + self.hierarchy
    }

    /// Accumulate another run's times into this one.
    pub fn absorb(&mut self, o: &PassTimes) {
        self.dataspace += o.dataspace;
        self.partition += o.partition;
        self.reuse += o.reuse;
        self.alloc += o.alloc;
        self.movement += o.movement;
        self.hierarchy += o.hierarchy;
    }
}

/// Run the full §3 pipeline over a program block.
///
/// `config.sample_params` must be supplied if any array needs the
/// constant-reuse volume test (i.e. always supply it for programs with
/// parameters unless `must_copy_all` is set).
pub fn analyze_program(program: &Program, config: &SmemConfig) -> Result<SmemPlan> {
    analyze_program_timed(program, config).map(|(plan, _)| plan)
}

/// [`analyze_program`] plus per-pass wall-clock times, for the
/// pass-level profiler (`polymem analyze --profile`).
pub fn analyze_program_timed(
    program: &Program,
    config: &SmemConfig,
) -> Result<(SmemPlan, PassTimes)> {
    program.validate()?;
    let context = param_universe(program);
    let mut buffers = Vec::new();
    let mut rewrites = HashMap::new();
    let mut movement = Vec::new();
    let mut decisions = Vec::new();
    let mut times = PassTimes::default();

    for (ai, arr) in program.arrays.iter().enumerate() {
        let t0 = Instant::now();
        let refs = dataspace::collect_refs(program, ai)?;
        times.dataspace += t0.elapsed();
        if refs.is_empty() {
            continue;
        }
        let t0 = Instant::now();
        let groups = if config.partition {
            partition::partition_refs(&refs, &context)?
        } else {
            vec![(0..refs.len()).collect()]
        };
        times.partition += t0.elapsed();
        for group in &groups {
            let members: Vec<&RefInfo> = group.iter().map(|&k| &refs[k]).collect();
            let t0 = Instant::now();
            let decision = reuse::evaluate_group(&members, config)?;
            times.reuse += t0.elapsed();
            decisions.push((arr.name.clone(), decision.clone()));
            if !config.must_copy_all && !decision.beneficial {
                continue;
            }
            let id: BufferId = buffers.len();
            let t0 = Instant::now();
            let buffer = alloc::allocate_buffer(program, ai, id, &members)?;
            for m in &members {
                let la = access::rewrite_access(&buffer, m)?;
                rewrites.insert(m.id, la);
            }
            times.alloc += t0.elapsed();
            let t0 = Instant::now();
            movement.push(movement::generate_movement(program, &buffer, &members)?);
            times.movement += t0.elapsed();
            buffers.push(buffer);
        }
    }
    Ok((
        SmemPlan {
            buffers,
            rewrites,
            movement,
            decisions,
        },
        times,
    ))
}

/// The unconstrained parameter context of a program (0-dim polyhedron
/// over its parameters).
pub fn param_universe(program: &Program) -> Polyhedron {
    Polyhedron::universe(Space::new(Vec::<String>::new(), program.params.clone()))
}
