//! Algorithm 2 — local buffer allocation.
//!
//! For a partition of data spaces, the paper takes the convex union,
//! finds the lower/upper bound of each dimension as an affine function
//! of the program parameters (via PIP), and allocates a local array of
//! size `Π (ub_k − lb_k + 1)`, preserving the dimension order of the
//! global array. Dimensions that do not appear in the convex union
//! polytope (they are affine functions of the others, e.g. the second
//! subscript of `A[i][i]`) are dropped from the buffer and recorded as
//! rows of the paper's `H` matrix.
//!
//! polymem represents each bound as a [`UnionBound`]: the union's
//! lower bound is the *min* over members of each member's (max-of-
//! affine) lower bound — exact, evaluated per parameter value, and
//! rendered symbolically as nested min/max in generated code. For the
//! common case (one member, one bound term) this degenerates to the
//! paper's single affine expression.

use super::dataspace::RefInfo;
use super::{BufferId, Result, SmemError};
use polymem_ir::Program;
use polymem_poly::bounds::{dim_bounds, AffineForm, BoundList};
use polymem_poly::ConstraintKind;

/// A per-dimension bound of a union of data spaces.
#[derive(Clone, Debug)]
pub struct UnionBound {
    /// One (max-of-affine) lower bound list per member polyhedron.
    pub lowers: Vec<BoundList>,
    /// One (min-of-affine) upper bound list per member polyhedron.
    pub uppers: Vec<BoundList>,
}

impl UnionBound {
    /// Lower bound of the union at concrete parameters
    /// (min over members).
    pub fn eval_lower(&self, params: &[i64]) -> Option<i64> {
        self.lowers
            .iter()
            .map(|b| b.eval_lower(&[], params))
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .min()
    }

    /// Upper bound of the union at concrete parameters
    /// (max over members).
    pub fn eval_upper(&self, params: &[i64]) -> Option<i64> {
        self.uppers
            .iter()
            .map(|b| b.eval_upper(&[], params))
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Extent `ub − lb + 1` at concrete parameters (0 if inverted).
    pub fn extent(&self, params: &[i64]) -> Option<i64> {
        let lo = self.eval_lower(params)?;
        let hi = self.eval_upper(params)?;
        Some((hi - lo + 1).max(0))
    }

    /// Render the lower bound symbolically, e.g. `min(max(i0+1, 10), 2N)`.
    pub fn display_lower(&self, param_names: &[String]) -> String {
        render_combined(&self.lowers, param_names, "max", "min")
    }

    /// Render the upper bound symbolically.
    pub fn display_upper(&self, param_names: &[String]) -> String {
        render_combined(&self.uppers, param_names, "min", "max")
    }
}

/// If every list is a single divisor-free form and all forms share
/// their linear part, the min/max is the one with the smallest/largest
/// constant — fold it.
fn fold_same_linear(lists: &[BoundList], pick_max: bool) -> Option<AffineForm> {
    let mut best: Option<AffineForm> = None;
    for l in lists {
        if l.terms.len() != 1 || l.terms[0].div != 1 {
            return None;
        }
        let t = &l.terms[0];
        match &best {
            None => best = Some(t.clone()),
            Some(b) => {
                let n = t.coeffs.len();
                if b.coeffs[..n - 1] != t.coeffs[..n - 1] {
                    return None;
                }
                let better = if pick_max {
                    t.coeffs[n - 1] > b.coeffs[n - 1]
                } else {
                    t.coeffs[n - 1] < b.coeffs[n - 1]
                };
                if better {
                    best = Some(t.clone());
                }
            }
        }
    }
    best
}

fn render_combined(lists: &[BoundList], params: &[String], inner: &str, outer: &str) -> String {
    // min/max of forms sharing the linear part folds to one form.
    if let Some(f) = fold_same_linear(lists, outer == "max") {
        let none: Vec<String> = Vec::new();
        return f.display(&none, params);
    }
    // Constant bounds fold numerically (e.g. min(10, 20) prints as 10).
    if lists
        .iter()
        .all(|b| b.terms.iter().all(AffineForm::is_constant))
    {
        let fold = |b: &BoundList| -> Option<i64> {
            // All terms constant: any parameter values work; size the
            // vector from the coefficient row (ctx is empty here).
            let zeros = vec![
                0i64;
                b.terms
                    .first()
                    .map_or(0, |t| t.coeffs.len().saturating_sub(1))
            ];
            if inner == "max" {
                b.eval_lower(&[], &zeros)
            } else {
                b.eval_upper(&[], &zeros)
            }
        };
        let vals: Option<Vec<i64>> = lists.iter().map(fold).collect();
        if let Some(vals) = vals {
            let v = if outer == "min" {
                vals.into_iter().min()
            } else {
                vals.into_iter().max()
            };
            if let Some(v) = v {
                return v.to_string();
            }
        }
    }
    let none: Vec<String> = Vec::new();
    let mut rendered: Vec<String> = lists
        .iter()
        .map(|b| {
            let terms: Vec<String> = b.terms.iter().map(|t| t.display(&none, params)).collect();
            if terms.len() == 1 {
                terms.into_iter().next().expect("len checked")
            } else {
                format!("{inner}({})", terms.join(", "))
            }
        })
        .collect();
    rendered.sort();
    rendered.dedup();
    if rendered.len() == 1 {
        rendered.into_iter().next().expect("len checked")
    } else {
        format!("{outer}({})", rendered.join(", "))
    }
}

/// When both ends of a bound are a single divisor-free affine form,
/// the extent `ub − lb + 1` is itself affine; fold it for rendering.
fn symbolic_extent(b: &UnionBound) -> Option<AffineForm> {
    let lo = fold_same_linear(&b.lowers, false)?;
    let hi = fold_same_linear(&b.uppers, true)?;
    let mut coeffs: Vec<i64> = hi
        .coeffs
        .iter()
        .zip(lo.coeffs.iter())
        .map(|(h, l)| h - l)
        .collect();
    let last = coeffs.len().checked_sub(1)?;
    coeffs[last] += 1;
    Some(AffineForm {
        coeffs: coeffs.into(),
        div: 1,
    })
}

/// A dimension of the global array omitted from the local buffer: its
/// value is an affine function of the kept dimensions and parameters
/// (one row of the paper's `H` matrix).
#[derive(Clone, Debug)]
pub struct DroppedDim {
    /// Index of the dropped dimension in the global array.
    pub dim: usize,
    /// Its value over `[kept dims..., params..., 1]` (in kept order).
    pub expr: AffineForm,
}

/// A local scratchpad buffer allocated for one partition of data
/// spaces of one array (the paper's `L_i`).
#[derive(Clone, Debug)]
pub struct LocalBuffer {
    /// Buffer id within the plan.
    pub id: BufferId,
    /// Index of the global array in the program.
    pub array: usize,
    /// Global array name (for rendering).
    pub array_name: String,
    /// Rank of the global array (`m` in the paper).
    pub n_array_dims: usize,
    /// Global-array dims present in the buffer, ascending (`n ≤ m`),
    /// preserving the global dimension order as the paper requires.
    pub kept_dims: Vec<usize>,
    /// Dims expressed as affine functions of kept dims (`H` rows).
    pub dropped: Vec<DroppedDim>,
    /// Per-kept-dim bounds of the convex union (defines size + offset).
    pub bounds: Vec<UnionBound>,
    /// The member data spaces this buffer covers (full array dims).
    pub data_spaces: Vec<polymem_poly::Polyhedron>,
}

impl LocalBuffer {
    /// The offset vector `g = (lb_1, …, lb_n)` at concrete parameters.
    pub fn offsets(&self, params: &[i64]) -> Result<Vec<i64>> {
        self.bounds
            .iter()
            .enumerate()
            .map(|(k, b)| {
                b.eval_lower(params).ok_or(SmemError::UnboundedBuffer {
                    array: self.array_name.clone(),
                    dim: self.kept_dims[k],
                })
            })
            .collect()
    }

    /// Buffer extents (per kept dim) at concrete parameters.
    pub fn extents(&self, params: &[i64]) -> Result<Vec<i64>> {
        self.bounds
            .iter()
            .enumerate()
            .map(|(k, b)| {
                b.extent(params).ok_or(SmemError::UnboundedBuffer {
                    array: self.array_name.clone(),
                    dim: self.kept_dims[k],
                })
            })
            .collect()
    }

    /// Total words of the buffer (`Π extents`) at concrete parameters.
    pub fn size_words(&self, params: &[i64]) -> Result<u64> {
        let mut total: u64 = 1;
        for e in self.extents(params)? {
            total = total.saturating_mul(e.max(0) as u64);
        }
        Ok(total)
    }

    /// Declaration text, e.g. `LA[19][10];` (constant extents) or
    /// `LA[N + 1][M];` (parametric).
    pub fn render_decl(&self, param_names: &[String]) -> String {
        let mut s = format!("L{}", self.array_name);
        for (k, b) in self.bounds.iter().enumerate() {
            // extent = ub - lb + 1; render numerically when constant.
            let lo = b.eval_lower(&vec![0; param_names.len()]);
            let hi = b.eval_upper(&vec![0; param_names.len()]);
            let constant = self
                .bounds
                .get(k)
                .map(|ub| {
                    ub.lowers
                        .iter()
                        .chain(ub.uppers.iter())
                        .all(|l| l.terms.iter().all(AffineForm::is_constant))
                })
                .unwrap_or(false);
            if constant {
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    s.push_str(&format!("[{}]", hi - lo + 1));
                    continue;
                }
            }
            // Single affine bound on each end: fold `ub - lb + 1`
            // symbolically (renders `LA[N]` instead of
            // `LA[N - 1 - (0) + 1]`).
            if let Some(extent) = symbolic_extent(b) {
                let none: Vec<String> = Vec::new();
                s.push_str(&format!("[{}]", extent.display(&none, param_names)));
                continue;
            }
            s.push_str(&format!(
                "[{} - ({}) + 1]",
                b.display_upper(param_names),
                b.display_lower(param_names)
            ));
        }
        s.push(';');
        s
    }
}

/// Allocate the local buffer for a partition of references
/// (Algorithm 2, steps 6–9).
pub fn allocate_buffer(
    program: &Program,
    array_idx: usize,
    id: BufferId,
    members: &[&RefInfo],
) -> Result<LocalBuffer> {
    let arr = &program.arrays[array_idx];
    let m = arr.rank();
    let data_spaces: Vec<polymem_poly::Polyhedron> =
        members.iter().map(|r| r.data_space.clone()).collect();

    // Dims of the convex union fixed by equalities shared across all
    // members become H-matrix rows (dropped from the buffer).
    let dropped = find_dropped_dims(&data_spaces, m);
    let dropped_idx: Vec<usize> = dropped.iter().map(|d| d.dim).collect();
    let kept_dims: Vec<usize> = (0..m).filter(|d| !dropped_idx.contains(d)).collect();

    let mut bounds = Vec::with_capacity(kept_dims.len());
    for &d in &kept_dims {
        let mut lowers = Vec::with_capacity(data_spaces.len());
        let mut uppers = Vec::with_capacity(data_spaces.len());
        for ds in &data_spaces {
            let b = dim_bounds(ds, d, 0)?;
            if b.lower.is_unbounded() || b.upper.is_unbounded() {
                return Err(SmemError::UnboundedBuffer {
                    array: arr.name.clone(),
                    dim: d,
                });
            }
            lowers.push(b.lower);
            uppers.push(b.upper);
        }
        bounds.push(UnionBound { lowers, uppers });
    }

    Ok(LocalBuffer {
        id,
        array: array_idx,
        array_name: arr.name.clone(),
        n_array_dims: m,
        kept_dims,
        dropped,
        bounds,
        data_spaces,
    })
}

/// Find dims expressible as affine functions of the *other* dims via
/// equalities present in every member data space. Greedy, highest
/// dim first (keeps lower dims — the global order — in the buffer).
fn find_dropped_dims(data_spaces: &[polymem_poly::Polyhedron], m: usize) -> Vec<DroppedDim> {
    if data_spaces.is_empty() || m == 0 {
        return Vec::new();
    }
    // Equalities common to all members (compared as normalised rows).
    let first = &data_spaces[0];
    let mut common: Vec<&polymem_poly::Constraint> = first
        .constraints()
        .iter()
        .filter(|c| c.kind == ConstraintKind::Eq)
        .collect();
    for ds in &data_spaces[1..] {
        common.retain(|c| {
            ds.constraints()
                .iter()
                .any(|d| d.kind == ConstraintKind::Eq && d.coeffs == c.coeffs)
        });
    }
    let n_params = first.n_params();
    // Greedy selection pass: pick (dim, equality) pairs such that each
    // equality solves one dim with |coeff| = 1 and never references a
    // previously dropped dim.
    let mut picks: Vec<(usize, &polymem_poly::Constraint)> = Vec::new();
    for c in common {
        let is_dropped = |j: usize| picks.iter().any(|(d, _)| *d == j);
        let candidate = (0..m)
            .rev()
            .find(|&j| c.coeff(j).abs() == 1 && !is_dropped(j));
        let Some(j) = candidate else { continue };
        if (0..m).any(|k| k != j && c.coeff(k) != 0 && is_dropped(k)) {
            continue;
        }
        picks.push((j, c));
    }
    // Layout pass: express each dropped dim over [kept dims, params, 1].
    let dropped_idx: Vec<usize> = picks.iter().map(|(d, _)| *d).collect();
    let kept: Vec<usize> = (0..m).filter(|d| !dropped_idx.contains(d)).collect();
    let mut dropped: Vec<DroppedDim> = picks
        .into_iter()
        .map(|(j, c)| {
            // c: a_j·x_j + rest = 0  =>  x_j = -rest / a_j  (a_j = ±1).
            let s = -c.coeff(j);
            let mut coeffs: Vec<i64> = kept.iter().map(|&k| s * c.coeff(k)).collect();
            for k in 0..=n_params {
                coeffs.push(s * c.coeff(m + k));
            }
            DroppedDim {
                dim: j,
                expr: AffineForm {
                    coeffs: coeffs.into(),
                    div: 1,
                },
            }
        })
        .collect();
    dropped.sort_by_key(|d| d.dim);
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::dataspace::collect_refs;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};

    fn alloc_for(p: &Program, array: &str) -> LocalBuffer {
        let ai = p.array_index(array).unwrap();
        let refs = collect_refs(p, ai).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        allocate_buffer(p, ai, 0, &members).unwrap()
    }

    #[test]
    fn simple_window_buffer() {
        // for i in [0, N-1]: Out[i] = A[i] + A[i+2]
        // Buffer covers [0, N+1]: extent N+2.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 2]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 2])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let buf = alloc_for(&p, "A");
        assert_eq!(buf.kept_dims, vec![0]);
        assert!(buf.dropped.is_empty());
        assert_eq!(buf.offsets(&[10]).unwrap(), vec![0]);
        assert_eq!(buf.extents(&[10]).unwrap(), vec![12]);
        assert_eq!(buf.size_words(&[10]).unwrap(), 12);
    }

    #[test]
    fn offset_follows_lower_bound() {
        // for i in [10, 14]: Out[i-10] = A[i] — buffer offset 10, extent 5.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[LinExpr::c(100)]);
        b.array("Out", &[LinExpr::c(100)]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(10), LinExpr::c(14))])
            .write("Out", &[v("i") - 10])
            .read("A", &[v("i")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let buf = alloc_for(&p, "A");
        assert_eq!(buf.offsets(&[0]).unwrap(), vec![10]);
        assert_eq!(buf.extents(&[0]).unwrap(), vec![5]);
        assert_eq!(buf.render_decl(&p.params), "LA[5];");
    }

    #[test]
    fn diagonal_access_drops_a_dimension() {
        // for i in [0, N-1]: Out[i] = D[i][i] — D's buffer is 1-D.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("D", &[v("N"), v("N")]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("D", &[v("i"), v("i")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let buf = alloc_for(&p, "D");
        assert_eq!(buf.kept_dims, vec![0]);
        assert_eq!(buf.dropped.len(), 1);
        assert_eq!(buf.dropped[0].dim, 1);
        // Dropped dim 1 equals kept dim 0: coeffs [1, 0(param N), 0(const)].
        assert_eq!(buf.dropped[0].expr.coeffs.0, vec![1, 0, 0]);
        assert_eq!(buf.size_words(&[8]).unwrap(), 8);
    }

    #[test]
    fn union_bounds_take_min_and_max_across_members() {
        // Two disjoint windows forced into one buffer (single
        // partition): A[i] over [0, N-1] and A[i + 2N] over [2N, 3N-1].
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") * 3]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + v("N") * 2])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let buf = alloc_for(&p, "A");
        // Union spans [0, 3N-1]: extent 3N.
        assert_eq!(buf.offsets(&[10]).unwrap(), vec![0]);
        assert_eq!(buf.extents(&[10]).unwrap(), vec![30]);
    }

    #[test]
    fn parametric_rendering() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N")]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let buf = alloc_for(&p, "A");
        let decl = buf.render_decl(&p.params);
        assert!(decl.starts_with("LA["), "{decl}");
        assert!(decl.contains('N'), "{decl}");
    }
}
