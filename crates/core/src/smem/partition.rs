//! Partitioning data spaces into maximal disjoint groups.
//!
//! The paper (§3.1) partitions the set of all data spaces of an array
//! into maximal sets such that no data space in one partition overlaps
//! any data space in another, by "finding connected components of an
//! undirected graph" whose vertices are data spaces and whose edges
//! are non-empty pairwise intersections. This module does exactly
//! that, with a union-find over the overlap relation; overlap is
//! tested *symbolically* (existentially in the parameters, within a
//! caller-supplied parameter context).

use super::dataspace::RefInfo;
use super::Result;
use polymem_poly::Polyhedron;

/// Union-find with path halving.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Partition references by data-space overlap. Returns groups of
/// indices into `refs`, each group sorted ascending, groups ordered by
/// their smallest member (deterministic).
///
/// `context` is a 0-dim polyhedron over the program parameters; two
/// spaces overlap iff their intersection is non-empty for *some*
/// parameter values admitted by the context.
pub fn partition_refs(refs: &[RefInfo], context: &Polyhedron) -> Result<Vec<Vec<usize>>> {
    let n = refs.len();
    let mut dsu = Dsu::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if dsu.find(i) == dsu.find(j) {
                continue; // already connected; skip the emptiness test
            }
            let inter = refs[i].data_space.intersect(&refs[j].data_space)?;
            if !inter.is_empty_in_context(context)? {
                dsu.union(i, j);
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut root_of: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        let r = dsu.find(i);
        match root_of[r] {
            Some(g) => groups[g].push(i),
            None => {
                root_of[r] = Some(groups.len());
                groups.push(vec![i]);
            }
        }
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::dataspace::{collect_refs, AccessId};
    use crate::smem::param_universe;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};

    /// for i in [0, N-1]: B[i] = A[i] + A[i+1] + A[i + 2N]
    /// A[i] and A[i+1] overlap; A[i + 2N] is disjoint from both.
    fn prog() -> Program {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") * 3 + 1]);
        b.array("B", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("B", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .read("A", &[v("i") + v("N") * 2])
            .body(Expr::add(
                Expr::add(Expr::Read(0), Expr::Read(1)),
                Expr::Read(2),
            ))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn overlapping_refs_group_together() {
        let p = prog();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let ctx = param_universe(&p);
        let groups = partition_refs(&refs, &ctx).unwrap();
        assert_eq!(groups.len(), 2);
        // A[i] and A[i+1] (read 0 and 1) together; A[i+2N] alone.
        let g0: Vec<AccessId> = groups[0].iter().map(|&k| refs[k].id).collect();
        assert_eq!(g0, vec![AccessId::read(0, 0), AccessId::read(0, 1)]);
        let g1: Vec<AccessId> = groups[1].iter().map(|&k| refs[k].id).collect();
        assert_eq!(g1, vec![AccessId::read(0, 2)]);
    }

    #[test]
    fn context_can_force_overlap_or_disjointness() {
        // A[i] over [0, N-1] and A[i + M] over the same range overlap
        // iff M <= N - 1.
        let mut b = ProgramBuilder::new("p", ["N", "M"]);
        b.array("A", &[v("N") + v("M") + 10]);
        b.array("B", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("B", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + v("M")])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();

        // Context M >= N: disjoint.
        let mut far = param_universe(&p);
        far.add_constraint(polymem_poly::Constraint::ineq(vec![-1, 1, 0]));
        let groups = partition_refs(&refs, &far).unwrap();
        assert_eq!(groups.len(), 2);

        // Context M <= N - 1 (and N >= 1): overlapping.
        let mut near = param_universe(&p);
        near.add_constraint(polymem_poly::Constraint::ineq(vec![1, -1, -1]));
        near.add_constraint(polymem_poly::Constraint::ineq(vec![1, 0, -1]));
        let groups = partition_refs(&refs, &near).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn transitive_overlap_chains_into_one_group() {
        // A[i], A[i+N/2...]: use three refs where 1 overlaps 2 and
        // 2 overlaps 3, but 1 and 3 are disjoint — still one group.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") * 4]);
        b.array("B", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("B", &[v("i")])
            .read("A", &[v("i")]) // [0, N-1]
            .read("A", &[v("i") + v("N") - 1]) // [N-1, 2N-2]
            .read("A", &[v("i") + v("N") * 2 - 2]) // [2N-2, 3N-3]
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let a = p.array_index("A").unwrap();
        let refs = collect_refs(&p, a).unwrap();
        let mut ctx = param_universe(&p);
        // N >= 2 so adjacent pairs overlap at exactly one point.
        ctx.add_constraint(polymem_poly::Constraint::ineq(vec![1, -2]));
        let groups = partition_refs(&refs, &ctx).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn empty_ref_list_gives_no_groups() {
        let p = prog();
        let ctx = param_universe(&p);
        assert!(partition_refs(&[], &ctx).unwrap().is_empty());
    }
}
