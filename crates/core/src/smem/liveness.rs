//! Dependence-based copy-in/copy-out minimisation (paper §3.1.4).
//!
//! By default the framework moves every accessed element in and every
//! written element out of the scratchpad. The paper observes the
//! optimal strategy: copy in only data read inside the block whose
//! producing write happens *outside* the block (plus input arrays),
//! and copy out only data written inside the block that is read
//! outside it (plus output arrays). The paper leaves this to future
//! work; polymem implements it here.
//!
//! Given the full-program flow dependences and a *block* — a
//! restriction of each statement's domain (e.g. one tile) — we
//! compute, per array, the union of:
//!
//! * **copy-in**: images of read accesses over target instances in the
//!   block whose flow source lies outside the block, plus all reads of
//!   input arrays (never written in the program);
//! * **copy-out**: images of write accesses over source instances in
//!   the block whose flow target lies outside the block, plus all
//!   writes to output arrays (never read in the program).

use super::Result;
use crate::deps::ProgDep;
use polymem_ir::Program;
use polymem_poly::diff::difference;
use polymem_poly::{PolyUnion, Polyhedron};
use std::collections::HashMap;

/// Per-array minimised copy sets for one block.
#[derive(Clone, Debug)]
pub struct LivenessPlan {
    /// Array index → data that must be copied in.
    pub copy_in: HashMap<usize, PolyUnion>,
    /// Array index → data that must be copied out.
    pub copy_out: HashMap<usize, PolyUnion>,
}

impl LivenessPlan {
    /// Count copy-in elements for an array at concrete parameters.
    pub fn copy_in_count(&self, array: usize, params: &[i64], budget: u64) -> Result<u64> {
        count(self.copy_in.get(&array), params, budget)
    }

    /// Count copy-out elements for an array at concrete parameters.
    pub fn copy_out_count(&self, array: usize, params: &[i64], budget: u64) -> Result<u64> {
        count(self.copy_out.get(&array), params, budget)
    }
}

fn count(u: Option<&PolyUnion>, params: &[i64], budget: u64) -> Result<u64> {
    let Some(u) = u else { return Ok(0) };
    let concrete: Vec<Polyhedron> = u
        .members()
        .iter()
        .map(|m| m.substitute_params(params))
        .collect::<std::result::Result<_, _>>()?;
    Ok(PolyUnion::from_members(concrete)?.count(budget)?)
}

/// Compute minimised copy sets for a block.
///
/// `block[s]` restricts statement `s`'s domain to the block; a missing
/// entry means the whole domain is inside the block.
pub fn optimize_movement(
    program: &Program,
    flow_deps: &[ProgDep],
    block: &HashMap<usize, Polyhedron>,
) -> Result<LivenessPlan> {
    let restrict = |s: usize| -> Polyhedron {
        block
            .get(&s)
            .cloned()
            .unwrap_or_else(|| program.stmts[s].domain.clone())
    };

    let mut copy_in: HashMap<usize, PolyUnion> = HashMap::new();
    let mut copy_out: HashMap<usize, PolyUnion> = HashMap::new();

    // Dependence-driven sets.
    for pd in flow_deps {
        let src_block = restrict(pd.dep.src_stmt);
        let dst_block = restrict(pd.dep.dst_stmt);
        let array = program
            .array_index(&pd.dep.array)
            .map_err(super::SmemError::from)?;

        // Copy-in: dst in block, src outside.
        let d_in_block = pd.dep.constrain_dst(&dst_block)?;
        let both = d_in_block.constrain_src(&src_block)?;
        for piece in difference(&d_in_block.poly, &both.poly)? {
            let narrowed = polymem_poly::dep::Dependence {
                poly: piece,
                ..pd.dep.clone()
            };
            let targets = narrowed.dst_instances()?;
            if targets.is_empty()? {
                continue;
            }
            let read_map = access_map(program, pd.dst_access);
            let data = read_map.image(&targets)?;
            copy_in.entry(array).or_default().push(data)?;
        }

        // Copy-out: src in block, dst outside.
        let s_in_block = pd.dep.constrain_src(&src_block)?;
        let both = s_in_block.constrain_dst(&dst_block)?;
        for piece in difference(&s_in_block.poly, &both.poly)? {
            let narrowed = polymem_poly::dep::Dependence {
                poly: piece,
                ..pd.dep.clone()
            };
            let sources = narrowed.src_instances()?;
            if sources.is_empty()? {
                continue;
            }
            let write_map = access_map(program, pd.src_access);
            let data = write_map.image(&sources)?;
            copy_out.entry(array).or_default().push(data)?;
        }
    }

    // Input arrays: everything read in the block comes in.
    // Output arrays: everything written in the block goes out.
    for (si, stmt) in program.stmts.iter().enumerate() {
        let dom = restrict(si);
        for r in &stmt.reads {
            if program.is_input_array(r.array) {
                copy_in
                    .entry(r.array)
                    .or_default()
                    .push(r.map.image(&dom)?)?;
            }
        }
        if program.is_output_array(stmt.write.array) {
            copy_out
                .entry(stmt.write.array)
                .or_default()
                .push(stmt.write.map.image(&dom)?)?;
        }
    }

    Ok(LivenessPlan { copy_in, copy_out })
}

fn access_map(program: &Program, id: super::AccessId) -> polymem_poly::AffineMap {
    let s = &program.stmts[id.stmt];
    match id.read_idx {
        None => s.write.map.clone(),
        Some(k) => s.reads[k].map.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::compute_deps;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, ProgramBuilder};
    use polymem_poly::dep::DepKind;
    use polymem_poly::{Constraint, Space};

    /// for i in [1, N-1]: A[i] = A[i-1] + A[i]
    fn scan_program() -> polymem_ir::Program {
        let mut b = ProgramBuilder::new("scan", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(1), v("N") - 1)])
            .write("A", &[v("i")])
            .read("A", &[v("i") - 1])
            .read("A", &[v("i")])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        b.build().unwrap()
    }

    fn block_range(lo: i64, hi: i64) -> Polyhedron {
        Polyhedron::new(
            Space::new(["i"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, -lo]),
                Constraint::ineq(vec![-1, 0, hi]),
            ],
        )
    }

    #[test]
    fn interior_block_copies_only_boundary_in() {
        let p = scan_program();
        let deps = compute_deps(&p, &[DepKind::Flow]).unwrap();
        // Block = iterations [5, 8] of 1..=N-1 (N = 20).
        let mut block = HashMap::new();
        block.insert(0, block_range(5, 8));
        let plan = optimize_movement(&p, &deps, &block).unwrap();
        let a = p.array_index("A").unwrap();
        // Reads in block touch A[4..=8]; only A[4] (produced at i=4,
        // outside) must come in... plus A[i] reads whose producers are
        // outside: A[5..8] are produced inside (at i=5..8) except the
        // A[i] read at i sees the value produced by... wait: A[i] at
        // instance i reads the *initial* A[i] (no in-block write
        // precedes it except instance i itself writes after reading).
        // Flow source of read A[i]@i is... no write before i writes
        // A[i], so that read has NO flow source: dependence-wise
        // nothing to copy; input-array logic does not apply (A is
        // written). The dep-driven copy-in is read A[i-1]@5 from write
        // A[4]@4 (outside).
        let n = plan.copy_in_count(a, &[20], 10_000).unwrap();
        assert_eq!(n, 1);
        let u = &plan.copy_in[&a];
        assert!(u.contains(&[4], &[20]));
    }

    #[test]
    fn copy_out_is_data_read_after_block() {
        let p = scan_program();
        let deps = compute_deps(&p, &[DepKind::Flow]).unwrap();
        let mut block = HashMap::new();
        block.insert(0, block_range(5, 8));
        let plan = optimize_movement(&p, &deps, &block).unwrap();
        let a = p.array_index("A").unwrap();
        // Writes in block: A[5..=8]. Read outside the block (at i=9,
        // reading A[8]): only A[8] must go out by dependence.
        let n = plan.copy_out_count(a, &[20], 10_000).unwrap();
        assert_eq!(n, 1);
        assert!(plan.copy_out[&a].contains(&[8], &[20]));
    }

    #[test]
    fn input_and_output_arrays_always_move() {
        // for i: Out[i] = In[i] * 2 — In is input, Out is output.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("In", &[v("N")]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("In", &[v("i")])
            .body(Expr::mul(Expr::Read(0), Expr::Const(2)))
            .done();
        let p = b.build().unwrap();
        let deps = compute_deps(&p, &[DepKind::Flow]).unwrap();
        let mut block = HashMap::new();
        block.insert(0, block_range(2, 4));
        let plan = optimize_movement(&p, &deps, &block).unwrap();
        let i_in = p.array_index("In").unwrap();
        let i_out = p.array_index("Out").unwrap();
        assert_eq!(plan.copy_in_count(i_in, &[10], 1000).unwrap(), 3);
        assert_eq!(plan.copy_out_count(i_out, &[10], 1000).unwrap(), 3);
        // Nothing flows in for Out or out for In.
        assert_eq!(plan.copy_in_count(i_out, &[10], 1000).unwrap(), 0);
        assert_eq!(plan.copy_out_count(i_in, &[10], 1000).unwrap(), 0);
    }

    #[test]
    fn whole_program_block_needs_no_dep_copies() {
        let p = scan_program();
        let deps = compute_deps(&p, &[DepKind::Flow]).unwrap();
        // Empty block map = block covers everything: no dependence
        // crosses the block boundary; A is neither input nor output
        // (it is read *and* written), so both sets are empty. This is
        // the "temporary array" case the §3.1.4 optimisation wins on.
        let plan = optimize_movement(&p, &deps, &HashMap::new()).unwrap();
        let a = p.array_index("A").unwrap();
        // Reads of initial A values have no flow source: under the
        // paper's rule they are only copied for *input* arrays, which
        // A is not. (Documented approximation of §3.1.4.)
        assert_eq!(plan.copy_in_count(a, &[10], 1000).unwrap(), 0);
        assert_eq!(plan.copy_out_count(a, &[10], 1000).unwrap(), 0);
    }
}
