//! Compile-once-per-shape plan reuse.
//!
//! The functional executor restricts the tiled program to one block by
//! fixing the round/block/seq dims to concrete values and re-running
//! the whole §3 pipeline on the restricted view — once *per sub-tile of
//! every block of every round*, even though every instance has the same
//! shape and the analysis result differs only in where the fixed dims
//! sit. This module removes the redundancy: [`parametrize_dims`] turns
//! the fixed dims into extra *parameters* of the program, so one
//! symbolic [`analyze_program`] run produces a [`SymbolicPlan`] whose
//! buffer bounds, access rewrites and movement loop nests are affine in
//! those parameters. Re-instantiating the plan for a concrete block is
//! then just evaluating affine forms at `params ++ fixed values` —
//! no Fourier–Motzkin, no partitioning, no codegen.
//!
//! Exactness: buffer bounds ([`UnionBound`]), movement ASTs and local
//! access maps are already fully parametric, so instantiating the
//! symbolic plan at a block's fixed values yields element-for-element
//! the data movement of a fresh per-instance analysis — including
//! boundary (partial) tiles, whose `min`/`max` bounds evaluate tighter
//! automatically. The only representative-dependent part is Algorithm
//! 1's *volume* test (it counts points at `sample_params`), which picks
//! which groups are buffered, never how a buffered group behaves; the
//! choice is made once at a representative block and is
//! correctness-neutral.
//!
//! The symbolic program is an **analysis view only**: statement bodies
//! still index iterators of the original full space and must not be
//! evaluated against the reduced space.
//!
//! [`UnionBound`]: super::UnionBound

use super::hierarchy::{analyze_hierarchy, HierPlan, HierSpec, MemLevel};
use super::residency::{plan_residency, ResidencyPlan};
use super::{analyze_program_timed, PassTimes, Result, SmemConfig, SmemError, SmemPlan};
use polymem_ir::{Access, Program};
use polymem_linalg::IMat;
use polymem_poly::{AffineMap, Constraint, ConstraintKind, Polyhedron, Space};
use std::collections::HashMap;
use std::time::Instant;

/// A block-shape-generic scratchpad plan: the result of running the §3
/// pipeline once on the [`parametrize_dims`] view of a blocked program.
#[derive(Clone, Debug)]
pub struct SymbolicPlan {
    /// The plan over the symbolic view. All of its affine structures
    /// take `params ++ fixed` as their parameter vector.
    pub plan: SmemPlan,
    /// The fixed-dim names appended as parameters, in the (sorted)
    /// order their values must be appended to the program parameters.
    pub fixed: Vec<String>,
    /// Per original statement: indices of the dims that remain
    /// iteration dims in the symbolic view (in original order).
    pub kept_dims: Vec<Vec<usize>>,
    /// Compiler-pass wall-clock times of the one symbolic analysis.
    pub pass_times: PassTimes,
    /// The recursive level-2 (register-tile) plan, when the mapping
    /// declares thread dims and at least one frame survives the gates.
    pub hier: Option<HierPlan>,
    /// Inter-block residency decomposition (delta transfers between
    /// consecutive sub-tiles), when `SmemConfig::residency_dim` named
    /// one of the fixed dims. Empty plans mean the pass ran but no
    /// group can legally retain anything.
    pub residency: Option<ResidencyPlan>,
}

impl SymbolicPlan {
    /// The plan at one memory level: the scratchpad plan always
    /// exists; the register plan only when the hierarchy produced one.
    pub fn level(&self, level: MemLevel) -> Option<&SmemPlan> {
        match level {
            MemLevel::Scratchpad => Some(&self.plan),
            MemLevel::Register => self.hier.as_ref().map(|h| &h.plan),
        }
    }

    /// The extended parameter vector `params ++ fixed values` for one
    /// concrete block instance, or `None` if `fixed` lacks a value for
    /// one of the plan's fixed dims (a shape mismatch — the caller
    /// should fall back to per-instance analysis).
    pub fn ext_params(&self, params: &[i64], fixed: &HashMap<String, i64>) -> Option<Vec<i64>> {
        if fixed.len() != self.fixed.len() {
            return None;
        }
        let mut out = Vec::with_capacity(params.len() + self.fixed.len());
        out.extend_from_slice(params);
        for name in &self.fixed {
            out.push(*fixed.get(name)?);
        }
        Some(out)
    }

    /// Project a full-space iteration point of statement `stmt` down to
    /// the symbolic view's kept dims.
    pub fn project_point(&self, stmt: usize, point: &[i64]) -> Vec<i64> {
        self.kept_dims[stmt].iter().map(|&d| point[d]).collect()
    }
}

/// Rebuild a statement space with the `names` dims moved to the end of
/// the parameter list. Returns the new space plus, for every new
/// column, the old column it reads from (`None` ⇒ the dim does not
/// exist in this statement; its coefficient is 0).
fn remap_columns(space: &Space, names: &[String]) -> (Space, Vec<Option<usize>>, Vec<usize>) {
    let dims = space.dims();
    let kept: Vec<usize> = (0..dims.len())
        .filter(|&i| !names.iter().any(|n| *n == dims[i]))
        .collect();
    let mut col_map: Vec<Option<usize>> = kept.iter().map(|&d| Some(space.dim_col(d))).collect();
    for p in 0..space.n_params() {
        col_map.push(Some(space.param_col(p)));
    }
    for n in names {
        col_map.push(space.find_dim(n).map(|d| space.dim_col(d)));
    }
    col_map.push(Some(space.const_col()));
    let new_space = Space::new(
        kept.iter().map(|&d| dims[d].clone()),
        space.params().iter().cloned().chain(names.iter().cloned()),
    );
    (new_space, col_map, kept)
}

fn remap_row(row: impl Fn(usize) -> i64, col_map: &[Option<usize>]) -> Vec<i64> {
    col_map.iter().map(|c| c.map(&row).unwrap_or(0)).collect()
}

/// The symbolic-block view: every dim named in `names` becomes a
/// program *parameter* (appended after the existing ones, in the given
/// order), in statement domains and access functions alike. Statement
/// bodies are left untouched and must not be evaluated against the
/// transformed spaces.
pub fn parametrize_dims(program: &Program, names: &[String]) -> Result<Program> {
    for n in names {
        if program.params.contains(n) {
            return Err(SmemError::Ir(polymem_ir::IrError::UnknownName(format!(
                "fixed dim `{n}` collides with a program parameter"
            ))));
        }
    }
    let mut out = program.clone();
    out.params.extend(names.iter().cloned());
    for s in &mut out.stmts {
        let (new_space, col_map, _) = remap_columns(s.domain.space(), names);
        let rows: Vec<Constraint> = s
            .domain
            .constraints()
            .iter()
            .map(|c| {
                let coeffs = remap_row(|j| c.coeff(j), &col_map);
                match c.kind {
                    ConstraintKind::Ineq => Constraint::ineq(coeffs),
                    ConstraintKind::Eq => Constraint::eq(coeffs),
                }
            })
            .collect();
        s.domain = Polyhedron::new(new_space.clone(), rows);
        let remap_access = |acc: &Access| -> Access {
            let m = acc.map.matrix();
            let rows: Vec<Vec<i64>> = (0..m.rows())
                .map(|r| remap_row(|j| m[(r, j)], &col_map))
                .collect();
            let row_refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            let out_space = Space::new(
                acc.map.out_space().dims().iter().cloned(),
                new_space.params().iter().cloned(),
            );
            Access {
                array: acc.array,
                map: AffineMap::new(new_space.clone(), out_space, IMat::from_rows(&row_refs)),
            }
        };
        s.write = remap_access(&s.write);
        for r in &mut s.reads {
            *r = remap_access(r);
        }
    }
    Ok(out)
}

/// Run the §3 pipeline once on the symbolic view of `program` obtained
/// by parametrising the given fixed dims, using the supplied values as
/// the representative block for Algorithm 1's volume test.
///
/// `config.sample_params` must hold the original program parameters;
/// the representative fixed values are appended internally.
pub fn analyze_symbolic(
    program: &Program,
    fixed: &[(String, i64)],
    config: &SmemConfig,
) -> Result<SymbolicPlan> {
    let mut pairs = fixed.to_vec();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let names: Vec<String> = pairs.iter().map(|p| p.0.clone()).collect();
    let symbolic = parametrize_dims(program, &names)?;
    let mut cfg = config.clone();
    cfg.sample_params.extend(pairs.iter().map(|p| p.1));
    let (plan, pass_times) = analyze_program_timed(&symbolic, &cfg)?;
    let residency = match &config.residency_dim {
        Some(dim) if names.iter().any(|n| n == dim) => Some(plan_residency(&symbolic, &plan, dim)?),
        _ => None,
    };
    let kept_dims = program
        .stmts
        .iter()
        .map(|s| {
            let dims = s.domain.space().dims();
            (0..dims.len())
                .filter(|&i| !names.iter().any(|n| *n == dims[i]))
                .collect()
        })
        .collect();
    Ok(SymbolicPlan {
        plan,
        fixed: names,
        kept_dims,
        pass_times,
        hier: None,
        residency,
    })
}

/// [`analyze_symbolic`] plus the recursive register-tile level: when
/// `spec` is given, the §3 pipeline is re-run over the intra-thread
/// subnest against the level-1 buffers and the surviving frames are
/// attached as [`SymbolicPlan::hier`]. The time spent in the second
/// level is recorded as the `hierarchy` pass.
pub fn analyze_symbolic_hier(
    program: &Program,
    fixed: &[(String, i64)],
    config: &SmemConfig,
    spec: Option<&HierSpec>,
) -> Result<SymbolicPlan> {
    let mut sp = analyze_symbolic(program, fixed, config)?;
    if let Some(spec) = spec {
        let t0 = Instant::now();
        sp.hier = analyze_hierarchy(program, fixed, spec, &sp.plan, config)?;
        sp.pass_times.hierarchy = t0.elapsed();
    }
    Ok(sp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::analyze_program;
    use crate::tiling::transform::{fix_dims, tile_program, TileSpec};
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, ProgramBuilder};
    use polymem_poly::count::enumerate_points;
    use std::collections::BTreeSet;

    /// Tiled window kernel: Out[i] = A[i] + A[i+1], i-tiles of 4.
    fn tiled_window() -> Program {
        let mut b = ProgramBuilder::new("w", ["N"]);
        b.array("A", &[v("N") + 1]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap()
    }

    #[test]
    fn parametrized_view_validates_and_shrinks_dims() {
        let t = tiled_window();
        let sym = parametrize_dims(&t, &["iT".to_string()]).unwrap();
        sym.validate().unwrap();
        assert_eq!(sym.params, vec!["N".to_string(), "iT".to_string()]);
        for s in &sym.stmts {
            assert!(!s.domain.space().dims().contains(&"iT".to_string()));
            assert_eq!(s.domain.space().n_params(), 2);
            assert_eq!(s.write.map.in_space().n_params(), 2);
        }
    }

    #[test]
    fn parametrized_domain_matches_fixed_domain_pointwise() {
        let t = tiled_window();
        let sym = parametrize_dims(&t, &["iT".to_string()]).unwrap();
        let n = 10i64;
        for bt in 0..3 {
            // Concrete restriction of the original statement.
            let mut fixed = HashMap::new();
            fixed.insert("iT".to_string(), bt);
            let conc = fix_dims(&t.stmts[0].domain, &fixed)
                .substitute_params(&[n])
                .unwrap();
            let mut orig: BTreeSet<Vec<i64>> = BTreeSet::new();
            enumerate_points(&conc, 10_000, &mut |p| {
                // Drop the iT dim (position 0 after tiling).
                orig.insert(p[1..].to_vec());
            })
            .unwrap();
            // The symbolic domain at ext params [n, bt].
            let sdom = sym.stmts[0].domain.substitute_params(&[n, bt]).unwrap();
            let mut got: BTreeSet<Vec<i64>> = BTreeSet::new();
            enumerate_points(&sdom, 10_000, &mut |p| {
                got.insert(p.to_vec());
            })
            .unwrap();
            assert_eq!(orig, got, "block {bt}");
        }
    }

    #[test]
    fn symbolic_plan_matches_per_instance_analysis_per_block() {
        let t = tiled_window();
        let n = 10i64;
        // The caller's config — including the default
        // `must_copy_all: false`, so reuse minimisation applies to the
        // cached path exactly as to fresh per-instance analysis.
        let cfg = SmemConfig {
            sample_params: vec![n],
            ..SmemConfig::default()
        };
        let sp = analyze_symbolic(&t, &[("iT".to_string(), 0)], &cfg).unwrap();
        // Blocks 0..2 (block 2 is a partial boundary tile: 10 = 2*4+2).
        for bt in 0..3 {
            let mut fixed = HashMap::new();
            fixed.insert("iT".to_string(), bt);
            let mut view = t.clone();
            for s in &mut view.stmts {
                s.domain = fix_dims(&s.domain, &fixed);
            }
            let fresh = analyze_program(&view, &cfg).unwrap();
            let ext = sp.ext_params(&[n], &fixed).unwrap();
            assert_eq!(sp.plan.buffers.len(), fresh.buffers.len(), "block {bt}");
            for (sb, fb) in sp.plan.buffers.iter().zip(&fresh.buffers) {
                assert_eq!(sb.array, fb.array);
                assert_eq!(sb.extents(&ext).unwrap(), fb.extents(&[n]).unwrap());
                assert_eq!(sb.offsets(&ext).unwrap(), fb.offsets(&[n]).unwrap());
            }
            // Move-in element sets agree (global side).
            let collect = |plan: &SmemPlan, params: &[i64]| -> BTreeSet<(usize, Vec<i64>)> {
                let mut set = BTreeSet::new();
                for mc in &plan.movement {
                    let buf = &plan.buffers[mc.buffer];
                    crate::smem::movement::for_each_move_in(mc, buf, params, &mut |g, _| {
                        set.insert((buf.array, g.to_vec()));
                    })
                    .unwrap();
                }
                set
            };
            assert_eq!(collect(&sp.plan, &ext), collect(&fresh, &[n]), "block {bt}");
        }
    }

    #[test]
    fn cached_plan_honors_minimised_copy_sets() {
        // With the default `must_copy_all: false`, the singleton Out
        // write group fails Algorithm 1 and must be skipped by BOTH
        // the cached (symbolic) path and fresh per-instance analysis —
        // and the surviving groups must move identical element sets.
        let t = tiled_window();
        let n = 10i64;
        let cfg = SmemConfig {
            sample_params: vec![n],
            ..SmemConfig::default()
        };
        let sp = analyze_symbolic(&t, &[("iT".to_string(), 0)], &cfg).unwrap();
        let out = t.array_index("Out").unwrap();
        assert!(
            !sp.plan.buffers.iter().any(|b| b.array == out),
            "cached path must apply reuse minimisation"
        );
        for bt in 0..3 {
            let mut fixed = HashMap::new();
            fixed.insert("iT".to_string(), bt);
            let mut view = t.clone();
            for s in &mut view.stmts {
                s.domain = fix_dims(&s.domain, &fixed);
            }
            let fresh = analyze_program(&view, &cfg).unwrap();
            assert!(!fresh.buffers.iter().any(|b| b.array == out), "block {bt}");
            let ext = sp.ext_params(&[n], &fixed).unwrap();
            let collect = |plan: &SmemPlan, params: &[i64]| -> BTreeSet<(usize, Vec<i64>)> {
                let mut set = BTreeSet::new();
                for mc in &plan.movement {
                    let buf = &plan.buffers[mc.buffer];
                    crate::smem::movement::for_each_move_in(mc, buf, params, &mut |g, _| {
                        set.insert((buf.array, g.to_vec()));
                    })
                    .unwrap();
                }
                set
            };
            assert_eq!(collect(&sp.plan, &ext), collect(&fresh, &[n]), "block {bt}");
        }
    }

    #[test]
    fn fixed_name_colliding_with_param_is_rejected() {
        let t = tiled_window();
        assert!(parametrize_dims(&t, &["N".to_string()]).is_err());
    }

    #[test]
    fn ext_params_rejects_shape_mismatch() {
        let t = tiled_window();
        let cfg = SmemConfig {
            sample_params: vec![8],
            ..SmemConfig::default()
        };
        let sp = analyze_symbolic(&t, &[("iT".to_string(), 0)], &cfg).unwrap();
        let mut wrong = HashMap::new();
        wrong.insert("jT".to_string(), 1);
        assert!(sp.ext_params(&[8], &wrong).is_none());
        assert!(sp.ext_params(&[8], &HashMap::new()).is_none());
    }
}
