//! Data movement code generation (paper §3.1.3).
//!
//! For each local buffer:
//!
//! * **move-in** scans the union of data spaces accessed by *read*
//!   references and copies `L[y − g] = A[y]`;
//! * **move-out** scans the union of data spaces accessed by *write*
//!   references and copies `A[y] = L[y − g]`.
//!
//! Scanning goes through [`polymem_codegen::scan_union`], which
//! decomposes overlapping spaces into disjoint pieces, so each element
//! is loaded/stored exactly once — the paper's single-transfer
//! property, and precisely the two-nest shape of its Fig. 1 example.
//!
//! The module also computes the §3.1.3 upper bounds on moved volume
//! (`V_in`/`V_out`): the total buffer space needed by the maximal
//! non-overlapping sub-partitions of the read (resp. write) data
//! spaces.

use super::alloc::LocalBuffer;
use super::dataspace::RefInfo;
use super::Result;
use polymem_codegen::{scan_union, Ast};
use polymem_ir::Program;
use polymem_poly::{PolyUnion, Polyhedron};

/// Generated movement code and volume bounds for one buffer.
#[derive(Clone, Debug)]
pub struct MovementCode {
    /// The buffer this code serves.
    pub buffer: super::BufferId,
    /// Loop nest copying global → local (scans read data spaces).
    pub move_in: Ast,
    /// Loop nest copying local → global (scans write data spaces).
    pub move_out: Ast,
    /// Data spaces of the read references (full array dims).
    pub read_spaces: Vec<Polyhedron>,
    /// Data spaces of the write references.
    pub write_spaces: Vec<Polyhedron>,
}

impl MovementCode {
    /// Exact number of elements the move-in code transfers at concrete
    /// parameters (each element once).
    pub fn move_in_count(&self, params: &[i64]) -> u64 {
        self.move_in.count_visits(params)
    }

    /// Exact number of elements the move-out code transfers.
    pub fn move_out_count(&self, params: &[i64]) -> u64 {
        self.move_out.count_visits(params)
    }

    /// §3.1.3 upper bound on the volume moved in: total buffer space
    /// of the maximal non-overlapping sub-partitions of the read data
    /// spaces.
    pub fn vin_bound(
        &self,
        program: &Program,
        buffer: &LocalBuffer,
        params: &[i64],
    ) -> Result<u64> {
        volume_bound(program, buffer, &self.read_spaces, params)
    }

    /// §3.1.3 upper bound on the volume moved out (write data spaces).
    pub fn vout_bound(
        &self,
        program: &Program,
        buffer: &LocalBuffer,
        params: &[i64],
    ) -> Result<u64> {
        volume_bound(program, buffer, &self.write_spaces, params)
    }
}

/// Generate movement code for a buffer from its member references.
pub fn generate_movement(
    program: &Program,
    buffer: &LocalBuffer,
    members: &[&RefInfo],
) -> Result<MovementCode> {
    let _ = program;
    let read_spaces: Vec<Polyhedron> = members
        .iter()
        .filter(|r| !r.id.is_write())
        .map(|r| r.data_space.clone())
        .collect();
    let write_spaces: Vec<Polyhedron> = members
        .iter()
        .filter(|r| r.id.is_write())
        .map(|r| r.data_space.clone())
        .collect();
    let move_in = scan_union(&PolyUnion::from_members(read_spaces.clone())?, &[0])?;
    let move_out = scan_union(&PolyUnion::from_members(write_spaces.clone())?, &[0])?;
    Ok(MovementCode {
        buffer: buffer.id,
        move_in,
        move_out,
        read_spaces,
        write_spaces,
    })
}

/// Sum of buffer-space needs over maximal non-overlapping groups of
/// `spaces` (the paper's V_in/V_out estimation).
fn volume_bound(
    program: &Program,
    buffer: &LocalBuffer,
    spaces: &[Polyhedron],
    params: &[i64],
) -> Result<u64> {
    if spaces.is_empty() {
        return Ok(0);
    }
    // Group by overlap, then apply Algorithm 2's sizing per group.
    let n = spaces.len();
    let mut group_of: Vec<usize> = (0..n).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let inter = spaces[i].intersect(&spaces[j])?;
            let concrete = inter.substitute_params(params)?;
            if !concrete.is_empty()? {
                let (gi, gj) = (group_of[i], group_of[j]);
                if gi != gj {
                    for g in &mut group_of {
                        if *g == gj {
                            *g = gi;
                        }
                    }
                }
            }
        }
    }
    let mut total = 0u64;
    let mut seen: Vec<usize> = Vec::new();
    for g in 0..n {
        if group_of[g] != g || seen.contains(&g) {
            continue;
        }
        seen.push(g);
        let members: Vec<Polyhedron> = (0..n)
            .filter(|&k| group_of[k] == g)
            .map(|k| spaces[k].clone())
            .collect();
        // Fake RefInfos are not needed: size the group directly via
        // per-dim union bounds over the buffer's kept dims.
        let fake: Vec<RefInfo> = Vec::new();
        let _ = &fake;
        let mut size: u64 = 1;
        for &d in &buffer.kept_dims {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for m in &members {
                let b = polymem_poly::bounds::dim_bounds(m, d, 0)?;
                let Some((l, h)) = b.eval_range(&[], params) else {
                    continue;
                };
                lo = lo.min(l);
                hi = hi.max(h);
            }
            if hi < lo {
                size = 0;
                break;
            }
            size = size.saturating_mul((hi - lo + 1) as u64);
        }
        total = total.saturating_add(size);
    }
    let _ = program;
    Ok(total)
}

/// Execute move-in against raw storage: calls
/// `copy(global_index, local_index)` once per transferred element.
pub fn for_each_move_in(
    code: &MovementCode,
    buffer: &LocalBuffer,
    params: &[i64],
    copy: &mut dyn FnMut(&[i64], &[i64]),
) -> Result<()> {
    for_each_scan(&code.move_in, buffer, params, copy)
}

/// Execute move-out: `copy(global_index, local_index)` per element.
pub fn for_each_move_out(
    code: &MovementCode,
    buffer: &LocalBuffer,
    params: &[i64],
    copy: &mut dyn FnMut(&[i64], &[i64]),
) -> Result<()> {
    for_each_scan(&code.move_out, buffer, params, copy)
}

/// Execute an arbitrary scan nest against a buffer's layout:
/// `copy(global_index, local_index)` once per scanned element. The
/// shared core of move-in/move-out and of the residency pass's
/// retained/delta region walks.
pub fn for_each_scan(
    ast: &Ast,
    buffer: &LocalBuffer,
    params: &[i64],
    copy: &mut dyn FnMut(&[i64], &[i64]),
) -> Result<()> {
    let g = buffer.offsets(params)?;
    ast.for_each_point(params, &mut |_, y| {
        // y is the full global index; the local index keeps the
        // buffer's dims minus offsets.
        let local: Vec<i64> = buffer
            .kept_dims
            .iter()
            .zip(&g)
            .map(|(&d, off)| y[d] - off)
            .collect();
        copy(y, &local);
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smem::alloc::allocate_buffer;
    use crate::smem::dataspace::collect_refs;
    use polymem_ir::expr::v;
    use polymem_ir::{Expr, LinExpr, Program, ProgramBuilder};
    use std::collections::HashSet;

    /// for i in [0, N-1]: A[i] = A[i] + A[i+1]
    fn stencil() -> Program {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") + 1]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        b.build().unwrap()
    }

    fn setup(p: &Program, arr: &str) -> (LocalBuffer, MovementCode) {
        let ai = p.array_index(arr).unwrap();
        let refs = collect_refs(p, ai).unwrap();
        let members: Vec<&_> = refs.iter().collect();
        let buf = allocate_buffer(p, ai, 0, &members).unwrap();
        let code = generate_movement(p, &buf, &members).unwrap();
        (buf, code)
    }

    #[test]
    fn move_in_covers_reads_once() {
        let p = stencil();
        let (buf, code) = setup(&p, "A");
        // Reads cover [0, N] = 11 elements at N = 10, each moved once.
        assert_eq!(code.move_in_count(&[10]), 11);
        let mut seen = HashSet::new();
        for_each_move_in(&code, &buf, &[10], &mut |g, l| {
            assert!(seen.insert(g.to_vec()), "duplicate transfer of {g:?}");
            assert_eq!(l[0], g[0]); // offset 0 here
        })
        .unwrap();
    }

    #[test]
    fn move_out_covers_writes_only() {
        let p = stencil();
        let (_, code) = setup(&p, "A");
        // Writes cover [0, N-1] = 10 elements.
        assert_eq!(code.move_out_count(&[10]), 10);
    }

    #[test]
    fn volume_bounds_match_box_sizes() {
        let p = stencil();
        let (buf, code) = setup(&p, "A");
        // One overlapping read group: box [0, N] = N+1 words.
        assert_eq!(code.vin_bound(&p, &buf, &[10]).unwrap(), 11);
        assert_eq!(code.vout_bound(&p, &buf, &[10]).unwrap(), 10);
    }

    #[test]
    fn local_indices_respect_offsets() {
        // for i in [5, 9]: Out[i-5] = A[i]; buffer offset 5.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[LinExpr::c(50)]);
        b.array("Out", &[LinExpr::c(50)]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(5), LinExpr::c(9))])
            .write("Out", &[v("i") - 5])
            .read("A", &[v("i")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let (buf, code) = setup(&p, "A");
        let mut pairs = Vec::new();
        for_each_move_in(&code, &buf, &[0], &mut |g, l| {
            pairs.push((g[0], l[0]));
        })
        .unwrap();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(5, 0), (6, 1), (7, 2), (8, 3), (9, 4)]);
    }

    #[test]
    fn disjoint_read_groups_counted_separately_in_vin() {
        // Reads A[i] over [0, N-1] and A[i + 2N] over [2N, 3N-1]:
        // Vin = N + N, not the 3N-wide hull.
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N") * 3]);
        b.array("Out", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("Out", &[v("i")])
            .read("A", &[v("i")])
            .read("A", &[v("i") + v("N") * 2])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let (buf, code) = setup(&p, "A");
        assert_eq!(code.vin_bound(&p, &buf, &[10]).unwrap(), 20);
        // While the single buffer spans the hull (30 words):
        assert_eq!(buf.size_words(&[10]).unwrap(), 30);
    }

    #[test]
    fn write_only_buffer_moves_nothing_in() {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("Out", &[v("N"), v("N")]);
        b.array("Src", &[v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("Out", &[v("i"), v("j")])
            .read("Src", &[v("j")])
            .body(Expr::Read(0))
            .done();
        let p = b.build().unwrap();
        let (_, code) = setup(&p, "Out");
        assert_eq!(code.move_in_count(&[6]), 0);
        assert_eq!(code.move_out_count(&[6]), 36);
    }
}
