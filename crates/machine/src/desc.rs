//! Declarative machine descriptions.
//!
//! A [`MachineDesc`] is pure data: named memory levels (capacity +
//! latency), compute throughput, synchronisation costs, the DMA /
//! channel topology, capability flags, and — for spatial machines —
//! the PE-mesh geometry. Every built-in machine (`gpu`, `cell`,
//! `host`, `pim`, `spatial`) is a description in the [registry], and
//! arbitrary machines load from a TOML file (`polymem --machine-file`)
//! with [`MachineDesc::from_file`]. [`MachineDesc::config`] lowers a
//! description into the executable [`MachineConfig`] the simulator,
//! cost model and autotuner consume; nothing downstream branches on a
//! machine *name* — behaviour differences flow through the
//! description's numbers and [`Capabilities`] flags.
//!
//! The descriptions encode genuinely different optimisation regimes:
//!
//! * **gpu / cell** — the paper's testbeds: slow global memory behind
//!   a wide bus, a scratchpad worth staging into (mandatory on cell).
//! * **pim** — per-bank compute units sitting next to the DRAM rows:
//!   "global" latency is near zero, per-bank buffers are tiny, and
//!   inter-bank movement is expensive, so Algorithm 1's staging
//!   decision flips to in-place execution (the winning move is not
//!   moving data at all).
//! * **spatial** — a 2-D PE array where operand *placement* dominates:
//!   every DMA descriptor pays a NoC route proportional to the hop
//!   distance from the memory ports at the west edge to the PE the
//!   block is placed on, so the cost model trades parallel width
//!   against route length.
//!
//! The serialised form round-trips: `from_str(&d.to_toml()) == d` for
//! every registered description (a property test pins this).

use crate::config::{Capabilities, MachineConfig, MeshDesc, DEFAULT_ENUM_BUDGET};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One memory level of a description, outermost first. The canonical
/// three-level shape is `global` (capacity 0 = unbounded), a
/// `scratchpad` per outer unit, and a `register` file per inner
/// process; capacities are bytes, latencies cycles per element access.
#[derive(Clone, Debug, PartialEq)]
pub struct MemLevel {
    /// Level name: `global`, `scratchpad` or `register`.
    pub name: String,
    /// Capacity in bytes (0 = unbounded; only meaningful for
    /// `global`).
    pub capacity_bytes: u64,
    /// Cycles per element access at this level.
    pub latency: f64,
}

/// A declarative machine description — everything the mapper needs to
/// know about a target, as data.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineDesc {
    /// Registry / display name.
    pub name: String,
    /// Memory levels, outermost first (`global`, `scratchpad`,
    /// `register`).
    pub levels: Vec<MemLevel>,
    /// Outer-level parallel units (multiprocessors / SPEs / banks /
    /// PEs). For mesh machines this must equal `rows × cols`.
    pub n_outer: u64,
    /// Inner-level SIMD units per outer unit.
    pub n_inner: u64,
    /// Scheduling granularity of inner processes (warp size).
    pub warp_size: u64,
    /// Bytes per data word.
    pub word_bytes: u64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Cycles per arithmetic op on an inner unit.
    pub cycles_per_op: f64,
    /// Compiled-engine SIMD lane count.
    pub vector_width: u64,
    /// Outstanding global accesses one outer unit overlaps.
    pub global_overlap: f64,
    /// Hardware cap on blocks resident per outer unit.
    pub max_blocks_per_outer: u64,
    /// Cycles of sync per inner process per movement occurrence.
    pub sync_cycles: f64,
    /// Fixed cycles for a device-wide barrier...
    pub device_sync_base: f64,
    /// ...plus this many per active block.
    pub device_sync_per_block: f64,
    /// Tagged DMA channels per outer unit (0 = per-element movement).
    pub dma_channels: u64,
    /// Per-descriptor setup cycles.
    pub dma_setup_cycles: f64,
    /// DMA bandwidth in bytes per cycle.
    pub dma_bytes_per_cycle: f64,
    /// Capability flags (behavioural switches as data).
    pub caps: Capabilities,
    /// PE-mesh geometry (spatial machines only).
    pub mesh: Option<MeshDesc>,
}

impl MachineDesc {
    fn level(&self, name: &str) -> Option<&MemLevel> {
        self.levels.iter().find(|l| l.name == name)
    }

    /// Lower the description into the executable [`MachineConfig`].
    ///
    /// Derived rather than declared: `residency` is on exactly when
    /// the machine has a scratchpad *and* staging pays (a PIM bank
    /// computes in place, so there is no window to keep warm), and a
    /// mesh forces `n_outer = rows × cols`.
    pub fn config(&self) -> MachineConfig {
        let global = self.level("global");
        let spad = self.level("scratchpad");
        let regs = self.level("register");
        let smem_bytes = spad.map_or(0, |l| l.capacity_bytes);
        let n_outer = match &self.mesh {
            Some(m) => (m.rows * m.cols).max(1),
            None => self.n_outer,
        };
        let caps = self.caps;
        MachineConfig {
            caps,
            n_outer,
            n_inner: self.n_inner,
            warp_size: self.warp_size,
            smem_bytes,
            word_bytes: self.word_bytes,
            clock_ghz: self.clock_ghz,
            cycles_per_op: self.cycles_per_op,
            global_latency: global.map_or(0.0, |l| l.latency),
            global_overlap: self.global_overlap,
            smem_latency: spad.map_or(0.0, |l| l.latency),
            sync_cycles: self.sync_cycles,
            device_sync_base: self.device_sync_base,
            device_sync_per_block: self.device_sync_per_block,
            max_blocks_per_outer: self.max_blocks_per_outer,
            enum_budget: DEFAULT_ENUM_BUDGET,
            plan_cache: true,
            dma_channels: self.dma_channels,
            dma_setup_cycles: self.dma_setup_cycles,
            dma_bytes_per_cycle: self.dma_bytes_per_cycle,
            double_buffer: false,
            compiled_exec: true,
            regs_per_inner: regs.map_or(0, |l| l.capacity_bytes / self.word_bytes.max(1)),
            hierarchy: false,
            vector_width: self.vector_width,
            residency: smem_bytes > 0 && !caps.in_place_compute,
            partition: true,
            artifact_dir: None,
            mesh: self.mesh.clone(),
        }
    }

    /// Serialise to the TOML subset [`MachineDesc::from_str`] reads.
    /// `from_str(&d.to_toml())` reconstructs `d` exactly.
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "name = \"{}\"", self.name);
        let _ = writeln!(s, "\n[compute]");
        let _ = writeln!(s, "n_outer = {}", self.n_outer);
        let _ = writeln!(s, "n_inner = {}", self.n_inner);
        let _ = writeln!(s, "warp_size = {}", self.warp_size);
        let _ = writeln!(s, "word_bytes = {}", self.word_bytes);
        let _ = writeln!(s, "clock_ghz = {}", self.clock_ghz);
        let _ = writeln!(s, "cycles_per_op = {}", self.cycles_per_op);
        let _ = writeln!(s, "vector_width = {}", self.vector_width);
        let _ = writeln!(s, "global_overlap = {}", self.global_overlap);
        let _ = writeln!(s, "max_blocks_per_outer = {}", self.max_blocks_per_outer);
        let _ = writeln!(s, "\n[sync]");
        let _ = writeln!(s, "sync_cycles = {}", self.sync_cycles);
        let _ = writeln!(s, "device_sync_base = {}", self.device_sync_base);
        let _ = writeln!(s, "device_sync_per_block = {}", self.device_sync_per_block);
        let _ = writeln!(s, "\n[dma]");
        let _ = writeln!(s, "channels = {}", self.dma_channels);
        let _ = writeln!(s, "setup_cycles = {}", self.dma_setup_cycles);
        let _ = writeln!(s, "bytes_per_cycle = {}", self.dma_bytes_per_cycle);
        let _ = writeln!(s, "\n[caps]");
        let _ = writeln!(s, "must_stage = {}", self.caps.must_stage);
        let _ = writeln!(s, "in_place_compute = {}", self.caps.in_place_compute);
        let _ = writeln!(s, "placement_cost = {}", self.caps.placement_cost);
        let _ = writeln!(s, "hardware_cache = {}", self.caps.hardware_cache);
        if let Some(m) = &self.mesh {
            let _ = writeln!(s, "\n[mesh]");
            let _ = writeln!(s, "rows = {}", m.rows);
            let _ = writeln!(s, "cols = {}", m.cols);
            let _ = writeln!(s, "hop_cycles = {}", m.hop_cycles);
        }
        for l in &self.levels {
            let _ = writeln!(s, "\n[[level]]");
            let _ = writeln!(s, "name = \"{}\"", l.name);
            let _ = writeln!(s, "capacity_bytes = {}", l.capacity_bytes);
            let _ = writeln!(s, "latency = {}", l.latency);
        }
        s
    }

    /// Parse a description from the TOML subset `to_toml` emits:
    /// `key = value` lines under `[section]` headers, `[[level]]`
    /// array-of-tables for the memory levels, `#` comments, values
    /// either quoted strings, booleans or numbers. Unknown sections or
    /// keys are errors (a typo must not silently describe a different
    /// machine).
    ///
    /// Inherent rather than `impl FromStr` so the error stays a plain
    /// `String` like the rest of the file codec.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Result<MachineDesc, String> {
        let mut root: HashMap<String, String> = HashMap::new();
        let mut sections: HashMap<String, HashMap<String, String>> = HashMap::new();
        let mut levels: Vec<HashMap<String, String>> = Vec::new();
        let mut cur: Option<String> = None; // None = root, Some("level") = last level table
        for (ln, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let err = |m: &str| format!("machine file line {}: {m}", ln + 1);
            if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
                if name.trim() != "level" {
                    return Err(err(&format!("unknown array table `[[{}]]`", name.trim())));
                }
                levels.push(HashMap::new());
                cur = Some("level".into());
            } else if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                let name = name.trim().to_string();
                if !["compute", "sync", "dma", "caps", "mesh"].contains(&name.as_str()) {
                    return Err(err(&format!("unknown section `[{name}]`")));
                }
                sections.entry(name.clone()).or_default();
                cur = Some(name);
            } else if let Some((k, v)) = line.split_once('=') {
                let key = k.trim().to_string();
                let val = parse_value(v.trim()).map_err(|m| err(&m))?;
                match cur.as_deref() {
                    None => root.insert(key, val),
                    Some("level") => levels.last_mut().expect("open level").insert(key, val),
                    Some(sec) => sections
                        .get_mut(sec)
                        .expect("open section")
                        .insert(key, val),
                };
            } else {
                return Err(err("expected `key = value` or `[section]`"));
            }
        }

        let name = root
            .remove("name")
            .ok_or("machine file: missing top-level `name`")?;
        if let Some(k) = root.keys().next() {
            return Err(format!("machine file: unknown top-level key `{k}`"));
        }
        let mut compute = sections.remove("compute").unwrap_or_default();
        let mut sync = sections.remove("sync").unwrap_or_default();
        let mut dma = sections.remove("dma").unwrap_or_default();
        let mut caps = sections.remove("caps").unwrap_or_default();
        let mesh_tbl = sections.remove("mesh");

        let mesh = match mesh_tbl {
            Some(mut m) => {
                let mesh = MeshDesc {
                    rows: get_u64(&mut m, "mesh", "rows")?,
                    cols: get_u64(&mut m, "mesh", "cols")?,
                    hop_cycles: get_f64(&mut m, "mesh", "hop_cycles")?,
                };
                reject_extra(&m, "mesh")?;
                Some(mesh)
            }
            None => None,
        };
        let mut lvls = Vec::new();
        for mut l in levels {
            let lvl = MemLevel {
                name: l
                    .remove("name")
                    .ok_or("machine file: [[level]] missing `name`")?,
                capacity_bytes: get_u64(&mut l, "level", "capacity_bytes")?,
                latency: get_f64(&mut l, "level", "latency")?,
            };
            reject_extra(&l, "level")?;
            lvls.push(lvl);
        }
        if lvls.is_empty() {
            return Err("machine file: at least one [[level]] required".into());
        }

        let desc = MachineDesc {
            name,
            levels: lvls,
            n_outer: get_u64(&mut compute, "compute", "n_outer")?,
            n_inner: get_u64(&mut compute, "compute", "n_inner")?,
            warp_size: get_u64(&mut compute, "compute", "warp_size")?,
            word_bytes: get_u64(&mut compute, "compute", "word_bytes")?,
            clock_ghz: get_f64(&mut compute, "compute", "clock_ghz")?,
            cycles_per_op: get_f64(&mut compute, "compute", "cycles_per_op")?,
            vector_width: get_u64(&mut compute, "compute", "vector_width")?,
            global_overlap: get_f64(&mut compute, "compute", "global_overlap")?,
            max_blocks_per_outer: get_u64(&mut compute, "compute", "max_blocks_per_outer")?,
            sync_cycles: get_f64(&mut sync, "sync", "sync_cycles")?,
            device_sync_base: get_f64(&mut sync, "sync", "device_sync_base")?,
            device_sync_per_block: get_f64(&mut sync, "sync", "device_sync_per_block")?,
            dma_channels: get_u64(&mut dma, "dma", "channels")?,
            dma_setup_cycles: get_f64(&mut dma, "dma", "setup_cycles")?,
            dma_bytes_per_cycle: get_f64(&mut dma, "dma", "bytes_per_cycle")?,
            caps: Capabilities {
                must_stage: get_bool(&mut caps, "caps", "must_stage")?,
                in_place_compute: get_bool(&mut caps, "caps", "in_place_compute")?,
                placement_cost: get_bool(&mut caps, "caps", "placement_cost")?,
                hardware_cache: get_bool(&mut caps, "caps", "hardware_cache")?,
            },
            mesh,
        };
        for (tbl, label) in [
            (&compute, "compute"),
            (&sync, "sync"),
            (&dma, "dma"),
            (&caps, "caps"),
        ] {
            reject_extra(tbl, label)?;
        }
        if desc.caps.placement_cost && desc.mesh.is_none() {
            return Err("machine file: `placement_cost = true` needs a [mesh] section".into());
        }
        if let Some(m) = &desc.mesh {
            if m.rows == 0 || m.cols == 0 {
                return Err("machine file: mesh rows/cols must be positive".into());
            }
        }
        Ok(desc)
    }

    /// Load a description from a TOML file on disk.
    pub fn from_file(path: &str) -> Result<MachineDesc, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("machine file `{path}`: {e}"))?;
        MachineDesc::from_str(&text)
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<String, String> {
    if let Some(s) = v.strip_prefix('"') {
        return s
            .strip_suffix('"')
            .map(str::to_string)
            .ok_or_else(|| format!("unterminated string `{v}`"));
    }
    if v == "true" || v == "false" || v.parse::<f64>().is_ok() {
        return Ok(v.to_string());
    }
    Err(format!("unparseable value `{v}`"))
}

fn get_u64(tbl: &mut HashMap<String, String>, sec: &str, key: &str) -> Result<u64, String> {
    let v = tbl
        .remove(key)
        .ok_or_else(|| format!("machine file: [{sec}] missing `{key}`"))?;
    v.parse()
        .map_err(|_| format!("machine file: [{sec}] `{key}` is not an unsigned integer: `{v}`"))
}

fn get_f64(tbl: &mut HashMap<String, String>, sec: &str, key: &str) -> Result<f64, String> {
    let v = tbl
        .remove(key)
        .ok_or_else(|| format!("machine file: [{sec}] missing `{key}`"))?;
    v.parse()
        .map_err(|_| format!("machine file: [{sec}] `{key}` is not a number: `{v}`"))
}

fn get_bool(tbl: &mut HashMap<String, String>, sec: &str, key: &str) -> Result<bool, String> {
    let v = tbl
        .remove(key)
        .ok_or_else(|| format!("machine file: [{sec}] missing `{key}`"))?;
    v.parse()
        .map_err(|_| format!("machine file: [{sec}] `{key}` is not a boolean: `{v}`"))
}

fn reject_extra(tbl: &HashMap<String, String>, sec: &str) -> Result<(), String> {
    match tbl.keys().min() {
        Some(k) => Err(format!("machine file: unknown key `{k}` in [{sec}]")),
        None => Ok(()),
    }
}

fn lvl(name: &str, capacity_bytes: u64, latency: f64) -> MemLevel {
    MemLevel {
        name: name.into(),
        capacity_bytes,
        latency,
    }
}

/// The paper's testbed: NVIDIA GeForce 8800 GTX. 16 multiprocessors ×
/// 8 SIMD units at 1.35 GHz, 16 KB scratchpad per multiprocessor,
/// warp 32, ~500-cycle DRAM latency heavily overlapped by warps.
pub fn gpu() -> MachineDesc {
    MachineDesc {
        name: "gpu".into(),
        levels: vec![
            lvl("global", 0, 500.0),
            lvl("scratchpad", 16 * 1024, 2.0),
            // One warp's worth of 32-bit registers per thread is far
            // more than any frame set here; 64 words is the gate that
            // keeps frames row-sized.
            lvl("register", 64 * 4, 0.0),
        ],
        n_outer: 16,
        n_inner: 8,
        warp_size: 32,
        word_bytes: 4,
        clock_ghz: 1.35,
        cycles_per_op: 1.0,
        vector_width: 8,
        global_overlap: 32.0,
        max_blocks_per_outer: 8,
        sync_cycles: 20.0,
        device_sync_base: 2_000.0,
        device_sync_per_block: 50.0,
        // Coalescing hardware: a half-warp's worth of outstanding
        // wide transactions, ~64 B/cycle aggregate.
        dma_channels: 8,
        dma_setup_cycles: 300.0,
        dma_bytes_per_cycle: 16.0,
        caps: Capabilities::default(),
        mesh: None,
    }
}

/// A Cell-BE-like machine: the local store is mandatory (`must_stage`
/// — data cannot be touched from global memory during compute, §3).
pub fn cell() -> MachineDesc {
    MachineDesc {
        name: "cell".into(),
        levels: vec![
            lvl("global", 0, 400.0),
            lvl("scratchpad", 256 * 1024, 4.0),
            // The SPE register file has 128 entries.
            lvl("register", 128 * 4, 0.0),
        ],
        n_outer: 8,
        n_inner: 1,
        warp_size: 1,
        word_bytes: 4,
        clock_ghz: 3.2,
        cycles_per_op: 1.0,
        vector_width: 4,
        global_overlap: 4.0,
        max_blocks_per_outer: 1,
        sync_cycles: 100.0,
        device_sync_base: 10_000.0,
        device_sync_per_block: 1_000.0,
        // The MFC accepts 16 queued DMA commands per SPE.
        dma_channels: 16,
        dma_setup_cycles: 200.0,
        dma_bytes_per_cycle: 8.0,
        caps: Capabilities {
            must_stage: true,
            ..Capabilities::default()
        },
        mesh: None,
    }
}

/// The host CPU baseline (Core2-Duo class, 2.13 GHz, hardware cache).
pub fn host() -> MachineDesc {
    MachineDesc {
        name: "host".into(),
        levels: vec![
            // Cache-filtered average memory cost per element access;
            // no explicitly managed scratchpad.
            lvl("global", 0, 8.0),
            lvl("scratchpad", 0, 0.0),
            lvl("register", 16 * 4, 0.0),
        ],
        n_outer: 1,
        n_inner: 1,
        warp_size: 1,
        word_bytes: 4,
        clock_ghz: 2.13,
        cycles_per_op: 1.0,
        vector_width: 1,
        global_overlap: 1.0,
        max_blocks_per_outer: 1,
        sync_cycles: 0.0,
        device_sync_base: 0.0,
        device_sync_per_block: 0.0,
        dma_channels: 0,
        dma_setup_cycles: 0.0,
        dma_bytes_per_cycle: 8.0,
        caps: Capabilities {
            hardware_cache: true,
            ..Capabilities::default()
        },
        mesh: None,
    }
}

/// A processing-in-memory machine: one compute unit per DRAM bank.
/// Compute happens where the data lives — "global" accesses cost a
/// single cycle (the row is already open under the unit) — while the
/// per-bank row buffer is tiny and *inter-bank* movement crawls
/// through a narrow shared port (one channel, 1 B/cycle, 1000-cycle
/// setup). Staging can never beat touching data in place, so the
/// `in_place_compute` capability tells Algorithm 1 that no copy
/// relation is beneficial: plans stage nothing and `moved_in` is zero.
pub fn pim() -> MachineDesc {
    MachineDesc {
        name: "pim".into(),
        levels: vec![
            lvl("global", 0, 1.0),
            // The open-row buffer: same latency as the bank itself —
            // a copy saves nothing even before paying the movement.
            lvl("scratchpad", 512, 1.0),
            lvl("register", 0, 0.0),
        ],
        n_outer: 32,
        n_inner: 1,
        warp_size: 1,
        word_bytes: 4,
        clock_ghz: 0.3,
        cycles_per_op: 4.0,
        vector_width: 1,
        global_overlap: 1.0,
        max_blocks_per_outer: 1,
        sync_cycles: 10.0,
        // Cross-bank barriers serialise on the shared command bus.
        device_sync_base: 8_000.0,
        device_sync_per_block: 100.0,
        dma_channels: 1,
        dma_setup_cycles: 1_000.0,
        dma_bytes_per_cycle: 1.0,
        caps: Capabilities {
            in_place_compute: true,
            ..Capabilities::default()
        },
        mesh: None,
    }
}

/// A spatial/dataflow accelerator: an 8×8 PE mesh, each PE with a
/// small operand memory, fed by memory ports on the west edge. Blocks
/// are placed on PEs column-major (block `b` → column `(b mod 64) /
/// 8`), and every DMA descriptor is routed over the NoC: it pays
/// `hop_cycles` per hop from the edge port to the PE's column. The
/// cost model therefore prices *placement* — wide launches reach
/// far columns and pay long routes, narrow launches waste PEs — which
/// moves the optimal tile away from the GPU's.
pub fn spatial() -> MachineDesc {
    MachineDesc {
        name: "spatial".into(),
        levels: vec![
            lvl("global", 0, 120.0),
            // Per-PE operand memory: 2 KB.
            lvl("scratchpad", 2 * 1024, 1.0),
            lvl("register", 32 * 4, 0.0),
        ],
        n_outer: 64,
        n_inner: 1,
        warp_size: 1,
        word_bytes: 4,
        clock_ghz: 1.0,
        cycles_per_op: 1.0,
        vector_width: 1,
        global_overlap: 2.0,
        max_blocks_per_outer: 1,
        sync_cycles: 5.0,
        device_sync_base: 3_000.0,
        device_sync_per_block: 20.0,
        // Per-PE route injection ports.
        dma_channels: 4,
        dma_setup_cycles: 60.0,
        dma_bytes_per_cycle: 4.0,
        caps: Capabilities {
            placement_cost: true,
            ..Capabilities::default()
        },
        mesh: Some(MeshDesc {
            rows: 8,
            cols: 8,
            hop_cycles: 160.0,
        }),
    }
}

/// Canonical names of the registered machines.
pub const NAMES: [&str; 5] = ["gpu", "cell", "host", "pim", "spatial"];

/// Look a machine description up by name. `cpu` is accepted as an
/// alias for `host` (the compile service's historical spelling), and
/// the full preset names (`geforce_8800_gtx`, `cell_like`, `host_cpu`)
/// resolve to their registry entries.
pub fn lookup(name: &str) -> Option<MachineDesc> {
    match name {
        "gpu" | "geforce_8800_gtx" => Some(gpu()),
        "cell" | "cell_like" => Some(cell()),
        "host" | "cpu" | "host_cpu" => Some(host()),
        "pim" => Some(pim()),
        "spatial" => Some(spatial()),
        _ => None,
    }
}

/// All registered descriptions, in registry order.
pub fn all() -> Vec<MachineDesc> {
    NAMES
        .iter()
        .map(|n| lookup(n).expect("registered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_through_toml() {
        for d in all() {
            let text = d.to_toml();
            let back =
                MachineDesc::from_str(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", d.name));
            assert_eq!(back, d, "round-trip changed `{}`", d.name);
        }
    }

    #[test]
    fn aliases_resolve_to_the_same_description() {
        assert_eq!(lookup("cpu"), lookup("host"));
        assert_eq!(lookup("geforce_8800_gtx"), lookup("gpu"));
        assert_eq!(lookup("cell_like"), lookup("cell"));
        assert!(lookup("tpu").is_none());
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        let mut text = gpu().to_toml();
        text.push_str("\n[compute]\nwarp_sise = 32\n");
        assert!(MachineDesc::from_str(&text)
            .unwrap_err()
            .contains("warp_sise"));
        let bad = "name = \"x\"\n[turbo]\n";
        assert!(MachineDesc::from_str(bad).unwrap_err().contains("turbo"));
    }

    #[test]
    fn placement_cost_requires_a_mesh() {
        let mut d = spatial();
        d.mesh = None;
        assert!(MachineDesc::from_str(&d.to_toml()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# header\n\n{}\n# trailer", gpu().to_toml());
        assert_eq!(MachineDesc::from_str(&text).unwrap(), gpu());
    }

    #[test]
    fn mesh_forces_outer_width() {
        let mut d = spatial();
        d.n_outer = 7; // inconsistent on purpose
        assert_eq!(d.config().n_outer, 64);
    }

    #[test]
    fn derived_residency_follows_capability_and_capacity() {
        assert!(gpu().config().residency);
        assert!(cell().config().residency);
        assert!(spatial().config().residency);
        assert!(!host().config().residency, "no scratchpad to keep warm");
        assert!(!pim().config().residency, "in-place compute stages nothing");
    }
}
