//! Compiled block execution: bytecode bodies + strided address streams.
//!
//! The interpreter in [`crate::exec`] walks every statement instance
//! through `Expr::eval` and `AffineMap::apply`, allocating index
//! vectors and hashing multi-index overlay keys per point. This module
//! lowers everything that is invariant across a block *shape* — the
//! set of fixed (block-origin) dims — exactly once, next to the cached
//! [`SymbolicPlan`]:
//!
//! * statement bodies compile to flat stack bytecode
//!   ([`polymem_ir::BodyCode`]), validated ahead of time;
//! * every affine access lowers to [`LoweredRow`]s over the kept dims
//!   and extended parameters, and per block to a proven base offset +
//!   per-dim strides ([`prove_flat`]) updated incrementally as the
//!   instance cursor carries — no `map.apply`, no `local_index`, no
//!   per-point allocation;
//! * instances are emitted directly in interleaved source order by a
//!   k-way merge of per-statement lexicographic cursors over the
//!   shared bound cascade — no materialize + sort.
//!
//! Accesses whose in-bounds / no-overflow proof fails degrade to a
//! *guarded* stream (checked per point, typed errors), and any shape
//! that cannot be compiled at all falls back to the interpreter, which
//! stays authoritative (`POLYMEM_EXEC_CHECK=1` cross-checks every
//! block against it).

use crate::config::MachineConfig;
use crate::exec::{budget_error, ExecStats, LocalStore};
use crate::overlay::Overlay;
use crate::{MachineError, Result};
use polymem_core::smem::{
    lower_rows, parametrize_dims, prove_flat, row_major_weights, AccessId, LoweredRow, SymbolicPlan,
};
use polymem_ir::{ArrayStore, BodyCode, IrError, Program};
use polymem_poly::bounds::{all_param_bounds, bound_cascade, DimBounds};
use polymem_poly::{PolyError, Polyhedron};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Per-launch state shared (read-only) by every block worker: the
/// hoisted common-prefix depth matrix, global array extents and
/// row-major weights, the compiled statement bodies, and the per-shape
/// compiled-stream cache.
pub(crate) struct LaunchShared {
    /// `common[a][b]` = shared loop-dim prefix of statements `a`, `b`.
    pub common: Vec<Vec<usize>>,
    /// Concrete extents of every global array, in program order.
    pub ext: Vec<Vec<i64>>,
    /// Row-major flattening weights per array (`None` if the array
    /// size overflows `i64` — flat addressing then stays guarded).
    pub weights: Vec<Option<Vec<i64>>>,
    /// Compiled statement bodies, or `None` if any body failed to
    /// compile (the whole launch then uses the interpreter).
    pub bodies: Option<Vec<BodyCode>>,
    /// Per-shape compiled streams; `None` when compiled execution is
    /// disabled (config, naive mode, or uncompilable bodies).
    pub compiled: Option<CompiledCache>,
    /// `POLYMEM_EXEC_CHECK=1`: run the interpreter as an oracle beside
    /// every compiled block and panic on divergence.
    pub exec_check: bool,
}

impl LaunchShared {
    pub fn new(program: &Program, params: &[i64], config: &MachineConfig) -> Result<LaunchShared> {
        let n = program.stmts.len();
        let mut common = vec![vec![0usize; n]; n];
        for (a, row) in common.iter_mut().enumerate() {
            for (b, c) in row.iter_mut().enumerate() {
                *c = program.common_depth(a, b);
            }
        }
        let mut ext = Vec::with_capacity(program.arrays.len());
        for a in &program.arrays {
            ext.push(a.eval_extents(&program.params, params)?);
        }
        let weights = ext.iter().map(|e| row_major_weights(e)).collect();
        let bodies: Option<Vec<BodyCode>> = program
            .stmts
            .iter()
            .map(|s| {
                BodyCode::compile(
                    &s.body,
                    s.reads.len(),
                    s.domain.space().dims().len(),
                    params.len(),
                )
                .ok()
            })
            .collect();
        let compiled =
            (config.compiled_exec && !polymem_poly::cache::naive_mode() && bodies.is_some())
                .then(CompiledCache::new);
        let exec_check = std::env::var("POLYMEM_EXEC_CHECK").is_ok_and(|v| v == "1");
        Ok(LaunchShared {
            common,
            ext,
            weights,
            bodies,
            compiled,
            exec_check,
        })
    }
}

/// Memo of one [`CompiledShape`] per block shape (sorted fixed-dim
/// names), mirroring the plan cache: warmed lazily, `None` parked for
/// shapes that fail to compile so same-shape blocks skip the retry.
pub(crate) struct CompiledCache {
    shapes: RwLock<HashMap<Vec<String>, Option<Arc<CompiledShape>>>>,
}

impl CompiledCache {
    pub fn new() -> CompiledCache {
        CompiledCache {
            shapes: RwLock::new(HashMap::new()),
        }
    }

    /// The compiled shape for this sub-block's fixed-dim set, built on
    /// first use. `plan` must be the shared symbolic scratchpad plan
    /// of the same shape (or `None` when no scratchpad is in play).
    pub fn shape(
        &self,
        fixed: &HashMap<String, i64>,
        program: &Program,
        plan: Option<&SymbolicPlan>,
    ) -> Option<Arc<CompiledShape>> {
        let mut key: Vec<String> = fixed.keys().cloned().collect();
        key.sort();
        if let Some(entry) = self.shapes.read().unwrap().get(&key) {
            return entry.clone();
        }
        let built = CompiledShape::build(program, &key, plan).map(Arc::new);
        let mut map = self.shapes.write().unwrap();
        map.entry(key).or_insert(built).clone()
    }
}

/// Where a lowered access lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Target {
    /// Global array (program array index) via the overlay/store.
    Global { array: usize },
    /// Scratchpad buffer of the block's [`LocalStore`].
    Local { buffer: usize },
}

/// One access of one statement, lowered to rows over
/// `[kept dims, extended params, 1]`.
#[derive(Clone, Debug)]
pub(crate) struct AccTemplate {
    pub target: Target,
    pub rows: Vec<LoweredRow>,
}

/// Everything shape-invariant about one statement: the parametrized
/// domain, its bound cascade, context-free per-dim boxes, the
/// kept/fixed dim layout, and the lowered accesses.
pub(crate) struct ShapeStmt {
    /// Statement domain with the fixed dims turned into parameters.
    pub domain: Polyhedron,
    pub cascade: Vec<DimBounds>,
    /// Context-free parametric bounds of each kept dim (the proof box).
    pub boxes: Vec<DimBounds>,
    /// Original dim index of each kept dim, in order.
    pub kept: Vec<usize>,
    /// `(original dim index, index into the fixed-name list)`.
    pub fixed_pos: Vec<(usize, usize)>,
    /// Dim count of the original (full-space) statement domain.
    pub n_full: usize,
    pub reads: Vec<AccTemplate>,
    pub write: AccTemplate,
}

/// The per-shape compilation product: one [`ShapeStmt`] per statement.
pub(crate) struct CompiledShape {
    /// Fixed-dim names in the order their values extend the params.
    pub fixed: Vec<String>,
    pub stmts: Vec<ShapeStmt>,
}

impl CompiledShape {
    pub fn build(
        program: &Program,
        fixed_names: &[String],
        plan: Option<&SymbolicPlan>,
    ) -> Option<CompiledShape> {
        // A level-2 (register-tile) plan stages frames per thread key
        // during compute — the compiled streams don't model that, so
        // such shapes run on the interpreter (identical semantics,
        // frame traffic included in its counters).
        if plan.is_some_and(|sp| sp.hier.is_some()) {
            return None;
        }
        let sym = parametrize_dims(program, fixed_names).ok()?;
        let n_ext = program.params.len() + fixed_names.len();
        let mut stmts = Vec::with_capacity(program.stmts.len());
        for (si, (orig, ss)) in program.stmts.iter().zip(&sym.stmts).enumerate() {
            let cascade = bound_cascade(&ss.domain).ok()?;
            let boxes = all_param_bounds(&ss.domain).ok()?;
            let orig_dims = orig.domain.space().dims();
            let kept: Vec<usize> = (0..orig_dims.len())
                .filter(|&i| !fixed_names.contains(&orig_dims[i]))
                .collect();
            let fixed_pos: Vec<(usize, usize)> = (0..orig_dims.len())
                .filter_map(|i| {
                    fixed_names
                        .iter()
                        .position(|n| *n == orig_dims[i])
                        .map(|fi| (i, fi))
                })
                .collect();
            if let Some(sp) = plan {
                // The plan's projection must agree with our dim layout,
                // or local-access rows would read the wrong cursor dims.
                if sp.kept_dims.get(si) != Some(&kept) {
                    return None;
                }
            }
            let lower = |id: AccessId, array: usize, map: &polymem_poly::AffineMap| match plan
                .and_then(|sp| sp.plan.rewrites.get(&id))
            {
                Some(la) => {
                    if la.map.n_in() != kept.len() || la.map.in_space().n_params() != n_ext {
                        return None;
                    }
                    Some(AccTemplate {
                        target: Target::Local { buffer: la.buffer },
                        rows: lower_rows(&la.map),
                    })
                }
                None => {
                    if map.n_in() != kept.len() || map.in_space().n_params() != n_ext {
                        return None;
                    }
                    Some(AccTemplate {
                        target: Target::Global { array },
                        rows: lower_rows(map),
                    })
                }
            };
            let reads = ss
                .reads
                .iter()
                .enumerate()
                .map(|(k, r)| lower(AccessId::read(si, k), r.array, &r.map))
                .collect::<Option<Vec<_>>>()?;
            let write = lower(AccessId::write(si), ss.write.array, &ss.write.map)?;
            stmts.push(ShapeStmt {
                domain: ss.domain.clone(),
                cascade,
                boxes,
                kept,
                fixed_pos,
                n_full: orig_dims.len(),
                reads,
                write,
            });
        }
        Some(CompiledShape {
            fixed: fixed_names.to_vec(),
            stmts,
        })
    }

    /// `params ++ fixed values`, or `None` on a shape mismatch.
    pub fn ext_params(&self, params: &[i64], fixed: &HashMap<String, i64>) -> Option<Vec<i64>> {
        if fixed.len() != self.fixed.len() {
            return None;
        }
        let mut out = Vec::with_capacity(params.len() + self.fixed.len());
        out.extend_from_slice(params);
        for name in &self.fixed {
            out.push(*fixed.get(name)?);
        }
        Some(out)
    }
}

/// A per-block address stream: proven (incremental partial sums, no
/// checks) or guarded (evaluated and bounds-checked per point).
enum Addr<'s> {
    Proven {
        base: i64,
        strides: Vec<i64>,
        /// `part[k] = base + Σ_{j≤k} strides[j]·point[j]`.
        part: Vec<i64>,
    },
    Guarded {
        rows: &'s [LoweredRow],
    },
}

struct AccInst<'s> {
    target: Target,
    addr: Addr<'s>,
}

impl AccInst<'_> {
    /// Recompute the partial sums from depth `from` after a carry.
    /// Proven streams never overflow here (that is what the proof is).
    #[inline]
    fn carry(&mut self, point: &[i64], from: usize) {
        if let Addr::Proven {
            base,
            strides,
            part,
        } = &mut self.addr
        {
            for k in from..strides.len() {
                let prev = if k == 0 { *base } else { part[k - 1] };
                part[k] = prev + strides[k] * point[k];
            }
        }
    }

    /// Current flat offset of a proven stream.
    #[inline]
    fn offset(&self) -> usize {
        match &self.addr {
            Addr::Proven { base, part, .. } => *part.last().unwrap_or(base) as usize,
            Addr::Guarded { .. } => unreachable!("offset() on guarded stream"),
        }
    }
}

struct StmtInst<'s> {
    reads: Vec<AccInst<'s>>,
    write: AccInst<'s>,
}

impl StmtInst<'_> {
    fn carry(&mut self, point: &[i64], from: usize) {
        for acc in &mut self.reads {
            acc.carry(point, from);
        }
        self.write.carry(point, from);
    }
}

/// Lexicographic instance cursor over one statement's bound cascade —
/// an iterative replica of the recursive scan in
/// `polymem_poly::count`, with identical budget and membership
/// semantics, plus carry-depth tracking for incremental addressing.
pub(crate) struct Cursor<'a> {
    st: &'a ShapeStmt,
    ep: &'a [i64],
    budget: u64,
    /// Kept-dim coordinates.
    pub point: Vec<i64>,
    /// Inclusive upper bound at each descended depth.
    hi: Vec<i64>,
    /// Full-space point (fixed dims pre-filled, kept dims synced).
    pub full: Vec<i64>,
    visited: u64,
    /// Shallowest kept depth whose value changed since the previous
    /// accepted point.
    changed: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(st: &'a ShapeStmt, ep: &'a [i64], budget: u64) -> Cursor<'a> {
        let n = st.cascade.len();
        Cursor {
            st,
            ep,
            budget,
            point: vec![0; n],
            hi: vec![0; n],
            full: vec![0i64; st.n_full],
            visited: 0,
            changed: 0,
        }
    }

    /// Pre-fill the fixed full-space dims from the extended params
    /// (`ep` is `params ++ fixed values`; `n_params` = `params.len()`).
    fn fill_fixed(&mut self, n_params: usize) {
        for &(d, fi) in &self.st.fixed_pos {
            self.full[d] = self.ep[n_params + fi];
        }
    }

    /// Position at the first accepted point. `Ok(false)` = empty.
    pub fn first(&mut self) -> polymem_poly::Result<bool> {
        self.changed = 0;
        if self.st.cascade.is_empty() {
            if !self.st.domain.contains(&[], self.ep) {
                return Ok(false);
            }
            self.visited += 1;
            if self.visited > self.budget {
                return Err(PolyError::TooManyPoints {
                    budget: self.budget,
                });
            }
            return Ok(true);
        }
        self.seek(0)
    }

    /// Advance to the next accepted point; `Ok(Some(d))` reports the
    /// shallowest changed depth, `Ok(None)` exhaustion.
    pub fn advance(&mut self) -> polymem_poly::Result<Option<usize>> {
        let n = self.st.cascade.len();
        if n == 0 {
            return Ok(None);
        }
        self.changed = n;
        match self.bump_below(n) {
            Some(d) => {
                if self.seek(d)? {
                    Ok(Some(self.changed))
                } else {
                    Ok(None)
                }
            }
            None => Ok(None),
        }
    }

    /// Descend from `depth`, bumping outward on empty ranges and
    /// rejected leaves, until a point is accepted or space runs out.
    fn seek(&mut self, mut depth: usize) -> polymem_poly::Result<bool> {
        let n = self.st.cascade.len();
        loop {
            while depth < n {
                let Some((lo, hi)) =
                    self.st.cascade[depth].eval_range(&self.point[..depth], self.ep)
                else {
                    return Err(PolyError::Unbounded);
                };
                if lo > hi {
                    match self.bump_below(depth) {
                        Some(d) => {
                            depth = d;
                            continue;
                        }
                        None => return Ok(false),
                    }
                }
                self.point[depth] = lo;
                self.hi[depth] = hi;
                depth += 1;
            }
            if self.st.domain.contains(&self.point, self.ep) {
                self.visited += 1;
                if self.visited > self.budget {
                    return Err(PolyError::TooManyPoints {
                        budget: self.budget,
                    });
                }
                for k in self.changed..n {
                    self.full[self.st.kept[k]] = self.point[k];
                }
                return Ok(true);
            }
            match self.bump_below(n) {
                Some(d) => depth = d,
                None => return Ok(false),
            }
        }
    }

    /// Increment the deepest incrementable dim strictly below `depth`;
    /// returns the depth to re-descend from.
    fn bump_below(&mut self, depth: usize) -> Option<usize> {
        let mut k = depth;
        while k > 0 {
            k -= 1;
            if self.point[k] < self.hi[k] {
                self.point[k] += 1;
                self.changed = self.changed.min(k);
                return Some(k + 1);
            }
        }
        None
    }
}

/// `a` (statement `a_si` at its cursor's point) precedes `b` in
/// interleaved source order: common-prefix dims first, then statement
/// index. Distinct statements, so the order is strict.
fn earlier(a_si: usize, a: &Cursor, b_si: usize, b: &Cursor, common: &[Vec<usize>]) -> bool {
    let c = common[a_si][b_si];
    match a.full[..c].cmp(&b.full[..c]) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => a_si < b_si,
    }
}

/// Evaluate a guarded access at one point: checked row evaluation,
/// per-dim bounds checks against `extents` (after subtracting
/// `offsets`), checked flattening. Mirrors the interpreter's typed
/// errors exactly.
fn guarded_offset(
    rows: &[LoweredRow],
    point: &[i64],
    ep: &[i64],
    extents: &[i64],
    offsets: Option<&[i64]>,
    scratch: &mut Vec<i64>,
    name: impl FnOnce() -> String,
) -> Result<usize> {
    const OVERFLOW: MachineError =
        MachineError::Ir(IrError::Arithmetic("overflow in address computation"));
    scratch.clear();
    for (r, row) in rows.iter().enumerate() {
        let v = row.eval(point, ep).ok_or(OVERFLOW)?;
        let rel = v.checked_sub(offsets.map_or(0, |o| o[r])).ok_or(OVERFLOW)?;
        scratch.push(rel);
    }
    if scratch.len() != extents.len()
        || scratch
            .iter()
            .zip(extents)
            .any(|(&rel, &e)| rel < 0 || rel >= e)
    {
        return Err(MachineError::Ir(IrError::OutOfBounds {
            array: name(),
            index: scratch.clone(),
        }));
    }
    let mut flat: i64 = 0;
    for (&rel, &e) in scratch.iter().zip(extents) {
        flat = flat
            .checked_mul(e)
            .and_then(|f| f.checked_add(rel))
            .ok_or(OVERFLOW)?;
    }
    Ok(flat as usize)
}

/// Instance/traffic counts of one compiled compute phase, for the
/// cycle model (identical to the interpreter's tallies).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct CompiledCounts {
    pub n_inst: u64,
    pub n_smem: u64,
    pub n_glob: u64,
}

/// Run one sub-block's compute phase through the compiled engine.
///
/// Returns `Ok(None)` — *before any effect* — when this block cannot
/// take the compiled path (shape mismatch, unbounded boxes, foreign
/// store); the caller then runs the interpreter. After the first
/// instance executes, errors are hard and mirror the interpreter's.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_compiled<'s>(
    shape: &'s CompiledShape,
    launch: &LaunchShared,
    program: &Program,
    params: &[i64],
    fixed: &HashMap<String, i64>,
    store: &ArrayStore,
    mut local: Option<&mut LocalStore>,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    budget: u64,
) -> Result<Option<CompiledCounts>> {
    let Some(bodies) = launch.bodies.as_ref() else {
        return Ok(None);
    };
    let Some(ep) = shape.ext_params(params, fixed) else {
        return Ok(None);
    };
    // Resolve store ids once and insist the store agrees with the
    // launch extents (flat offsets are only valid against them).
    let mut sids = Vec::with_capacity(program.arrays.len());
    for (a, decl) in program.arrays.iter().enumerate() {
        match store.id_of(&decl.name) {
            Some(id) if store.extents_by_id(id) == launch.ext[a].as_slice() => sids.push(id),
            _ => return Ok(None),
        }
    }
    // A local target without a staged local store cannot run compiled.
    let needs_local = shape.stmts.iter().any(|st| {
        st.reads
            .iter()
            .chain(std::iter::once(&st.write))
            .any(|t| matches!(t.target, Target::Local { .. }))
    });
    if needs_local && local.is_none() {
        return Ok(None);
    }
    let lweights: Vec<Option<Vec<i64>>> = local
        .as_deref()
        .map(|l| l.bufs.iter().map(|b| row_major_weights(&b.1)).collect())
        .unwrap_or_default();

    // Instantiate address streams and cursors for every statement —
    // all soft-fallback exits happen in this phase, before any effect.
    let n_stmts = shape.stmts.len();
    let mut insts: Vec<StmtInst> = Vec::with_capacity(n_stmts);
    let mut cursors: Vec<Cursor> = Vec::with_capacity(n_stmts);
    let n_params = params.len();
    for st in &shape.stmts {
        let mut boxes = Vec::with_capacity(st.boxes.len());
        for b in &st.boxes {
            match b.eval_range(&[], &ep) {
                Some(r) => boxes.push(r),
                None => return Ok(None),
            }
        }
        let make = |t: &'s AccTemplate| -> AccInst<'s> {
            let proven = match t.target {
                Target::Global { array } => launch.weights[array]
                    .as_ref()
                    .and_then(|w| prove_flat(&t.rows, &ep, w, &launch.ext[array], None, &boxes)),
                Target::Local { buffer } => {
                    let l = local.as_deref().expect("checked above");
                    let (_, ext_b, off_b) = &l.bufs[buffer];
                    lweights[buffer]
                        .as_ref()
                        .and_then(|w| prove_flat(&t.rows, &ep, w, ext_b, Some(off_b), &boxes))
                }
            };
            let addr = match proven {
                Some(fa) => Addr::Proven {
                    base: fa.base,
                    part: vec![0; fa.strides.len()],
                    strides: fa.strides,
                },
                None => Addr::Guarded { rows: &t.rows },
            };
            AccInst {
                target: t.target,
                addr,
            }
        };
        insts.push(StmtInst {
            reads: st.reads.iter().map(make).collect(),
            write: make(&st.write),
        });
        let mut cur = Cursor::new(st, &ep, budget);
        cur.fill_fixed(n_params);
        cursors.push(cur);
    }
    let mut alive = vec![false; n_stmts];
    for si in 0..n_stmts {
        match cursors[si].first() {
            Ok(a) => alive[si] = a,
            // Init-phase trouble (unbounded cascade, zero budget):
            // nothing has run yet, so the interpreter can still own
            // this block.
            Err(_) => return Ok(None),
        }
        if alive[si] {
            insts[si].carry(&cursors[si].point, 0);
        }
    }

    // K-way merge in interleaved source order.
    let gdatas: Vec<&[i64]> = sids.iter().map(|&id| store.data_by_id(id)).collect();
    let mut counts = CompiledCounts::default();
    let mut reads_buf: Vec<i64> = Vec::new();
    let mut stack: Vec<i64> = Vec::new();
    let mut idx: Vec<i64> = Vec::new();
    loop {
        let mut best: Option<usize> = None;
        for si in 0..n_stmts {
            if !alive[si] {
                continue;
            }
            best = Some(match best {
                None => si,
                Some(b) => {
                    if earlier(si, &cursors[si], b, &cursors[b], &launch.common) {
                        si
                    } else {
                        b
                    }
                }
            });
        }
        let Some(si) = best else { break };
        let cur = &cursors[si];
        reads_buf.clear();
        for acc in &insts[si].reads {
            let off = match &acc.addr {
                Addr::Proven { .. } => acc.offset(),
                Addr::Guarded { rows } => match acc.target {
                    Target::Global { array } => guarded_offset(
                        rows,
                        &cur.point,
                        &ep,
                        &launch.ext[array],
                        None,
                        &mut idx,
                        || program.arrays[array].name.clone(),
                    )?,
                    Target::Local { buffer } => {
                        let l = local.as_deref().expect("checked above");
                        guarded_offset(
                            rows,
                            &cur.point,
                            &ep,
                            &l.bufs[buffer].1,
                            Some(&l.bufs[buffer].2),
                            &mut idx,
                            || format!("local buffer {buffer}"),
                        )?
                    }
                },
            };
            let v = match acc.target {
                Target::Local { buffer } => {
                    stats.smem_reads += 1;
                    counts.n_smem += 1;
                    local.as_deref().expect("checked above").bufs[buffer].0[off]
                }
                Target::Global { array } => {
                    stats.global_reads += 1;
                    counts.n_glob += 1;
                    match overlay.get(array, off) {
                        Some(v) => v,
                        None => gdatas[array][off],
                    }
                }
            };
            reads_buf.push(v);
        }
        let value = bodies[si]
            .eval(&mut stack, &reads_buf, &cur.full, params)
            .map_err(MachineError::Ir)?;
        let wacc = &insts[si].write;
        let woff = match &wacc.addr {
            Addr::Proven { .. } => wacc.offset(),
            Addr::Guarded { rows } => match wacc.target {
                Target::Global { array } => guarded_offset(
                    rows,
                    &cur.point,
                    &ep,
                    &launch.ext[array],
                    None,
                    &mut idx,
                    || program.arrays[array].name.clone(),
                )?,
                Target::Local { buffer } => {
                    let l = local.as_deref().expect("checked above");
                    guarded_offset(
                        rows,
                        &cur.point,
                        &ep,
                        &l.bufs[buffer].1,
                        Some(&l.bufs[buffer].2),
                        &mut idx,
                        || format!("local buffer {buffer}"),
                    )?
                }
            },
        };
        match wacc.target {
            Target::Local { buffer } => {
                stats.smem_writes += 1;
                counts.n_smem += 1;
                local.as_deref_mut().expect("checked above").bufs[buffer].0[woff] = value;
            }
            Target::Global { array } => {
                stats.global_writes += 1;
                counts.n_glob += 1;
                overlay.set(array, woff, value);
            }
        }
        stats.instances += 1;
        counts.n_inst += 1;
        match cursors[si].advance().map_err(budget_error)? {
            Some(ch) => insts[si].carry(&cursors[si].point, ch),
            None => alive[si] = false,
        }
    }
    Ok(Some(counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::builder::ProgramBuilder;
    use polymem_ir::expr::{v, Expr, LinExpr};

    fn triangular() -> Program {
        let mut b = ProgramBuilder::new("tri", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("i")),
            ])
            .write("A", &[v("i")])
            .body(Expr::Const(0))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn cursor_walks_triangular_domain_in_lex_order() {
        let p = triangular();
        let shape = CompiledShape::build(&p, &[], None).unwrap();
        let st = &shape.stmts[0];
        let ep = vec![4i64];
        let mut cur = Cursor::new(st, &ep, 1000);
        let mut pts = Vec::new();
        assert!(cur.first().unwrap());
        loop {
            pts.push((cur.full.clone(), cur.changed));
            match cur.advance().unwrap() {
                Some(_) => {}
                None => break,
            }
        }
        let want: Vec<Vec<i64>> = (0..4)
            .flat_map(|i| (0..=i).map(move |j| vec![i, j]))
            .collect();
        assert_eq!(pts.iter().map(|p| p.0.clone()).collect::<Vec<_>>(), want);
        // Carry depths: within a row only j changes (depth 1); across
        // rows i changes (depth 0). First point reports depth 0.
        assert_eq!(pts[0].1, 0);
        assert_eq!(pts[2].1, 1); // (1,1): j carried
        assert_eq!(pts[3].1, 0); // (2,0): i carried
    }

    #[test]
    fn cursor_enforces_the_enumeration_budget() {
        let p = triangular();
        let shape = CompiledShape::build(&p, &[], None).unwrap();
        let ep = vec![4i64];
        let mut cur = Cursor::new(&shape.stmts[0], &ep, 3);
        assert!(cur.first().unwrap());
        let mut n = 1;
        let err = loop {
            match cur.advance() {
                Ok(Some(_)) => n += 1,
                Ok(None) => panic!("budget never tripped"),
                Err(e) => break e,
            }
        };
        assert_eq!(n, 3);
        assert!(matches!(err, PolyError::TooManyPoints { budget: 3 }));
    }

    #[test]
    fn guarded_offset_checks_bounds_and_offsets() {
        // Row value i + 2 against extent 4: i = 3 lands at 5 → OOB.
        let rows = vec![LoweredRow {
            kcoef: vec![1],
            pcoef: vec![],
            konst: 2,
        }];
        let mut scratch = Vec::new();
        let off = guarded_offset(&rows, &[1], &[], &[4], None, &mut scratch, || "A".into());
        assert_eq!(off.unwrap(), 3);
        let err =
            guarded_offset(&rows, &[3], &[], &[4], None, &mut scratch, || "A".into()).unwrap_err();
        match err {
            MachineError::Ir(IrError::OutOfBounds { array, index }) => {
                assert_eq!(array, "A");
                assert_eq!(index, vec![5]);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Buffer origin subtraction: value 5 against origin 4 → rel 1.
        let off = guarded_offset(&rows, &[3], &[], &[4], Some(&[4]), &mut scratch, || {
            "L".into()
        });
        assert_eq!(off.unwrap(), 1);
    }
}
