//! Compiled block execution: bytecode bodies + strided address streams.
//!
//! The interpreter in [`crate::exec`] walks every statement instance
//! through `Expr::eval` and `AffineMap::apply`, allocating index
//! vectors and hashing multi-index overlay keys per point. This module
//! lowers everything that is invariant across a block *shape* — the
//! set of fixed (block-origin) dims — exactly once, next to the cached
//! [`SymbolicPlan`]:
//!
//! * statement bodies compile to flat stack bytecode
//!   ([`polymem_ir::BodyCode`]), validated ahead of time;
//! * every affine access lowers to [`LoweredRow`]s over the kept dims
//!   and extended parameters, and per block to a proven base offset +
//!   per-dim strides ([`prove_flat`]) updated incrementally as the
//!   instance cursor carries — no `map.apply`, no `local_index`, no
//!   per-point allocation;
//! * instances are emitted directly in interleaved source order by a
//!   k-way merge of per-statement lexicographic cursors over the
//!   shared bound cascade — no materialize + sort.
//!
//! Hierarchy (level-2 register-tile) plans execute here too: accesses
//! the level-2 plan rewrites become *frame* targets, the k-way merge
//! tracks thread-key change points, and frame fill/flush go through
//! the exact [`stage_frames`]/[`flush_frames`] protocol the
//! interpreter uses — so `smem_loads_saved`, `reg_bytes_moved`,
//! `hier_groups` and the typed `RegisterOverflow` check are
//! bit-identical between engines.
//!
//! With [`MachineConfig::vector_width`] > 1 the inner loop batches up
//! to that many consecutive innermost-dim instances per dispatch when
//! every address stream is proven: streaming statements evaluate all
//! lanes through [`polymem_ir::BodyCode::eval_lanes`], accumulator
//! statements (a read aliasing the lane-invariant write cell) chain
//! serially in scalar association order, and anything else bails to
//! the scalar path. Batching never changes arrays or counters.
//!
//! Accesses whose in-bounds / no-overflow proof fails degrade to a
//! *guarded* stream (checked per point, typed errors), and any shape
//! that cannot be compiled at all falls back to the interpreter, which
//! stays authoritative (`POLYMEM_EXEC_CHECK=1` cross-checks every
//! block against it).

use crate::config::MachineConfig;
use crate::exec::{budget_error, flush_frames, stage_frames, ExecStats, FrameSet, LocalStore};
use crate::overlay::Overlay;
use crate::{MachineError, Result};
use polymem_core::smem::{
    lower_rows, parametrize_dims, prove_flat, row_major_weights, AccessId, HierPlan, LoweredRow,
    SmemPlan, SymbolicPlan,
};
use polymem_ir::{ArrayStore, BodyCode, IrError, Program};
use polymem_poly::bounds::{all_param_bounds, bound_cascade, DimBounds};
use polymem_poly::{PolyError, Polyhedron};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Per-launch state shared (read-only) by every block worker: the
/// hoisted common-prefix depth matrix, global array extents and
/// row-major weights, the compiled statement bodies, and the per-shape
/// compiled-stream cache.
pub(crate) struct LaunchShared {
    /// `common[a][b]` = shared loop-dim prefix of statements `a`, `b`.
    pub common: Vec<Vec<usize>>,
    /// Concrete extents of every global array, in program order.
    pub ext: Vec<Vec<i64>>,
    /// Row-major flattening weights per array (`None` if the array
    /// size overflows `i64` — flat addressing then stays guarded).
    pub weights: Vec<Option<Vec<i64>>>,
    /// Compiled statement bodies, or `None` if any body failed to
    /// compile (the whole launch then uses the interpreter).
    pub bodies: Option<Vec<BodyCode>>,
    /// Per-shape compiled streams; `None` when compiled execution is
    /// disabled (config, naive mode, or uncompilable bodies).
    pub compiled: Option<CompiledCache>,
    /// `POLYMEM_EXEC_CHECK=1`: run the interpreter as an oracle beside
    /// every compiled block and panic on divergence.
    pub exec_check: bool,
}

impl LaunchShared {
    pub fn new(program: &Program, params: &[i64], config: &MachineConfig) -> Result<LaunchShared> {
        let n = program.stmts.len();
        let mut common = vec![vec![0usize; n]; n];
        for (a, row) in common.iter_mut().enumerate() {
            for (b, c) in row.iter_mut().enumerate() {
                *c = program.common_depth(a, b);
            }
        }
        let mut ext = Vec::with_capacity(program.arrays.len());
        for a in &program.arrays {
            ext.push(a.eval_extents(&program.params, params)?);
        }
        let weights = ext.iter().map(|e| row_major_weights(e)).collect();
        let bodies: Option<Vec<BodyCode>> = program
            .stmts
            .iter()
            .map(|s| {
                BodyCode::compile(
                    &s.body,
                    s.reads.len(),
                    s.domain.space().dims().len(),
                    params.len(),
                )
                .ok()
            })
            .collect();
        let compiled =
            (config.compiled_exec && !polymem_poly::cache::naive_mode() && bodies.is_some())
                .then(CompiledCache::new);
        let exec_check = std::env::var("POLYMEM_EXEC_CHECK").is_ok_and(|v| v == "1");
        Ok(LaunchShared {
            common,
            ext,
            weights,
            bodies,
            compiled,
            exec_check,
        })
    }
}

/// Memo of one [`CompiledShape`] per block shape (sorted fixed-dim
/// names), mirroring the plan cache: warmed lazily, `None` parked for
/// shapes that fail to compile so same-shape blocks skip the retry.
pub(crate) struct CompiledCache {
    shapes: RwLock<HashMap<Vec<String>, Option<Arc<CompiledShape>>>>,
}

impl CompiledCache {
    pub fn new() -> CompiledCache {
        CompiledCache {
            shapes: RwLock::new(HashMap::new()),
        }
    }

    /// The compiled shape for this sub-block's fixed-dim set, built on
    /// first use. `plan` must be the shared symbolic scratchpad plan
    /// of the same shape (or `None` when no scratchpad is in play).
    pub fn shape(
        &self,
        fixed: &HashMap<String, i64>,
        program: &Program,
        plan: Option<&SymbolicPlan>,
    ) -> Option<Arc<CompiledShape>> {
        let mut key: Vec<String> = fixed.keys().cloned().collect();
        key.sort();
        if let Some(entry) = self.shapes.read().unwrap().get(&key) {
            return entry.clone();
        }
        let built = CompiledShape::build(program, &key, plan).map(Arc::new);
        let mut map = self.shapes.write().unwrap();
        map.entry(key).or_insert(built).clone()
    }
}

/// Where a lowered access lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Target {
    /// Global array (program array index) via the overlay/store.
    Global { array: usize },
    /// Scratchpad buffer of the block's [`LocalStore`].
    Local { buffer: usize },
    /// Register frame of the level-2 plan: resolved per point through
    /// the staged [`FrameSet`] (the access id keys
    /// `HierPlan::plan.rewrites`). Never flat-lowered — frames are
    /// tiny and re-anchor at every thread-key change.
    Frame { id: AccessId },
}

/// One access of one statement, lowered to rows over
/// `[kept dims, extended params, 1]`.
#[derive(Clone, Debug)]
pub(crate) struct AccTemplate {
    pub target: Target,
    pub rows: Vec<LoweredRow>,
}

/// Everything shape-invariant about one statement: the parametrized
/// domain, its bound cascade, context-free per-dim boxes, the
/// kept/fixed dim layout, and the lowered accesses.
pub(crate) struct ShapeStmt {
    /// Statement domain with the fixed dims turned into parameters.
    pub domain: Polyhedron,
    pub cascade: Vec<DimBounds>,
    /// Context-free parametric bounds of each kept dim (the proof box).
    pub boxes: Vec<DimBounds>,
    /// Original dim index of each kept dim, in order.
    pub kept: Vec<usize>,
    /// `(original dim index, index into the fixed-name list)`.
    pub fixed_pos: Vec<(usize, usize)>,
    /// Dim count of the original (full-space) statement domain.
    pub n_full: usize,
    /// The innermost kept dim is a level-2 thread dim — batching along
    /// it would straddle thread-key (frame staging) boundaries.
    pub vary_thread: bool,
    pub reads: Vec<AccTemplate>,
    pub write: AccTemplate,
}

/// The per-shape compilation product: one [`ShapeStmt`] per statement.
pub(crate) struct CompiledShape {
    /// Fixed-dim names in the order their values extend the params.
    pub fixed: Vec<String>,
    pub stmts: Vec<ShapeStmt>,
}

impl CompiledShape {
    pub fn build(
        program: &Program,
        fixed_names: &[String],
        plan: Option<&SymbolicPlan>,
    ) -> Option<CompiledShape> {
        let hier = plan.and_then(|sp| sp.hier.as_ref());
        let sym = parametrize_dims(program, fixed_names).ok()?;
        let n_ext = program.params.len() + fixed_names.len();
        let mut stmts = Vec::with_capacity(program.stmts.len());
        for (si, (orig, ss)) in program.stmts.iter().zip(&sym.stmts).enumerate() {
            let cascade = bound_cascade(&ss.domain).ok()?;
            let boxes = all_param_bounds(&ss.domain).ok()?;
            let orig_dims = orig.domain.space().dims();
            let kept: Vec<usize> = (0..orig_dims.len())
                .filter(|&i| !fixed_names.contains(&orig_dims[i]))
                .collect();
            let fixed_pos: Vec<(usize, usize)> = (0..orig_dims.len())
                .filter_map(|i| {
                    fixed_names
                        .iter()
                        .position(|n| *n == orig_dims[i])
                        .map(|fi| (i, fi))
                })
                .collect();
            if let Some(sp) = plan {
                // The plan's projection must agree with our dim layout,
                // or local-access rows would read the wrong cursor dims.
                if sp.kept_dims.get(si) != Some(&kept) {
                    return None;
                }
            }
            // Frame-redirected accesses need a thread key at every
            // instance of their statement.
            let keyed = hier
                .and_then(|h| h.stmt_thread_pos.get(si))
                .is_some_and(|p| p.is_some());
            let vary_thread = hier
                .and_then(|h| h.stmt_thread_pos.get(si))
                .and_then(|p| p.as_ref())
                .is_some_and(|pos| kept.last().is_some_and(|vd| pos.contains(vd)));
            let lower = |id: AccessId, array: usize, map: &polymem_poly::AffineMap| {
                if hier.is_some_and(|h| h.plan.rewrites.contains_key(&id)) {
                    // Level-2 frame target: resolved per point against
                    // the staged FrameSet, nothing to flat-lower here.
                    if !keyed {
                        return None;
                    }
                    return Some(AccTemplate {
                        target: Target::Frame { id },
                        rows: Vec::new(),
                    });
                }
                match plan.and_then(|sp| sp.plan.rewrites.get(&id)) {
                    Some(la) => {
                        if la.map.n_in() != kept.len() || la.map.in_space().n_params() != n_ext {
                            return None;
                        }
                        Some(AccTemplate {
                            target: Target::Local { buffer: la.buffer },
                            rows: lower_rows(&la.map),
                        })
                    }
                    None => {
                        if map.n_in() != kept.len() || map.in_space().n_params() != n_ext {
                            return None;
                        }
                        Some(AccTemplate {
                            target: Target::Global { array },
                            rows: lower_rows(map),
                        })
                    }
                }
            };
            let reads = ss
                .reads
                .iter()
                .enumerate()
                .map(|(k, r)| lower(AccessId::read(si, k), r.array, &r.map))
                .collect::<Option<Vec<_>>>()?;
            let write = lower(AccessId::write(si), ss.write.array, &ss.write.map)?;
            stmts.push(ShapeStmt {
                domain: ss.domain.clone(),
                cascade,
                boxes,
                kept,
                fixed_pos,
                n_full: orig_dims.len(),
                vary_thread,
                reads,
                write,
            });
        }
        Some(CompiledShape {
            fixed: fixed_names.to_vec(),
            stmts,
        })
    }

    /// `params ++ fixed values`, or `None` on a shape mismatch.
    pub fn ext_params(&self, params: &[i64], fixed: &HashMap<String, i64>) -> Option<Vec<i64>> {
        if fixed.len() != self.fixed.len() {
            return None;
        }
        let mut out = Vec::with_capacity(params.len() + self.fixed.len());
        out.extend_from_slice(params);
        for name in &self.fixed {
            out.push(*fixed.get(name)?);
        }
        Some(out)
    }
}

/// A per-block address stream: proven (incremental partial sums, no
/// checks) or guarded (evaluated and bounds-checked per point).
enum Addr<'s> {
    Proven {
        base: i64,
        strides: Vec<i64>,
        /// `part[k] = base + Σ_{j≤k} strides[j]·point[j]`.
        part: Vec<i64>,
    },
    Guarded {
        rows: &'s [LoweredRow],
    },
}

struct AccInst<'s> {
    target: Target,
    addr: Addr<'s>,
}

impl AccInst<'_> {
    /// Recompute the partial sums from depth `from` after a carry.
    /// Proven streams never overflow here (that is what the proof is).
    #[inline]
    fn carry(&mut self, point: &[i64], from: usize) {
        if let Addr::Proven {
            base,
            strides,
            part,
        } = &mut self.addr
        {
            for k in from..strides.len() {
                let prev = if k == 0 { *base } else { part[k - 1] };
                part[k] = prev + strides[k] * point[k];
            }
        }
    }

    /// Current flat offset of a proven stream.
    #[inline]
    fn offset(&self) -> usize {
        match &self.addr {
            Addr::Proven { base, part, .. } => *part.last().unwrap_or(base) as usize,
            Addr::Guarded { .. } => unreachable!("offset() on guarded stream"),
        }
    }

    /// Stride of a proven stream along the innermost kept dim; frame
    /// targets (guarded by construction) report 0 — their lane
    /// addresses are resolved through the frame index instead.
    #[inline]
    fn vary_stride(&self) -> i64 {
        match &self.addr {
            Addr::Proven { strides, .. } => *strides.last().unwrap_or(&0),
            Addr::Guarded { .. } => 0,
        }
    }
}

struct StmtInst<'s> {
    reads: Vec<AccInst<'s>>,
    write: AccInst<'s>,
}

impl StmtInst<'_> {
    fn carry(&mut self, point: &[i64], from: usize) {
        for acc in &mut self.reads {
            acc.carry(point, from);
        }
        self.write.carry(point, from);
    }
}

/// Lexicographic instance cursor over one statement's bound cascade —
/// an iterative replica of the recursive scan in
/// `polymem_poly::count`, with identical budget and membership
/// semantics, plus carry-depth tracking for incremental addressing.
pub(crate) struct Cursor<'a> {
    st: &'a ShapeStmt,
    ep: &'a [i64],
    budget: u64,
    /// Kept-dim coordinates.
    pub point: Vec<i64>,
    /// Inclusive upper bound at each descended depth.
    hi: Vec<i64>,
    /// Full-space point (fixed dims pre-filled, kept dims synced).
    pub full: Vec<i64>,
    visited: u64,
    /// Shallowest kept depth whose value changed since the previous
    /// accepted point.
    changed: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(st: &'a ShapeStmt, ep: &'a [i64], budget: u64) -> Cursor<'a> {
        let n = st.cascade.len();
        Cursor {
            st,
            ep,
            budget,
            point: vec![0; n],
            hi: vec![0; n],
            full: vec![0i64; st.n_full],
            visited: 0,
            changed: 0,
        }
    }

    /// Pre-fill the fixed full-space dims from the extended params
    /// (`ep` is `params ++ fixed values`; `n_params` = `params.len()`).
    fn fill_fixed(&mut self, n_params: usize) {
        for &(d, fi) in &self.st.fixed_pos {
            self.full[d] = self.ep[n_params + fi];
        }
    }

    /// Position at the first accepted point. `Ok(false)` = empty.
    pub fn first(&mut self) -> polymem_poly::Result<bool> {
        self.changed = 0;
        if self.st.cascade.is_empty() {
            if !self.st.domain.contains(&[], self.ep) {
                return Ok(false);
            }
            self.visited += 1;
            if self.visited > self.budget {
                return Err(PolyError::TooManyPoints {
                    budget: self.budget,
                });
            }
            return Ok(true);
        }
        self.seek(0)
    }

    /// Advance to the next accepted point; `Ok(Some(d))` reports the
    /// shallowest changed depth, `Ok(None)` exhaustion.
    pub fn advance(&mut self) -> polymem_poly::Result<Option<usize>> {
        let n = self.st.cascade.len();
        if n == 0 {
            return Ok(None);
        }
        self.changed = n;
        match self.bump_below(n) {
            Some(d) => {
                if self.seek(d)? {
                    Ok(Some(self.changed))
                } else {
                    Ok(None)
                }
            }
            None => Ok(None),
        }
    }

    /// Descend from `depth`, bumping outward on empty ranges and
    /// rejected leaves, until a point is accepted or space runs out.
    fn seek(&mut self, mut depth: usize) -> polymem_poly::Result<bool> {
        let n = self.st.cascade.len();
        loop {
            while depth < n {
                let Some((lo, hi)) =
                    self.st.cascade[depth].eval_range(&self.point[..depth], self.ep)
                else {
                    return Err(PolyError::Unbounded);
                };
                if lo > hi {
                    match self.bump_below(depth) {
                        Some(d) => {
                            depth = d;
                            continue;
                        }
                        None => return Ok(false),
                    }
                }
                self.point[depth] = lo;
                self.hi[depth] = hi;
                depth += 1;
            }
            if self.st.domain.contains(&self.point, self.ep) {
                self.visited += 1;
                if self.visited > self.budget {
                    return Err(PolyError::TooManyPoints {
                        budget: self.budget,
                    });
                }
                for k in self.changed..n {
                    self.full[self.st.kept[k]] = self.point[k];
                }
                return Ok(true);
            }
            match self.bump_below(n) {
                Some(d) => depth = d,
                None => return Ok(false),
            }
        }
    }

    /// Points left in the current innermost run (inclusive distance to
    /// its upper bound). 0 when the cursor has no kept dims.
    #[inline]
    pub fn run_remaining(&self) -> i64 {
        match (self.hi.last(), self.point.last()) {
            (Some(h), Some(p)) => h - p,
            _ => 0,
        }
    }

    /// Accepted points the budget still allows beyond the current one.
    #[inline]
    pub fn budget_headroom(&self) -> u64 {
        self.budget.saturating_sub(self.visited)
    }

    /// Jump `steps` points forward along the current innermost run.
    /// The caller has already verified domain membership of every
    /// skipped point and that the budget holds, so this only moves the
    /// coordinate and the visit count — no re-seek, no carry above the
    /// innermost depth.
    pub fn advance_run(&mut self, steps: i64) -> polymem_poly::Result<()> {
        let n = self.st.cascade.len();
        debug_assert!(n > 0 && steps >= 0 && self.point[n - 1] + steps <= self.hi[n - 1]);
        self.visited += steps as u64;
        if self.visited > self.budget {
            return Err(PolyError::TooManyPoints {
                budget: self.budget,
            });
        }
        self.point[n - 1] += steps;
        self.full[self.st.kept[n - 1]] = self.point[n - 1];
        Ok(())
    }

    /// Increment the deepest incrementable dim strictly below `depth`;
    /// returns the depth to re-descend from.
    fn bump_below(&mut self, depth: usize) -> Option<usize> {
        let mut k = depth;
        while k > 0 {
            k -= 1;
            if self.point[k] < self.hi[k] {
                self.point[k] += 1;
                self.changed = self.changed.min(k);
                return Some(k + 1);
            }
        }
        None
    }
}

/// `a` (statement `a_si` at its cursor's point) precedes `b` in
/// interleaved source order: common-prefix dims first, then statement
/// index. Distinct statements, so the order is strict.
fn earlier(a_si: usize, a: &Cursor, b_si: usize, b: &Cursor, common: &[Vec<usize>]) -> bool {
    earlier_pt(a_si, &a.full, b_si, b, common)
}

/// [`earlier`] against an explicit full-space point for `a` — the
/// batcher probes run *endpoints* without moving the cursor.
fn earlier_pt(a_si: usize, a_full: &[i64], b_si: usize, b: &Cursor, common: &[Vec<usize>]) -> bool {
    let c = common[a_si][b_si];
    match a_full[..c].cmp(&b.full[..c]) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => a_si < b_si,
    }
}

/// Evaluate a guarded access at one point: checked row evaluation,
/// per-dim bounds checks against `extents` (after subtracting
/// `offsets`), checked flattening. Mirrors the interpreter's typed
/// errors exactly.
fn guarded_offset(
    rows: &[LoweredRow],
    point: &[i64],
    ep: &[i64],
    extents: &[i64],
    offsets: Option<&[i64]>,
    scratch: &mut Vec<i64>,
    name: impl FnOnce() -> String,
) -> Result<usize> {
    const OVERFLOW: MachineError =
        MachineError::Ir(IrError::Arithmetic("overflow in address computation"));
    scratch.clear();
    for (r, row) in rows.iter().enumerate() {
        let v = row.eval(point, ep).ok_or(OVERFLOW)?;
        let rel = v.checked_sub(offsets.map_or(0, |o| o[r])).ok_or(OVERFLOW)?;
        scratch.push(rel);
    }
    if scratch.len() != extents.len()
        || scratch
            .iter()
            .zip(extents)
            .any(|(&rel, &e)| rel < 0 || rel >= e)
    {
        return Err(MachineError::Ir(IrError::OutOfBounds {
            array: name(),
            index: scratch.clone(),
        }));
    }
    let mut flat: i64 = 0;
    for (&rel, &e) in scratch.iter().zip(extents) {
        flat = flat
            .checked_mul(e)
            .and_then(|f| f.checked_add(rel))
            .ok_or(OVERFLOW)?;
    }
    Ok(flat as usize)
}

/// Instance/traffic counts of one compiled compute phase, for the
/// cycle model (identical to the interpreter's tallies).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct CompiledCounts {
    pub n_inst: u64,
    pub n_smem: u64,
    pub n_glob: u64,
}

/// Level-2 buffer id + frame index of a frame-target access at the
/// full-space point `full` of statement `si`.
fn frame_index(
    id: AccessId,
    si: usize,
    full: &[i64],
    h: &HierPlan,
    pp2: &[i64],
) -> Result<(usize, Vec<i64>)> {
    let la = h
        .plan
        .rewrites
        .get(&id)
        .expect("frame target from rewrites");
    let buf = &h.plan.buffers[la.buffer];
    let proj = h.project_point(si, full);
    Ok((la.buffer, la.local_index(buf, &proj, pp2)?))
}

/// Charge the counters for one read of `t` — exactly what the scalar
/// path (and the interpreter) charges.
fn charge_read(t: Target, stats: &mut ExecStats, counts: &mut CompiledCounts) {
    match t {
        Target::Local { .. } => {
            stats.smem_reads += 1;
            counts.n_smem += 1;
        }
        Target::Global { .. } => {
            stats.global_reads += 1;
            counts.n_glob += 1;
        }
        Target::Frame { .. } => stats.smem_loads_saved += 1,
    }
}

/// Charge the counters for one write of `t` (frame writes are silent,
/// like the interpreter's).
fn charge_write(t: Target, stats: &mut ExecStats, counts: &mut CompiledCounts) {
    match t {
        Target::Local { .. } => {
            stats.smem_writes += 1;
            counts.n_smem += 1;
        }
        Target::Global { .. } => {
            stats.global_writes += 1;
            counts.n_glob += 1;
        }
        Target::Frame { .. } => {}
    }
}

/// Read (and charge) one proven access at lane `l` of a batch. Batch
/// eligibility guarantees a proven stream, so the lane address is
/// `offset + l·stride` — frame targets never reach here (they run
/// scalar).
fn read_at_lane(
    acc: &AccInst,
    l: usize,
    local: Option<&LocalStore>,
    overlay: &Overlay,
    gdatas: &[&[i64]],
    stats: &mut ExecStats,
    counts: &mut CompiledCounts,
) -> i64 {
    charge_read(acc.target, stats, counts);
    let off = (acc.offset() as i64 + acc.vary_stride() * l as i64) as usize;
    match acc.target {
        Target::Frame { .. } => unreachable!("frame statements are never batched"),
        Target::Local { buffer } => local.expect("local target implies store").bufs[buffer].0[off],
        Target::Global { array } => match overlay.get(array, off) {
            Some(v) => v,
            None => gdatas[array][off],
        },
    }
}

/// Store `value` through the write access at lane `l` of a batch —
/// storage only, counters are charged separately (reduction batches
/// charge per lane but store once).
fn store_at_lane(
    wacc: &AccInst,
    l: usize,
    value: i64,
    local: &mut Option<&mut LocalStore>,
    overlay: &mut Overlay,
) {
    let off = (wacc.offset() as i64 + wacc.vary_stride() * l as i64) as usize;
    match wacc.target {
        Target::Frame { .. } => unreachable!("frame statements are never batched"),
        Target::Local { buffer } => {
            local
                .as_deref_mut()
                .expect("local target implies store")
                .bufs[buffer]
                .0[off] = value;
        }
        Target::Global { array } => overlay.set(array, off, value),
    }
}

/// Some read lane would observe some earlier write lane's cell:
/// `ro + rs·l == wo + ws·m` for any `m < l`. Brute force — lanes ≤ 8.
fn collides(ro: i64, rs: i64, wo: i64, ws: i64, lanes: usize) -> bool {
    (1..lanes as i64).any(|l| (0..l).any(|m| ro + rs * l == wo + ws * m))
}

/// Classify a candidate batch of `lanes` instances of `inst` against
/// its own write. Returns `false` on an unresolvable read-after-write
/// conflict (bail to scalar); on `true`, `flags[r]` marks accumulator
/// reads (read cell == lane-invariant write cell) whose lanes > 0
/// forward the previous lane's value instead of re-reading. Only
/// proven streams reach here, so the check is pure offset/stride
/// arithmetic — no charges, no stores.
fn classify_batch(inst: &StmtInst, lanes: usize, flags: &mut Vec<bool>) -> bool {
    let w = &inst.write;
    flags.clear();
    flags.resize(inst.reads.len(), false);
    let (wo, ws) = (w.offset() as i64, w.vary_stride());
    for (r, acc) in inst.reads.iter().enumerate() {
        let same_cell = match (w.target, acc.target) {
            (Target::Global { array: wa }, Target::Global { array }) => array == wa,
            (Target::Local { buffer: wb }, Target::Local { buffer }) => buffer == wb,
            // Distinct storage classes never alias (frames are
            // per-thread copies and never batched anyway).
            _ => false,
        };
        if !same_cell {
            continue;
        }
        let (ro, rs) = (acc.offset() as i64, acc.vary_stride());
        if rs == 0 && ws == 0 && ro == wo {
            flags[r] = true;
        } else if collides(ro, rs, wo, ws, lanes) {
            return false;
        }
    }
    true
}

/// Run one sub-block's compute phase through the compiled engine.
///
/// Returns `Ok(None)` — *before any effect* — when this block cannot
/// take the compiled path (shape mismatch, unbounded boxes, foreign
/// store); the caller then runs the interpreter. After the first
/// instance executes, errors are hard and mirror the interpreter's.
///
/// Hierarchy plans (`plan.hier`) execute here natively: the merge
/// tracks each keyed statement's thread key and stages/flushes
/// register frames through the interpreter's own
/// [`stage_frames`]/[`flush_frames`] at exactly the key-change points
/// the interpreter would hit, so every counter (and the typed
/// `RegisterOverflow`) is bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_compiled<'s>(
    shape: &'s CompiledShape,
    launch: &LaunchShared,
    program: &Program,
    params: &[i64],
    fixed: &HashMap<String, i64>,
    store: &ArrayStore,
    mut local: Option<&mut LocalStore>,
    plan: Option<&SymbolicPlan>,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    config: &MachineConfig,
) -> Result<Option<CompiledCounts>> {
    let budget = config.enum_budget;
    let Some(bodies) = launch.bodies.as_ref() else {
        return Ok(None);
    };
    let Some(ep) = shape.ext_params(params, fixed) else {
        return Ok(None);
    };
    // Resolve store ids once and insist the store agrees with the
    // launch extents (flat offsets are only valid against them).
    let mut sids = Vec::with_capacity(program.arrays.len());
    for (a, decl) in program.arrays.iter().enumerate() {
        match store.id_of(&decl.name) {
            Some(id) if store.extents_by_id(id) == launch.ext[a].as_slice() => sids.push(id),
            _ => return Ok(None),
        }
    }
    let hier: Option<&HierPlan> = plan.and_then(|sp| sp.hier.as_ref());
    let plan1: Option<&SmemPlan> = plan.map(|sp| &sp.plan);
    // A local or frame target without a staged local store cannot run
    // compiled (frames fill from and flush to the level-1 buffers).
    let needs_local = hier.is_some()
        || shape.stmts.iter().any(|st| {
            st.reads
                .iter()
                .chain(std::iter::once(&st.write))
                .any(|t| !matches!(t.target, Target::Global { .. }))
        });
    if needs_local && local.is_none() {
        return Ok(None);
    }
    // A frame target without the hier plan in hand is a caller bug
    // (shape and plan are cached together) — decline defensively.
    let has_frames = shape.stmts.iter().any(|st| {
        st.reads
            .iter()
            .chain(std::iter::once(&st.write))
            .any(|t| matches!(t.target, Target::Frame { .. }))
    });
    if has_frames && hier.is_none() {
        return Ok(None);
    }
    let lweights: Vec<Option<Vec<i64>>> = local
        .as_deref()
        .map(|l| l.bufs.iter().map(|b| row_major_weights(&b.1)).collect())
        .unwrap_or_default();

    // Instantiate address streams and cursors for every statement —
    // all soft-fallback exits happen in this phase, before any effect.
    let n_stmts = shape.stmts.len();
    let mut insts: Vec<StmtInst> = Vec::with_capacity(n_stmts);
    let mut cursors: Vec<Cursor> = Vec::with_capacity(n_stmts);
    let n_params = params.len();
    for st in &shape.stmts {
        let mut boxes = Vec::with_capacity(st.boxes.len());
        for b in &st.boxes {
            match b.eval_range(&[], &ep) {
                Some(r) => boxes.push(r),
                None => return Ok(None),
            }
        }
        let make = |t: &'s AccTemplate| -> AccInst<'s> {
            let proven = match t.target {
                Target::Global { array } => launch.weights[array]
                    .as_ref()
                    .and_then(|w| prove_flat(&t.rows, &ep, w, &launch.ext[array], None, &boxes)),
                Target::Local { buffer } => {
                    let l = local.as_deref().expect("checked above");
                    let (_, ext_b, off_b) = &l.bufs[buffer];
                    lweights[buffer]
                        .as_ref()
                        .and_then(|w| prove_flat(&t.rows, &ep, w, ext_b, Some(off_b), &boxes))
                }
                // Frames re-anchor per thread key — always resolved
                // through the staged FrameSet, never flat-proven.
                Target::Frame { .. } => None,
            };
            let addr = match proven {
                Some(fa) => Addr::Proven {
                    base: fa.base,
                    part: vec![0; fa.strides.len()],
                    strides: fa.strides,
                },
                None => Addr::Guarded { rows: &t.rows },
            };
            AccInst {
                target: t.target,
                addr,
            }
        };
        insts.push(StmtInst {
            reads: st.reads.iter().map(make).collect(),
            write: make(&st.write),
        });
        let mut cur = Cursor::new(st, &ep, budget);
        cur.fill_fixed(n_params);
        cursors.push(cur);
    }
    let mut alive = vec![false; n_stmts];
    for si in 0..n_stmts {
        match cursors[si].first() {
            Ok(a) => alive[si] = a,
            // Init-phase trouble (unbounded cascade, zero budget):
            // nothing has run yet, so the interpreter can still own
            // this block.
            Err(_) => return Ok(None),
        }
        if alive[si] {
            insts[si].carry(&cursors[si].point, 0);
        }
    }

    // Batch eligibility per statement: every access rides a proven
    // flat address stream. Frame targets are always `Guarded` (they
    // re-anchor per thread key), so frame-touching statements run
    // scalar — their per-element cost is a register-file lookup the
    // model already prices at zero, and resolving frame indices per
    // lane costs more than lane-parallel evaluation saves.
    let all_proven: Vec<bool> = insts
        .iter()
        .map(|inst| {
            inst.reads
                .iter()
                .chain(std::iter::once(&inst.write))
                .all(|a| matches!(a.addr, Addr::Proven { .. }))
        })
        .collect();
    let vw = config.vector_width.max(1) as usize;

    // K-way merge in interleaved source order.
    let gdatas: Vec<&[i64]> = sids.iter().map(|&id| store.data_by_id(id)).collect();
    let mut counts = CompiledCounts::default();
    let mut reads_buf: Vec<i64> = Vec::new();
    let mut batch_reads: Vec<i64> = Vec::new();
    let mut lane_vals: Vec<i64> = Vec::new();
    let mut stack: Vec<i64> = Vec::new();
    let mut idx: Vec<i64> = Vec::new();
    // Scratch reused across batches so the hot loop never allocates.
    let mut probe_buf: Vec<i64> = Vec::new();
    let mut end_full_buf: Vec<i64> = Vec::new();
    let mut fp_buf: Vec<i64> = Vec::new();
    let mut flags_buf: Vec<bool> = Vec::new();
    let mut cur_frames: Option<FrameSet> = None;
    loop {
        let mut best: Option<usize> = None;
        for si in 0..n_stmts {
            if !alive[si] {
                continue;
            }
            best = Some(match best {
                None => si,
                Some(b) => {
                    if earlier(si, &cursors[si], b, &cursors[b], &launch.common) {
                        si
                    } else {
                        b
                    }
                }
            });
        }
        let Some(si) = best else { break };
        // Frame staging at thread-key change points — the same
        // sequence of keys (hence the same hier_groups / traffic /
        // RegisterOverflow points) as the interpreter's loop, because
        // the merge emits instances in the identical order.
        if let Some(h) = hier {
            if let Some(key) = h.thread_key(si, &cursors[si].full) {
                if cur_frames.as_ref().map(|fs| fs.key.as_slice()) != Some(key.as_slice()) {
                    let p1 = plan1.expect("hier rides on the level-1 plan");
                    let ls = local.as_deref_mut().expect("checked above");
                    if let Some(fs) = cur_frames.take() {
                        counts.n_smem += flush_frames(h, p1, &fs, ls, stats, config)?;
                    }
                    let (fs, dn) = stage_frames(h, p1, key, params, fixed, ls, stats, config)?;
                    counts.n_smem += dn;
                    cur_frames = Some(fs);
                }
            }
        }
        let st = &shape.stmts[si];
        let n = st.cascade.len();

        // Probe for a batch: up to `vw` consecutive innermost-dim
        // instances, clipped to the run, the domain, the budget, and
        // the source-order frontier of every other alive statement.
        let mut lanes = 1usize;
        if vw > 1 && n > 0 && all_proven[si] && !st.vary_thread {
            let cur = &cursors[si];
            let max_run = (cur.run_remaining() + 1).min(vw as i64).max(1) as usize;
            lanes = max_run.min(cur.budget_headroom().min(usize::MAX as u64) as usize + 1);
            if lanes > 1 {
                probe_buf.clear();
                probe_buf.extend_from_slice(&cur.point);
                let mut ok = 1usize;
                while ok < lanes {
                    probe_buf[n - 1] += 1;
                    if !st.domain.contains(&probe_buf, &ep) {
                        break;
                    }
                    ok += 1;
                }
                lanes = ok;
            }
            if lanes > 1 && n_stmts > 1 {
                let vd = st.kept[n - 1];
                end_full_buf.clear();
                end_full_buf.extend_from_slice(&cur.full);
                'shrink: while lanes > 1 {
                    end_full_buf[vd] = cur.full[vd] + (lanes as i64 - 1);
                    for (sj, c) in cursors.iter().enumerate() {
                        if sj == si || !alive[sj] {
                            continue;
                        }
                        if !earlier_pt(si, &end_full_buf, sj, c, &launch.common) {
                            lanes -= 1;
                            continue 'shrink;
                        }
                    }
                    break;
                }
            }
        }
        // Read-after-write conflict across lanes: scalar.
        if lanes > 1 && !classify_batch(&insts[si], lanes, &mut flags_buf) {
            lanes = 1;
        }

        if lanes > 1 {
            let vd = st.kept[n - 1];
            let base_full = &cursors[si].full;
            let nr = insts[si].reads.len();
            if flags_buf.iter().any(|&f| f) {
                // Reduction: a read aliases the lane-invariant write
                // cell. Chain the accumulator serially — scalar
                // association order, scalar charges — while skipping
                // the merge scan and cursor seek per lane.
                fp_buf.clear();
                fp_buf.extend_from_slice(base_full);
                let mut value = 0i64;
                for l in 0..lanes {
                    fp_buf[vd] = base_full[vd] + l as i64;
                    reads_buf.clear();
                    for (r, acc) in insts[si].reads.iter().enumerate() {
                        let v = if flags_buf[r] && l > 0 {
                            charge_read(acc.target, stats, &mut counts);
                            value
                        } else {
                            read_at_lane(
                                acc,
                                l,
                                local.as_deref(),
                                overlay,
                                &gdatas,
                                stats,
                                &mut counts,
                            )
                        };
                        reads_buf.push(v);
                    }
                    value = bodies[si]
                        .eval(&mut stack, &reads_buf, &fp_buf, params)
                        .map_err(MachineError::Ir)?;
                    charge_write(insts[si].write.target, stats, &mut counts);
                }
                store_at_lane(&insts[si].write, lanes - 1, value, &mut local, overlay);
            } else {
                // Streaming: gather slot-major, one lane-parallel body
                // evaluation, scatter in lane order.
                batch_reads.clear();
                for acc in &insts[si].reads {
                    for l in 0..lanes {
                        let v = read_at_lane(
                            acc,
                            l,
                            local.as_deref(),
                            overlay,
                            &gdatas,
                            stats,
                            &mut counts,
                        );
                        batch_reads.push(v);
                    }
                }
                if bodies[si]
                    .eval_lanes(
                        &mut stack,
                        &batch_reads,
                        lanes,
                        base_full,
                        Some(vd),
                        params,
                        &mut lane_vals,
                    )
                    .is_err()
                {
                    // Some lane faults. Re-run serially so the error
                    // surfaced is the one scalar order reports first.
                    lane_vals.clear();
                    fp_buf.clear();
                    fp_buf.extend_from_slice(base_full);
                    for l in 0..lanes {
                        fp_buf[vd] = base_full[vd] + l as i64;
                        reads_buf.clear();
                        for r in 0..nr {
                            reads_buf.push(batch_reads[r * lanes + l]);
                        }
                        lane_vals.push(
                            bodies[si]
                                .eval(&mut stack, &reads_buf, &fp_buf, params)
                                .map_err(MachineError::Ir)?,
                        );
                    }
                }
                for (l, &v) in lane_vals.iter().enumerate() {
                    charge_write(insts[si].write.target, stats, &mut counts);
                    store_at_lane(&insts[si].write, l, v, &mut local, overlay);
                }
            }
            stats.instances += lanes as u64;
            counts.n_inst += lanes as u64;
            cursors[si]
                .advance_run(lanes as i64 - 1)
                .map_err(budget_error)?;
            insts[si].carry(&cursors[si].point, n - 1);
        } else {
            let cur = &cursors[si];
            reads_buf.clear();
            for acc in &insts[si].reads {
                let v = match acc.target {
                    Target::Frame { id } => {
                        let h = hier.expect("frame target implies hier");
                        let fs = cur_frames.as_ref().expect("keyed statement staged frames");
                        let (b, fidx) = frame_index(id, si, &cur.full, h, &fs.pp2)?;
                        stats.smem_loads_saved += 1;
                        fs.frames.get(b, &fidx)?
                    }
                    Target::Local { buffer } => {
                        let off = match &acc.addr {
                            Addr::Proven { .. } => acc.offset(),
                            Addr::Guarded { rows } => {
                                let l = local.as_deref().expect("checked above");
                                guarded_offset(
                                    rows,
                                    &cur.point,
                                    &ep,
                                    &l.bufs[buffer].1,
                                    Some(&l.bufs[buffer].2),
                                    &mut idx,
                                    || format!("local buffer {buffer}"),
                                )?
                            }
                        };
                        stats.smem_reads += 1;
                        counts.n_smem += 1;
                        local.as_deref().expect("checked above").bufs[buffer].0[off]
                    }
                    Target::Global { array } => {
                        let off = match &acc.addr {
                            Addr::Proven { .. } => acc.offset(),
                            Addr::Guarded { rows } => guarded_offset(
                                rows,
                                &cur.point,
                                &ep,
                                &launch.ext[array],
                                None,
                                &mut idx,
                                || program.arrays[array].name.clone(),
                            )?,
                        };
                        stats.global_reads += 1;
                        counts.n_glob += 1;
                        match overlay.get(array, off) {
                            Some(v) => v,
                            None => gdatas[array][off],
                        }
                    }
                };
                reads_buf.push(v);
            }
            let value = bodies[si]
                .eval(&mut stack, &reads_buf, &cur.full, params)
                .map_err(MachineError::Ir)?;
            let wacc = &insts[si].write;
            match wacc.target {
                Target::Frame { id } => {
                    let h = hier.expect("frame target implies hier");
                    let fs = cur_frames.as_mut().expect("keyed statement staged frames");
                    let (b, fidx) = frame_index(id, si, &cur.full, h, &fs.pp2)?;
                    // Frame writes are silent — they pay at flush.
                    fs.frames.set(b, &fidx, value)?;
                }
                Target::Local { buffer } => {
                    let woff = match &wacc.addr {
                        Addr::Proven { .. } => wacc.offset(),
                        Addr::Guarded { rows } => {
                            let l = local.as_deref().expect("checked above");
                            guarded_offset(
                                rows,
                                &cur.point,
                                &ep,
                                &l.bufs[buffer].1,
                                Some(&l.bufs[buffer].2),
                                &mut idx,
                                || format!("local buffer {buffer}"),
                            )?
                        }
                    };
                    stats.smem_writes += 1;
                    counts.n_smem += 1;
                    local.as_deref_mut().expect("checked above").bufs[buffer].0[woff] = value;
                }
                Target::Global { array } => {
                    let woff = match &wacc.addr {
                        Addr::Proven { .. } => wacc.offset(),
                        Addr::Guarded { rows } => guarded_offset(
                            rows,
                            &cur.point,
                            &ep,
                            &launch.ext[array],
                            None,
                            &mut idx,
                            || program.arrays[array].name.clone(),
                        )?,
                    };
                    stats.global_writes += 1;
                    counts.n_glob += 1;
                    overlay.set(array, woff, value);
                }
            }
            stats.instances += 1;
            counts.n_inst += 1;
        }
        match cursors[si].advance().map_err(budget_error)? {
            Some(ch) => insts[si].carry(&cursors[si].point, ch),
            None => alive[si] = false,
        }
    }
    // The trailing frame set flushes after the last instance, exactly
    // like the interpreter's final flush.
    if let (Some(h), Some(fs)) = (hier, cur_frames.take()) {
        let p1 = plan1.expect("hier rides on the level-1 plan");
        let ls = local.expect("checked above");
        counts.n_smem += flush_frames(h, p1, &fs, ls, stats, config)?;
    }
    Ok(Some(counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::builder::ProgramBuilder;
    use polymem_ir::expr::{v, Expr, LinExpr};

    fn triangular() -> Program {
        let mut b = ProgramBuilder::new("tri", ["N"]);
        b.array("A", &[v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("i")),
            ])
            .write("A", &[v("i")])
            .body(Expr::Const(0))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn cursor_walks_triangular_domain_in_lex_order() {
        let p = triangular();
        let shape = CompiledShape::build(&p, &[], None).unwrap();
        let st = &shape.stmts[0];
        let ep = vec![4i64];
        let mut cur = Cursor::new(st, &ep, 1000);
        let mut pts = Vec::new();
        assert!(cur.first().unwrap());
        loop {
            pts.push((cur.full.clone(), cur.changed));
            match cur.advance().unwrap() {
                Some(_) => {}
                None => break,
            }
        }
        let want: Vec<Vec<i64>> = (0..4)
            .flat_map(|i| (0..=i).map(move |j| vec![i, j]))
            .collect();
        assert_eq!(pts.iter().map(|p| p.0.clone()).collect::<Vec<_>>(), want);
        // Carry depths: within a row only j changes (depth 1); across
        // rows i changes (depth 0). First point reports depth 0.
        assert_eq!(pts[0].1, 0);
        assert_eq!(pts[2].1, 1); // (1,1): j carried
        assert_eq!(pts[3].1, 0); // (2,0): i carried
    }

    #[test]
    fn cursor_enforces_the_enumeration_budget() {
        let p = triangular();
        let shape = CompiledShape::build(&p, &[], None).unwrap();
        let ep = vec![4i64];
        let mut cur = Cursor::new(&shape.stmts[0], &ep, 3);
        assert!(cur.first().unwrap());
        let mut n = 1;
        let err = loop {
            match cur.advance() {
                Ok(Some(_)) => n += 1,
                Ok(None) => panic!("budget never tripped"),
                Err(e) => break e,
            }
        };
        assert_eq!(n, 3);
        assert!(matches!(err, PolyError::TooManyPoints { budget: 3 }));
    }

    #[test]
    fn guarded_offset_checks_bounds_and_offsets() {
        // Row value i + 2 against extent 4: i = 3 lands at 5 → OOB.
        let rows = vec![LoweredRow {
            kcoef: vec![1],
            pcoef: vec![],
            konst: 2,
        }];
        let mut scratch = Vec::new();
        let off = guarded_offset(&rows, &[1], &[], &[4], None, &mut scratch, || "A".into());
        assert_eq!(off.unwrap(), 3);
        let err =
            guarded_offset(&rows, &[3], &[], &[4], None, &mut scratch, || "A".into()).unwrap_err();
        match err {
            MachineError::Ir(IrError::OutOfBounds { array, index }) => {
                assert_eq!(array, "A");
                assert_eq!(index, vec![5]);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Buffer origin subtraction: value 5 against origin 4 → rel 1.
        let off = guarded_offset(&rows, &[3], &[], &[4], Some(&[4]), &mut scratch, || {
            "L".into()
        });
        assert_eq!(off.unwrap(), 1);
    }
}
