//! The analytic timing model.
//!
//! A [`KernelProfile`] summarises what one kernel launch does — how
//! many blocks, threads, statement instances, arithmetic ops, global /
//! scratchpad accesses, data-movement occurrences and volumes, and
//! device-wide synchronisations. [`KernelProfile::estimate`] turns it
//! into milliseconds on a [`MachineConfig`]:
//!
//! * blocks execute in **waves** of at most `concurrent_blocks`
//!   (the §5 occupancy rule driven by per-block scratchpad use);
//! * within a block, compute proceeds at warp granularity on the
//!   inner SIMD units while global accesses cost
//!   `latency / overlap` cycles each (the overlap models warp
//!   multithreading);
//! * each data-movement occurrence pays the §4.3 model
//!   `P·S + V·L/P` with `P` = threads per block;
//! * device-wide synchronisation (needed by kernels like time-tiled
//!   Jacobi) costs `base + per_block · active_blocks` per round —
//!   which is what produces the U-shape of the paper's Fig. 7.

use crate::config::MachineConfig;
use crate::{MachineError, Result};

/// What one kernel launch does, summarised for the timing model.
#[derive(Clone, Debug, Default)]
pub struct KernelProfile {
    /// Number of thread blocks launched.
    pub n_blocks: u64,
    /// Threads per block (`P` of the cost model).
    pub threads_per_block: u64,
    /// Total statement instances across all blocks.
    pub instances: u64,
    /// Arithmetic ops per instance.
    pub ops_per_instance: u64,
    /// Global-memory element accesses per instance (DRAM-only mode;
    /// zero when scratchpad staging serves the references).
    pub global_accesses_per_instance: u64,
    /// Scratchpad element accesses per instance.
    pub smem_accesses_per_instance: u64,
    /// Data-movement occurrences per block over the whole launch.
    pub movement_occurrences_per_block: u64,
    /// Elements moved (in + out) per occurrence per block.
    pub movement_volume_per_occurrence: u64,
    /// Scratchpad bytes used per block (drives occupancy).
    pub smem_bytes_per_block: u64,
    /// Device-wide synchronisations over the launch (e.g. one per
    /// time-tile round in Jacobi).
    pub device_syncs: u64,
}

/// Where the estimated time goes (for reporting and tests).
#[derive(Clone, Debug, Default)]
pub struct TimeBreakdown {
    /// Total milliseconds.
    pub total_ms: f64,
    /// Compute component.
    pub compute_ms: f64,
    /// Global-memory access component.
    pub global_ms: f64,
    /// Scratchpad access component.
    pub smem_ms: f64,
    /// Data-movement component (including per-occurrence syncs).
    pub movement_ms: f64,
    /// Device-wide synchronisation component.
    pub device_sync_ms: f64,
    /// Number of block waves the launch serialised into.
    pub waves: u64,
}

impl KernelProfile {
    /// Estimate execution time on a machine.
    ///
    /// The model is throughput-based: each outer unit (SM) processes
    /// its assigned blocks back-to-back, so the launch takes
    /// `per-block-time × ceil(blocks / SMs)`. Scratchpad-driven
    /// occupancy (§5's `X/M` rule) enters through *latency hiding*:
    /// when fewer than two blocks fit per active SM, the machine
    /// cannot overlap global accesses across blocks and their
    /// effective cost doubles.
    pub fn estimate(&self, m: &MachineConfig) -> Result<TimeBreakdown> {
        if self.smem_bytes_per_block > m.smem_bytes && m.smem_bytes > 0 {
            return Err(MachineError::ScratchpadOverflow {
                requested: self.smem_bytes_per_block,
                available: m.smem_bytes,
            });
        }
        let n_blocks = self.n_blocks.max(1);
        let parallel_units = m.n_outer.min(n_blocks).max(1);
        // Load-imbalance-aware serialisation: the slowest SM runs this
        // many blocks.
        let serial = n_blocks.div_ceil(parallel_units);
        let resident = m
            .concurrent_blocks(self.smem_bytes_per_block)
            .min(n_blocks)
            .max(1);
        // Latency hiding by warp occupancy: an SM needs ~8 resident
        // warps to keep its pipelines and the memory system busy.
        // Fewer resident blocks (scratchpad-limited occupancy, §5's
        // X/M rule, or simply a small grid) expose latency; the
        // effective cost of memory operations scales by 1/hiding.
        let warps_per_block =
            (self.threads_per_block.max(1) as f64 / m.warp_size.max(1) as f64).ceil();
        let resident_per_unit = resident as f64 / parallel_units as f64;
        let hiding = (resident_per_unit * warps_per_block / 8.0).clamp(0.25, 1.0);
        let instances_per_block = self.instances as f64 / n_blocks as f64;

        // Effective arithmetic throughput of one block: the inner SIMD
        // units, but never more than the threads the block runs.
        let lanes = (m.n_inner as f64).min(self.threads_per_block.max(1) as f64);
        let compute_cycles_block =
            instances_per_block * self.ops_per_instance as f64 * m.cycles_per_op / lanes;

        // Global accesses: latency amortised by warp-level overlap,
        // scaled by the occupancy-driven hiding factor.
        let global_cost = m.global_latency / (m.global_overlap * hiding);
        let global_cycles_block =
            instances_per_block * self.global_accesses_per_instance as f64 * global_cost;

        // Scratchpad accesses: cheap, throughput-limited by the lanes,
        // and pipeline bubbles appear at low warp occupancy too.
        let smem_cycles_block =
            instances_per_block * self.smem_accesses_per_instance as f64 * m.smem_latency
                / lanes
                / hiding;

        // §4.3 data movement: per occurrence P·S + V·L/P.
        let p = self.threads_per_block.max(1) as f64;
        let movement_cycles_block = self.movement_occurrences_per_block as f64
            * (p * m.sync_cycles + self.movement_volume_per_occurrence as f64 * global_cost / p);

        let per_block =
            compute_cycles_block + global_cycles_block + smem_cycles_block + movement_cycles_block;
        // Every launched block participates in a device-wide barrier.
        let device_sync_cycles = self.device_syncs as f64
            * (m.device_sync_base + m.device_sync_per_block * n_blocks as f64);
        let total_cycles = per_block * serial as f64 + device_sync_cycles;

        Ok(TimeBreakdown {
            total_ms: m.cycles_to_ms(total_cycles),
            compute_ms: m.cycles_to_ms(compute_cycles_block * serial as f64),
            global_ms: m.cycles_to_ms(global_cycles_block * serial as f64),
            smem_ms: m.cycles_to_ms(smem_cycles_block * serial as f64),
            movement_ms: m.cycles_to_ms(movement_cycles_block * serial as f64),
            device_sync_ms: m.cycles_to_ms(device_sync_cycles),
            waves: serial,
        })
    }

    /// Estimate on the CPU baseline: a single sequential unit whose
    /// every access costs the (cache-filtered) memory latency.
    pub fn estimate_cpu(&self, m: &MachineConfig) -> TimeBreakdown {
        let ops = self.instances as f64 * self.ops_per_instance as f64 * m.cycles_per_op;
        let mem = self.instances as f64
            * (self.global_accesses_per_instance + self.smem_accesses_per_instance) as f64
            * m.global_latency;
        TimeBreakdown {
            total_ms: m.cycles_to_ms(ops + mem),
            compute_ms: m.cycles_to_ms(ops),
            global_ms: m.cycles_to_ms(mem),
            ..TimeBreakdown::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_profile() -> KernelProfile {
        KernelProfile {
            n_blocks: 32,
            threads_per_block: 256,
            instances: 1 << 22,
            ops_per_instance: 4,
            global_accesses_per_instance: 3,
            ..KernelProfile::default()
        }
    }

    #[test]
    fn scratchpad_variant_beats_dram_only() {
        let m = MachineConfig::geforce_8800_gtx();
        let dram = base_profile();
        // Same kernel with staging: global traffic becomes movement
        // volume (touched once), per-instance accesses hit smem.
        let smem = KernelProfile {
            global_accesses_per_instance: 0,
            smem_accesses_per_instance: 3,
            movement_occurrences_per_block: 64,
            movement_volume_per_occurrence: 4096,
            smem_bytes_per_block: 8 * 1024,
            ..dram.clone()
        };
        let t_dram = dram.estimate(&m).unwrap().total_ms;
        let t_smem = smem.estimate(&m).unwrap().total_ms;
        assert!(
            t_smem * 3.0 < t_dram,
            "expected >3x gap, got {t_smem} vs {t_dram}"
        );
    }

    #[test]
    fn gpu_beats_cpu_by_orders_of_magnitude() {
        let g = MachineConfig::geforce_8800_gtx();
        let c = MachineConfig::host_cpu();
        let p = base_profile();
        let t_gpu = p.estimate(&g).unwrap().total_ms;
        let t_cpu = p.estimate_cpu(&c).total_ms;
        // Even the DRAM-only GPU variant beats the CPU severalfold
        // (the paper's staged variant wins by far more; see Figure 4).
        assert!(t_cpu > 5.0 * t_gpu, "cpu {t_cpu} vs gpu {t_gpu}");
    }

    #[test]
    fn occupancy_penalises_fat_blocks() {
        // A block monopolising the scratchpad leaves no co-resident
        // block to hide global latency behind: movement and residual
        // global traffic get more expensive (§5's X/M occupancy rule).
        let m = MachineConfig::geforce_8800_gtx();
        let slim = KernelProfile {
            smem_bytes_per_block: 2 * 1024,
            smem_accesses_per_instance: 2,
            global_accesses_per_instance: 0,
            movement_occurrences_per_block: 128,
            movement_volume_per_occurrence: 100_000,
            threads_per_block: 64,
            ..base_profile()
        };
        let fat = KernelProfile {
            smem_bytes_per_block: 16 * 1024,
            ..slim.clone()
        };
        let t_slim = slim.estimate(&m).unwrap();
        let t_fat = fat.estimate(&m).unwrap();
        assert!(t_fat.movement_ms > t_slim.movement_ms);
        assert!(t_fat.total_ms > t_slim.total_ms);
    }

    #[test]
    fn device_sync_grows_with_active_blocks() {
        let m = MachineConfig::geforce_8800_gtx();
        let few = KernelProfile {
            n_blocks: 16,
            device_syncs: 1000,
            smem_accesses_per_instance: 1,
            global_accesses_per_instance: 0,
            ..base_profile()
        };
        let many = KernelProfile {
            n_blocks: 128,
            ..few.clone()
        };
        let t_few = few.estimate(&m).unwrap();
        let t_many = many.estimate(&m).unwrap();
        assert!(t_many.device_sync_ms > t_few.device_sync_ms);
    }

    #[test]
    fn scratchpad_overflow_is_an_error() {
        let m = MachineConfig::geforce_8800_gtx();
        let p = KernelProfile {
            smem_bytes_per_block: 64 * 1024,
            ..base_profile()
        };
        assert!(matches!(
            p.estimate(&m),
            Err(MachineError::ScratchpadOverflow { .. })
        ));
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = MachineConfig::geforce_8800_gtx();
        let p = KernelProfile {
            smem_accesses_per_instance: 2,
            movement_occurrences_per_block: 10,
            movement_volume_per_occurrence: 100,
            smem_bytes_per_block: 1024,
            device_syncs: 5,
            ..base_profile()
        };
        let t = p.estimate(&m).unwrap();
        let parts = t.compute_ms + t.global_ms + t.smem_ms + t.movement_ms + t.device_sync_ms;
        assert!((parts - t.total_ms).abs() < 1e-9 * t.total_ms.max(1.0));
    }
}
