//! Functional block-parallel execution of mapped kernels.
//!
//! [`execute_blocked`] runs a tiled program the way the paper's GPU
//! runs it: an outer sequence of *rounds* (values of the round dims,
//! with a device-wide barrier between consecutive rounds — the
//! inter-thread-block synchronisation of the Jacobi kernel), each
//! round launching a grid of *blocks* (values of the block dims) that
//! execute independently. Blocks may run on real parallel threads
//! (std scoped threads, one pool slot per simulated
//! multiprocessor); determinism is preserved by buffering each block's
//! global writes in an overlay that is merged in block order at the
//! end of its round — exactly the visibility rule of the hardware
//! (writes are not guaranteed visible to other blocks until the
//! barrier).
//!
//! With `use_scratchpad`, each block stages data through local buffers
//! using the full §3 pipeline — `analyze_program` on the block's
//! restricted view, generated move-in code, rewritten accesses,
//! generated move-out code — so the executor is an end-to-end test of
//! the compiler: the test-suite compares final array contents
//! bit-exactly against the reference interpreter.

use crate::compiled::{run_compiled, LaunchShared};
use crate::config::MachineConfig;
use crate::dma::{DmaEngine, DmaStats, DmaTag};
use crate::overlay::{flatten, Overlay};
use crate::trace::PassProfiler;
use crate::{MachineError, Result};
use polymem_core::smem::{
    analyze_program_timed, analyze_symbolic_hier, delta_transfer_list, flush_transfer_list,
    parametrize_dims, plan_key, transfer_list, AccessId, ArtifactKey, ArtifactStore, Direction,
    HierPlan, HierSpec, LocalBuffer, PlanArtifact, ResidencyPlan, RetainPlan, SmemConfig, SmemPlan,
    SymbolicPlan,
};
use polymem_core::tiling::transform::fix_dims;
use polymem_ir::{ArrayStore, Program};
use polymem_poly::bounds::{bound_cascade, DimBounds};
use polymem_poly::count::{enumerate_points, enumerate_with_cascade};
use polymem_poly::{Constraint, Polyhedron};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A tiled program mapped onto the two-level machine.
#[derive(Clone, Debug)]
pub struct BlockedKernel {
    /// The tiled program.
    pub program: Program,
    /// Sequential dims with a device-wide barrier between values
    /// (outermost first). Empty for sync-free kernels like ME.
    pub round_dims: Vec<String>,
    /// Dims enumerated across thread blocks.
    pub block_dims: Vec<String>,
    /// Sequential sub-tile dims *inside* a block (the paper's middle
    /// tiling level, executed one sub-tile at a time to respect the
    /// scratchpad limit). Scratchpad staging then happens per
    /// sub-tile, with §4.2 hoisting: buffers none of whose references
    /// depend on these dims are staged once per block and written back
    /// once at the end.
    pub seq_dims: Vec<String>,
    /// Dims distributed across the *inner* processes (threads) of one
    /// block. With [`MachineConfig::hierarchy`] on, the §3 pipeline
    /// runs a second time over the intra-thread subnest and promotes
    /// reused scratchpad data into per-thread register frames
    /// (smem → reg move-in, reg → smem move-out). Empty = no register
    /// level.
    pub thread_dims: Vec<String>,
    /// Stage per-block data through scratchpad buffers (§3 pipeline).
    pub use_scratchpad: bool,
}

/// Counters collected by the functional executor.
///
/// Equality compares every *deterministic* counter and ignores
/// [`compute_ns`](ExecStats::compute_ns), which is wall-clock time and
/// varies run to run (the parallel-determinism tests assert stats
/// equality).
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Thread blocks executed.
    pub blocks: u64,
    /// Statement instances executed.
    pub instances: u64,
    /// Global-memory element reads (incl. move-in traffic).
    pub global_reads: u64,
    /// Global-memory element writes (incl. move-out traffic).
    pub global_writes: u64,
    /// Scratchpad element reads.
    pub smem_reads: u64,
    /// Scratchpad element writes.
    pub smem_writes: u64,
    /// Elements moved global → scratchpad.
    pub moved_in: u64,
    /// Elements moved scratchpad → global.
    pub moved_out: u64,
    /// Rounds executed (device-wide barriers = rounds - 1).
    pub rounds: u64,
    /// Peak scratchpad words used by any single block.
    pub max_smem_words: u64,
    /// Sub-blocks whose scratchpad plan was instantiated from the
    /// shared symbolic plan (compile-once-per-shape reuse).
    pub plan_cache_hits: u64,
    /// Sub-blocks that required a fresh §3 analysis (the one symbolic
    /// warm-up analysis counts as a miss, as does any block whose
    /// fixed-dim shape differs from the representative).
    pub plan_cache_misses: u64,
    /// Modeled cycles one block spent (compute + exposed transfer
    /// time); summed over blocks by [`absorb`](ExecStats::absorb).
    pub block_cycles: u64,
    /// Modeled device cycles for the whole launch: per round, the
    /// slowest block's cycles times the number of occupancy waves,
    /// plus the device-wide barrier cost (top-level only).
    pub modeled_cycles: u64,
    /// Buffer stagings issued asynchronously ahead of compute
    /// (double-buffer prefetches).
    pub overlap_groups: u64,
    /// Buffer stagings forced synchronous by a seq-carried flow
    /// dependence while double buffering was on.
    pub sync_groups: u64,
    /// Scratchpad reads avoided because the access hit a register
    /// frame instead (level-2 hits; charged near-zero latency).
    pub smem_loads_saved: u64,
    /// Bytes moved between scratchpad and register frames (level-2
    /// move-in + move-out traffic).
    pub reg_bytes_moved: u64,
    /// Register frame sets staged (one per thread key per sub-block
    /// compute phase).
    pub hier_groups: u64,
    /// Elements kept resident in scratchpad across consecutive
    /// sub-tiles (re-based in place instead of re-transferred).
    pub retained_elems: u64,
    /// Elements transferred as residency deltas (the only move-in
    /// traffic of a residency-staged group).
    pub delta_elems: u64,
    /// Move-out elements flushed as residency flush deltas: when
    /// [`RetainPlan::flush_legal`] holds, elements the successor
    /// sub-tile overwrites anyway are skipped and only these cross the
    /// bus.
    pub flushed_delta_elems: u64,
    /// Buffer stagings served by the residency pass (retain + delta
    /// instead of a full move-in).
    pub residency_groups: u64,
    /// Sub-block compute phases executed by the compiled engine.
    /// Engine attribution (this field, `interpreted_blocks` and
    /// `fallback`) is excluded from stats equality: the whole point of
    /// comparing stats across engines is that everything *else*
    /// matches.
    pub compiled_blocks: u64,
    /// Sub-block compute phases that ran on the per-point interpreter.
    pub interpreted_blocks: u64,
    /// Why interpreted phases fell back (one count per phase).
    pub fallback: FallbackStats,
    /// DMA transfer-engine counters ([`crate::dma`]).
    pub dma: DmaStats,
    /// Wall-clock nanoseconds spent in block compute phases (compiled
    /// or interpreted), summed across blocks by
    /// [`absorb`](ExecStats::absorb). Excluded from equality.
    pub compute_ns: u64,
}

/// Reasons a sub-block compute phase used the interpreter instead of
/// the compiled engine. Before these counters existed, the default
/// CLI path (hierarchy on) silently interpreted every block while
/// reporting compute time as if the compiled engine were on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FallbackStats {
    /// Compiled execution was off for the launch: the config flag,
    /// naive mode, or a body that failed to compile to bytecode.
    pub engine_off: u64,
    /// The sub-block's scratchpad plan was analysed per-block (owned),
    /// so there is no shared shape to key compiled streams on.
    pub owned_plan: u64,
    /// The block shape failed to compile (unbounded cascade, or a
    /// plan/dim-layout mismatch); parked so same-shape blocks skip the
    /// retry.
    pub shape_uncompiled: u64,
    /// The compiled engine declined at run time, before any effect
    /// (parameter mismatch, foreign store, unbounded proof box).
    pub runtime_decline: u64,
}

impl FallbackStats {
    /// Total interpreted-phase fallbacks.
    pub fn total(&self) -> u64 {
        self.engine_off + self.owned_plan + self.shape_uncompiled + self.runtime_decline
    }

    fn absorb(&mut self, o: &FallbackStats) {
        self.engine_off += o.engine_off;
        self.owned_plan += o.owned_plan;
        self.shape_uncompiled += o.shape_uncompiled;
        self.runtime_decline += o.runtime_decline;
    }
}

impl PartialEq for ExecStats {
    fn eq(&self, o: &ExecStats) -> bool {
        self.blocks == o.blocks
            && self.instances == o.instances
            && self.global_reads == o.global_reads
            && self.global_writes == o.global_writes
            && self.smem_reads == o.smem_reads
            && self.smem_writes == o.smem_writes
            && self.moved_in == o.moved_in
            && self.moved_out == o.moved_out
            && self.rounds == o.rounds
            && self.max_smem_words == o.max_smem_words
            && self.plan_cache_hits == o.plan_cache_hits
            && self.plan_cache_misses == o.plan_cache_misses
            && self.block_cycles == o.block_cycles
            && self.modeled_cycles == o.modeled_cycles
            && self.overlap_groups == o.overlap_groups
            && self.sync_groups == o.sync_groups
            && self.smem_loads_saved == o.smem_loads_saved
            && self.reg_bytes_moved == o.reg_bytes_moved
            && self.hier_groups == o.hier_groups
            && self.retained_elems == o.retained_elems
            && self.delta_elems == o.delta_elems
            && self.flushed_delta_elems == o.flushed_delta_elems
            && self.residency_groups == o.residency_groups
            && self.dma == o.dma
    }
}

impl Eq for ExecStats {}

impl ExecStats {
    /// Merge another stats block into this one. Field-complete:
    /// every counter is summed (`max_smem_words` maxes; `dma`
    /// delegates to [`DmaStats::absorb`]). `rounds` and
    /// `modeled_cycles` are incremented at the top level of
    /// [`execute_blocked_profiled`] and are always zero in per-block
    /// stats, but they are summed here too so the merge stays correct
    /// if per-block stats ever carry them.
    pub fn absorb(&mut self, o: &ExecStats) {
        self.blocks += o.blocks;
        self.instances += o.instances;
        self.global_reads += o.global_reads;
        self.global_writes += o.global_writes;
        self.smem_reads += o.smem_reads;
        self.smem_writes += o.smem_writes;
        self.moved_in += o.moved_in;
        self.moved_out += o.moved_out;
        self.rounds += o.rounds;
        self.max_smem_words = self.max_smem_words.max(o.max_smem_words);
        self.plan_cache_hits += o.plan_cache_hits;
        self.plan_cache_misses += o.plan_cache_misses;
        self.block_cycles += o.block_cycles;
        self.modeled_cycles += o.modeled_cycles;
        self.overlap_groups += o.overlap_groups;
        self.sync_groups += o.sync_groups;
        self.smem_loads_saved += o.smem_loads_saved;
        self.reg_bytes_moved += o.reg_bytes_moved;
        self.hier_groups += o.hier_groups;
        self.retained_elems += o.retained_elems;
        self.delta_elems += o.delta_elems;
        self.flushed_delta_elems += o.flushed_delta_elems;
        self.residency_groups += o.residency_groups;
        self.compiled_blocks += o.compiled_blocks;
        self.interpreted_blocks += o.interpreted_blocks;
        self.fallback.absorb(&o.fallback);
        self.dma.absorb(&o.dma);
        self.compute_ns += o.compute_ns;
    }
}

/// The scratchpad plan a sub-block executes with: either freshly
/// analysed for this instance, or a shared symbolic plan evaluated at
/// the instance's fixed-dim values.
enum PlanRef {
    Owned(SmemPlan),
    Shared(Arc<SymbolicPlan>),
}

impl PlanRef {
    fn plan(&self) -> &SmemPlan {
        match self {
            PlanRef::Owned(p) => p,
            PlanRef::Shared(s) => &s.plan,
        }
    }

    /// Map a full-space instance point into the plan's iteration
    /// space (the symbolic plan drops the fixed dims).
    fn project<'a>(&self, si: usize, point: &'a [i64]) -> Cow<'a, [i64]> {
        match self {
            PlanRef::Owned(_) => Cow::Borrowed(point),
            PlanRef::Shared(s) => Cow::Owned(s.project_point(si, point)),
        }
    }
}

/// Shared memo of the one-per-shape symbolic scratchpad plan, keyed on
/// the (sorted) fixed-dim names of a sub-block's restricted view.
/// Warmed once before workers spawn; lookups from parallel block
/// workers are read-only, so hit/miss counts are deterministic and
/// identical between sequential and parallel execution.
struct PlanCache {
    plans: RwLock<HashMap<Vec<String>, Option<Arc<SymbolicPlan>>>>,
    /// Per-shape symbolic instance-enumeration plans (lazily built).
    enums: RwLock<HashMap<Vec<String>, Option<Arc<EnumPlan>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Compile-once-per-shape instance enumeration: the bound cascade of
/// every statement domain with the block's fixed dims turned into
/// parameters. Enumerating a concrete sub-block is then bound
/// *evaluation* at `params ++ fixed values` — no per-block
/// Fourier–Motzkin. Disabled in the polyhedral core's naive mode so
/// the pre-optimization baseline stays measurable.
struct EnumPlan {
    /// Fixed-dim names in the order their values extend the params.
    fixed: Vec<String>,
    stmts: Vec<StmtEnum>,
}

struct StmtEnum {
    /// The statement domain with the fixed dims as parameters.
    domain: Polyhedron,
    cascade: Vec<DimBounds>,
    /// Original dim index of each symbolic dim, in order.
    kept: Vec<usize>,
    /// `(original dim index, index into the fixed-name list)` for each
    /// fixed dim present in this statement.
    fixed_pos: Vec<(usize, usize)>,
    /// Dim count of the original (full-space) statement domain.
    n_full: usize,
}

impl EnumPlan {
    fn build(program: &Program, fixed_names: &[String]) -> Option<EnumPlan> {
        let sym = parametrize_dims(program, fixed_names).ok()?;
        let mut stmts = Vec::with_capacity(sym.stmts.len());
        for (si, s) in sym.stmts.iter().enumerate() {
            let cascade = bound_cascade(&s.domain).ok()?;
            let orig_dims = program.stmts[si].domain.space().dims();
            let kept: Vec<usize> = (0..orig_dims.len())
                .filter(|&i| !fixed_names.contains(&orig_dims[i]))
                .collect();
            let fixed_pos: Vec<(usize, usize)> = (0..orig_dims.len())
                .filter_map(|i| {
                    fixed_names
                        .iter()
                        .position(|n| *n == orig_dims[i])
                        .map(|fi| (i, fi))
                })
                .collect();
            stmts.push(StmtEnum {
                domain: s.domain.clone(),
                cascade,
                kept,
                fixed_pos,
                n_full: orig_dims.len(),
            });
        }
        Some(EnumPlan {
            fixed: fixed_names.to_vec(),
            stmts,
        })
    }

    /// `params ++ fixed values`, or `None` on a shape mismatch.
    fn ext_params(&self, params: &[i64], fixed: &HashMap<String, i64>) -> Option<Vec<i64>> {
        if fixed.len() != self.fixed.len() {
            return None;
        }
        let mut out = Vec::with_capacity(params.len() + self.fixed.len());
        out.extend_from_slice(params);
        for name in &self.fixed {
            out.push(*fixed.get(name)?);
        }
        Some(out)
    }

    /// Enumerate statement `si`'s instances for the block at `ext`,
    /// reconstructing full-space points. Errors (unbounded cascade,
    /// exceeded budget) surface so the caller can fall back to the
    /// per-block path.
    fn enumerate(
        &self,
        si: usize,
        ext: &[i64],
        budget: u64,
        out: &mut Vec<(usize, Vec<i64>)>,
    ) -> polymem_poly::Result<()> {
        let se = &self.stmts[si];
        let n_params = ext.len() - self.fixed.len();
        enumerate_with_cascade(&se.domain, &se.cascade, ext, budget, &mut |p| {
            let mut full = vec![0i64; se.n_full];
            for (k, &d) in se.kept.iter().enumerate() {
                full[d] = p[k];
            }
            for &(d, fi) in &se.fixed_pos {
                full[d] = ext[n_params + fi];
            }
            out.push((si, full));
        })
    }
}

/// Where the launch's shared symbolic plan came from (see
/// [`execute_blocked_seeded`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// The caller-provided in-memory seed (a compile service's warm
    /// cache) matched this launch's shape and was reused as-is.
    Seeded,
    /// Loaded — and re-proved against the program — from the
    /// content-addressed artifact store.
    Artifact,
    /// Freshly analysed by the §3 pipeline this launch.
    Fresh,
}

/// A launch's shared symbolic plan together with where it came from —
/// what seeded entry points hand back for the caller's warm cache.
pub type WarmedPlan = (Arc<SymbolicPlan>, PlanSource);

/// Mapping-relevant machine-model fields folded into the plan
/// artifact key: everything that changes which symbolic plan a launch
/// computes or consumes. Performance-only knobs (latencies, clocks,
/// DMA shape) deliberately stay out, so retuning the cost model never
/// invalidates compiled plans.
pub(crate) fn machine_salt(config: &MachineConfig) -> [u64; 11] {
    [
        // Capability bits replace the old machine-kind discriminant:
        // each flag changes what the §3 pipeline decides, so each gets
        // its own bit. Mesh geometry stays out (routes change cycles,
        // never plans).
        config.caps.must_stage as u64
            | (config.caps.in_place_compute as u64) << 1
            | (config.caps.placement_cost as u64) << 2
            | (config.caps.hardware_cache as u64) << 3,
        config.smem_bytes,
        config.word_bytes,
        config.plan_cache as u64,
        config.double_buffer as u64,
        config.compiled_exec as u64,
        config.regs_per_inner,
        config.hierarchy as u64,
        config.vector_width,
        config.residency as u64,
        config.partition as u64,
    ]
}

/// Pin `kernel`'s block and seq dims (and, with hierarchy on, the
/// thread dims) at their first enumerated values, extending `rep`
/// (which already holds the representative round values). Returns the
/// register-level spec, if any.
fn complete_representative(
    kernel: &BlockedKernel,
    params: &[i64],
    config: &MachineConfig,
    lead: &polymem_ir::Statement,
    rep: &mut HashMap<String, i64>,
) -> Result<Option<HierSpec>> {
    let bvals = enumerate_named(lead, &kernel.block_dims, params, rep, config.enum_budget)?;
    if let Some(b0) = bvals.first() {
        for (n, v) in kernel.block_dims.iter().zip(b0) {
            rep.insert(n.clone(), *v);
        }
    }
    if !kernel.seq_dims.is_empty() {
        let svals = enumerate_named(lead, &kernel.seq_dims, params, rep, config.enum_budget)?;
        if let Some(s0) = svals.first() {
            for (n, v) in kernel.seq_dims.iter().zip(s0) {
                rep.insert(n.clone(), *v);
            }
        }
    }
    // Register-tile level: analyse the intra-thread subnest of the
    // representative block with the thread dims as extra fixed
    // dims. The representative thread values feed Algorithm 1's
    // volume test exactly like the representative block values do.
    if config.hierarchy && !kernel.thread_dims.is_empty() {
        let tvals = enumerate_named(lead, &kernel.thread_dims, params, rep, config.enum_budget)?;
        return Ok(tvals.first().map(|t0| HierSpec {
            thread_dims: kernel.thread_dims.clone(),
            thread_reps: kernel
                .thread_dims
                .iter()
                .cloned()
                .zip(t0.iter().copied())
                .collect(),
            regs_per_inner: config.regs_per_inner,
        }));
    }
    Ok(None)
}

/// The content address of the symbolic plan [`execute_blocked`] would
/// compile for this launch: the program IR, the mapping-relevant
/// machine fields and the representative block-shape parametrization,
/// hashed per `polymem_core::smem::artifact`. `None` when the mapping
/// stages nothing through the plan cache (no scratchpad, no
/// statements, or the cache disabled). Stable across processes — a
/// compile service keys its warm cache and the on-disk store with it.
pub fn plan_artifact_key(
    kernel: &BlockedKernel,
    params: &[i64],
    config: &MachineConfig,
) -> Result<Option<ArtifactKey>> {
    if !kernel.use_scratchpad || !config.plan_cache {
        return Ok(None);
    }
    let Some(lead) = kernel.program.stmts.first() else {
        return Ok(None);
    };
    let round_vals = enumerate_named(
        lead,
        &kernel.round_dims,
        params,
        &HashMap::new(),
        config.enum_budget,
    )?;
    let mut rep: HashMap<String, i64> = HashMap::new();
    if let Some(r0) = round_vals.first() {
        for (n, v) in kernel.round_dims.iter().zip(r0) {
            rep.insert(n.clone(), *v);
        }
    }
    let hier_spec = complete_representative(kernel, params, config, lead, &mut rep)?;
    let mut pairs: Vec<(String, i64)> = rep.into_iter().collect();
    pairs.sort();
    Ok(Some(plan_key(
        &kernel.program,
        &smem_config(params, config, kernel),
        &pairs,
        hier_spec.as_ref(),
        &machine_salt(config),
    )))
}

/// Obtain the shared symbolic plan [`execute_blocked`] would launch
/// with, without executing anything: a compile service's `analyze`
/// entry point. Consults the caller's `seed` and the configured
/// artifact store exactly like execution does — and persists fresh
/// analyses the same way — so a later `run` of the same launch finds
/// the plan warm. `None` when nothing stages through the plan cache.
pub fn warm_plan(
    kernel: &BlockedKernel,
    params: &[i64],
    config: &MachineConfig,
    profiler: Option<&PassProfiler>,
    seed: Option<&Arc<SymbolicPlan>>,
) -> Result<Option<WarmedPlan>> {
    kernel.program.validate()?;
    if !kernel.use_scratchpad || !config.plan_cache {
        return Ok(None);
    }
    let Some(lead) = kernel.program.stmts.first() else {
        return Ok(None);
    };
    let round_vals = enumerate_named(
        lead,
        &kernel.round_dims,
        params,
        &HashMap::new(),
        config.enum_budget,
    )?;
    let mut rep: HashMap<String, i64> = HashMap::new();
    if let Some(r0) = round_vals.first() {
        for (n, v) in kernel.round_dims.iter().zip(r0) {
            rep.insert(n.clone(), *v);
        }
    }
    let hier_spec = complete_representative(kernel, params, config, lead, &mut rep)?;
    let art_store = config
        .artifact_dir
        .as_ref()
        .and_then(|d| ArtifactStore::open(d).ok());
    let akey = if art_store.is_some() || seed.is_some() {
        let mut pairs: Vec<(String, i64)> = rep.iter().map(|(k, v)| (k.clone(), *v)).collect();
        pairs.sort();
        Some(plan_key(
            &kernel.program,
            &smem_config(params, config, kernel),
            &pairs,
            hier_spec.as_ref(),
            &machine_salt(config),
        ))
    } else {
        None
    };
    Ok(PlanCache::new().warm(
        &kernel.program,
        &rep,
        &smem_config(params, config, kernel),
        hier_spec.as_ref(),
        profiler,
        seed,
        art_store.as_ref(),
        akey,
    ))
}

impl PlanCache {
    fn new() -> PlanCache {
        PlanCache {
            plans: RwLock::new(HashMap::new()),
            enums: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The per-shape enumeration plan for this sub-block's fixed-dim
    /// set, built on first use. A shape whose construction fails parks
    /// `None` so every same-shape block uses the per-block path.
    fn enum_plan(&self, fixed: &HashMap<String, i64>, program: &Program) -> Option<Arc<EnumPlan>> {
        let key = Self::key(fixed);
        if let Some(entry) = self.enums.read().unwrap().get(&key) {
            return entry.clone();
        }
        let built = EnumPlan::build(program, &key).map(Arc::new);
        let mut map = self.enums.write().unwrap();
        map.entry(key).or_insert(built).clone()
    }

    fn key(fixed: &HashMap<String, i64>) -> Vec<String> {
        let mut k: Vec<String> = fixed.keys().cloned().collect();
        k.sort();
        k
    }

    /// Prime the cache with the representative instance's symbolic
    /// plan (counted as the one miss all same-shape blocks share),
    /// cheapest source first:
    ///
    /// 1. a caller-provided in-memory `seed` whose fixed names match
    ///    this shape (a compile service's warm cache);
    /// 2. the content-addressed artifact `store` under `akey` —
    ///    loads are fully re-proved against `program`, so a corrupt or
    ///    stale file silently degrades to the next source;
    /// 3. a fresh `analyze_symbolic_hier` run. Only this source
    ///    absorbs §3 pass times into the profiler (the others skipped
    ///    the passes) and, when a store is configured, persists the
    ///    result for future processes.
    ///
    /// A failed symbolic analysis parks `None`, making every block
    /// fall back to per-instance analysis. Returns the shared plan and
    /// where it came from.
    #[allow(clippy::too_many_arguments)]
    fn warm(
        &self,
        program: &Program,
        rep: &HashMap<String, i64>,
        cfg: &SmemConfig,
        hier: Option<&HierSpec>,
        profiler: Option<&PassProfiler>,
        seed: Option<&Arc<SymbolicPlan>>,
        store: Option<&ArtifactStore>,
        akey: Option<ArtifactKey>,
    ) -> Option<WarmedPlan> {
        let mut pairs: Vec<(String, i64)> = rep.iter().map(|(k, v)| (k.clone(), *v)).collect();
        pairs.sort();
        let key: Vec<String> = pairs.iter().map(|p| p.0.clone()).collect();
        let seeded = seed
            .filter(|sp| sp.fixed == key)
            .map(|sp| (sp.clone(), PlanSource::Seeded));
        let entry = seeded
            .or_else(|| {
                let art = store.and_then(|s| s.load(&akey?, program))?;
                (art.plan.fixed == key).then(|| (Arc::new(art.plan), PlanSource::Artifact))
            })
            .or_else(|| {
                let sp = analyze_symbolic_hier(program, &pairs, cfg, hier).ok()?;
                if let Some(pr) = profiler {
                    pr.absorb_pass_times(&sp.pass_times);
                }
                if let (Some(s), Some(k)) = (store, akey) {
                    let mut ext = cfg.sample_params.clone();
                    ext.extend(pairs.iter().map(|p| p.1));
                    if let Ok(art) = PlanArtifact::build(program, &sp, k, &ext) {
                        let _ = s.save(&art);
                    }
                }
                Some((Arc::new(sp), PlanSource::Fresh))
            });
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.plans
            .write()
            .unwrap()
            .insert(key, entry.as_ref().map(|(sp, _)| sp.clone()));
        entry
    }

    /// A shared plan for this sub-block's shape, counting the lookup.
    fn get(&self, fixed: &HashMap<String, i64>) -> Option<Arc<SymbolicPlan>> {
        let key = Self::key(fixed);
        let entry = self.plans.read().unwrap().get(&key).cloned();
        match entry {
            Some(Some(sp)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(sp)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

/// Execute a mapped kernel functionally.
///
/// `parallel` runs each round's blocks on up to `config.n_outer`
/// worker threads; results are bit-identical to sequential execution.
pub fn execute_blocked(
    kernel: &BlockedKernel,
    params: &[i64],
    store: &mut ArrayStore,
    config: &MachineConfig,
    parallel: bool,
) -> Result<ExecStats> {
    execute_blocked_profiled(kernel, params, store, config, parallel, None)
}

/// [`execute_blocked`] with an optional pass-level profiler: compiler
/// passes (§3 pipeline) and executor phases (move-in, compute,
/// move-out, barrier) accumulate real wall-clock time into it.
pub fn execute_blocked_profiled(
    kernel: &BlockedKernel,
    params: &[i64],
    store: &mut ArrayStore,
    config: &MachineConfig,
    parallel: bool,
    profiler: Option<&PassProfiler>,
) -> Result<ExecStats> {
    execute_blocked_seeded(kernel, params, store, config, parallel, profiler, None)
        .map(|(stats, _)| stats)
}

/// [`execute_blocked_profiled`] with plan seeding: a caller holding a
/// still-valid symbolic plan (a compile service's warm cache) passes
/// it as `seed` and the launch skips the §3 pipeline entirely when the
/// shapes match. Independently, when `config.artifact_dir` is set, the
/// launch consults the content-addressed on-disk store before
/// analysing and persists freshly computed plans into it. Returns the
/// shared plan alongside where it came from, so services can keep it
/// warm for the next request.
pub fn execute_blocked_seeded(
    kernel: &BlockedKernel,
    params: &[i64],
    store: &mut ArrayStore,
    config: &MachineConfig,
    parallel: bool,
    profiler: Option<&PassProfiler>,
    seed: Option<&Arc<SymbolicPlan>>,
) -> Result<(ExecStats, Option<WarmedPlan>)> {
    kernel.program.validate()?;
    let program = &kernel.program;

    // Enumerate round values from the first statement that has all
    // round dims (programs with no statements do nothing).
    let mut stats = ExecStats::default();
    let Some(lead) = program.stmts.first() else {
        return Ok((stats, None));
    };
    // Per-launch shared state: hoisted common-depth matrix, global
    // extents/weights, compiled bodies and the compiled-shape cache.
    let launch = LaunchShared::new(program, params, config)?;
    let launch = &launch;
    // Test hook: `POLYMEM_FAULT_PANIC_BLOCK=<idx>` makes the parallel
    // worker for that block index panic (exercises WorkerPanicked).
    let fault_block: Option<usize> = std::env::var("POLYMEM_FAULT_PANIC_BLOCK")
        .ok()
        .and_then(|s| s.parse().ok());
    let round_vals = enumerate_named(
        lead,
        &kernel.round_dims,
        params,
        &HashMap::new(),
        config.enum_budget,
    )?;
    let rounds = if round_vals.is_empty() {
        vec![Vec::new()]
    } else {
        round_vals
    };

    // Compile-once-per-shape: analyse one representative sub-block
    // symbolically (fixed dims as parameters) before any worker runs,
    // so every same-shape block instantiates the shared plan instead
    // of re-running the §3 pipeline. Warming up-front (rather than
    // filling on first use) keeps hit/miss counts deterministic under
    // parallel execution.
    let cache = if kernel.use_scratchpad && config.plan_cache {
        Some(PlanCache::new())
    } else {
        None
    };
    let mut warmed: Option<WarmedPlan> = None;
    if let Some(c) = &cache {
        let mut rep: HashMap<String, i64> = HashMap::new();
        for (n, v) in kernel.round_dims.iter().zip(rounds[0].iter()) {
            rep.insert(n.clone(), *v);
        }
        let hier_spec = complete_representative(kernel, params, config, lead, &mut rep)?;
        // The on-disk store and the content-address are only computed
        // when someone can use them: a configured artifact dir, or a
        // caller-provided seed (whose provider keys by the same hash).
        let art_store = config
            .artifact_dir
            .as_ref()
            .and_then(|d| ArtifactStore::open(d).ok());
        let akey = if art_store.is_some() || seed.is_some() {
            let mut pairs: Vec<(String, i64)> = rep.iter().map(|(k, v)| (k.clone(), *v)).collect();
            pairs.sort();
            Some(plan_key(
                program,
                &smem_config(params, config, kernel),
                &pairs,
                hier_spec.as_ref(),
                &machine_salt(config),
            ))
        } else {
            None
        };
        warmed = c.warm(
            program,
            &rep,
            &smem_config(params, config, kernel),
            hier_spec.as_ref(),
            profiler,
            seed,
            art_store.as_ref(),
            akey,
        );
    }
    let cache = cache.as_ref();

    // Double-buffer legality (§3.1.4 dependence information, reused):
    // read accesses reached by a seq-carried flow dependence within a
    // block may not be prefetched ahead of the writing sub-tile.
    // Computed once per launch, shared read-only by all workers.
    let poisoned: Option<HashSet<AccessId>> =
        if kernel.use_scratchpad && config.double_buffer && !kernel.seq_dims.is_empty() {
            Some(overlap_poisoned_reads(kernel)?)
        } else {
            None
        };
    let poisoned = poisoned.as_ref();

    for round in &rounds {
        let mut fixed_round: HashMap<String, i64> = HashMap::new();
        for (n, v) in kernel.round_dims.iter().zip(round) {
            fixed_round.insert(n.clone(), *v);
        }
        let block_vals = enumerate_named(
            lead,
            &kernel.block_dims,
            params,
            &fixed_round,
            config.enum_budget,
        )?;
        let blocks = if block_vals.is_empty() {
            vec![Vec::new()]
        } else {
            block_vals
        };

        // Execute every block of this round against the same store
        // snapshot, buffering writes.
        let run_block = |bv: &Vec<i64>, bidx: u64| -> Result<(Overlay, ExecStats)> {
            let mut fixed = fixed_round.clone();
            for (n, v) in kernel.block_dims.iter().zip(bv) {
                fixed.insert(n.clone(), *v);
            }
            execute_one_block(
                kernel, &fixed, params, store, config, cache, profiler, poisoned, launch, bidx,
            )
        };

        let results: Vec<(Overlay, ExecStats)> = if parallel && blocks.len() > 1 {
            let workers = config.n_outer.max(1) as usize;
            let mut out: Vec<Option<(Overlay, ExecStats)>> = vec![None; blocks.len()];
            let err = std::sync::Mutex::new(None::<MachineError>);
            std::thread::scope(|scope| {
                let chunk = blocks.len().div_ceil(workers);
                for (ci, (bchunk, ochunk)) in
                    blocks.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
                {
                    let err = &err;
                    let run_block = &run_block;
                    scope.spawn(move || {
                        for (k, (b, o)) in bchunk.iter().zip(ochunk.iter_mut()).enumerate() {
                            let block = ci * chunk + k;
                            // A panicking worker (a compiler/executor bug,
                            // or an injected fault) must surface as a typed
                            // error, not abort the whole process.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if fault_block == Some(block) {
                                        panic!("injected fault in block worker {block}");
                                    }
                                    run_block(b, block as u64)
                                }));
                            match outcome {
                                Ok(Ok(r)) => *o = Some(r),
                                Ok(Err(e)) => {
                                    err.lock().unwrap().get_or_insert(e);
                                    return;
                                }
                                Err(_) => {
                                    err.lock()
                                        .unwrap()
                                        .get_or_insert(MachineError::WorkerPanicked { block });
                                    return;
                                }
                            }
                        }
                    });
                }
            });
            if let Some(e) = err.into_inner().unwrap() {
                return Err(e);
            }
            out.into_iter()
                .map(|o| o.expect("block completed"))
                .collect()
        } else {
            let mut v = Vec::with_capacity(blocks.len());
            for (bidx, b) in blocks.iter().enumerate() {
                v.push(run_block(b, bidx as u64)?);
            }
            v
        };

        // Merge overlays deterministically, in block order (the
        // device-wide barrier: writes become visible between rounds).
        let t0 = Instant::now();
        let mut round_max_cycles = 0u64;
        let mut round_max_words = 0u64;
        for (overlay, bstats) in &results {
            overlay.merge_into(program, store)?;
            round_max_cycles = round_max_cycles.max(bstats.block_cycles);
            round_max_words = round_max_words.max(bstats.max_smem_words);
            stats.absorb(bstats);
        }
        if let Some(pr) = profiler {
            pr.record(crate::trace::PassKind::Barrier, t0.elapsed());
        }
        // Device time for this round: the slowest block, times the
        // number of occupancy waves (§5), plus the barrier cost.
        let nblocks = results.len() as u64;
        let conc = config
            .concurrent_blocks(round_max_words * config.word_bytes)
            .max(1);
        let sync = (config.device_sync_base + config.device_sync_per_block * nblocks as f64).round()
            as u64;
        stats.modeled_cycles += round_max_cycles * nblocks.div_ceil(conc) + sync;
        stats.rounds += 1;
    }
    if let Some(c) = cache {
        stats.plan_cache_hits = c.hits.load(Ordering::Relaxed);
        stats.plan_cache_misses = c.misses.load(Ordering::Relaxed);
    }
    Ok((stats, warmed))
}

/// The §3 configuration the executor analyses (and warms) with. The
/// residency dim (innermost `seq_dims` entry) only affects the shared
/// symbolic analysis; per-instance (owned) analysis ignores it.
pub(crate) fn smem_config(
    params: &[i64],
    config: &MachineConfig,
    kernel: &BlockedKernel,
) -> SmemConfig {
    SmemConfig {
        sample_params: params.to_vec(),
        must_copy_all: config.caps.must_stage,
        staging_pays: config.staging_pays(),
        partition: config.partition,
        residency_dim: if config.residency {
            kernel.seq_dims.last().cloned()
        } else {
            None
        },
        ..SmemConfig::default()
    }
}

/// Enumerate the values of the named dims of a statement's domain
/// (projected), with some dims already fixed.
pub(crate) fn enumerate_named(
    stmt: &polymem_ir::Statement,
    names: &[String],
    params: &[i64],
    fixed: &HashMap<String, i64>,
    budget: u64,
) -> Result<Vec<Vec<i64>>> {
    if names.is_empty() {
        return Ok(Vec::new());
    }
    let dom = fix_dims(&stmt.domain, fixed);
    let keep: Vec<usize> = names
        .iter()
        .filter_map(|n| dom.space().find_dim(n))
        .collect();
    if keep.len() != names.len() {
        return Ok(Vec::new());
    }
    let proj = dom.project_onto(&keep)?;
    let concrete = proj.substitute_params(params)?;
    let mut out = Vec::new();
    enumerate_points(&concrete, budget, &mut |p| out.push(p.to_vec())).map_err(budget_error)?;
    Ok(out)
}

/// Map point-budget exhaustion to its typed machine error; everything
/// else stays a polyhedral error.
pub(crate) fn budget_error(e: polymem_poly::PolyError) -> MachineError {
    match e {
        polymem_poly::PolyError::TooManyPoints { budget } => {
            MachineError::EnumerationBudget { budget }
        }
        other => MachineError::Poly(other),
    }
}

/// Local scratchpad storage for one block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct LocalStore {
    /// Per buffer id: (flat data, extents, offsets).
    pub(crate) bufs: Vec<(Vec<i64>, Vec<i64>, Vec<i64>)>,
}

impl LocalStore {
    fn flat(&self, buf: usize, idx: &[i64]) -> Option<usize> {
        let (_, extents, _) = &self.bufs[buf];
        let mut off: i64 = 0;
        for (&i, &e) in idx.iter().zip(extents) {
            if i < 0 || i >= e {
                return None;
            }
            off = off * e + i;
        }
        Some(off as usize)
    }

    pub(crate) fn get(&self, buf: usize, idx: &[i64]) -> Result<i64> {
        let f = self.flat(buf, idx).ok_or_else(|| {
            MachineError::Ir(polymem_ir::IrError::OutOfBounds {
                array: format!("local buffer {buf}"),
                index: idx.to_vec(),
            })
        })?;
        Ok(self.bufs[buf].0[f])
    }

    pub(crate) fn set(&mut self, buf: usize, idx: &[i64], v: i64) -> Result<()> {
        let f = self.flat(buf, idx).ok_or_else(|| {
            MachineError::Ir(polymem_ir::IrError::OutOfBounds {
                array: format!("local buffer {buf}"),
                index: idx.to_vec(),
            })
        })?;
        self.bufs[buf].0[f] = v;
        Ok(())
    }
}

#[allow(clippy::too_many_lines)]
/// A buffer kept alive across a block's sequential sub-tiles because
/// none of its references depend on the sub-tile dims (§4.2 hoisting).
struct Persistent {
    buffer: polymem_core::smem::LocalBuffer,
    mc: polymem_core::smem::MovementCode,
    /// Parameter vector `buffer`/`mc` are affine in: the program
    /// params for an owned plan, `params ++ fixed` for a shared
    /// symbolic plan (hoisted buffers do not depend on the seq dims,
    /// so any captured seq value yields the same element set).
    pparams: Vec<i64>,
    data: Vec<i64>,
    extents: Vec<i64>,
    offsets: Vec<i64>,
    dirty: bool,
}

/// Write a persistent buffer's contents back to the (overlay of)
/// global memory, once, at the end of the block. The transfer is
/// modeled as a synchronous DMA list.
fn writeback_persistent(
    p: &Persistent,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    clock: &mut BlockClock,
    config: &MachineConfig,
) -> Result<()> {
    let flat = |idx: &[i64]| -> Option<usize> {
        let mut off: i64 = 0;
        for (&i, &e) in idx.iter().zip(&p.extents) {
            if i < 0 || i >= e {
                return None;
            }
            off = off * e + i;
        }
        Some(off as usize)
    };
    let mut err = None;
    let ext = &clock.ext[p.buffer.array];
    polymem_core::smem::movement::for_each_move_out(&p.mc, &p.buffer, &p.pparams, &mut |g, l| {
        if err.is_some() {
            return;
        }
        match flat(l) {
            Some(off) => {
                if let Err(e) =
                    overlay.set_idx(p.buffer.array, &p.buffer.array_name, g, ext, p.data[off])
                {
                    err = Some(MachineError::Ir(e));
                }
            }
            None => {
                err = Some(MachineError::Ir(polymem_ir::IrError::OutOfBounds {
                    array: format!("persistent L{}", p.buffer.array_name),
                    index: l.to_vec(),
                }))
            }
        }
        stats.global_writes += 1;
        stats.moved_out += 1;
    })?;
    if let Some(e) = err {
        return Err(e);
    }
    if clock.dma_on {
        let list = transfer_list(
            &p.mc,
            &p.buffer,
            Direction::Out,
            &clock.ext[p.buffer.array],
            &p.pparams,
        )?;
        let tag = clock
            .dma
            .issue_list(&list, config.word_bytes, clock.now, clock.now);
        clock.wait(&tag);
    }
    Ok(())
}

/// Arrays none of whose accesses depend on the kernel's seq dims:
/// their staged buffers are identical across sub-tiles and hoist.
///
/// Dependence can enter two ways: directly, through a nonzero seq-dim
/// coefficient in the subscript map, or indirectly, through a domain
/// constraint coupling a seq dim to a dim the subscripts read (e.g.
/// `j = jT` when the seq tile width is 1 — the `j` footprint slides
/// with `jT` even though no subscript mentions `jT`). The indirect
/// case matters because the buffer planner may drop such a dim as an
/// H-matrix row, leaving the kept-dim shape identical across
/// sub-tiles — hoisting would then alias distinct footprints.
pub(crate) fn seq_redundant_arrays(kernel: &BlockedKernel) -> std::collections::HashSet<usize> {
    let program = &kernel.program;
    (0..program.arrays.len())
        .filter(|&a| {
            program.stmts.iter().all(|s| {
                let dims = s.domain.space().dims();
                let seq_idx: Vec<usize> = kernel
                    .seq_dims
                    .iter()
                    .filter_map(|n| dims.iter().position(|d| d == n))
                    .collect();
                let clean = |acc: &polymem_ir::Access| {
                    if acc.array != a {
                        return true;
                    }
                    let m = acc.map.matrix();
                    let used: Vec<usize> = (0..dims.len())
                        .filter(|&d| (0..m.rows()).any(|r| m[(r, d)] != 0))
                        .collect();
                    seq_idx.iter().all(|&j| {
                        (0..m.rows()).all(|r| m[(r, j)] == 0)
                            && s.domain
                                .constraints()
                                .iter()
                                .all(|c| c.coeff(j) == 0 || used.iter().all(|&d| c.coeff(d) == 0))
                    })
                };
                clean(&s.write) && s.reads.iter().all(clean)
            })
        })
        .collect()
}

/// Per-block simulated clock plus its DMA engine: `now` advances with
/// modeled compute cycles, the engine tracks in-flight transfers.
/// Everything is deterministic integer arithmetic, so block stats are
/// identical between sequential and parallel execution.
struct BlockClock {
    now: u64,
    dma: DmaEngine,
    /// DMA modeling enabled (`dma_channels > 0`). When off, movement
    /// costs nothing in modeled time (the pre-DMA behaviour) and no
    /// descriptors are built.
    dma_on: bool,
    /// Concrete extents of every global array, for flattening
    /// descriptor addresses and overlay offsets (shared per launch).
    ext: Vec<Vec<i64>>,
}

impl BlockClock {
    fn new(ext: Vec<Vec<i64>>, config: &MachineConfig, block_idx: u64) -> BlockClock {
        BlockClock {
            now: 0,
            dma: DmaEngine::with_route(config, config.route_cycles(block_idx)),
            dma_on: config.dma_channels > 0,
            ext,
        }
    }

    /// Build the DMA list for one movement entry and queue it. The
    /// transfer starts no earlier than `earliest` (buffer-reuse
    /// dependence on the previous sub-tile's move-out).
    fn issue_movement(
        &mut self,
        plan: &SmemPlan,
        mi: usize,
        pparams: &[i64],
        dir: Direction,
        config: &MachineConfig,
        earliest: u64,
    ) -> Result<DmaTag> {
        if !self.dma_on {
            return Ok(DmaTag::immediate(self.now));
        }
        let mc = &plan.movement[mi];
        let buf = &plan.buffers[mc.buffer];
        let list = transfer_list(mc, buf, dir, &self.ext[buf.array], pparams)?;
        Ok(self
            .dma
            .issue_list(&list, config.word_bytes, self.now, earliest))
    }

    /// Queue the DMA list for a residency delta — the only elements
    /// that cross the bus. The local re-base rides the same channel
    /// first: retained atoms move scratchpad-to-scratchpad at 4× the
    /// global DMA rate, delaying the delta's start. The tag therefore
    /// always completes no later than the full transfer it replaces
    /// (the retained bytes leave the 1×-rate payload and come back as
    /// a 4×-rate local copy), in both the synchronous and the
    /// double-buffered schedule.
    fn issue_delta(
        &mut self,
        rp: &RetainPlan,
        buf: &LocalBuffer,
        pparams: &[i64],
        config: &MachineConfig,
        earliest: u64,
        retained: u64,
    ) -> Result<DmaTag> {
        if !self.dma_on {
            return Ok(DmaTag::immediate(self.now));
        }
        let start = earliest.max(self.now);
        // Re-basing the retained atoms is a scratchpad-local copy at 4x
        // the global DMA rate; it proceeds concurrently with the
        // incoming delta (the two touch disjoint buffer regions), so
        // the group is ready at the max of the two, never the sum.
        let mut rebase_done = start;
        if retained > 0 {
            let bytes = (retained * config.word_bytes) as f64;
            rebase_done += (bytes / (config.dma_bytes_per_cycle * 4.0)).ceil() as u64;
        }
        let list = delta_transfer_list(rp, buf, &self.ext[buf.array], pparams)?;
        if list.is_empty() {
            return Ok(DmaTag::immediate(rebase_done));
        }
        let mut tag = self
            .dma
            .issue_list(&list, config.word_bytes, self.now, start);
        tag.done = tag.done.max(rebase_done);
        Ok(tag)
    }

    /// Queue the DMA list for a residency flush delta — the move-out
    /// elements the successor does not overwrite. Issued in place of
    /// the full move-out list when [`RetainPlan::flush_legal`] holds;
    /// the list is a subset of the full one, so the tag never
    /// completes later than the flush it replaces.
    fn issue_flush(
        &mut self,
        rp: &RetainPlan,
        buf: &LocalBuffer,
        pparams: &[i64],
        config: &MachineConfig,
        earliest: u64,
    ) -> Result<DmaTag> {
        if !self.dma_on {
            return Ok(DmaTag::immediate(self.now));
        }
        let start = earliest.max(self.now);
        let list = flush_transfer_list(rp, buf, &self.ext[buf.array], pparams)?;
        if list.is_empty() {
            return Ok(DmaTag::immediate(start));
        }
        Ok(self
            .dma
            .issue_list(&list, config.word_bytes, self.now, start))
    }

    /// Advance the clock to the tag's completion, recording stalls.
    fn wait(&mut self, tag: &DmaTag) {
        self.now = self.dma.wait(tag, self.now);
    }
}

/// Read accesses reached by a flow dependence carried by a seq dim
/// within one block (§3.1.4 dependence information, reused): for each
/// flow dependence, restrict its polyhedron to pairs with equal
/// round/block dims (same block, same round) and a strictly positive
/// seq-dim distance (earlier seq dims equal). Non-empty means
/// prefetching the target's buffer ahead of the writing sub-tile would
/// read stale data, so its group must stage synchronously.
fn overlap_poisoned_reads(kernel: &BlockedKernel) -> Result<HashSet<AccessId>> {
    use polymem_poly::dep::DepKind;
    let program = &kernel.program;
    let deps = polymem_core::deps::compute_deps(program, &[DepKind::Flow])?;
    let mut out = HashSet::new();
    let pos = |dims: &[String], n: &str| dims.iter().position(|x| x == n);
    'deps: for d in deps {
        let src_dims = program.stmts[d.dep.src_stmt].domain.space().dims().to_vec();
        let dst_dims = program.stmts[d.dep.dst_stmt].domain.space().dims().to_vec();
        let n_src = d.dep.n_src;
        let n_cols = d.dep.poly.space().n_cols();
        let mut base = d.dep.poly.clone();
        for name in kernel.round_dims.iter().chain(&kernel.block_dims) {
            if let (Some(s), Some(t)) = (pos(&src_dims, name), pos(&dst_dims, name)) {
                let mut row = vec![0i64; n_cols];
                row[s] = 1;
                row[n_src + t] = -1;
                base.add_constraint(Constraint::eq(row));
            }
        }
        for (li, name) in kernel.seq_dims.iter().enumerate() {
            let (Some(s), Some(t)) = (pos(&src_dims, name), pos(&dst_dims, name)) else {
                continue;
            };
            let mut p = base.clone();
            for prev in &kernel.seq_dims[..li] {
                if let (Some(ps), Some(pt)) = (pos(&src_dims, prev), pos(&dst_dims, prev)) {
                    let mut row = vec![0i64; n_cols];
                    row[ps] = 1;
                    row[n_src + pt] = -1;
                    p.add_constraint(Constraint::eq(row));
                }
            }
            // dst[seq] >= src[seq] + 1: carried strictly forward.
            let mut row = vec![0i64; n_cols];
            row[s] = -1;
            row[n_src + t] = 1;
            row[n_cols - 1] = -1;
            p.add_constraint(Constraint::ineq(row));
            if !p.is_empty()? {
                out.insert(d.dst_access);
                continue 'deps;
            }
        }
    }
    Ok(out)
}

/// §4.2 hoisting applies only when the array materialises as exactly
/// one buffer in the plan: with separate read and write buffers,
/// parking by array key would keep only the last-parked buffer and
/// lose the other's writes (the stale-flush rule already treats the
/// multi-buffer case as unhoistable).
fn plan_hoists(plan: &SmemPlan, array: usize, hoistable: &HashSet<usize>) -> bool {
    hoistable.contains(&array) && plan.buffers.iter().filter(|b| b.array == array).count() == 1
}

/// Whether any poisoned read access is rewritten into the buffer
/// served by movement entry `mi`.
fn buffer_poisoned(plan: &SmemPlan, mi: usize, poisoned: &HashSet<AccessId>) -> bool {
    let b = plan.movement[mi].buffer;
    plan.rewrites
        .iter()
        .any(|(id, la)| la.buffer == b && poisoned.contains(id))
}

/// Whether the synchronous path would serve this (read-only) buffer
/// from the §4.2 persistent copy for free: the array is
/// hoist-eligible and its buffer shape (extents and offsets) does not
/// shift between the current and the next sub-tile. Prefetching such
/// a buffer would only add global traffic.
fn hoist_shortcut_hits(
    cur: &SubBlock,
    next: &Staging,
    bi: usize,
    array: usize,
    hoistable: &HashSet<usize>,
) -> bool {
    if !plan_hoists(next.source.plan(), array, hoistable) {
        return false;
    }
    match cur.staging.as_ref() {
        Some(cs) => {
            let cplan = cs.source.plan();
            // Plans of consecutive sub-tiles share buffer layout
            // (same shape class); anything else is unexpected, so be
            // conservative and keep the synchronous schedule.
            bi >= cplan.buffers.len()
                || cplan.buffers[bi].array != array
                || (cs.local.bufs[bi].1 == next.local.bufs[bi].1
                    && cs.local.bufs[bi].2 == next.local.bufs[bi].2)
        }
        None => true,
    }
}

/// One sub-tile's scratchpad state: plan, parameter vector and
/// allocated local buffers, plus per-movement-entry staging progress
/// (the pipelined path interleaves entries of two live sub-tiles).
struct Staging {
    source: PlanRef,
    pparams: Vec<i64>,
    local: LocalStore,
    words: u64,
    /// Per movement entry: functional move-in already performed.
    staged: Vec<bool>,
    /// In-flight prefetch DMA tags, waited on before compute.
    tags: Vec<DmaTag>,
}

/// A sub-block prepared for execution: the restricted program view
/// and (with `use_scratchpad`) its staging state.
struct SubBlock {
    fixed: HashMap<String, i64>,
    view: Program,
    staging: Option<Staging>,
}

/// Restrict the program to one (sub-)block and build its scratchpad
/// plan and local buffers. Footprint checks are the caller's job (the
/// synchronous path needs one footprint resident, the double-buffered
/// path two).
fn prepare_sub_block(
    kernel: &BlockedKernel,
    fixed: &HashMap<String, i64>,
    params: &[i64],
    config: &MachineConfig,
    cache: Option<&PlanCache>,
    profiler: Option<&PassProfiler>,
    stats: &mut ExecStats,
) -> Result<SubBlock> {
    let program = &kernel.program;
    let mut view = program.clone();
    for s in &mut view.stmts {
        s.domain = fix_dims(&s.domain, fixed);
    }
    let staging = if kernel.use_scratchpad {
        let (source, pparams) = match cache.and_then(|c| c.get(fixed)) {
            Some(sp) => {
                let ext = sp
                    .ext_params(params, fixed)
                    .expect("cache key matched fixed-dim names");
                (PlanRef::Shared(sp), ext)
            }
            None => {
                let (plan, times) =
                    analyze_program_timed(&view, &smem_config(params, config, kernel))?;
                if let Some(pr) = profiler {
                    pr.absorb_pass_times(&times);
                }
                (PlanRef::Owned(plan), params.to_vec())
            }
        };
        let (bufs, words, n_move) = {
            let plan = source.plan();
            let mut bufs = Vec::with_capacity(plan.buffers.len());
            let mut words = 0u64;
            for b in &plan.buffers {
                let extents = b.extents(&pparams)?;
                let offsets = b.offsets(&pparams)?;
                let size: i64 = extents.iter().product::<i64>().max(0);
                words += size as u64;
                bufs.push((vec![0i64; size as usize], extents, offsets));
            }
            (bufs, words, plan.movement.len())
        };
        stats.max_smem_words = stats.max_smem_words.max(words);
        Some(Staging {
            source,
            pparams,
            local: LocalStore { bufs },
            words,
            staged: vec![false; n_move],
            tags: Vec::new(),
        })
    } else {
        None
    };
    Ok(SubBlock {
        fixed: fixed.clone(),
        view,
        staging,
    })
}

/// A hoisted buffer whose array this sub-tile does not stage as
/// exactly one buffer would become invisible to the tile's accesses:
/// write dirty stale entries back first.
fn flush_stale_persistent(
    staging: &Staging,
    persistent: &mut HashMap<usize, Persistent>,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    clock: &mut BlockClock,
    config: &MachineConfig,
) -> Result<()> {
    let plan = staging.source.plan();
    let mut stale: Vec<usize> = persistent
        .keys()
        .filter(|a| plan.buffers.iter().filter(|b| b.array == **a).count() != 1)
        .copied()
        .collect();
    stale.sort_unstable();
    for a in stale {
        let p = persistent.remove(&a).expect("key listed");
        if p.dirty {
            writeback_persistent(&p, overlay, stats, clock, config)?;
        }
    }
    Ok(())
}

/// Functionally stage one movement entry's move-in (global → local).
/// Returns `false` when the hoist shortcut satisfied it from the
/// persistent copy (no global traffic, nothing for the DMA engine).
#[allow(clippy::too_many_arguments)]
fn move_in_buffer(
    program: &Program,
    staging: &mut Staging,
    mi: usize,
    store: &ArrayStore,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    hoistable: Option<&HashSet<usize>>,
    persistent: Option<&mut HashMap<usize, Persistent>>,
    clock: &mut BlockClock,
    config: &MachineConfig,
) -> Result<bool> {
    let Staging {
        source,
        pparams,
        local,
        staged,
        ..
    } = staging;
    let plan = source.plan();
    let mc = &plan.movement[mi];
    let buf = &plan.buffers[mc.buffer];
    let name = &program.arrays[buf.array].name;
    staged[mi] = true;
    if let (Some(h), Some(pers)) = (hoistable, persistent) {
        if plan_hoists(plan, buf.array, h) {
            let shape_matches = pers.get(&buf.array).is_some_and(|p| {
                p.extents == local.bufs[mc.buffer].1 && p.offsets == local.bufs[mc.buffer].2
            });
            if shape_matches {
                let p = pers.get(&buf.array).expect("checked");
                local.bufs[mc.buffer].0.copy_from_slice(&p.data);
                return Ok(false);
            }
            // A stale differently-shaped copy must reach global
            // memory before this sub-tile stages fresh data.
            if let Some(p) = pers.remove(&buf.array) {
                if p.dirty {
                    writeback_persistent(&p, overlay, stats, clock, config)?;
                }
            }
        }
    }
    let mut err = None;
    let ext = &clock.ext[buf.array];
    polymem_core::smem::movement::for_each_move_in(mc, buf, pparams, &mut |g, l| {
        if err.is_some() {
            return;
        }
        match read_global(store, overlay, buf.array, name, g, ext) {
            Ok(v) => {
                if let Err(e) = local.set(mc.buffer, l, v) {
                    err = Some(e);
                }
            }
            Err(e) => err = Some(e),
        }
        stats.global_reads += 1;
        stats.moved_in += 1;
    })?;
    match err {
        Some(e) => Err(e),
        None => Ok(true),
    }
}

/// The scratchpad contents of a sub-tile, snapshotted after its
/// move-out so the lexicographic successor can re-base retained atoms
/// with a scratchpad-local copy and transfer only the delta.
struct ResidencyCarry {
    fixed: HashMap<String, i64>,
    local: LocalStore,
}

/// The shared plan's residency decomposition, when it applies between
/// `prev_fixed` and `fixed`: same shared symbolic plan, and the two
/// sub-tiles are lexicographically consecutive along the residency seq
/// dim (every other fixed dim equal).
fn shared_residency<'a>(
    source: &'a PlanRef,
    fixed: &HashMap<String, i64>,
    prev_fixed: &HashMap<String, i64>,
) -> Option<&'a ResidencyPlan> {
    let PlanRef::Shared(sp) = source else {
        return None;
    };
    let res = sp.residency.as_ref()?;
    if res.plans.is_empty() || prev_fixed.len() != fixed.len() {
        return None;
    }
    let consecutive = fixed.iter().all(|(k, v)| match prev_fixed.get(k) {
        Some(pv) if *k == res.seq_param => *v == pv + 1,
        Some(pv) => v == pv,
        None => false,
    });
    consecutive.then_some(res)
}

/// Whether a sub-tile's plan carries a non-empty residency
/// decomposition (worth snapshotting the local store for).
fn residency_nonempty(source: &PlanRef) -> bool {
    match source {
        PlanRef::Shared(sp) => sp.residency.as_ref().is_some_and(|r| !r.is_empty()),
        PlanRef::Owned(_) => false,
    }
}

/// Stage one movement entry via inter-block residency: re-base the
/// retained atoms from the predecessor's still-resident local store (a
/// scratchpad-local copy, no global traffic) and fetch only the delta
/// atoms from global memory. Returns the delta's DMA tag, or `None`
/// when residency does not apply to this entry — no carried
/// predecessor, owned plan, retention denied at planning time, or a
/// shape-stable §4.2 persistent copy that serves the buffer for free —
/// in which case the caller falls back to the full move-in.
#[allow(clippy::too_many_arguments)]
fn move_in_buffer_resident(
    program: &Program,
    staging: &mut Staging,
    mi: usize,
    fixed: &HashMap<String, i64>,
    carry: Option<(&HashMap<String, i64>, &LocalStore)>,
    hoistable: Option<&HashSet<usize>>,
    persistent: Option<&mut HashMap<usize, Persistent>>,
    store: &ArrayStore,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    clock: &mut BlockClock,
    config: &MachineConfig,
    earliest: u64,
) -> Result<Option<DmaTag>> {
    let Some((prev_fixed, prev_local)) = carry else {
        return Ok(None);
    };
    let Staging {
        source,
        pparams,
        local,
        staged,
        ..
    } = staging;
    let Some(res) = shared_residency(source, fixed, prev_fixed) else {
        return Ok(None);
    };
    let plan = source.plan();
    let mc = &plan.movement[mi];
    let bi = mc.buffer;
    let buf = &plan.buffers[bi];
    let Some(rp) = res.plans.get(&bi) else {
        return Ok(None);
    };
    if bi >= prev_local.bufs.len() {
        return Ok(None);
    }
    if hoistable.is_some_and(|h| plan_hoists(plan, buf.array, h)) {
        // The §4.2 shortcut serves a shape-stable persistent copy for
        // free — cheaper than any delta. Defer to it when it would
        // hit. When the parked copy's shape shifted (so the shortcut
        // would miss and fully restage), flush it first — the
        // predecessor's writes must reach the overlay before the
        // delta reads it — then stage by residency.
        let Some(pers) = persistent else {
            return Ok(None);
        };
        let shape_matches = pers
            .get(&buf.array)
            .is_some_and(|p| p.extents == local.bufs[bi].1 && p.offsets == local.bufs[bi].2);
        if shape_matches {
            return Ok(None);
        }
        if let Some(p) = pers.remove(&buf.array) {
            if p.dirty {
                writeback_persistent(&p, overlay, stats, clock, config)?;
            }
        }
    }
    let name = &program.arrays[buf.array].name;
    staged[mi] = true;
    // Re-base the retained atoms: the predecessor's window contains
    // them by construction (retained ⊆ W(s−1) ⊆ its bounding box), so
    // the indexed reads below are always in bounds, boundary tiles
    // included.
    let prev_offsets = &prev_local.bufs[bi].2;
    let mut err: Option<MachineError> = None;
    let mut retained = 0u64;
    polymem_core::smem::residency::for_each_retained(rp, buf, pparams, &mut |g, l| {
        if err.is_some() {
            return;
        }
        let prev_l: Vec<i64> = buf
            .kept_dims
            .iter()
            .zip(prev_offsets.iter())
            .map(|(&d, off)| g[d] - off)
            .collect();
        match prev_local.get(bi, &prev_l) {
            Ok(v) => {
                if let Err(e) = local.set(bi, l, v) {
                    err = Some(e);
                }
            }
            Err(e) => err = Some(e),
        }
        retained += 1;
    })?;
    if let Some(e) = err {
        return Err(e);
    }
    // Fetch the delta atoms — the only elements crossing the bus.
    let ext = &clock.ext[buf.array];
    let mut delta = 0u64;
    polymem_core::smem::residency::for_each_delta_in(rp, buf, pparams, &mut |g, l| {
        if err.is_some() {
            return;
        }
        match read_global(store, overlay, buf.array, name, g, ext) {
            Ok(v) => {
                if let Err(e) = local.set(bi, l, v) {
                    err = Some(e);
                }
            }
            Err(e) => err = Some(e),
        }
        stats.global_reads += 1;
        stats.moved_in += 1;
        delta += 1;
    })?;
    if let Some(e) = err {
        return Err(e);
    }
    stats.retained_elems += retained;
    stats.delta_elems += delta;
    stats.residency_groups += 1;
    let tag = clock.issue_delta(rp, buf, pparams, config, earliest, retained)?;
    Ok(Some(tag))
}

/// What [`move_out_buffer`] did with one movement entry, telling the
/// caller which DMA list (if any) to issue.
enum MoveOut {
    /// Hoisted array parked in `persistent`; nothing crossed the bus.
    Parked,
    /// Full move-out applied to the overlay.
    Full,
    /// Only the flush delta applied: the skipped elements lie in the
    /// successor's write set and it will stage this buffer by
    /// residency, so their newest values are already where every
    /// legal reader looks (the carried scratchpad).
    Delta,
}

/// The flush-delta plan for one movement entry, present iff the delta
/// flush is legal *and* the successor sub-tile will provably stage
/// this buffer by residency — decided with the exact predicate and
/// argument pair its move-in uses ([`shared_residency`] on
/// `(next_fixed, fixed)`), so the two sides can never disagree.
/// `None` means the full move-out must run.
fn flush_delta_plan<'a>(
    staging: &'a Staging,
    mi: usize,
    fixed: &HashMap<String, i64>,
    next_fixed: Option<&HashMap<String, i64>>,
) -> Option<&'a RetainPlan> {
    let res = shared_residency(&staging.source, next_fixed?, fixed)?;
    let rp = res.plans.get(&staging.source.plan().movement[mi].buffer)?;
    rp.flush_legal.then_some(rp)
}

/// Functionally apply one movement entry's move-out (local → global
/// overlay). Hoisted arrays park in `persistent` instead (one
/// writeback at the end of the block). When the successor stages this
/// buffer by residency and [`RetainPlan::flush_legal`] holds, only
/// the flush delta is written back — the skipped elements are
/// overwritten by a later sub-tile's flush before anything can read
/// them from global memory.
#[allow(clippy::too_many_arguments)]
fn move_out_buffer(
    staging: &Staging,
    mi: usize,
    fixed: &HashMap<String, i64>,
    next_fixed: Option<&HashMap<String, i64>>,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    hoistable: Option<&HashSet<usize>>,
    persistent: Option<&mut HashMap<usize, Persistent>>,
    ext: &[Vec<i64>],
) -> Result<MoveOut> {
    let plan = staging.source.plan();
    let mc = &plan.movement[mi];
    let buf = &plan.buffers[mc.buffer];
    if let (Some(h), Some(pers)) = (hoistable, persistent) {
        if plan_hoists(plan, buf.array, h) {
            let dirty = !mc.write_spaces.is_empty();
            let prev_dirty = pers.get(&buf.array).map(|q| q.dirty).unwrap_or(false);
            pers.insert(
                buf.array,
                Persistent {
                    buffer: buf.clone(),
                    mc: mc.clone(),
                    pparams: staging.pparams.clone(),
                    data: staging.local.bufs[mc.buffer].0.clone(),
                    extents: staging.local.bufs[mc.buffer].1.clone(),
                    offsets: staging.local.bufs[mc.buffer].2.clone(),
                    dirty: dirty || prev_dirty,
                },
            );
            return Ok(MoveOut::Parked);
        }
    }
    let flush = flush_delta_plan(staging, mi, fixed, next_fixed);
    let ls = &staging.local;
    let mut err = None;
    let mut n = 0u64;
    let aext = &ext[buf.array];
    let mut copy = |g: &[i64], l: &[i64]| {
        if err.is_some() {
            return;
        }
        match ls.get(mc.buffer, l) {
            Ok(v) => {
                if let Err(e) = overlay.set_idx(buf.array, &buf.array_name, g, aext, v) {
                    err = Some(MachineError::Ir(e));
                }
            }
            Err(e) => err = Some(e),
        }
        n += 1;
    };
    let out = if let Some(rp) = flush {
        polymem_core::smem::residency::for_each_flush_delta(rp, buf, &staging.pparams, &mut copy)?;
        MoveOut::Delta
    } else {
        polymem_core::smem::movement::for_each_move_out(mc, buf, &staging.pparams, &mut copy)?;
        MoveOut::Full
    };
    if let Some(e) = err {
        return Err(e);
    }
    stats.global_writes += n;
    stats.moved_out += n;
    if matches!(out, MoveOut::Delta) {
        stats.flushed_delta_elems += n;
    }
    Ok(out)
}

/// Execute the sub-block's statement instances in interleaved source
/// order, then charge the modeled compute cycles to the block clock.
///
/// Dispatch: when the launch compiled (bytecode bodies + a per-shape
/// [`crate::compiled::CompiledShape`]) and the block's staging plan is
/// the shared symbolic one (or absent), the compiled engine runs the
/// instances — including hierarchy (level-2) plans, whose register
/// frames it stages through the same [`stage_frames`]/[`flush_frames`]
/// protocol as the interpreter; otherwise — owned per-block plan,
/// naive mode, shape compile failure, or a per-block proof obstacle —
/// the interpreter does, with identical semantics and counters. Which
/// engine ran, and why a fallback happened, lands in
/// [`ExecStats::compiled_blocks`] / [`ExecStats::interpreted_blocks`]
/// / [`ExecStats::fallback`]. `POLYMEM_EXEC_CHECK=1` runs the
/// interpreter as an oracle on cloned state beside every compiled
/// block (outside the timed window) and panics on divergence.
#[allow(clippy::too_many_arguments)]
fn compute_sub_block(
    kernel: &BlockedKernel,
    sb: &mut SubBlock,
    params: &[i64],
    store: &ArrayStore,
    config: &MachineConfig,
    cache: Option<&PlanCache>,
    profiler: Option<&PassProfiler>,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    clock: &mut BlockClock,
    launch: &LaunchShared,
) -> Result<()> {
    let program = &kernel.program;
    // Fallback attribution for the engine counters; `None` after the
    // dispatch below means the compiled engine ran.
    enum Why {
        EngineOff,
        OwnedPlan,
        ShapeUncompiled,
        RuntimeDecline,
    }
    let mut why: Option<Why> = None;
    let shape = match &launch.compiled {
        Some(cc) => match sb.staging.as_ref() {
            None => cc.shape(&sb.fixed, program, None),
            Some(st) => match &st.source {
                PlanRef::Shared(sp) => cc.shape(&sb.fixed, program, Some(sp)),
                // A freshly analysed per-block plan has no shared
                // shape to key the compiled streams on.
                PlanRef::Owned(_) => {
                    why = Some(Why::OwnedPlan);
                    None
                }
            },
        },
        None => {
            why = Some(Why::EngineOff);
            None
        }
    };
    if shape.is_none() && why.is_none() {
        why = Some(Why::ShapeUncompiled);
    }

    // Oracle pass (check mode only): the interpreter runs first on
    // cloned state, outside the timed window.
    let oracle = if shape.is_some() && launch.exec_check {
        let mut ov = overlay.clone();
        let mut loc = sb.staging.as_ref().map(|st| st.local.clone());
        let mut sc = ExecStats::default();
        let staging_arg = match (sb.staging.as_ref(), loc.as_mut()) {
            (Some(st), Some(l)) => Some((&st.source, st.pparams.as_slice(), l)),
            _ => None,
        };
        let c = interpreted_compute(
            kernel,
            &sb.view,
            &sb.fixed,
            params,
            store,
            config,
            cache,
            staging_arg,
            &mut ov,
            &mut sc,
            launch,
        )?;
        Some((ov, loc, sc, c))
    } else {
        None
    };
    let before = oracle.as_ref().map(|_| stats.clone());

    let t0 = Instant::now();
    let mut counts = None;
    if let Some(shape) = &shape {
        let (local, splan) = match sb.staging.as_mut() {
            Some(st) => {
                let sp = match &st.source {
                    PlanRef::Shared(sp) => Some(sp.as_ref()),
                    PlanRef::Owned(_) => None,
                };
                (Some(&mut st.local), sp)
            }
            None => (None, None),
        };
        counts = run_compiled(
            shape, launch, program, params, &sb.fixed, store, local, splan, overlay, stats, config,
        )?
        .map(|c| (c.n_inst, c.n_smem, c.n_glob));
        if counts.is_none() {
            why = Some(Why::RuntimeDecline);
        }
    }
    match &why {
        None => stats.compiled_blocks += 1,
        Some(w) => {
            stats.interpreted_blocks += 1;
            match w {
                Why::EngineOff => stats.fallback.engine_off += 1,
                Why::OwnedPlan => stats.fallback.owned_plan += 1,
                Why::ShapeUncompiled => stats.fallback.shape_uncompiled += 1,
                Why::RuntimeDecline => stats.fallback.runtime_decline += 1,
            }
        }
    }
    let (n_inst, n_smem, n_glob) = match counts {
        Some(c) => c,
        None => {
            let staging_arg = sb.staging.as_mut().map(|st| {
                let Staging {
                    source,
                    pparams,
                    local,
                    ..
                } = st;
                (&*source, pparams.as_slice(), local)
            });
            interpreted_compute(
                kernel,
                &sb.view,
                &sb.fixed,
                params,
                store,
                config,
                cache,
                staging_arg,
                overlay,
                stats,
                launch,
            )?
        }
    };
    if let Some(pr) = profiler {
        pr.record(crate::trace::PassKind::Compute, t0.elapsed());
    }
    stats.compute_ns += t0.elapsed().as_nanos() as u64;

    if let (Some((ov, loc, sc, oc)), Some(before)) = (oracle, before) {
        let local_now = sb.staging.as_ref().map(|st| st.local.clone());
        let deltas = (
            stats.instances - before.instances,
            stats.global_reads - before.global_reads,
            stats.global_writes - before.global_writes,
            stats.smem_reads - before.smem_reads,
            stats.smem_writes - before.smem_writes,
            stats.smem_loads_saved - before.smem_loads_saved,
            stats.reg_bytes_moved - before.reg_bytes_moved,
            stats.hier_groups - before.hier_groups,
        );
        let odeltas = (
            sc.instances,
            sc.global_reads,
            sc.global_writes,
            sc.smem_reads,
            sc.smem_writes,
            sc.smem_loads_saved,
            sc.reg_bytes_moved,
            sc.hier_groups,
        );
        assert!(
            *overlay == ov
                && local_now == loc
                && deltas == odeltas
                && (n_inst, n_smem, n_glob) == oc,
            "POLYMEM_EXEC_CHECK: compiled execution diverged from the interpreter \
             (fixed dims {:?}: overlay match {}, local match {}, counters {:?} vs {:?})",
            sb.fixed,
            *overlay == ov,
            local_now == loc,
            deltas,
            odeltas,
        );
    }

    let l = config.global_latency / config.global_overlap.max(1.0);
    let cycles = n_inst as f64 * config.cycles_per_op
        + n_smem as f64 * config.smem_latency
        + n_glob as f64 * l;
    clock.now += cycles.round() as u64;
    Ok(())
}

/// Register frames staged for one inner process (thread key) during a
/// sub-block's compute phase. Shared by both engines: the interpreter
/// and the compiled engine stage, serve and flush frames through the
/// same functions, which is what keeps `smem_loads_saved`,
/// `reg_bytes_moved`, `hier_groups` and the typed overflow check
/// bit-identical between them.
pub(crate) struct FrameSet {
    /// The thread-dim values the frames are staged for.
    pub(crate) key: Vec<i64>,
    /// `params ++ ext values` at this key — the parameter vector every
    /// level-2 affine structure evaluates under.
    pub(crate) pp2: Vec<i64>,
    /// Frame storage, indexed by level-2 buffer id.
    pub(crate) frames: LocalStore,
}

/// The level-1 local index of global array element `g` in buffer
/// `buf1` (whose concrete offsets are `offsets1`).
fn level1_index(buf1: &LocalBuffer, offsets1: &[i64], g: &[i64]) -> Vec<i64> {
    buf1.kept_dims
        .iter()
        .zip(offsets1)
        .map(|(&d, &o)| g[d] - o)
        .collect()
}

/// Stage every register frame for one thread key (smem → reg move-in):
/// allocate the frames at the key's concrete extents, enforce the
/// register-file capacity at runtime (the plan-time gate only checked
/// the representative block — frames can grow past it, e.g. on
/// triangular domains), then run the level-2 movement code against the
/// backing level-1 buffers. Returns the staged set plus the scratchpad
/// reads to charge the cycle model.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage_frames(
    h: &HierPlan,
    plan1: &SmemPlan,
    key: Vec<i64>,
    params: &[i64],
    fixed: &HashMap<String, i64>,
    local: &LocalStore,
    stats: &mut ExecStats,
    config: &MachineConfig,
) -> Result<(FrameSet, u64)> {
    let pp2 = h
        .ext_params(params, fixed, &key)
        .expect("hier plan was built from this shape's fixed dims");
    let mut bufs = Vec::with_capacity(h.plan.buffers.len());
    let mut words = 0u64;
    for b in &h.plan.buffers {
        let extents = b.extents(&pp2)?;
        let offsets = b.offsets(&pp2)?;
        let size: i64 = extents.iter().product::<i64>().max(0);
        words += size as u64;
        bufs.push((vec![0i64; size as usize], extents, offsets));
    }
    if words > h.regs_per_inner {
        return Err(MachineError::RegisterOverflow {
            requested: words,
            available: h.regs_per_inner,
        });
    }
    let mut frames = LocalStore { bufs };
    let mut n_smem = 0u64;
    for mc in &h.plan.movement {
        let buf = &h.plan.buffers[mc.buffer];
        let buf1 = &plan1.buffers[h.backing[mc.buffer]];
        let mut err = None;
        polymem_core::smem::movement::for_each_move_in(mc, buf, &pp2, &mut |g, l| {
            if err.is_some() {
                return;
            }
            let l1 = level1_index(buf1, &local.bufs[buf1.id].2, g);
            match local.get(buf1.id, &l1) {
                Ok(v) => {
                    if let Err(e) = frames.set(mc.buffer, l, v) {
                        err = Some(e);
                    }
                }
                Err(e) => err = Some(e),
            }
            stats.smem_reads += 1;
            stats.reg_bytes_moved += config.word_bytes;
            n_smem += 1;
        })?;
        if let Some(e) = err {
            return Err(e);
        }
    }
    stats.hier_groups += 1;
    Ok((FrameSet { key, pp2, frames }, n_smem))
}

/// Flush written register frames back to their level-1 buffers
/// (reg → smem move-out) before the thread key changes or the compute
/// phase ends. Read-only frames are dropped for free. Returns the
/// scratchpad writes to charge the cycle model.
pub(crate) fn flush_frames(
    h: &HierPlan,
    plan1: &SmemPlan,
    fs: &FrameSet,
    local: &mut LocalStore,
    stats: &mut ExecStats,
    config: &MachineConfig,
) -> Result<u64> {
    let mut n_smem = 0u64;
    for mc in &h.plan.movement {
        if mc.write_spaces.is_empty() {
            continue;
        }
        let buf = &h.plan.buffers[mc.buffer];
        let buf1 = &plan1.buffers[h.backing[mc.buffer]];
        let mut err = None;
        polymem_core::smem::movement::for_each_move_out(mc, buf, &fs.pp2, &mut |g, l| {
            if err.is_some() {
                return;
            }
            let l1 = level1_index(buf1, &local.bufs[buf1.id].2, g);
            match fs.frames.get(mc.buffer, l) {
                Ok(v) => {
                    if let Err(e) = local.set(buf1.id, &l1, v) {
                        err = Some(e);
                    }
                }
                Err(e) => err = Some(e),
            }
            stats.smem_writes += 1;
            stats.reg_bytes_moved += config.word_bytes;
            n_smem += 1;
        })?;
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(n_smem)
}

/// The reference per-point interpreter for one sub-block's compute
/// phase: enumerate every statement's instances (shared enumeration
/// plan when available), sort into interleaved source order, then walk
/// them through `Expr::eval` and `AffineMap::apply`. Returns the
/// `(instances, smem accesses, global accesses)` tallies for the cycle
/// model.
///
/// When the shared symbolic plan carries a level-2 (register-tile)
/// plan, the walk additionally stages register frames per thread key:
/// on every thread-key change the previous key's written frames flush
/// to scratchpad and the new key's frames stage from it, and accesses
/// rewritten at level 2 are served from the frames (counted in
/// `smem_loads_saved`, charged near-zero latency) instead of touching
/// scratchpad. Flush-on-change keeps cross-key overlap (e.g. sliding
/// windows) exact — §3.1 partitioning guarantees frames never alias
/// any other access of the same instance at any thread value.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn interpreted_compute(
    kernel: &BlockedKernel,
    view: &Program,
    fixed: &HashMap<String, i64>,
    params: &[i64],
    store: &ArrayStore,
    config: &MachineConfig,
    cache: Option<&PlanCache>,
    staging: Option<(&PlanRef, &[i64], &mut LocalStore)>,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    launch: &LaunchShared,
) -> Result<(u64, u64, u64)> {
    let program = &kernel.program;
    let (source, pparams, mut local) = match staging {
        Some((s, p, l)) => (Some(s), p, Some(l)),
        None => (None, &[][..], None),
    };
    // The level-2 (register-tile) plan rides on the shared symbolic
    // plan only; owned per-block plans never carry one.
    let hier: Option<&HierPlan> = source.and_then(|s| match s {
        PlanRef::Shared(sp) => sp.hier.as_ref(),
        PlanRef::Owned(_) => None,
    });
    let mut cur_frames: Option<FrameSet> = None;

    // With the plan cache active, the shared per-shape enumeration
    // plan turns this into bound evaluation; the per-block projection
    // path is the fallback (and the whole story in naive mode).
    let enum_plan = if polymem_poly::cache::naive_mode() {
        None
    } else {
        cache.and_then(|c| c.enum_plan(fixed, program))
    };
    let mut instances: Vec<(usize, Vec<i64>)> = Vec::new();
    for (si, s) in view.stmts.iter().enumerate() {
        let shared = enum_plan
            .as_ref()
            .and_then(|ep| ep.ext_params(params, fixed).map(|ext| (ep, ext)))
            .is_some_and(|(ep, ext)| {
                let mark = instances.len();
                match ep.enumerate(si, &ext, config.enum_budget, &mut instances) {
                    Ok(()) => true,
                    Err(_) => {
                        instances.truncate(mark);
                        false
                    }
                }
            });
        if shared {
            continue;
        }
        let dom = s.domain.substitute_params(params)?;
        enumerate_points(&dom, config.enum_budget, &mut |p| {
            instances.push((si, p.to_vec()))
        })
        .map_err(budget_error)?;
    }
    let common = &launch.common;
    instances.sort_by(|(sa, pa), (sb, pb)| {
        let c = common[*sa][*sb];
        for k in 0..c {
            match pa[k].cmp(&pb[k]) {
                std::cmp::Ordering::Equal => {}
                o => return o,
            }
        }
        match sa.cmp(sb) {
            std::cmp::Ordering::Equal => pa[c..].cmp(&pb[c..]),
            o => o,
        }
    });

    let (mut n_inst, mut n_smem, mut n_glob) = (0u64, 0u64, 0u64);
    for (si, point) in &instances {
        let stmt = &view.stmts[*si];
        // Stage the instance's register frames: flush the previous
        // thread key's written frames, load this key's from
        // scratchpad. Statements that don't iterate every thread dim
        // have no key and never touch frames (the thread-complete
        // gate dropped any group they could alias).
        if let Some(h) = hier {
            if let Some(key) = h.thread_key(*si, point) {
                if cur_frames.as_ref().map(|fs| &fs.key) != Some(&key) {
                    let plan1 = source.expect("hier implies staging").plan();
                    let ls = local.as_deref_mut().expect("hier implies local store");
                    if let Some(fs) = cur_frames.take() {
                        n_smem += flush_frames(h, plan1, &fs, ls, stats, config)?;
                    }
                    let (fs, dn) = stage_frames(h, plan1, key, params, fixed, ls, stats, config)?;
                    n_smem += dn;
                    cur_frames = Some(fs);
                }
            }
        }
        let mut reads = Vec::with_capacity(stmt.reads.len());
        for (k, r) in stmt.reads.iter().enumerate() {
            let id = AccessId::read(*si, k);
            let mut staged = None;
            // Level-2 hit: serve the read from the register frame at
            // near-zero cost (no smem access in the cycle model).
            if let (Some(h), Some(fs)) = (hier, cur_frames.as_ref()) {
                if let Some(la) = h.plan.rewrites.get(&id) {
                    let buf = &h.plan.buffers[la.buffer];
                    let proj = h.project_point(*si, point);
                    let idx = la.local_index(buf, &proj, &fs.pp2)?;
                    stats.smem_loads_saved += 1;
                    staged = Some(fs.frames.get(la.buffer, &idx)?);
                }
            }
            if staged.is_none() {
                if let Some(src) = source {
                    if let Some(la) = src.plan().rewrites.get(&id) {
                        let buf = &src.plan().buffers[la.buffer];
                        let proj = src.project(*si, point);
                        let idx = la.local_index(buf, &proj, pparams)?;
                        stats.smem_reads += 1;
                        n_smem += 1;
                        staged = Some(
                            local
                                .as_deref()
                                .expect("staged plan implies local store")
                                .get(la.buffer, &idx)?,
                        );
                    }
                }
            }
            let v = match staged {
                Some(v) => v,
                None => {
                    let idx = r.map.apply(point, params)?;
                    let name = &program.arrays[r.array].name;
                    stats.global_reads += 1;
                    n_glob += 1;
                    read_global(store, overlay, r.array, name, &idx, &launch.ext[r.array])?
                }
            };
            reads.push(v);
        }
        let value = stmt.body.eval(&reads, point, params)?;
        let wid = AccessId::write(*si);
        let mut staged = false;
        // Level-2 hit: the write lands in the register frame and
        // reaches scratchpad once, at the next flush.
        if let (Some(h), Some(fs)) = (hier, cur_frames.as_mut()) {
            if let Some(la) = h.plan.rewrites.get(&wid) {
                let buf = &h.plan.buffers[la.buffer];
                let proj = h.project_point(*si, point);
                let idx = la.local_index(buf, &proj, &fs.pp2)?;
                fs.frames.set(la.buffer, &idx, value)?;
                staged = true;
            }
        }
        if !staged {
            if let Some(src) = source {
                if let Some(la) = src.plan().rewrites.get(&wid) {
                    let buf = &src.plan().buffers[la.buffer];
                    let proj = src.project(*si, point);
                    let idx = la.local_index(buf, &proj, pparams)?;
                    stats.smem_writes += 1;
                    n_smem += 1;
                    local
                        .as_deref_mut()
                        .expect("staged plan implies local store")
                        .set(la.buffer, &idx, value)?;
                    staged = true;
                }
            }
        }
        if !staged {
            let a = stmt.write.array;
            let idx = stmt.write.map.apply(point, params)?;
            stats.global_writes += 1;
            n_glob += 1;
            overlay
                .set_idx(a, &program.arrays[a].name, &idx, &launch.ext[a], value)
                .map_err(MachineError::Ir)?;
        }
        stats.instances += 1;
        n_inst += 1;
    }
    // Final flush: the last thread key's written frames must reach
    // scratchpad before the sub-block's move-out runs.
    if let (Some(h), Some(fs)) = (hier, cur_frames.take()) {
        let plan1 = source.expect("hier implies staging").plan();
        let ls = local.expect("hier implies local store");
        n_smem += flush_frames(h, plan1, &fs, ls, stats, config)?;
    }
    Ok((n_inst, n_smem, n_glob))
}

#[allow(clippy::too_many_arguments)]
fn execute_one_block(
    kernel: &BlockedKernel,
    fixed: &HashMap<String, i64>,
    params: &[i64],
    store: &ArrayStore,
    config: &MachineConfig,
    cache: Option<&PlanCache>,
    profiler: Option<&PassProfiler>,
    poisoned: Option<&HashSet<AccessId>>,
    launch: &LaunchShared,
    block_idx: u64,
) -> Result<(Overlay, ExecStats)> {
    let mut overlay = Overlay::new(kernel.program.arrays.len());
    let mut stats = ExecStats {
        blocks: 1,
        ..ExecStats::default()
    };
    let mut clock = BlockClock::new(launch.ext.clone(), config, block_idx);
    if kernel.use_scratchpad && !kernel.seq_dims.is_empty() {
        // Sequential sub-tiles with §4.2 hoisting.
        let Some(lead) = kernel.program.stmts.first() else {
            return Ok((overlay, stats));
        };
        let seq_vals = enumerate_named(lead, &kernel.seq_dims, params, fixed, config.enum_budget)?;
        let seqs = if seq_vals.is_empty() {
            vec![Vec::new()]
        } else {
            seq_vals
        };
        let hoistable = seq_redundant_arrays(kernel);
        let mut persistent: HashMap<usize, Persistent> = HashMap::new();
        match poisoned {
            Some(poisoned) if config.double_buffer && seqs.len() > 1 => {
                execute_block_pipelined(
                    kernel,
                    fixed,
                    params,
                    store,
                    config,
                    cache,
                    profiler,
                    &mut overlay,
                    &mut stats,
                    &mut clock,
                    &seqs,
                    &hoistable,
                    &mut persistent,
                    poisoned,
                    launch,
                )?;
            }
            _ => {
                let mut carry: Option<ResidencyCarry> = None;
                let fixeds: Vec<HashMap<String, i64>> = seqs
                    .iter()
                    .map(|sv| {
                        let mut f2 = fixed.clone();
                        for (n, v) in kernel.seq_dims.iter().zip(sv) {
                            f2.insert(n.clone(), *v);
                        }
                        f2
                    })
                    .collect();
                for (i, f2) in fixeds.iter().enumerate() {
                    run_sub_block(
                        kernel,
                        f2,
                        params,
                        store,
                        config,
                        cache,
                        profiler,
                        &mut overlay,
                        &mut stats,
                        Some((&hoistable, &mut persistent)),
                        &mut clock,
                        launch,
                        Some(&mut carry),
                        fixeds.get(i + 1),
                    )?;
                }
            }
        }
        // Deterministic writeback order (DMA timing depends on it).
        let mut arrays: Vec<usize> = persistent.keys().copied().collect();
        arrays.sort_unstable();
        for a in arrays {
            let p = &persistent[&a];
            if p.dirty {
                writeback_persistent(p, &mut overlay, &mut stats, &mut clock, config)?;
            }
        }
    } else {
        run_sub_block(
            kernel,
            fixed,
            params,
            store,
            config,
            cache,
            profiler,
            &mut overlay,
            &mut stats,
            None,
            &mut clock,
            launch,
            None,
            None,
        )?;
    }
    clock.now = clock.dma.drain(clock.now);
    stats.block_cycles = clock.now;
    stats.dma = clock.dma.stats.clone();
    Ok((overlay, stats))
}

/// One sub-block, fully synchronous: stage in, compute, stage out,
/// each DMA list waited on at issue. `carry_slot`, when threaded by a
/// sequential sub-tile loop, holds the predecessor's scratchpad
/// snapshot on entry (served to the residency staging path) and is
/// replaced by this sub-tile's own snapshot on exit. `next_fixed` is
/// the successor sub-tile's fixed-dim map (when one exists), feeding
/// the flush-delta decision of [`move_out_buffer`].
#[allow(clippy::too_many_arguments)]
fn run_sub_block(
    kernel: &BlockedKernel,
    fixed: &HashMap<String, i64>,
    params: &[i64],
    store: &ArrayStore,
    config: &MachineConfig,
    cache: Option<&PlanCache>,
    profiler: Option<&PassProfiler>,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    mut hoist: Option<(&HashSet<usize>, &mut HashMap<usize, Persistent>)>,
    clock: &mut BlockClock,
    launch: &LaunchShared,
    carry_slot: Option<&mut Option<ResidencyCarry>>,
    next_fixed: Option<&HashMap<String, i64>>,
) -> Result<()> {
    let mut sb = prepare_sub_block(kernel, fixed, params, config, cache, profiler, stats)?;
    if let Some(st) = &sb.staging {
        if config.smem_bytes > 0 && st.words * config.word_bytes > config.smem_bytes {
            return Err(MachineError::ScratchpadOverflow {
                requested: st.words * config.word_bytes,
                available: config.smem_bytes,
            });
        }
    }
    if let Some(n_move) = sb
        .staging
        .as_ref()
        .map(|st| st.source.plan().movement.len())
    {
        let t0 = Instant::now();
        if let (Some(st), Some((_, persistent))) = (&sb.staging, hoist.as_mut()) {
            flush_stale_persistent(st, persistent, overlay, stats, clock, config)?;
        }
        for mi in 0..n_move {
            let prev = carry_slot
                .as_deref()
                .and_then(|c| c.as_ref())
                .map(|c| (&c.fixed, &c.local));
            let st = sb.staging.as_mut().expect("staged");
            let now = clock.now;
            let (h_set, h_pers) = match hoist.as_mut() {
                Some((h, p)) => (Some(&**h), Some(&mut **p)),
                None => (None, None),
            };
            if let Some(tag) = move_in_buffer_resident(
                &kernel.program,
                st,
                mi,
                &sb.fixed,
                prev,
                h_set,
                h_pers,
                store,
                overlay,
                stats,
                clock,
                config,
                now,
            )? {
                clock.wait(&tag);
                continue;
            }
            let st = sb.staging.as_mut().expect("staged");
            let real = move_in_buffer(
                &kernel.program,
                st,
                mi,
                store,
                overlay,
                stats,
                hoist.as_ref().map(|(h, _)| *h),
                hoist.as_mut().map(|(_, p)| &mut **p),
                clock,
                config,
            )?;
            if real {
                let st = sb.staging.as_ref().expect("staged");
                let tag = clock.issue_movement(
                    st.source.plan(),
                    mi,
                    &st.pparams,
                    Direction::In,
                    config,
                    clock.now,
                )?;
                clock.wait(&tag);
            }
        }
        if let Some(pr) = profiler {
            pr.record(crate::trace::PassKind::MoveIn, t0.elapsed());
        }
    }
    compute_sub_block(
        kernel, &mut sb, params, store, config, cache, profiler, overlay, stats, clock, launch,
    )?;
    if let Some(n_move) = sb
        .staging
        .as_ref()
        .map(|st| st.source.plan().movement.len())
    {
        let t0 = Instant::now();
        for mi in 0..n_move {
            let st = sb.staging.as_ref().expect("staged");
            let out = move_out_buffer(
                st,
                mi,
                &sb.fixed,
                next_fixed,
                overlay,
                stats,
                hoist.as_ref().map(|(h, _)| *h),
                hoist.as_mut().map(|(_, p)| &mut **p),
                &clock.ext,
            )?;
            match out {
                MoveOut::Parked => {}
                MoveOut::Full => {
                    let st = sb.staging.as_ref().expect("staged");
                    let tag = clock.issue_movement(
                        st.source.plan(),
                        mi,
                        &st.pparams,
                        Direction::Out,
                        config,
                        clock.now,
                    )?;
                    clock.wait(&tag);
                }
                MoveOut::Delta => {
                    let st = sb.staging.as_ref().expect("staged");
                    let plan = st.source.plan();
                    let buf = &plan.buffers[plan.movement[mi].buffer];
                    let rp = flush_delta_plan(st, mi, &sb.fixed, next_fixed).expect("flushed");
                    let tag = clock.issue_flush(rp, buf, &st.pparams, config, clock.now)?;
                    clock.wait(&tag);
                }
            }
        }
        if let Some(pr) = profiler {
            pr.record(crate::trace::PassKind::MoveOut, t0.elapsed());
        }
    }
    // Snapshot the post-move-out scratchpad for the successor's delta
    // staging. The snapshot holds the newest value of every element
    // (flushing copies out of it, never into it), so it stays correct
    // under a delta flush: skipped elements are exactly the ones the
    // successor serves from this snapshot instead of global memory.
    if let Some(slot) = carry_slot {
        *slot = sb.staging.as_ref().and_then(|st| {
            residency_nonempty(&st.source).then(|| ResidencyCarry {
                fixed: sb.fixed.clone(),
                local: st.local.clone(),
            })
        });
    }
    Ok(())
}

/// Stage every movement entry prefetching skipped, synchronously:
/// the stale-persistent flush, hoisted-copy shortcuts, and groups
/// pinned by a seq-carried flow dependence (counted in `sync_groups`
/// when `count_denied`). Transfers start no earlier than `earliest`.
#[allow(clippy::too_many_arguments)]
fn stage_remaining_sync(
    kernel: &BlockedKernel,
    sb: &mut SubBlock,
    store: &ArrayStore,
    config: &MachineConfig,
    profiler: Option<&PassProfiler>,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    hoistable: &HashSet<usize>,
    persistent: &mut HashMap<usize, Persistent>,
    clock: &mut BlockClock,
    poisoned: &HashSet<AccessId>,
    earliest: u64,
    count_denied: bool,
    carry: Option<(&HashMap<String, i64>, &LocalStore)>,
) -> Result<()> {
    if sb.staging.is_none() {
        return Ok(());
    }
    let t0 = Instant::now();
    if let Some(st) = &sb.staging {
        flush_stale_persistent(st, persistent, overlay, stats, clock, config)?;
    }
    let n_move = sb
        .staging
        .as_ref()
        .map_or(0, |st| st.source.plan().movement.len());
    for mi in 0..n_move {
        if sb.staging.as_ref().expect("staged").staged[mi] {
            continue;
        }
        let denied = {
            let plan = sb.staging.as_ref().expect("staged").source.plan();
            !plan_hoists(
                plan,
                plan.buffers[plan.movement[mi].buffer].array,
                hoistable,
            ) && buffer_poisoned(plan, mi, poisoned)
        };
        // Residency first: the predecessor has computed and flushed
        // by now, so even written or dependence-carrying groups may
        // re-base their retained atoms from its snapshot.
        let st = sb.staging.as_mut().expect("staged");
        if let Some(tag) = move_in_buffer_resident(
            &kernel.program,
            st,
            mi,
            &sb.fixed,
            carry,
            Some(hoistable),
            Some(persistent),
            store,
            overlay,
            stats,
            clock,
            config,
            earliest,
        )? {
            clock.wait(&tag);
            if count_denied && denied {
                stats.sync_groups += 1;
            }
            continue;
        }
        let st = sb.staging.as_mut().expect("staged");
        let real = move_in_buffer(
            &kernel.program,
            st,
            mi,
            store,
            overlay,
            stats,
            Some(hoistable),
            Some(persistent),
            clock,
            config,
        )?;
        if real {
            let st = sb.staging.as_ref().expect("staged");
            let tag = clock.issue_movement(
                st.source.plan(),
                mi,
                &st.pparams,
                Direction::In,
                config,
                earliest,
            )?;
            clock.wait(&tag);
            if count_denied && denied {
                stats.sync_groups += 1;
            }
        }
    }
    if let Some(pr) = profiler {
        pr.record(crate::trace::PassKind::MoveIn, t0.elapsed());
    }
    Ok(())
}

/// Software-pipelined sub-tile loop (double buffering): while
/// sub-tile t computes, the move-in for t+1 is in flight on the DMA
/// channels, and t's move-out is issued right after its compute and
/// overlaps t+1. Functional semantics stay identical to the
/// synchronous schedule: prefetched groups carry no seq-dim flow
/// dependence (checked by the caller via `overlap_poisoned_reads`),
/// and everything else — hoisted copies, poisoned groups — stages
/// after the previous sub-tile's move-out, exactly as in the
/// synchronous path.
#[allow(clippy::too_many_arguments)]
fn execute_block_pipelined(
    kernel: &BlockedKernel,
    fixed: &HashMap<String, i64>,
    params: &[i64],
    store: &ArrayStore,
    config: &MachineConfig,
    cache: Option<&PlanCache>,
    profiler: Option<&PassProfiler>,
    overlay: &mut Overlay,
    stats: &mut ExecStats,
    clock: &mut BlockClock,
    seqs: &[Vec<i64>],
    hoistable: &HashSet<usize>,
    persistent: &mut HashMap<usize, Persistent>,
    poisoned: &HashSet<AccessId>,
    launch: &LaunchShared,
) -> Result<()> {
    let fixed_for = |sv: &[i64]| {
        let mut f2 = fixed.clone();
        for (n, v) in kernel.seq_dims.iter().zip(sv) {
            f2.insert(n.clone(), *v);
        }
        f2
    };
    let wb = config.word_bytes;
    let mut cur = prepare_sub_block(
        kernel,
        &fixed_for(&seqs[0]),
        params,
        config,
        cache,
        profiler,
        stats,
    )?;
    if let Some(st) = &cur.staging {
        if config.smem_bytes > 0 && st.words * wb > config.smem_bytes {
            return Err(MachineError::ScratchpadOverflow {
                requested: st.words * wb,
                available: config.smem_bytes,
            });
        }
    }
    // Sub-tile 0 stages synchronously: nothing to overlap with yet.
    stage_remaining_sync(
        kernel, &mut cur, store, config, profiler, overlay, stats, hoistable, persistent, clock,
        poisoned, 0, false, None,
    )?;
    let mut reuse_ready = clock.now;
    for t in 0..seqs.len() {
        // Prepare t+1 and prefetch its overlap-legal, non-hoisted
        // groups; the transfers fly while t computes. Functionally the
        // copies happen before t's writes, which is exactly what the
        // legality check licenses.
        let mut next = if t + 1 < seqs.len() {
            let mut nx = prepare_sub_block(
                kernel,
                &fixed_for(&seqs[t + 1]),
                params,
                config,
                cache,
                profiler,
                stats,
            )?;
            let cw = cur.staging.as_ref().map_or(0, |s| s.words);
            let nw = nx.staging.as_ref().map_or(0, |s| s.words);
            if config.smem_bytes > 0 && (cw + nw) * wb > config.smem_bytes {
                return Err(MachineError::DoubleBufferOverflow {
                    requested: (cw + nw) * wb,
                    available: config.smem_bytes,
                });
            }
            let t0 = Instant::now();
            let n_move = nx
                .staging
                .as_ref()
                .map_or(0, |st| st.source.plan().movement.len());
            for mi in 0..n_move {
                {
                    let nst = nx.staging.as_ref().expect("staged");
                    let plan = nst.source.plan();
                    let bi = plan.movement[mi].buffer;
                    let array = plan.buffers[bi].array;
                    // Only read-only, dependence-free buffers the
                    // hoist shortcut cannot satisfy prefetch: a
                    // written buffer's move-in may read locations the
                    // previous sub-tile wrote (an output/anti
                    // dependence the flow-dep check does not cover).
                    if !plan.movement[mi].write_spaces.is_empty()
                        || buffer_poisoned(plan, mi, poisoned)
                        || hoist_shortcut_hits(&cur, nst, bi, array, hoistable)
                    {
                        continue;
                    }
                }
                // Residency first: the group is read-only (checked
                // above) and retention-legal, so `cur`'s pre-compute
                // contents already hold the retained values — re-base
                // locally and prefetch only the delta.
                let prev = cur.staging.as_ref().map(|cs| (&cur.fixed, &cs.local));
                let st = nx.staging.as_mut().expect("staged");
                if let Some(tag) = move_in_buffer_resident(
                    &kernel.program,
                    st,
                    mi,
                    &nx.fixed,
                    prev,
                    Some(hoistable),
                    Some(persistent),
                    store,
                    overlay,
                    stats,
                    clock,
                    config,
                    reuse_ready,
                )? {
                    nx.staging.as_mut().expect("staged").tags.push(tag);
                    stats.overlap_groups += 1;
                    continue;
                }
                let st = nx.staging.as_mut().expect("staged");
                let real = move_in_buffer(
                    &kernel.program,
                    st,
                    mi,
                    store,
                    overlay,
                    stats,
                    None,
                    None,
                    clock,
                    config,
                )?;
                if real {
                    let st = nx.staging.as_ref().expect("staged");
                    let tag = clock.issue_movement(
                        st.source.plan(),
                        mi,
                        &st.pparams,
                        Direction::In,
                        config,
                        reuse_ready,
                    )?;
                    nx.staging.as_mut().expect("staged").tags.push(tag);
                    stats.overlap_groups += 1;
                }
            }
            if let Some(pr) = profiler {
                pr.record(crate::trace::PassKind::MoveIn, t0.elapsed());
            }
            Some(nx)
        } else {
            None
        };
        // The prefetches for `cur` (issued while t−1 computed) must
        // have landed before its compute touches the buffers.
        if let Some(st) = cur.staging.as_mut() {
            let tags = std::mem::take(&mut st.tags);
            for tag in &tags {
                clock.wait(tag);
            }
        }
        compute_sub_block(
            kernel, &mut cur, params, store, config, cache, profiler, overlay, stats, clock, launch,
        )?;
        // Move-out of t: applied functionally now (same order as the
        // synchronous schedule), its DMA time overlapping t+1's
        // compute. Move-in for t+2 reuses these slots, so it starts
        // no earlier than `out_done`.
        let mut out_done = clock.now;
        if let Some(n_move) = cur
            .staging
            .as_ref()
            .map(|st| st.source.plan().movement.len())
        {
            let t0 = Instant::now();
            let next_fixed = next.as_ref().map(|nx| &nx.fixed);
            for mi in 0..n_move {
                let st = cur.staging.as_ref().expect("staged");
                let out = move_out_buffer(
                    st,
                    mi,
                    &cur.fixed,
                    next_fixed,
                    overlay,
                    stats,
                    Some(hoistable),
                    Some(persistent),
                    &clock.ext,
                )?;
                match out {
                    MoveOut::Parked => {}
                    MoveOut::Full => {
                        let st = cur.staging.as_ref().expect("staged");
                        let tag = clock.issue_movement(
                            st.source.plan(),
                            mi,
                            &st.pparams,
                            Direction::Out,
                            config,
                            clock.now,
                        )?;
                        out_done = out_done.max(tag.done);
                    }
                    MoveOut::Delta => {
                        let st = cur.staging.as_ref().expect("staged");
                        let plan = st.source.plan();
                        let buf = &plan.buffers[plan.movement[mi].buffer];
                        let rp = flush_delta_plan(st, mi, &cur.fixed, next_fixed).expect("flushed");
                        let tag = clock.issue_flush(rp, buf, &st.pparams, config, clock.now)?;
                        out_done = out_done.max(tag.done);
                    }
                }
            }
            if let Some(pr) = profiler {
                pr.record(crate::trace::PassKind::MoveOut, t0.elapsed());
            }
        }
        // Stage what prefetching skipped; these must observe t's
        // writes, so they run after its move-out. `cur` now holds t's
        // post-compute scratchpad — the residency predecessor.
        if let Some(nx) = next.as_mut() {
            let prev = cur.staging.as_ref().map(|cs| (&cur.fixed, &cs.local));
            stage_remaining_sync(
                kernel, nx, store, config, profiler, overlay, stats, hoistable, persistent, clock,
                poisoned, out_done, true, prev,
            )?;
        }
        reuse_ready = out_done;
        match next {
            Some(nx) => cur = nx,
            None => break,
        }
    }
    Ok(())
}

/// A global element read: the block's own buffered writes shadow the
/// store. Overlay lookups go through the flat row-major offset; an
/// index that does not flatten falls through to `store.get`, whose
/// typed out-of-bounds error is authoritative.
fn read_global(
    store: &ArrayStore,
    overlay: &Overlay,
    array: usize,
    name: &str,
    idx: &[i64],
    ext: &[i64],
) -> Result<i64> {
    if let Some(v) = flatten(idx, ext).and_then(|off| overlay.get(array, off)) {
        return Ok(v);
    }
    Ok(store.get(name, idx)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_core::tiling::transform::{tile_program, TileSpec};
    use polymem_ir::expr::v;
    use polymem_ir::{exec_program, Expr, LinExpr, ProgramBuilder};

    /// C[i][j] = A[i][j] + A[i][j+1], tiled 2-D.
    fn window2d() -> Program {
        let mut b = ProgramBuilder::new("w", ["N"]);
        b.array("A", &[v("N"), v("N") + 1]);
        b.array("C", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("C", &[v("i"), v("j")])
            .read("A", &[v("i"), v("j")])
            .read("A", &[v("i"), v("j") + 1])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        b.build().unwrap()
    }

    fn blocked(use_scratchpad: bool) -> BlockedKernel {
        let p = window2d();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4), ("j", 4)], "T")).unwrap();
        BlockedKernel {
            program: t,
            round_dims: vec![],
            block_dims: vec!["iT".into(), "jT".into()],
            seq_dims: vec![],
            thread_dims: vec![],
            use_scratchpad,
        }
    }

    fn reference(params: &[i64]) -> ArrayStore {
        let p = window2d();
        let mut st = ArrayStore::for_program(&p, params).unwrap();
        st.fill_with("A", |ix| ix[0] * 1000 + ix[1]).unwrap();
        exec_program(&p, params, &mut st).unwrap();
        st
    }

    fn run(kernel: &BlockedKernel, params: &[i64], parallel: bool) -> (ArrayStore, ExecStats) {
        let p = window2d();
        let mut st = ArrayStore::for_program(&p, params).unwrap();
        st.fill_with("A", |ix| ix[0] * 1000 + ix[1]).unwrap();
        let cfg = MachineConfig::geforce_8800_gtx();
        let stats = execute_blocked(kernel, params, &mut st, &cfg, parallel).unwrap();
        (st, stats)
    }

    #[test]
    fn blocked_matches_reference_without_scratchpad() {
        let k = blocked(false);
        let (st, stats) = run(&k, &[10], false);
        assert_eq!(st.data("C").unwrap(), reference(&[10]).data("C").unwrap());
        assert_eq!(stats.blocks, 9); // ceil(10/4)^2
        assert_eq!(stats.instances, 100);
        assert_eq!(stats.smem_reads, 0);
        assert_eq!(stats.moved_in, 0);
    }

    #[test]
    fn blocked_matches_reference_with_scratchpad() {
        let k = blocked(true);
        let (st, stats) = run(&k, &[10], false);
        assert_eq!(st.data("C").unwrap(), reference(&[10]).data("C").unwrap());
        assert!(stats.moved_in > 0);
        // C is written once per element — no reuse, so the GPU-mode
        // plan correctly leaves it in global memory (no move-out).
        assert_eq!(stats.moved_out, 0);
        assert!(stats.smem_reads > 0);
        assert!(stats.max_smem_words > 0);
    }

    #[test]
    fn plan_cache_hits_and_can_be_disabled() {
        let k = blocked(true);
        let p = window2d();
        let run_with = |plan_cache: bool| {
            let mut st = ArrayStore::for_program(&p, &[10]).unwrap();
            st.fill_with("A", |ix| ix[0] * 1000 + ix[1]).unwrap();
            let mut cfg = MachineConfig::geforce_8800_gtx();
            cfg.plan_cache = plan_cache;
            let stats = execute_blocked(&k, &[10], &mut st, &cfg, false).unwrap();
            (st, stats)
        };
        let (st_on, on) = run_with(true);
        let (st_off, off) = run_with(false);
        // Bit-exact contents either way.
        assert_eq!(st_on.data("C").unwrap(), st_off.data("C").unwrap());
        // 9 blocks: 1 warm-up miss, every block a hit.
        assert_eq!(on.plan_cache_misses, 1);
        assert_eq!(on.plan_cache_hits, 9);
        assert_eq!(off.plan_cache_hits, 0);
        assert_eq!(off.plan_cache_misses, 0);
        // Traffic identical: instantiation is exact, boundary tiles
        // included (10 = 2*4 + 2 leaves partial tiles).
        assert_eq!(on.moved_in, off.moved_in);
        assert_eq!(on.global_reads, off.global_reads);
        assert_eq!(on.smem_reads, off.smem_reads);
        assert_eq!(on.max_smem_words, off.max_smem_words);
    }

    #[test]
    fn profiled_run_records_phases() {
        use crate::trace::{PassKind, PassProfiler};
        let k = blocked(true);
        let p = window2d();
        let mut st = ArrayStore::for_program(&p, &[10]).unwrap();
        st.fill_with("A", |ix| ix[0] * 1000 + ix[1]).unwrap();
        let cfg = MachineConfig::geforce_8800_gtx();
        let profiler = PassProfiler::new();
        execute_blocked_profiled(&k, &[10], &mut st, &cfg, false, Some(&profiler)).unwrap();
        let r = profiler.report();
        let count = |kind: PassKind| r.rows.iter().find(|w| w.kind == kind).unwrap().count;
        // One warm-up symbolic analysis → one occurrence per compiler
        // pass; 9 blocks → 9 move-in and compute phases; one barrier.
        assert_eq!(count(PassKind::Reuse), 1);
        assert_eq!(count(PassKind::Dataspace), 1);
        assert_eq!(count(PassKind::MoveIn), 9);
        assert_eq!(count(PassKind::Compute), 9);
        assert_eq!(count(PassKind::Barrier), 1);
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let k = blocked(true);
        let (seq, s1) = run(&k, &[13], false);
        let (par, s2) = run(&k, &[13], true);
        assert_eq!(seq.data("C").unwrap(), par.data("C").unwrap());
        assert_eq!(s1, s2);
    }

    #[test]
    fn scratchpad_reduces_global_traffic() {
        let k_no = blocked(false);
        let k_yes = blocked(true);
        let (_, dram) = run(&k_no, &[16], false);
        let (_, smem) = run(&k_yes, &[16], false);
        // DRAM-only: 2 global reads per instance (512 total). With
        // staging each A element is read once per block (overlap
        // column read twice across neighbouring blocks only).
        assert!(
            smem.global_reads < dram.global_reads,
            "{} vs {}",
            smem.global_reads,
            dram.global_reads
        );
    }

    #[test]
    fn rounds_with_device_sync() {
        // A 1-D recurrence over rounds: for r in [1,3], i in [0,N-1]:
        // B[r][i] = B[r-1][i] + 1 — each round reads the previous
        // round's output, so round_dims = [r] is required and the
        // executor must produce the sequential result.
        let mut b = ProgramBuilder::new("r", ["N"]);
        b.array("B", &[LinExpr::c(4), v("N")]);
        b.stmt("S")
            .loops(&[
                ("r", LinExpr::c(1), LinExpr::c(3)),
                ("i", LinExpr::c(0), v("N") - 1),
            ])
            .write("B", &[v("r"), v("i")])
            .read("B", &[v("r") - 1, v("i")])
            .body(Expr::add(Expr::Read(0), Expr::Const(1)))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let k = BlockedKernel {
            program: t,
            round_dims: vec!["r".into()],
            block_dims: vec!["iT".into()],
            seq_dims: vec![],
            thread_dims: vec![],
            use_scratchpad: false,
        };
        let mut st = ArrayStore::for_program(&p, &[8]).unwrap();
        let cfg = MachineConfig::geforce_8800_gtx();
        let stats = execute_blocked(&k, &[8], &mut st, &cfg, true).unwrap();
        assert_eq!(stats.rounds, 3);
        for i in 0..8 {
            assert_eq!(st.get("B", &[3, i]).unwrap(), 3);
        }
    }

    #[test]
    fn cell_mode_copies_everything() {
        let p = window2d();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4), ("j", 4)], "T")).unwrap();
        let k = BlockedKernel {
            program: t,
            round_dims: vec![],
            block_dims: vec!["iT".into(), "jT".into()],
            seq_dims: vec![],
            thread_dims: vec![],
            use_scratchpad: true,
        };
        let mut st = ArrayStore::for_program(&p, &[8]).unwrap();
        st.fill_with("A", |ix| ix[0] + ix[1]).unwrap();
        let cfg = MachineConfig::cell_like();
        let stats = execute_blocked(&k, &[8], &mut st, &cfg, false).unwrap();
        // In Cell mode no compute access touches global memory: all
        // global traffic is movement.
        assert_eq!(stats.global_reads, stats.moved_in);
        assert_eq!(stats.global_writes, stats.moved_out);
        assert_eq!(st.data("C").unwrap(), {
            let mut r = ArrayStore::for_program(&p, &[8]).unwrap();
            r.fill_with("A", |ix| ix[0] + ix[1]).unwrap();
            exec_program(&p, &[8], &mut r).unwrap();
            r.data("C").unwrap().to_vec()
        });
    }

    /// The window2d kernel with the `j` tile loop kept sequential
    /// inside each block — the shape the double-buffered pipeline
    /// targets.
    fn blocked_seq() -> BlockedKernel {
        let p = window2d();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4), ("j", 4)], "T")).unwrap();
        BlockedKernel {
            program: t,
            round_dims: vec![],
            block_dims: vec!["iT".into()],
            seq_dims: vec!["jT".into()],
            thread_dims: vec![],
            use_scratchpad: true,
        }
    }

    fn run_seq(double_buffer: bool, params: &[i64]) -> (ArrayStore, ExecStats) {
        let k = blocked_seq();
        let p = window2d();
        let mut st = ArrayStore::for_program(&p, params).unwrap();
        st.fill_with("A", |ix| ix[0] * 1000 + ix[1]).unwrap();
        let mut cfg = MachineConfig::cell_like();
        cfg.double_buffer = double_buffer;
        let stats = execute_blocked(&k, params, &mut st, &cfg, false).unwrap();
        (st, stats)
    }

    #[test]
    fn absorb_accumulates_every_field() {
        // Explicit struct literals (no `..`) so a future field forces
        // this test — and `absorb` — to be revisited.
        let mk = |x: u64| ExecStats {
            blocks: x,
            instances: x + 1,
            global_reads: x + 2,
            global_writes: x + 3,
            smem_reads: x + 4,
            smem_writes: x + 5,
            moved_in: x + 6,
            moved_out: x + 7,
            rounds: x + 8,
            max_smem_words: x + 9,
            plan_cache_hits: x + 10,
            plan_cache_misses: x + 11,
            block_cycles: x + 12,
            modeled_cycles: x + 13,
            overlap_groups: x + 14,
            sync_groups: x + 15,
            smem_loads_saved: x + 23,
            reg_bytes_moved: x + 24,
            hier_groups: x + 25,
            retained_elems: x + 32,
            delta_elems: x + 33,
            flushed_delta_elems: x + 35,
            residency_groups: x + 34,
            compiled_blocks: x + 26,
            interpreted_blocks: x + 27,
            fallback: FallbackStats {
                engine_off: x + 28,
                owned_plan: x + 29,
                shape_uncompiled: x + 30,
                runtime_decline: x + 31,
            },
            compute_ns: x + 22,
            dma: DmaStats {
                descriptors: x + 16,
                elements: x + 17,
                bytes: x + 18,
                channel_busy_cycles: vec![x, x + 19],
                stall_cycles: x + 20,
                bytes_hist: vec![x + 21],
            },
        };
        let mut a = mk(100);
        let b = mk(1);
        a.absorb(&b);
        assert_eq!(a.blocks, 101);
        assert_eq!(a.instances, 103);
        assert_eq!(a.global_reads, 105);
        assert_eq!(a.global_writes, 107);
        assert_eq!(a.smem_reads, 109);
        assert_eq!(a.smem_writes, 111);
        assert_eq!(a.moved_in, 113);
        assert_eq!(a.moved_out, 115);
        assert_eq!(a.rounds, 117);
        assert_eq!(a.max_smem_words, 109); // max, not sum
        assert_eq!(a.plan_cache_hits, 121);
        assert_eq!(a.plan_cache_misses, 123);
        assert_eq!(a.block_cycles, 125);
        assert_eq!(a.modeled_cycles, 127);
        assert_eq!(a.overlap_groups, 129);
        assert_eq!(a.sync_groups, 131);
        assert_eq!(a.dma.descriptors, 133);
        assert_eq!(a.dma.elements, 135);
        assert_eq!(a.dma.bytes, 137);
        assert_eq!(a.dma.channel_busy_cycles, vec![101, 139]);
        assert_eq!(a.dma.stall_cycles, 141);
        assert_eq!(a.dma.bytes_hist, vec![143]);
        assert_eq!(a.compute_ns, 145); // wall time sums across workers
        assert_eq!(a.smem_loads_saved, 147);
        assert_eq!(a.reg_bytes_moved, 149);
        assert_eq!(a.hier_groups, 151);
        assert_eq!(a.retained_elems, 165);
        assert_eq!(a.delta_elems, 167);
        assert_eq!(a.flushed_delta_elems, 171);
        assert_eq!(a.residency_groups, 169);
        assert_eq!(a.compiled_blocks, 153);
        assert_eq!(a.interpreted_blocks, 155);
        assert_eq!(a.fallback.engine_off, 157);
        assert_eq!(a.fallback.owned_plan, 159);
        assert_eq!(a.fallback.shape_uncompiled, 161);
        assert_eq!(a.fallback.runtime_decline, 163);
        assert_eq!(a.fallback.total(), 157 + 159 + 161 + 163);
    }

    /// Square matmul C[i][j] += A[i][k] * B[k][j] with i and j tiled,
    /// mapped with `i` distributed across the inner processes.
    fn matmul_hier_kernel() -> (Program, BlockedKernel) {
        let mut b = ProgramBuilder::new("mm", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.array("B", &[v("N"), v("N")]);
        b.array("C", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
                ("k", LinExpr::c(0), v("N") - 1),
            ])
            .write("C", &[v("i"), v("j")])
            .read("C", &[v("i"), v("j")])
            .read("A", &[v("i"), v("k")])
            .read("B", &[v("k"), v("j")])
            .body(Expr::add(
                Expr::Read(0),
                Expr::mul(Expr::Read(1), Expr::Read(2)),
            ))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4), ("j", 4)], "T")).unwrap();
        let k = BlockedKernel {
            program: t,
            round_dims: vec![],
            block_dims: vec!["iT".into(), "jT".into()],
            seq_dims: vec![],
            thread_dims: vec!["i".into()],
            use_scratchpad: true,
        };
        (p, k)
    }

    fn run_hier(
        k: &BlockedKernel,
        p: &Program,
        hierarchy: bool,
        parallel: bool,
    ) -> (ArrayStore, ExecStats) {
        let mut st = ArrayStore::for_program(p, &[8]).unwrap();
        st.fill_with("A", |ix| ix[0] * 7 + ix[1]).unwrap();
        st.fill_with("B", |ix| ix[0] - 3 * ix[1]).unwrap();
        let mut cfg = MachineConfig::geforce_8800_gtx();
        cfg.hierarchy = hierarchy;
        let stats = execute_blocked(k, &[8], &mut st, &cfg, parallel).unwrap();
        (st, stats)
    }

    #[test]
    fn hierarchy_is_bit_exact_and_cuts_scratchpad_traffic() {
        let (p, k) = matmul_hier_kernel();
        let (st_off, off) = run_hier(&k, &p, false, false);
        let (st_on, on) = run_hier(&k, &p, true, false);
        assert_eq!(st_on.data("C").unwrap(), st_off.data("C").unwrap());
        assert_eq!(st_on.data("C").unwrap(), {
            let mut r = ArrayStore::for_program(&p, &[8]).unwrap();
            r.fill_with("A", |ix| ix[0] * 7 + ix[1]).unwrap();
            r.fill_with("B", |ix| ix[0] - 3 * ix[1]).unwrap();
            exec_program(&p, &[8], &mut r).unwrap();
            r.data("C").unwrap().to_vec()
        });
        // Reused C and A rows are served from register frames: the
        // scratchpad sees only B reads plus the frame staging traffic.
        assert_eq!(off.smem_loads_saved, 0);
        assert_eq!(off.hier_groups, 0);
        assert!(on.smem_loads_saved > 0);
        assert!(on.reg_bytes_moved > 0);
        // 4 blocks × 4 thread values each.
        assert_eq!(on.hier_groups, 16);
        let traffic = |s: &ExecStats| s.smem_reads + s.smem_writes;
        assert!(
            traffic(&on) * 2 <= traffic(&off),
            "expected ≥2× scratchpad-traffic cut: {} vs {}",
            traffic(&on),
            traffic(&off)
        );
        // Fewer scratchpad accesses at equal functional global traffic
        // can only lower the modeled time.
        assert!(on.modeled_cycles <= off.modeled_cycles);
        assert_eq!(on.global_reads, off.global_reads);
        assert_eq!(on.global_writes, off.global_writes);
    }

    #[test]
    fn hierarchy_parallel_is_deterministic() {
        let (p, k) = matmul_hier_kernel();
        let (seq, s1) = run_hier(&k, &p, true, false);
        let (par, s2) = run_hier(&k, &p, true, true);
        assert_eq!(seq.data("C").unwrap(), par.data("C").unwrap());
        assert_eq!(s1, s2);
    }

    #[test]
    fn register_overflow_is_typed() {
        // Triangular domain: the T frame holds row i's first i+1
        // elements, so it grows past the representative (i = 0) size.
        // The plan-time gate passes; the runtime check must trip with
        // the typed error once a thread value no longer fits.
        let mut b = ProgramBuilder::new("tri", ["N"]);
        b.array("T", &[v("N"), v("N")]);
        b.array("Out", &[v("N"), v("N")]);
        b.stmt("S")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("i")),
            ])
            .write("Out", &[v("i"), v("j")])
            .read("T", &[v("i"), v("j")])
            .read("T", &[v("i"), v("j")])
            .body(Expr::add(Expr::Read(0), Expr::Read(1)))
            .done();
        let p = b.build().unwrap();
        let k = BlockedKernel {
            program: p.clone(),
            round_dims: vec![],
            block_dims: vec![],
            seq_dims: vec![],
            thread_dims: vec!["i".into()],
            use_scratchpad: true,
        };
        let run = |regs: u64| {
            let mut st = ArrayStore::for_program(&p, &[8]).unwrap();
            st.fill_with("T", |ix| ix[0] * 10 + ix[1]).unwrap();
            let mut cfg = MachineConfig::geforce_8800_gtx();
            cfg.hierarchy = true;
            cfg.regs_per_inner = regs;
            execute_blocked(&k, &[8], &mut st, &cfg, false)
        };
        assert!(run(8).is_ok(), "the largest row (8 words) must fit");
        match run(4) {
            Err(MachineError::RegisterOverflow {
                requested,
                available,
            }) => {
                assert_eq!(requested, 5); // row i = 4 is the first to overflow
                assert_eq!(available, 4);
            }
            other => panic!("expected RegisterOverflow, got {other:?}"),
        }
    }

    #[test]
    fn double_buffer_is_bit_exact_and_overlaps() {
        let (off_st, off) = run_seq(false, &[16]);
        let (on_st, on) = run_seq(true, &[16]);
        assert_eq!(on_st.data("C").unwrap(), off_st.data("C").unwrap());
        assert_eq!(
            on_st.data("C").unwrap(),
            reference(&[16]).data("C").unwrap()
        );
        // Identical functional traffic, different schedule.
        assert_eq!(on.moved_in, off.moved_in);
        assert_eq!(on.moved_out, off.moved_out);
        assert_eq!(on.instances, off.instances);
        // The read-only A buffers prefetch ahead of compute…
        assert!(on.overlap_groups > 0, "no prefetches issued");
        assert_eq!(off.overlap_groups, 0);
        // …which hides transfer latency: modeled time cannot get
        // worse, and the DMA engine reports coalesced descriptors.
        assert!(on.modeled_cycles <= off.modeled_cycles);
        assert!(on.dma.descriptors > 0);
        assert!(on.dma.descriptors < on.moved_in + on.moved_out);
        assert!(on.dma.overlap_fraction() > 0.0);
    }

    #[test]
    fn double_buffer_parallel_is_deterministic() {
        let k = blocked_seq();
        let p = window2d();
        let run = |parallel: bool| {
            let mut st = ArrayStore::for_program(&p, &[13]).unwrap();
            st.fill_with("A", |ix| ix[0] * 1000 + ix[1]).unwrap();
            let mut cfg = MachineConfig::cell_like();
            cfg.double_buffer = true;
            let stats = execute_blocked(&k, &[13], &mut st, &cfg, parallel).unwrap();
            (st, stats)
        };
        let (seq, s1) = run(false);
        let (par, s2) = run(true);
        assert_eq!(seq.data("C").unwrap(), par.data("C").unwrap());
        assert_eq!(s1, s2);
    }

    #[test]
    fn double_buffer_overflow_is_typed() {
        // Find the single-buffer footprint, then give the machine
        // room for one footprint but not two.
        let (_, off) = run_seq(false, &[16]);
        let words = off.max_smem_words;
        assert!(words > 0);
        let k = blocked_seq();
        let p = window2d();
        let run = |double_buffer: bool| {
            let mut st = ArrayStore::for_program(&p, &[16]).unwrap();
            st.fill_with("A", |ix| ix[0] * 1000 + ix[1]).unwrap();
            let mut cfg = MachineConfig::cell_like();
            cfg.double_buffer = double_buffer;
            cfg.smem_bytes = words * cfg.word_bytes + cfg.word_bytes;
            execute_blocked(&k, &[16], &mut st, &cfg, false)
        };
        assert!(run(false).is_ok(), "one footprint must still fit");
        match run(true) {
            Err(MachineError::DoubleBufferOverflow {
                requested,
                available,
            }) => {
                assert!(requested > available);
            }
            other => panic!("expected DoubleBufferOverflow, got {other:?}"),
        }
    }

    #[test]
    fn seq_carried_dep_forces_sync_staging() {
        // A[s][i] = A[s-1][i] + 1 carries a flow dependence on the
        // seq dim `s`, so A's group must stage synchronously; the
        // independent Out[s][i] = B2[s][i] * 2 statement still
        // prefetches B2. Both must stay bit-exact.
        let mut b = ProgramBuilder::new("d", ["N"]);
        b.array("A", &[LinExpr::c(4), v("N")]);
        b.array("B2", &[LinExpr::c(4), v("N")]);
        b.array("Out", &[LinExpr::c(4), v("N")]);
        b.stmt("S1")
            .loops(&[
                ("s", LinExpr::c(1), LinExpr::c(3)),
                ("i", LinExpr::c(0), v("N") - 1),
            ])
            .write("A", &[v("s"), v("i")])
            .read("A", &[v("s") - 1, v("i")])
            .body(Expr::add(Expr::Read(0), Expr::Const(1)))
            .done();
        b.stmt("S2")
            .loops(&[
                ("s", LinExpr::c(1), LinExpr::c(3)),
                ("i", LinExpr::c(0), v("N") - 1),
            ])
            .write("Out", &[v("s"), v("i")])
            .read("B2", &[v("s"), v("i")])
            .body(Expr::mul(Expr::Read(0), Expr::Const(2)))
            .done();
        let p = b.build().unwrap();
        let t = tile_program(&p, &TileSpec::new(&[("i", 4)], "T")).unwrap();
        let k = BlockedKernel {
            program: t,
            round_dims: vec![],
            block_dims: vec!["iT".into()],
            seq_dims: vec!["s".into()],
            thread_dims: vec![],
            use_scratchpad: true,
        };
        let run = |double_buffer: bool| {
            let mut st = ArrayStore::for_program(&p, &[8]).unwrap();
            st.fill_with("A", |ix| ix[1]).unwrap();
            st.fill_with("B2", |ix| ix[0] * 10 + ix[1]).unwrap();
            let mut cfg = MachineConfig::cell_like();
            cfg.double_buffer = double_buffer;
            let stats = execute_blocked(&k, &[8], &mut st, &cfg, false).unwrap();
            (st, stats)
        };
        let (off_st, off) = run(false);
        let (on_st, on) = run(true);
        for a in ["A", "Out"] {
            assert_eq!(on_st.data(a).unwrap(), off_st.data(a).unwrap(), "{a}");
        }
        // The recurrence result is the sequential one.
        for i in 0..8 {
            assert_eq!(on_st.get("A", &[3, i]).unwrap(), i + 3);
        }
        assert_eq!(off.sync_groups, 0);
        assert!(
            on.sync_groups > 0,
            "seq-carried dep must pin a group synchronous"
        );
        assert!(
            on.overlap_groups > 0,
            "independent group must still prefetch"
        );
    }
}
