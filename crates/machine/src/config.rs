//! Machine descriptions.
//!
//! The [`MachineConfig`] fields are the architecture parameters of the
//! paper's §4/§5 machine abstraction. The `geforce_8800_gtx` preset is
//! calibrated to the paper's testbed (16 multiprocessors × 8 SIMD
//! units at 1.35 GHz, 16 KB scratchpad per multiprocessor, warp 32,
//! 768 MB DRAM behind a high-latency bus); `cell_like` models an
//! architecture whose local store is *mandatory* (data cannot be
//! touched from global memory during compute, §3); `host_cpu` is the
//! paper's Core2-Duo-class baseline.

/// Default executor enumeration budget: generous (2^32 points) but
/// finite, so runaway domains fail with a typed error.
pub const DEFAULT_ENUM_BUDGET: u64 = 1 << 32;

/// Which preset family a config came from (drives a few behavioural
/// switches in the executors).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachineKind {
    /// GPU-like: scratchpad optional, occupancy limited by its use.
    Gpu,
    /// Cell-like: every accessed element must be staged into the
    /// local store first.
    CellLike,
    /// A host CPU (no explicit scratchpad; hardware cache).
    Cpu,
}

/// A two-level explicitly-managed-memory machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Behavioural family.
    pub kind: MachineKind,
    /// Outer-level parallel units (multiprocessors / MIMD units).
    pub n_outer: u64,
    /// Inner-level SIMD units per outer unit.
    pub n_inner: u64,
    /// Scheduling granularity of inner-level processes (warp size);
    /// the paper fixes `P_low` to this.
    pub warp_size: u64,
    /// Scratchpad bytes per outer-level unit (the 8800's 16 KB).
    pub smem_bytes: u64,
    /// Bytes per data word (the paper's kernels use 4-byte words).
    pub word_bytes: u64,
    /// Core clock in GHz (times are reported in ms).
    pub clock_ghz: f64,
    /// Cycles for one arithmetic op on an inner unit.
    pub cycles_per_op: f64,
    /// Cycles of latency for one *global* memory element access.
    pub global_latency: f64,
    /// Sustainable global-memory parallelism: how many outstanding
    /// global accesses one outer unit can overlap (memory-level
    /// parallelism from multithreading warps).
    pub global_overlap: f64,
    /// Cycles for one scratchpad access.
    pub smem_latency: f64,
    /// Cycles of synchronisation cost per inner process per data
    /// movement occurrence (the cost model's `S`).
    pub sync_cycles: f64,
    /// Fixed cycles for a device-wide barrier (inter-block sync)...
    pub device_sync_base: f64,
    /// ...plus this many cycles per active thread block.
    pub device_sync_per_block: f64,
    /// Upper bound on thread blocks resident per outer unit even when
    /// scratchpad use would allow more (hardware scheduler limit).
    pub max_blocks_per_outer: u64,
    /// Point budget for round/block/instance enumeration in the
    /// functional executor; exceeding it is a typed
    /// `MachineError::EnumerationBudget` instead of an unbounded walk.
    pub enum_budget: u64,
    /// Reuse one symbolically analysed scratchpad plan across block
    /// instances of the same shape (compile-once-per-shape) instead of
    /// re-running the §3 analysis per sub-tile.
    pub plan_cache: bool,
    /// Tagged DMA channels per outer unit (Cell MFC queue depth /
    /// GPU memory-pipe width). `0` disables the DMA transfer engine
    /// entirely (movement is charged per element as before).
    pub dma_channels: u64,
    /// Fixed cycles to set up one DMA descriptor (command issue +
    /// address translation), paid per descriptor.
    pub dma_setup_cycles: f64,
    /// Sustained DMA bandwidth in bytes per core cycle, paid on top of
    /// the setup cost for each descriptor's payload.
    pub dma_bytes_per_cycle: f64,
    /// Software-pipeline the `seq_dims` sub-tile loop: issue move-in
    /// for sub-tile t+1 and move-out for t−1 asynchronously while
    /// computing t. Requires 2× the buffer footprint (typed
    /// [`DoubleBufferOverflow`](crate::MachineError::DoubleBufferOverflow)
    /// otherwise) and is disabled per group by seq-carried flow
    /// dependences.
    pub double_buffer: bool,
    /// Run block compute phases through the compiled execution engine
    /// (bytecode bodies + strided address streams, compiled once per
    /// block shape) instead of the per-point interpreter. Results are
    /// bit-identical; the interpreter stays available as a fallback
    /// and as the `POLYMEM_EXEC_CHECK=1` oracle.
    pub compiled_exec: bool,
    /// Register-file words available per inner process for the
    /// recursive level-2 plan's frames (register tiles). Frames whose
    /// running footprint would exceed this stay in scratchpad.
    pub regs_per_inner: u64,
    /// Enable the recursive register-tile level: re-run the §3
    /// pipeline over the intra-thread subnest of each block and stage
    /// beneficial groups into per-thread frames (smem→reg move-in,
    /// reg→smem move-out). Off in every preset; `polymem run` turns it
    /// on unless `--no-hierarchy` is given. Requires the plan cache.
    /// Both engines execute level-2 plans: the compiled engine tracks
    /// thread-key change points inside its merged cursors and stages
    /// frames through the same movement code as the interpreter, so
    /// counters stay bit-identical between the two.
    pub hierarchy: bool,
    /// Lane count of the compiled engine's batched inner loop. `1` is
    /// the scalar path; wider values evaluate up to this many
    /// consecutive innermost-dim instances per bytecode dispatch over
    /// proven strided address streams (streaming statements go through
    /// lane-parallel `BodyCode::eval_lanes`, reductions through a
    /// serial accumulator chain that preserves scalar association
    /// order). Functionally invisible: arrays and every deterministic
    /// counter are bit-identical at any width.
    pub vector_width: u64,
    /// Keep scratchpad buffers warm across the sub-tile (`seq_dims`)
    /// loop: the residency pass decomposes each group's move-in window
    /// against its lexicographic predecessor and only the *delta*
    /// crosses the global bus; overlapping elements are retained (and
    /// re-based in-place when the window slides, as in stencil halos).
    /// Requires the plan cache; on in the GPU and Cell presets;
    /// `polymem run --no-residency` turns it off.
    pub residency: bool,
    /// Partition each array's references into maximal disjoint groups
    /// (§3.1, the default). With `false`, all references share one
    /// buffer over their convex union — the paper's Fig. 1 layout,
    /// which lets the residency pass retain a stencil's whole sliding
    /// window when small tiles would otherwise split it into
    /// single-column groups.
    pub partition: bool,
    /// Directory of the content-addressed plan-artifact store. When
    /// set, the launch's symbolic plan is loaded from (and fresh
    /// compiles are persisted to) `<dir>/<key>.plan`, keyed by the
    /// program IR, the mapping-relevant fields of this config and the
    /// block-shape parametrization — see `polymem_core::smem::artifact`.
    /// `None` (every preset) disables persistence.
    pub artifact_dir: Option<String>,
}

impl MachineConfig {
    /// The paper's testbed: NVIDIA GeForce 8800 GTX.
    pub fn geforce_8800_gtx() -> MachineConfig {
        MachineConfig {
            kind: MachineKind::Gpu,
            n_outer: 16,
            n_inner: 8,
            warp_size: 32,
            smem_bytes: 16 * 1024,
            word_bytes: 4,
            clock_ghz: 1.35,
            cycles_per_op: 1.0,
            // ~500-cycle DRAM latency, heavily overlapped by warps.
            global_latency: 500.0,
            global_overlap: 32.0,
            smem_latency: 2.0,
            sync_cycles: 20.0,
            device_sync_base: 2_000.0,
            device_sync_per_block: 50.0,
            max_blocks_per_outer: 8,
            enum_budget: DEFAULT_ENUM_BUDGET,
            plan_cache: true,
            // Coalescing hardware: a half-warp's worth of outstanding
            // wide transactions, ~64 B/cycle aggregate.
            dma_channels: 8,
            dma_setup_cycles: 300.0,
            dma_bytes_per_cycle: 16.0,
            double_buffer: false,
            compiled_exec: true,
            // One warp's worth of 32-bit registers per thread is far
            // more than any frame set here; 64 words is the gate that
            // keeps frames row-sized.
            regs_per_inner: 64,
            hierarchy: false,
            // The 8800's inner level is 8-wide SIMD.
            vector_width: 8,
            residency: true,
            partition: true,
            artifact_dir: None,
        }
    }

    /// A Cell-BE-like machine: local store is mandatory.
    pub fn cell_like() -> MachineConfig {
        MachineConfig {
            kind: MachineKind::CellLike,
            n_outer: 8,
            n_inner: 1,
            warp_size: 1,
            smem_bytes: 256 * 1024,
            word_bytes: 4,
            clock_ghz: 3.2,
            cycles_per_op: 1.0,
            global_latency: 400.0,
            global_overlap: 4.0,
            smem_latency: 4.0,
            sync_cycles: 100.0,
            device_sync_base: 10_000.0,
            device_sync_per_block: 1_000.0,
            max_blocks_per_outer: 1,
            enum_budget: DEFAULT_ENUM_BUDGET,
            plan_cache: true,
            // The MFC accepts 16 queued DMA commands per SPE.
            dma_channels: 16,
            dma_setup_cycles: 200.0,
            dma_bytes_per_cycle: 8.0,
            double_buffer: false,
            compiled_exec: true,
            // The SPE register file has 128 entries.
            regs_per_inner: 128,
            hierarchy: false,
            // SPE SIMD is 128-bit: four 32-bit lanes.
            vector_width: 4,
            residency: true,
            partition: true,
            artifact_dir: None,
        }
    }

    /// The host CPU baseline (Core2-Duo class, 2.13 GHz, 2 MB L2).
    pub fn host_cpu() -> MachineConfig {
        MachineConfig {
            kind: MachineKind::Cpu,
            n_outer: 1,
            n_inner: 1,
            warp_size: 1,
            smem_bytes: 0,
            word_bytes: 4,
            clock_ghz: 2.13,
            cycles_per_op: 1.0,
            // Cache-filtered average memory cost per element access.
            global_latency: 8.0,
            global_overlap: 1.0,
            smem_latency: 0.0,
            sync_cycles: 0.0,
            device_sync_base: 0.0,
            device_sync_per_block: 0.0,
            max_blocks_per_outer: 1,
            enum_budget: DEFAULT_ENUM_BUDGET,
            plan_cache: true,
            // No DMA engine: loads/stores go through the cache.
            dma_channels: 0,
            dma_setup_cycles: 0.0,
            dma_bytes_per_cycle: 8.0,
            double_buffer: false,
            compiled_exec: true,
            regs_per_inner: 16,
            hierarchy: false,
            vector_width: 1,
            // No scratchpad to keep warm.
            residency: false,
            partition: true,
            artifact_dir: None,
        }
    }

    /// Total scratchpad bytes across the device (the paper's `X`).
    pub fn total_smem_bytes(&self) -> u64 {
        self.smem_bytes * self.n_outer
    }

    /// Maximum concurrently resident thread blocks for a given
    /// per-block scratchpad use (the §5 occupancy rule:
    /// `min(X / M, hw limit)`).
    pub fn concurrent_blocks(&self, smem_per_block: u64) -> u64 {
        let by_hw = self.n_outer * self.max_blocks_per_outer;
        if smem_per_block == 0 {
            return by_hw;
        }
        let per_outer = (self.smem_bytes / smem_per_block).min(self.max_blocks_per_outer);
        (per_outer * self.n_outer).max(1).min(by_hw.max(1))
    }

    /// Convert cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9) * 1e3
    }

    /// The cost-model constants (`P` supplied by the kernel mapping).
    pub fn cost_params(&self, p: f64) -> polymem_core::tiling::CostParams {
        polymem_core::tiling::CostParams {
            p,
            s: self.sync_cycles,
            l: self.global_latency / self.global_overlap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_parameters() {
        let g = MachineConfig::geforce_8800_gtx();
        assert_eq!(g.n_outer, 16);
        assert_eq!(g.n_inner, 8);
        assert_eq!(g.warp_size, 32);
        assert_eq!(g.smem_bytes, 16 * 1024);
        assert_eq!(g.total_smem_bytes(), 256 * 1024); // the paper's 2^18
        assert_eq!(g.kind, MachineKind::Gpu);
        assert_eq!(MachineConfig::cell_like().kind, MachineKind::CellLike);
        assert_eq!(MachineConfig::host_cpu().kind, MachineKind::Cpu);
    }

    #[test]
    fn residency_is_on_for_scratchpad_machines_only() {
        assert!(MachineConfig::geforce_8800_gtx().residency);
        assert!(MachineConfig::cell_like().residency);
        assert!(!MachineConfig::host_cpu().residency);
    }

    #[test]
    fn vector_width_matches_inner_simd() {
        // Lane counts mirror each preset's SIMD: 8-wide GPU inner
        // units, 128-bit (4×32) SPE vectors, scalar host baseline.
        assert_eq!(MachineConfig::geforce_8800_gtx().vector_width, 8);
        assert_eq!(MachineConfig::cell_like().vector_width, 4);
        assert_eq!(MachineConfig::host_cpu().vector_width, 1);
    }

    #[test]
    fn dma_presets_are_sane_and_off_by_default() {
        for cfg in [
            MachineConfig::geforce_8800_gtx(),
            MachineConfig::cell_like(),
            MachineConfig::host_cpu(),
        ] {
            assert!(!cfg.double_buffer);
            assert!(cfg.dma_bytes_per_cycle > 0.0);
        }
        assert_eq!(MachineConfig::cell_like().dma_channels, 16);
        assert_eq!(MachineConfig::host_cpu().dma_channels, 0);
    }

    #[test]
    fn occupancy_follows_smem_use() {
        let g = MachineConfig::geforce_8800_gtx();
        // No smem: hardware limit only.
        assert_eq!(g.concurrent_blocks(0), 16 * 8);
        // 16 KB per block: one block per SM.
        assert_eq!(g.concurrent_blocks(16 * 1024), 16);
        // 4 KB per block: 4 per SM.
        assert_eq!(g.concurrent_blocks(4 * 1024), 64);
        // 100 B per block: capped by the hardware limit.
        assert_eq!(g.concurrent_blocks(100), 16 * 8);
        // Oversized block still reports at least one (the caller
        // checks the overflow separately).
        assert_eq!(g.concurrent_blocks(64 * 1024), 1);
    }

    #[test]
    fn unit_conversions() {
        let g = MachineConfig::geforce_8800_gtx();
        let ms = g.cycles_to_ms(1.35e9);
        assert!((ms - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn cost_params_derive_from_machine() {
        let g = MachineConfig::geforce_8800_gtx();
        let cp = g.cost_params(64.0);
        assert_eq!(cp.p, 64.0);
        assert_eq!(cp.s, g.sync_cycles);
        assert!(cp.l > 0.0);
    }
}
