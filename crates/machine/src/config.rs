//! Machine configurations.
//!
//! The [`MachineConfig`] fields are the architecture parameters of the
//! paper's §4/§5 machine abstraction plus the execution toggles the
//! front-ends flip. Since the machine-description subsystem landed,
//! every preset is pure data: the constructors here lower the
//! corresponding [`crate::desc`] registry entry
//! ([`MachineDesc::config`](crate::desc::MachineDesc::config)), and
//! behavioural differences between machines flow through the numbers
//! and the [`Capabilities`] flags — nothing downstream branches on a
//! machine name.

/// Default executor enumeration budget: generous (2^32 points) but
/// finite, so runaway domains fail with a typed error.
pub const DEFAULT_ENUM_BUDGET: u64 = 1 << 32;

/// Capability flags of a machine description: behavioural switches as
/// data, replacing the old `MachineKind` enum branches. Each flag is a
/// statement about the architecture that the mapper queries; they are
/// mapping-relevant and fold into the plan-artifact salt.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Capabilities {
    /// The local store is mandatory (Cell-like): compute cannot touch
    /// global memory, so every accessed element is staged regardless
    /// of Algorithm 1's benefit answer.
    pub must_stage: bool,
    /// Compute units sit inside the memory (PIM): a "global" access
    /// costs the same as a local one, so staging a copy can never pay
    /// and Algorithm 1 answers "not beneficial" for every group.
    pub in_place_compute: bool,
    /// Data movement is routed over a NoC (spatial/dataflow): every
    /// DMA descriptor pays a per-hop route cost determined by the
    /// block's placement on the [`MeshDesc`].
    pub placement_cost: bool,
    /// Global accesses are filtered by a hardware cache (host CPU);
    /// informational — the cache is folded into `global_latency`.
    pub hardware_cache: bool,
}

/// Geometry of a spatial machine's PE mesh. Memory ports sit on the
/// west edge; blocks are placed column-major (block `b` occupies the
/// PE at row `b mod rows`, column `(b mod rows·cols) / rows`), so a
/// descriptor routed to column `c` crosses `c + 1` hops.
#[derive(Clone, Debug, PartialEq)]
pub struct MeshDesc {
    /// PE rows.
    pub rows: u64,
    /// PE columns (distance from the memory ports grows eastward).
    pub cols: u64,
    /// NoC cycles per hop per DMA descriptor.
    pub hop_cycles: f64,
}

/// A multi-level explicitly-managed-memory machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Capability flags (see [`Capabilities`]).
    pub caps: Capabilities,
    /// Outer-level parallel units (multiprocessors / MIMD units).
    pub n_outer: u64,
    /// Inner-level SIMD units per outer unit.
    pub n_inner: u64,
    /// Scheduling granularity of inner-level processes (warp size);
    /// the paper fixes `P_low` to this.
    pub warp_size: u64,
    /// Scratchpad bytes per outer-level unit (the 8800's 16 KB).
    pub smem_bytes: u64,
    /// Bytes per data word (the paper's kernels use 4-byte words).
    pub word_bytes: u64,
    /// Core clock in GHz (times are reported in ms).
    pub clock_ghz: f64,
    /// Cycles for one arithmetic op on an inner unit.
    pub cycles_per_op: f64,
    /// Cycles of latency for one *global* memory element access.
    pub global_latency: f64,
    /// Sustainable global-memory parallelism: how many outstanding
    /// global accesses one outer unit can overlap (memory-level
    /// parallelism from multithreading warps).
    pub global_overlap: f64,
    /// Cycles for one scratchpad access.
    pub smem_latency: f64,
    /// Cycles of synchronisation cost per inner process per data
    /// movement occurrence (the cost model's `S`).
    pub sync_cycles: f64,
    /// Fixed cycles for a device-wide barrier (inter-block sync)...
    pub device_sync_base: f64,
    /// ...plus this many cycles per active thread block.
    pub device_sync_per_block: f64,
    /// Upper bound on thread blocks resident per outer unit even when
    /// scratchpad use would allow more (hardware scheduler limit).
    pub max_blocks_per_outer: u64,
    /// Point budget for round/block/instance enumeration in the
    /// functional executor; exceeding it is a typed
    /// `MachineError::EnumerationBudget` instead of an unbounded walk.
    pub enum_budget: u64,
    /// Reuse one symbolically analysed scratchpad plan across block
    /// instances of the same shape (compile-once-per-shape) instead of
    /// re-running the §3 analysis per sub-tile.
    pub plan_cache: bool,
    /// Tagged DMA channels per outer unit (Cell MFC queue depth /
    /// GPU memory-pipe width). `0` disables the DMA transfer engine
    /// entirely (movement is charged per element as before).
    pub dma_channels: u64,
    /// Fixed cycles to set up one DMA descriptor (command issue +
    /// address translation), paid per descriptor.
    pub dma_setup_cycles: f64,
    /// Sustained DMA bandwidth in bytes per core cycle, paid on top of
    /// the setup cost for each descriptor's payload.
    pub dma_bytes_per_cycle: f64,
    /// Software-pipeline the `seq_dims` sub-tile loop: issue move-in
    /// for sub-tile t+1 and move-out for t−1 asynchronously while
    /// computing t. Requires 2× the buffer footprint (typed
    /// [`DoubleBufferOverflow`](crate::MachineError::DoubleBufferOverflow)
    /// otherwise) and is disabled per group by seq-carried flow
    /// dependences.
    pub double_buffer: bool,
    /// Run block compute phases through the compiled execution engine
    /// (bytecode bodies + strided address streams, compiled once per
    /// block shape) instead of the per-point interpreter. Results are
    /// bit-identical; the interpreter stays available as a fallback
    /// and as the `POLYMEM_EXEC_CHECK=1` oracle.
    pub compiled_exec: bool,
    /// Register-file words available per inner process for the
    /// recursive level-2 plan's frames (register tiles). Frames whose
    /// running footprint would exceed this stay in scratchpad.
    pub regs_per_inner: u64,
    /// Enable the recursive register-tile level: re-run the §3
    /// pipeline over the intra-thread subnest of each block and stage
    /// beneficial groups into per-thread frames (smem→reg move-in,
    /// reg→smem move-out). Off in every preset; `polymem run` turns it
    /// on unless `--no-hierarchy` is given. Requires the plan cache.
    /// Both engines execute level-2 plans: the compiled engine tracks
    /// thread-key change points inside its merged cursors and stages
    /// frames through the same movement code as the interpreter, so
    /// counters stay bit-identical between the two.
    pub hierarchy: bool,
    /// Lane count of the compiled engine's batched inner loop. `1` is
    /// the scalar path; wider values evaluate up to this many
    /// consecutive innermost-dim instances per bytecode dispatch over
    /// proven strided address streams (streaming statements go through
    /// lane-parallel `BodyCode::eval_lanes`, reductions through a
    /// serial accumulator chain that preserves scalar association
    /// order). Functionally invisible: arrays and every deterministic
    /// counter are bit-identical at any width.
    pub vector_width: u64,
    /// Keep scratchpad buffers warm across the sub-tile (`seq_dims`)
    /// loop: the residency pass decomposes each group's move-in window
    /// against its lexicographic predecessor and only the *delta*
    /// crosses the global bus; overlapping elements are retained (and
    /// re-based in-place when the window slides, as in stencil halos).
    /// Requires the plan cache; derived per description: on exactly
    /// for machines with a scratchpad worth keeping warm;
    /// `polymem run --no-residency` turns it off.
    pub residency: bool,
    /// Partition each array's references into maximal disjoint groups
    /// (§3.1, the default). With `false`, all references share one
    /// buffer over their convex union — the paper's Fig. 1 layout,
    /// which lets the residency pass retain a stencil's whole sliding
    /// window when small tiles would otherwise split it into
    /// single-column groups.
    pub partition: bool,
    /// Directory of the content-addressed plan-artifact store. When
    /// set, the launch's symbolic plan is loaded from (and fresh
    /// compiles are persisted to) `<dir>/<key>.plan`, keyed by the
    /// program IR, the mapping-relevant fields of this config and the
    /// block-shape parametrization — see `polymem_core::smem::artifact`.
    /// `None` (every preset) disables persistence.
    pub artifact_dir: Option<String>,
    /// PE-mesh geometry, for machines with `caps.placement_cost`.
    /// Not mapping-relevant (routes change cycles, never plans), so it
    /// stays out of the artifact salt.
    pub mesh: Option<MeshDesc>,
}

impl MachineConfig {
    /// The paper's testbed: NVIDIA GeForce 8800 GTX.
    pub fn geforce_8800_gtx() -> MachineConfig {
        crate::desc::gpu().config()
    }

    /// A Cell-BE-like machine: local store is mandatory.
    pub fn cell_like() -> MachineConfig {
        crate::desc::cell().config()
    }

    /// The host CPU baseline (Core2-Duo class, 2.13 GHz, 2 MB L2).
    pub fn host_cpu() -> MachineConfig {
        crate::desc::host().config()
    }

    /// A processing-in-memory machine: per-bank compute units,
    /// near-zero "global" latency, expensive inter-bank movement.
    pub fn pim_banked() -> MachineConfig {
        crate::desc::pim().config()
    }

    /// A spatial/dataflow accelerator: an 8×8 PE mesh where DMA
    /// descriptors pay NoC route costs by placement.
    pub fn spatial_mesh() -> MachineConfig {
        crate::desc::spatial().config()
    }

    /// Does staging a copy into the scratchpad save cycles at all on
    /// this machine? `false` on in-place-compute (PIM) machines, where
    /// the data is already next to the unit — Algorithm 1 then answers
    /// "not beneficial" for every group. Mapping-relevant: folded into
    /// the plan-artifact salt.
    pub fn staging_pays(&self) -> bool {
        !self.caps.in_place_compute
    }

    /// NoC route cycles one DMA descriptor pays for the block at
    /// linear placement index `block_idx`: blocks fill the mesh
    /// column-major from the west-edge memory ports, so the block's
    /// column determines its hop count. Zero without `placement_cost`.
    pub fn route_cycles(&self, block_idx: u64) -> u64 {
        match &self.mesh {
            Some(m) if self.caps.placement_cost => {
                let pes = (m.rows * m.cols).max(1);
                let col = (block_idx % pes) / m.rows.max(1);
                ((col + 1) as f64 * m.hop_cycles).round() as u64
            }
            _ => 0,
        }
    }

    /// The worst route any of `blocks` concurrent blocks pays (the
    /// critical-path hop count of one round), mirroring the placement
    /// rule of [`route_cycles`](MachineConfig::route_cycles). The cost
    /// estimator prices the representative block with this.
    pub fn max_route_cycles(&self, blocks: u64) -> u64 {
        match &self.mesh {
            Some(m) if self.caps.placement_cost && blocks > 0 => {
                let pes = (m.rows * m.cols).max(1);
                let col = (blocks.min(pes) - 1) / m.rows.max(1);
                ((col + 1) as f64 * m.hop_cycles).round() as u64
            }
            _ => 0,
        }
    }

    /// Total scratchpad bytes across the device (the paper's `X`).
    pub fn total_smem_bytes(&self) -> u64 {
        self.smem_bytes * self.n_outer
    }

    /// Maximum concurrently resident thread blocks for a given
    /// per-block scratchpad use (the §5 occupancy rule:
    /// `min(X / M, hw limit)`).
    pub fn concurrent_blocks(&self, smem_per_block: u64) -> u64 {
        let by_hw = self.n_outer * self.max_blocks_per_outer;
        if smem_per_block == 0 {
            return by_hw;
        }
        let per_outer = (self.smem_bytes / smem_per_block).min(self.max_blocks_per_outer);
        (per_outer * self.n_outer).max(1).min(by_hw.max(1))
    }

    /// Convert cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9) * 1e3
    }

    /// The cost-model constants (`P` supplied by the kernel mapping).
    pub fn cost_params(&self, p: f64) -> polymem_core::tiling::CostParams {
        polymem_core::tiling::CostParams {
            p,
            s: self.sync_cycles,
            l: self.global_latency / self.global_overlap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_parameters() {
        let g = MachineConfig::geforce_8800_gtx();
        assert_eq!(g.n_outer, 16);
        assert_eq!(g.n_inner, 8);
        assert_eq!(g.warp_size, 32);
        assert_eq!(g.smem_bytes, 16 * 1024);
        assert_eq!(g.total_smem_bytes(), 256 * 1024); // the paper's 2^18
        assert_eq!(g.caps, Capabilities::default());
        assert!(MachineConfig::cell_like().caps.must_stage);
        assert!(MachineConfig::host_cpu().caps.hardware_cache);
    }

    #[test]
    fn new_backends_have_their_capabilities() {
        let p = MachineConfig::pim_banked();
        assert!(p.caps.in_place_compute);
        assert!(!p.staging_pays());
        // Near-zero global latency: in place really is free-ish.
        assert!(p.global_latency / p.global_overlap <= p.smem_latency);
        let s = MachineConfig::spatial_mesh();
        assert!(s.caps.placement_cost);
        let m = s.mesh.as_ref().expect("mesh geometry");
        assert_eq!(m.rows * m.cols, s.n_outer);
        assert!(MachineConfig::geforce_8800_gtx().staging_pays());
    }

    #[test]
    fn route_cycles_follow_column_major_placement() {
        let s = MachineConfig::spatial_mesh();
        let hop = s.mesh.as_ref().unwrap().hop_cycles as u64;
        // Column 0 (blocks 0..rows): one hop from the west ports.
        assert_eq!(s.route_cycles(0), hop);
        assert_eq!(s.route_cycles(7), hop);
        // Next column: two hops.
        assert_eq!(s.route_cycles(8), 2 * hop);
        // Wraps past the mesh (second occupancy wave).
        assert_eq!(s.route_cycles(64), hop);
        // The critical path of a round is its easternmost column.
        assert_eq!(s.max_route_cycles(1), hop);
        assert_eq!(s.max_route_cycles(9), 2 * hop);
        assert_eq!(s.max_route_cycles(64), 8 * hop);
        assert_eq!(s.max_route_cycles(1000), 8 * hop);
        // Non-spatial machines route nothing.
        let g = MachineConfig::geforce_8800_gtx();
        assert_eq!(g.route_cycles(5), 0);
        assert_eq!(g.max_route_cycles(64), 0);
    }

    #[test]
    fn residency_is_on_for_scratchpad_machines_only() {
        assert!(MachineConfig::geforce_8800_gtx().residency);
        assert!(MachineConfig::cell_like().residency);
        assert!(MachineConfig::spatial_mesh().residency);
        assert!(!MachineConfig::host_cpu().residency);
        // PIM has a (tiny) row buffer but computes in place: nothing
        // is staged, so nothing stays resident.
        assert!(!MachineConfig::pim_banked().residency);
    }

    #[test]
    fn vector_width_matches_inner_simd() {
        // Lane counts mirror each preset's SIMD: 8-wide GPU inner
        // units, 128-bit (4×32) SPE vectors, scalar host baseline.
        assert_eq!(MachineConfig::geforce_8800_gtx().vector_width, 8);
        assert_eq!(MachineConfig::cell_like().vector_width, 4);
        assert_eq!(MachineConfig::host_cpu().vector_width, 1);
    }

    #[test]
    fn dma_presets_are_sane_and_off_by_default() {
        for cfg in [
            MachineConfig::geforce_8800_gtx(),
            MachineConfig::cell_like(),
            MachineConfig::host_cpu(),
            MachineConfig::pim_banked(),
            MachineConfig::spatial_mesh(),
        ] {
            assert!(!cfg.double_buffer);
            assert!(cfg.dma_bytes_per_cycle > 0.0);
        }
        assert_eq!(MachineConfig::cell_like().dma_channels, 16);
        assert_eq!(MachineConfig::host_cpu().dma_channels, 0);
    }

    #[test]
    fn occupancy_follows_smem_use() {
        let g = MachineConfig::geforce_8800_gtx();
        // No smem: hardware limit only.
        assert_eq!(g.concurrent_blocks(0), 16 * 8);
        // 16 KB per block: one block per SM.
        assert_eq!(g.concurrent_blocks(16 * 1024), 16);
        // 4 KB per block: 4 per SM.
        assert_eq!(g.concurrent_blocks(4 * 1024), 64);
        // 100 B per block: capped by the hardware limit.
        assert_eq!(g.concurrent_blocks(100), 16 * 8);
        // Oversized block still reports at least one (the caller
        // checks the overflow separately).
        assert_eq!(g.concurrent_blocks(64 * 1024), 1);
    }

    #[test]
    fn unit_conversions() {
        let g = MachineConfig::geforce_8800_gtx();
        let ms = g.cycles_to_ms(1.35e9);
        assert!((ms - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn cost_params_derive_from_machine() {
        let g = MachineConfig::geforce_8800_gtx();
        let cp = g.cost_params(64.0);
        assert_eq!(cp.p, 64.0);
        assert_eq!(cp.s, g.sync_cycles);
        assert!(cp.l > 0.0);
    }
}
