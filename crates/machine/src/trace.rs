//! Execution timelines: where a launch's simulated time goes.
//!
//! [`Timeline::from_profile`] expands an analytic [`KernelProfile`]
//! estimate into per-phase segments (move-in, compute, scratchpad
//! traffic, move-out, device barriers) laid out over rounds, and
//! renders them as a text Gantt chart — the quickest way to *see* why
//! a configuration is slow (barrier-bound vs movement-bound vs
//! compute-bound), mirroring the discussion around the paper's
//! Figs. 7/8.

use crate::config::MachineConfig;
use crate::profile::KernelProfile;
use crate::Result;

/// One segment of simulated time.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Phase label.
    pub phase: Phase,
    /// Duration in milliseconds.
    pub ms: f64,
}

/// The phases a launch's time divides into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Data movement between global memory and scratchpad
    /// (move-in + move-out, §4.3 cost).
    Movement,
    /// Arithmetic on the inner SIMD units.
    Compute,
    /// Scratchpad access time during compute.
    Scratchpad,
    /// Residual global-memory access time during compute.
    Global,
    /// Device-wide synchronisation (inter-block barriers).
    Barrier,
}

impl Phase {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Movement => "movement",
            Phase::Compute => "compute",
            Phase::Scratchpad => "smem",
            Phase::Global => "global",
            Phase::Barrier => "barrier",
        }
    }

    fn glyph(&self) -> char {
        match self {
            Phase::Movement => '▒',
            Phase::Compute => '█',
            Phase::Scratchpad => '▓',
            Phase::Global => '░',
            Phase::Barrier => '|',
        }
    }
}

/// A launch timeline: phase segments summing to the estimated time.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Segments in schedule order.
    pub segments: Vec<Segment>,
    /// Total estimated milliseconds.
    pub total_ms: f64,
}

impl Timeline {
    /// Expand a profile's estimate into a per-phase timeline.
    pub fn from_profile(profile: &KernelProfile, machine: &MachineConfig) -> Result<Timeline> {
        let t = profile.estimate(machine)?;
        let mut segments = Vec::new();
        let mut push = |phase: Phase, ms: f64| {
            if ms > 0.0 {
                segments.push(Segment { phase, ms });
            }
        };
        push(Phase::Movement, t.movement_ms);
        push(Phase::Global, t.global_ms);
        push(Phase::Compute, t.compute_ms);
        push(Phase::Scratchpad, t.smem_ms);
        push(Phase::Barrier, t.device_sync_ms);
        Ok(Timeline {
            segments,
            total_ms: t.total_ms,
        })
    }

    /// Fraction of total time spent in a phase.
    pub fn fraction(&self, phase: Phase) -> f64 {
        if self.total_ms <= 0.0 {
            return 0.0;
        }
        self.segments
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.ms)
            .sum::<f64>()
            / self.total_ms
    }

    /// The phase consuming the most time.
    pub fn dominant(&self) -> Option<Phase> {
        self.segments
            .iter()
            .max_by(|a, b| a.ms.total_cmp(&b.ms))
            .map(|s| s.phase)
    }

    /// Render as a `width`-column text bar plus a legend.
    pub fn render(&self, width: usize) -> String {
        let mut bar = String::new();
        if self.total_ms > 0.0 {
            let mut used = 0usize;
            for (k, s) in self.segments.iter().enumerate() {
                let mut cols = ((s.ms / self.total_ms) * width as f64).round() as usize;
                if k + 1 == self.segments.len() {
                    cols = width.saturating_sub(used);
                }
                bar.extend(std::iter::repeat_n(s.phase.glyph(), cols));
                used += cols;
            }
        }
        let mut legend = String::new();
        for s in &self.segments {
            legend.push_str(&format!(
                "  {} {:<9} {:>9.3} ms ({:>4.1}%)\n",
                s.phase.glyph(),
                s.phase.label(),
                s.ms,
                100.0 * s.ms / self.total_ms.max(1e-12)
            ));
        }
        format!("[{bar}] {:.3} ms total\n{legend}", self.total_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> KernelProfile {
        KernelProfile {
            n_blocks: 32,
            threads_per_block: 64,
            instances: 1 << 20,
            ops_per_instance: 3,
            smem_accesses_per_instance: 4,
            movement_occurrences_per_block: 64,
            movement_volume_per_occurrence: 1024,
            smem_bytes_per_block: 2048,
            device_syncs: 128,
            ..KernelProfile::default()
        }
    }

    #[test]
    fn segments_sum_to_total() {
        let m = MachineConfig::geforce_8800_gtx();
        let tl = Timeline::from_profile(&profile(), &m).unwrap();
        let sum: f64 = tl.segments.iter().map(|s| s.ms).sum();
        assert!((sum - tl.total_ms).abs() < 1e-9 * tl.total_ms);
        assert!(!tl.segments.is_empty());
    }

    #[test]
    fn fractions_are_normalised() {
        let m = MachineConfig::geforce_8800_gtx();
        let tl = Timeline::from_profile(&profile(), &m).unwrap();
        let total: f64 = [
            Phase::Movement,
            Phase::Compute,
            Phase::Scratchpad,
            Phase::Global,
            Phase::Barrier,
        ]
        .iter()
        .map(|&p| tl.fraction(p))
        .sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn dominant_phase_tracks_the_bottleneck() {
        let m = MachineConfig::geforce_8800_gtx();
        // Barrier-heavy profile: many device syncs, tiny work.
        let barrier_bound = KernelProfile {
            instances: 1024,
            device_syncs: 100_000,
            ..profile()
        };
        let tl = Timeline::from_profile(&barrier_bound, &m).unwrap();
        assert_eq!(tl.dominant(), Some(Phase::Barrier));
        // Movement-heavy profile.
        let movement_bound = KernelProfile {
            movement_occurrences_per_block: 1 << 16,
            device_syncs: 0,
            instances: 1024,
            ..profile()
        };
        let tl = Timeline::from_profile(&movement_bound, &m).unwrap();
        assert_eq!(tl.dominant(), Some(Phase::Movement));
    }

    #[test]
    fn rendering_is_width_stable() {
        let m = MachineConfig::geforce_8800_gtx();
        let tl = Timeline::from_profile(&profile(), &m).unwrap();
        let text = tl.render(60);
        let bar = text.lines().next().unwrap();
        let bar_chars = bar.chars().take_while(|&c| c != ']').count() - 1;
        assert_eq!(bar_chars, 60, "{text}");
        assert!(text.contains("ms total"));
        assert!(text.contains("movement"));
    }

    #[test]
    fn zero_profile_is_handled() {
        let m = MachineConfig::geforce_8800_gtx();
        let tl = Timeline::from_profile(&KernelProfile::default(), &m).unwrap();
        assert_eq!(tl.fraction(Phase::Compute), 0.0);
        let _ = tl.render(10);
    }
}
