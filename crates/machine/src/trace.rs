//! Execution timelines: where a launch's simulated time goes.
//!
//! [`Timeline::from_profile`] expands an analytic [`KernelProfile`]
//! estimate into per-phase segments (move-in, compute, scratchpad
//! traffic, move-out, device barriers) laid out over rounds, and
//! renders them as a text Gantt chart — the quickest way to *see* why
//! a configuration is slow (barrier-bound vs movement-bound vs
//! compute-bound), mirroring the discussion around the paper's
//! Figs. 7/8.

use crate::config::MachineConfig;
use crate::profile::KernelProfile;
use crate::Result;
use polymem_core::smem::PassTimes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One segment of simulated time.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Phase label.
    pub phase: Phase,
    /// Duration in milliseconds.
    pub ms: f64,
}

/// The phases a launch's time divides into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Data movement between global memory and scratchpad
    /// (move-in + move-out, §4.3 cost).
    Movement,
    /// Arithmetic on the inner SIMD units.
    Compute,
    /// Scratchpad access time during compute.
    Scratchpad,
    /// Residual global-memory access time during compute.
    Global,
    /// Device-wide synchronisation (inter-block barriers).
    Barrier,
    /// DMA transfer time hidden under compute (double buffering).
    DmaTransfer,
    /// DMA transfer time the compute had to wait for (exposed).
    DmaStall,
}

impl Phase {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Movement => "movement",
            Phase::Compute => "compute",
            Phase::Scratchpad => "smem",
            Phase::Global => "global",
            Phase::Barrier => "barrier",
            Phase::DmaTransfer => "dma",
            Phase::DmaStall => "dma-stall",
        }
    }

    fn glyph(&self) -> char {
        match self {
            Phase::Movement => '▒',
            Phase::Compute => '█',
            Phase::Scratchpad => '▓',
            Phase::Global => '░',
            Phase::Barrier => '|',
            Phase::DmaTransfer => '~',
            Phase::DmaStall => '!',
        }
    }
}

/// A launch timeline: phase segments summing to the estimated time.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Segments in schedule order.
    pub segments: Vec<Segment>,
    /// Total estimated milliseconds.
    pub total_ms: f64,
}

impl Timeline {
    /// Expand a profile's estimate into a per-phase timeline.
    pub fn from_profile(profile: &KernelProfile, machine: &MachineConfig) -> Result<Timeline> {
        let t = profile.estimate(machine)?;
        let mut segments = Vec::new();
        let mut push = |phase: Phase, ms: f64| {
            if ms > 0.0 {
                segments.push(Segment { phase, ms });
            }
        };
        push(Phase::Movement, t.movement_ms);
        push(Phase::Global, t.global_ms);
        push(Phase::Compute, t.compute_ms);
        push(Phase::Scratchpad, t.smem_ms);
        push(Phase::Barrier, t.device_sync_ms);
        Ok(Timeline {
            segments,
            total_ms: t.total_ms,
        })
    }

    /// Expand a launch's DMA counters into a timeline: channel-busy
    /// transfer time split into the part hidden under compute and the
    /// part the compute had to wait for (stalls). The total is the
    /// aggregate channel-busy time, so
    /// `fraction(Phase::DmaTransfer)` is the engine's overlap
    /// fraction.
    pub fn from_dma(dma: &crate::dma::DmaStats, machine: &MachineConfig) -> Timeline {
        let busy = dma.total_busy_cycles();
        let stall = dma.stall_cycles.min(busy);
        let hidden = busy - stall;
        let mut segments = Vec::new();
        if hidden > 0 {
            segments.push(Segment {
                phase: Phase::DmaTransfer,
                ms: machine.cycles_to_ms(hidden as f64),
            });
        }
        if stall > 0 {
            segments.push(Segment {
                phase: Phase::DmaStall,
                ms: machine.cycles_to_ms(stall as f64),
            });
        }
        Timeline {
            segments,
            total_ms: machine.cycles_to_ms(busy as f64),
        }
    }

    /// Fraction of total time spent in a phase.
    pub fn fraction(&self, phase: Phase) -> f64 {
        if self.total_ms <= 0.0 {
            return 0.0;
        }
        self.segments
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.ms)
            .sum::<f64>()
            / self.total_ms
    }

    /// The phase consuming the most time.
    pub fn dominant(&self) -> Option<Phase> {
        self.segments
            .iter()
            .max_by(|a, b| a.ms.total_cmp(&b.ms))
            .map(|s| s.phase)
    }

    /// Render as a `width`-column text bar plus a legend.
    pub fn render(&self, width: usize) -> String {
        let mut bar = String::new();
        if self.total_ms > 0.0 {
            let mut used = 0usize;
            for (k, s) in self.segments.iter().enumerate() {
                let mut cols = ((s.ms / self.total_ms) * width as f64).round() as usize;
                if k + 1 == self.segments.len() {
                    cols = width.saturating_sub(used);
                }
                bar.extend(std::iter::repeat_n(s.phase.glyph(), cols));
                used += cols;
            }
        }
        let mut legend = String::new();
        for s in &self.segments {
            legend.push_str(&format!(
                "  {} {:<9} {:>9.3} ms ({:>4.1}%)\n",
                s.phase.glyph(),
                s.phase.label(),
                s.ms,
                100.0 * s.ms / self.total_ms.max(1e-12)
            ));
        }
        format!("[{bar}] {:.3} ms total\n{legend}", self.total_ms)
    }
}

/// A pass or phase whose real (host) wall-clock time the executor
/// profiler accounts: the five §3 compiler passes plus the four
/// functional-executor phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Compiler: data-space computation (`F·I` images).
    Dataspace,
    /// Compiler: §3.1 partitioning into disjoint groups.
    Partition,
    /// Compiler: Algorithm 1 reuse evaluation.
    Reuse,
    /// Compiler: Algorithm 2 allocation + access rewriting.
    Alloc,
    /// Compiler: movement loop-nest generation.
    Movement,
    /// Compiler: recursive level-2 (register-tile) planning.
    Hierarchy,
    /// Executor: global→scratchpad move-in transfers.
    MoveIn,
    /// Executor: per-instance statement evaluation.
    Compute,
    /// Executor: scratchpad→global move-out transfers.
    MoveOut,
    /// Executor: inter-round device barrier (write-back + sync).
    Barrier,
}

/// All pass kinds, in report order (compiler first, then executor).
pub const PASS_KINDS: [PassKind; 10] = [
    PassKind::Dataspace,
    PassKind::Partition,
    PassKind::Reuse,
    PassKind::Alloc,
    PassKind::Movement,
    PassKind::Hierarchy,
    PassKind::MoveIn,
    PassKind::Compute,
    PassKind::MoveOut,
    PassKind::Barrier,
];

impl PassKind {
    /// Human label for the report table.
    pub fn label(&self) -> &'static str {
        match self {
            PassKind::Dataspace => "dataspace",
            PassKind::Partition => "partition",
            PassKind::Reuse => "reuse",
            PassKind::Alloc => "alloc",
            PassKind::Movement => "movement",
            PassKind::Hierarchy => "hierarchy",
            PassKind::MoveIn => "move-in",
            PassKind::Compute => "compute",
            PassKind::MoveOut => "move-out",
            PassKind::Barrier => "barrier",
        }
    }

    /// Whether this is a §3 compiler pass (vs an executor phase).
    pub fn is_compiler(&self) -> bool {
        matches!(
            self,
            PassKind::Dataspace
                | PassKind::Partition
                | PassKind::Reuse
                | PassKind::Alloc
                | PassKind::Movement
                | PassKind::Hierarchy
        )
    }
}

/// Thread-safe accumulator of real wall-clock time per pass/phase.
/// Block workers record into it concurrently; [`PassProfiler::report`]
/// snapshots the totals.
#[derive(Debug, Default)]
pub struct PassProfiler {
    ns: [AtomicU64; PASS_KINDS.len()],
    count: [AtomicU64; PASS_KINDS.len()],
}

impl PassProfiler {
    /// Fresh, all-zero profiler.
    pub fn new() -> PassProfiler {
        PassProfiler::default()
    }

    fn slot(kind: PassKind) -> usize {
        PASS_KINDS.iter().position(|&k| k == kind).unwrap()
    }

    /// Record one timed occurrence of a pass.
    pub fn record(&self, kind: PassKind, elapsed: Duration) {
        let i = Self::slot(kind);
        self.ns[i].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.count[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one `analyze_program_timed` run's per-pass times in (one
    /// occurrence per compiler pass).
    pub fn absorb_pass_times(&self, t: &PassTimes) {
        self.record(PassKind::Dataspace, t.dataspace);
        self.record(PassKind::Partition, t.partition);
        self.record(PassKind::Reuse, t.reuse);
        self.record(PassKind::Alloc, t.alloc);
        self.record(PassKind::Movement, t.movement);
        if !t.hierarchy.is_zero() {
            self.record(PassKind::Hierarchy, t.hierarchy);
        }
    }

    /// Snapshot the accumulated totals.
    pub fn report(&self) -> PassReport {
        PassReport {
            rows: PASS_KINDS
                .iter()
                .enumerate()
                .map(|(i, &kind)| PassRow {
                    kind,
                    total: Duration::from_nanos(self.ns[i].load(Ordering::Relaxed)),
                    count: self.count[i].load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// One row of a [`PassReport`].
#[derive(Clone, Copy, Debug)]
pub struct PassRow {
    /// Which pass/phase.
    pub kind: PassKind,
    /// Accumulated wall-clock time.
    pub total: Duration,
    /// Number of recorded occurrences.
    pub count: u64,
}

/// A snapshot of a [`PassProfiler`]: per-pass totals plus a text table.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// Rows in [`PASS_KINDS`] order.
    pub rows: Vec<PassRow>,
}

impl PassReport {
    /// Total time across the §3 compiler passes.
    pub fn compiler_total(&self) -> Duration {
        self.rows
            .iter()
            .filter(|r| r.kind.is_compiler())
            .map(|r| r.total)
            .sum()
    }

    /// Total time across the executor phases.
    pub fn executor_total(&self) -> Duration {
        self.rows
            .iter()
            .filter(|r| !r.kind.is_compiler())
            .map(|r| r.total)
            .sum()
    }

    /// Render as a two-section text table (skipping never-hit rows),
    /// followed by the polyhedral-core counters when any were hit.
    pub fn render(&self) -> String {
        let grand = (self.compiler_total() + self.executor_total()).as_secs_f64();
        let mut out = String::from("pass profile (host wall-clock)\n");
        let mut section = |title: &str, compiler: bool, total: Duration| {
            out.push_str(&format!(
                "  {title:<22} {:>10.3} ms\n",
                total.as_secs_f64() * 1e3
            ));
            for r in self
                .rows
                .iter()
                .filter(|r| r.kind.is_compiler() == compiler)
            {
                if r.count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "    {:<20} {:>10.3} ms  x{:<8} ({:>4.1}%)\n",
                    r.kind.label(),
                    r.total.as_secs_f64() * 1e3,
                    r.count,
                    100.0 * r.total.as_secs_f64() / grand.max(1e-12),
                ));
            }
        };
        section("compiler (§3 passes)", true, self.compiler_total());
        section("executor phases", false, self.executor_total());
        let poly = polymem_poly::poly_core_stats();
        if poly != polymem_poly::PolyCoreStats::default() {
            out.push_str(&format!(
                "  polyhedral core\n    projection cache   {} hits / {} misses ({:.1}% hit rate)\n    fourier-motzkin    {} rows generated, {} pruned\n",
                poly.cache_hits,
                poly.cache_misses,
                100.0 * poly.hit_rate(),
                poly.fm_rows_generated,
                poly.fm_rows_pruned,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> KernelProfile {
        KernelProfile {
            n_blocks: 32,
            threads_per_block: 64,
            instances: 1 << 20,
            ops_per_instance: 3,
            smem_accesses_per_instance: 4,
            movement_occurrences_per_block: 64,
            movement_volume_per_occurrence: 1024,
            smem_bytes_per_block: 2048,
            device_syncs: 128,
            ..KernelProfile::default()
        }
    }

    #[test]
    fn segments_sum_to_total() {
        let m = MachineConfig::geforce_8800_gtx();
        let tl = Timeline::from_profile(&profile(), &m).unwrap();
        let sum: f64 = tl.segments.iter().map(|s| s.ms).sum();
        assert!((sum - tl.total_ms).abs() < 1e-9 * tl.total_ms);
        assert!(!tl.segments.is_empty());
    }

    #[test]
    fn fractions_are_normalised() {
        let m = MachineConfig::geforce_8800_gtx();
        let tl = Timeline::from_profile(&profile(), &m).unwrap();
        let total: f64 = [
            Phase::Movement,
            Phase::Compute,
            Phase::Scratchpad,
            Phase::Global,
            Phase::Barrier,
        ]
        .iter()
        .map(|&p| tl.fraction(p))
        .sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn dominant_phase_tracks_the_bottleneck() {
        let m = MachineConfig::geforce_8800_gtx();
        // Barrier-heavy profile: many device syncs, tiny work.
        let barrier_bound = KernelProfile {
            instances: 1024,
            device_syncs: 100_000,
            ..profile()
        };
        let tl = Timeline::from_profile(&barrier_bound, &m).unwrap();
        assert_eq!(tl.dominant(), Some(Phase::Barrier));
        // Movement-heavy profile.
        let movement_bound = KernelProfile {
            movement_occurrences_per_block: 1 << 16,
            device_syncs: 0,
            instances: 1024,
            ..profile()
        };
        let tl = Timeline::from_profile(&movement_bound, &m).unwrap();
        assert_eq!(tl.dominant(), Some(Phase::Movement));
    }

    #[test]
    fn rendering_is_width_stable() {
        let m = MachineConfig::geforce_8800_gtx();
        let tl = Timeline::from_profile(&profile(), &m).unwrap();
        let text = tl.render(60);
        let bar = text.lines().next().unwrap();
        let bar_chars = bar.chars().take_while(|&c| c != ']').count() - 1;
        assert_eq!(bar_chars, 60, "{text}");
        assert!(text.contains("ms total"));
        assert!(text.contains("movement"));
    }

    #[test]
    fn zero_profile_is_handled() {
        let m = MachineConfig::geforce_8800_gtx();
        let tl = Timeline::from_profile(&KernelProfile::default(), &m).unwrap();
        assert_eq!(tl.fraction(Phase::Compute), 0.0);
        let _ = tl.render(10);
    }

    #[test]
    fn dma_timeline_splits_hidden_and_exposed_time() {
        use crate::dma::DmaStats;
        let m = MachineConfig::geforce_8800_gtx();
        let dma = DmaStats {
            descriptors: 4,
            elements: 64,
            bytes: 256,
            channel_busy_cycles: vec![100, 50],
            stall_cycles: 30,
            bytes_hist: vec![4],
        };
        let tl = Timeline::from_dma(&dma, &m);
        assert_eq!(tl.segments.len(), 2);
        assert!((tl.fraction(Phase::DmaStall) - 30.0 / 150.0).abs() < 1e-9);
        assert!((tl.fraction(Phase::DmaTransfer) - dma.overlap_fraction()).abs() < 1e-9);
        let text = tl.render(20);
        assert!(text.contains("dma-stall"), "{text}");
        // No DMA activity: empty timeline, render does not panic.
        let tl0 = Timeline::from_dma(&DmaStats::default(), &m);
        assert!(tl0.segments.is_empty());
        let _ = tl0.render(10);
    }

    #[test]
    fn profiler_accumulates_and_splits_sections() {
        let p = PassProfiler::new();
        p.record(PassKind::Compute, Duration::from_millis(3));
        p.record(PassKind::Compute, Duration::from_millis(2));
        p.record(PassKind::Barrier, Duration::from_millis(1));
        p.absorb_pass_times(&PassTimes {
            reuse: Duration::from_millis(4),
            ..PassTimes::default()
        });
        let r = p.report();
        assert_eq!(r.executor_total(), Duration::from_millis(6));
        assert_eq!(r.compiler_total(), Duration::from_millis(4));
        let compute = r
            .rows
            .iter()
            .find(|row| row.kind == PassKind::Compute)
            .unwrap();
        assert_eq!(compute.count, 2);
        assert_eq!(compute.total, Duration::from_millis(5));
    }

    #[test]
    fn profiler_report_renders_only_hit_rows() {
        let p = PassProfiler::new();
        p.record(PassKind::MoveIn, Duration::from_millis(1));
        let text = p.report().render();
        assert!(text.contains("move-in"), "{text}");
        assert!(!text.contains("dataspace"), "{text}");
        assert!(text.contains("compiler"), "{text}");
    }

    #[test]
    fn report_surfaces_poly_core_counters() {
        use polymem_poly::{Constraint, Polyhedron, Space};
        polymem_poly::set_naive_mode(false);
        let t = Polyhedron::new(
            Space::new(["i", "j"], ["N"]),
            vec![
                Constraint::ineq(vec![1, 0, 0, 0]),
                Constraint::ineq(vec![-1, 0, 1, -1]),
                Constraint::ineq(vec![0, 1, 0, 0]),
                Constraint::ineq(vec![1, -1, 0, 0]),
            ],
        );
        // Two identical projections: at least one cache consultation.
        let _ = t.eliminate_dims(&[0, 1]).unwrap();
        let _ = t.eliminate_dims(&[0, 1]).unwrap();
        let text = PassProfiler::new().report().render();
        assert!(text.contains("projection cache"), "{text}");
        assert!(text.contains("fourier-motzkin"), "{text}");
    }

    #[test]
    fn report_table_renders_aligned_snapshot() {
        // Fixed recorded durations -> a fully deterministic table.
        // This is a snapshot of the expected rendering; the ms column
        // of every row lines up with the section headers' (col 24).
        let p = PassProfiler::new();
        p.absorb_pass_times(&PassTimes {
            dataspace: Duration::from_micros(1500),
            partition: Duration::from_micros(500),
            reuse: Duration::from_micros(1000),
            alloc: Duration::from_micros(2000),
            movement: Duration::from_micros(3000),
            hierarchy: Duration::from_micros(2000),
        });
        p.record(PassKind::Compute, Duration::from_micros(8000));
        p.record(PassKind::Barrier, Duration::from_micros(2000));
        let text = p.report().render();
        let expected = "\
pass profile (host wall-clock)
  compiler (§3 passes)       10.000 ms
    dataspace                 1.500 ms  x1        ( 7.5%)
    partition                 0.500 ms  x1        ( 2.5%)
    reuse                     1.000 ms  x1        ( 5.0%)
    alloc                     2.000 ms  x1        (10.0%)
    movement                  3.000 ms  x1        (15.0%)
    hierarchy                 2.000 ms  x1        (10.0%)
  executor phases            10.000 ms
    compute                   8.000 ms  x1        (40.0%)
    barrier                   2.000 ms  x1        (10.0%)
";
        // The polyhedral-core counter footer depends on global state
        // other tests touch; compare everything before it.
        let got = text.split("  polyhedral core").next().unwrap();
        assert_eq!(got, expected, "got:\n{got}");
        // Every ms column is aligned: " ms" ends at the same column
        // in headers and rows.
        let cols: Vec<usize> = got
            .lines()
            .skip(1)
            .map(|l| l.split(" ms").next().unwrap().chars().count())
            .collect();
        assert!(cols.iter().all(|&c| c == cols[0]), "{cols:?}");
    }

    #[test]
    fn zero_hierarchy_time_keeps_the_row_out() {
        let p = PassProfiler::new();
        p.absorb_pass_times(&PassTimes {
            reuse: Duration::from_millis(1),
            ..PassTimes::default()
        });
        let text = p.report().render();
        assert!(!text.contains("hierarchy"), "{text}");
    }

    #[test]
    fn profiler_is_shareable_across_threads() {
        let p = PassProfiler::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        p.record(PassKind::Compute, Duration::from_nanos(10));
                    }
                });
            }
        });
        let r = p.report();
        let compute = r
            .rows
            .iter()
            .find(|row| row.kind == PassKind::Compute)
            .unwrap();
        assert_eq!(compute.count, 400);
        assert_eq!(compute.total, Duration::from_nanos(4000));
    }
}
