//! Cost-model-pruned mapping autotuner (the §4.3 search, generalised).
//!
//! [`tune`] takes a set of candidate mappings ([`TuneCandidate`]),
//! prices every one with the analytic estimator in
//! `polymem_core::smem::tune` (symbolic plan only — no simulation),
//! keeps a configurable top-K frontier (presets are always pinned into
//! it, so the tuned winner can never lose to a hand-picked mapping),
//! and simulates only the survivors in parallel across a scoped-thread
//! worker pool, each candidate seeded with its own warmed symbolic
//! plan and timed best-of-N. Every simulated candidate's outputs are
//! compared bit-exactly against the reference interpreter.
//!
//! The winner is persisted as a [`TuneArtifact`] in the plan artifact
//! store under [`tune_key`] (program × params × machine salt ×
//! candidate-space description), so a warm re-run — and `polymem run
//! --tuned` / `polymem serve` — loads it with zero simulations.
//!
//! [`generic_candidates`] derives a candidate space for *arbitrary*
//! affine programs (`.poly` files, fuzzed programs) from the
//! permutable-band analysis, mirroring how the five hand-written
//! kernels were mapped: tiled space loops across blocks, an optional
//! innermost sequential tile loop for residency/double-buffering, and
//! an outermost time loop as device-sync rounds when no space loop
//! exists.

use crate::config::MachineConfig;
use crate::exec::{
    enumerate_named, execute_blocked_seeded, machine_salt, seq_redundant_arrays, warm_plan,
    BlockedKernel,
};
use crate::{MachineError, Result};
use polymem_core::smem::tune::{
    estimate, tune_key, CostConstants, CostEstimate, MappingDesc, Structure, TuneArtifact, TuneRow,
};
use polymem_core::smem::{ArtifactKey, SymbolicPlan};
use polymem_core::tiling::bands::find_permutable_band;
use polymem_core::tiling::legality::check_tiling;
use polymem_core::tiling::transform::{tile_program, TileSpec};
use polymem_ir::{exec_program, ArrayStore, Program};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One candidate mapping: its description plus the ready-to-execute
/// blocked kernel it denotes.
#[derive(Clone, Debug)]
pub struct TuneCandidate {
    /// The reusable mapping description (persisted in the artifact).
    pub desc: MappingDesc,
    /// The kernel the description reconstructs.
    pub kernel: BlockedKernel,
    /// Hand-picked preset mappings are pinned into the simulation
    /// frontier regardless of their predicted rank.
    pub preset: bool,
}

/// Search options.
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Frontier size: how many top-predicted candidates to simulate
    /// (presets are added on top).
    pub top_k: usize,
    /// Wall-clock repetitions per simulated candidate (best-of-N;
    /// modeled cycles are deterministic).
    pub reps: u32,
    /// Simulate every feasible candidate (disables pruning).
    pub exhaustive: bool,
    /// Worker threads for the simulation pool (0 = one per candidate,
    /// capped at 8).
    pub workers: usize,
    /// Ignore a warm tune artifact and re-search.
    pub force: bool,
    /// Human-readable tag folded into the tune key together with the
    /// candidate descriptions.
    pub space_label: String,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            top_k: 4,
            reps: 1,
            exhaustive: false,
            workers: 0,
            force: false,
            space_label: String::new(),
        }
    }
}

/// The result of one [`tune`] run.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The artifact key the result is stored under.
    pub key: ArtifactKey,
    /// `"artifact"` when a warm tune artifact answered with zero
    /// simulations, `"search"` when the search ran.
    pub plan_source: &'static str,
    /// Candidates simulated this run (0 on a warm artifact hit).
    pub simulated: usize,
    /// Total candidates considered.
    pub total: usize,
    /// The winning mapping.
    pub winner: MappingDesc,
    /// The winner's predicted cycles.
    pub winner_predicted: u64,
    /// The winner's simulated modeled cycles.
    pub winner_cycles: u64,
    /// Full ranked table (predicted ascending).
    pub rows: Vec<TuneRow>,
    /// Best-of-N simulation wall-clock per row (`None` for
    /// unsimulated rows; empty on a warm artifact hit — wall-clock is
    /// never persisted).
    pub sim_ns: Vec<Option<u128>>,
}

/// Machine toggles a [`MappingDesc`] overrides on the base config.
pub fn config_for(desc: &MappingDesc, base: &MachineConfig) -> MachineConfig {
    let mut cfg = base.clone();
    cfg.double_buffer = desc.double_buffer;
    cfg.hierarchy = desc.hierarchy;
    cfg.residency = desc.residency;
    cfg.vector_width = desc.vector_width.max(1);
    cfg
}

/// Rebuild the [`BlockedKernel`] a `scheme == "tile"` description
/// denotes on `program`. Returns `None` for foreign schemes (callers
/// with kernel-specific rebuilders handle those).
pub fn tile_kernel(program: &Program, desc: &MappingDesc) -> Result<Option<BlockedKernel>> {
    if desc.scheme != "tile" {
        return Ok(None);
    }
    let tiled = if desc.tiles.is_empty() {
        program.clone()
    } else {
        let tiles: Vec<(&str, i64)> = desc.tiles.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        tile_program(program, &TileSpec::new(&tiles, "T"))?
    };
    Ok(Some(BlockedKernel {
        program: tiled,
        round_dims: desc.round_dims.clone(),
        block_dims: desc.block_dims.clone(),
        seq_dims: desc.seq_dims.clone(),
        thread_dims: desc.thread_dims.clone(),
        use_scratchpad: desc.use_scratchpad,
    }))
}

/// Enumerate the launch shape the estimator prices: round/block/seq
/// counts plus the representative fixed-dim values (first enumerated
/// point, matching the executor's representative-plan choice) and the
/// advanced seq point the residency delta sets are evaluated at.
pub fn structure_of(
    kernel: &BlockedKernel,
    params: &[i64],
    config: &MachineConfig,
) -> Result<Structure> {
    let mut st = Structure {
        rounds: 1,
        blocks: 1,
        seqs: 1,
        rep_first: HashMap::new(),
        rep_mid: None,
        hoisted_arrays: Vec::new(),
        double_buffer: config.double_buffer,
    };
    let Some(lead) = kernel.program.stmts.first() else {
        return Ok(st);
    };
    let budget = config.enum_budget;
    let round_vals = enumerate_named(lead, &kernel.round_dims, params, &st.rep_first, budget)?;
    if let Some(r0) = round_vals.first() {
        st.rounds = round_vals.len() as u64;
        for (n, v) in kernel.round_dims.iter().zip(r0) {
            st.rep_first.insert(n.clone(), *v);
        }
    }
    let block_vals = enumerate_named(lead, &kernel.block_dims, params, &st.rep_first, budget)?;
    if let Some(b0) = block_vals.first() {
        st.blocks = block_vals.len() as u64;
        for (n, v) in kernel.block_dims.iter().zip(b0) {
            st.rep_first.insert(n.clone(), *v);
        }
    }
    let seq_vals = enumerate_named(lead, &kernel.seq_dims, params, &st.rep_first, budget)?;
    if let Some(s0) = seq_vals.first() {
        st.seqs = seq_vals.len() as u64;
        if let Some(s1) = seq_vals.get(1) {
            let mut mid = st.rep_first.clone();
            for (n, v) in kernel.seq_dims.iter().zip(s0) {
                mid.insert(n.clone(), *v);
            }
            // The delta sets compare sub-tile s1 against its
            // predecessor s0, so the mid point carries s1's values.
            for (n, v) in kernel.seq_dims.iter().zip(s1) {
                mid.insert(n.clone(), *v);
            }
            st.rep_mid = Some(mid);
        }
        for (n, v) in kernel.seq_dims.iter().zip(s0) {
            st.rep_first.insert(n.clone(), *v);
        }
    }
    if !kernel.seq_dims.is_empty() && kernel.use_scratchpad {
        let mut h: Vec<usize> = seq_redundant_arrays(kernel).into_iter().collect();
        h.sort_unstable();
        st.hoisted_arrays = h;
    }
    Ok(st)
}

/// The estimator's view of a machine config.
pub fn cost_constants(config: &MachineConfig) -> CostConstants {
    CostConstants {
        cycles_per_op: config.cycles_per_op,
        smem_latency: config.smem_latency,
        global_latency: config.global_latency,
        global_overlap: config.global_overlap,
        word_bytes: config.word_bytes,
        smem_bytes: config.smem_bytes,
        device_sync_base: config.device_sync_base,
        device_sync_per_block: config.device_sync_per_block,
        dma_channels: config.dma_channels,
        dma_setup_cycles: config.dma_setup_cycles,
        dma_bytes_per_cycle: config.dma_bytes_per_cycle,
        n_outer: config.n_outer,
        max_blocks_per_outer: config.max_blocks_per_outer,
        count_budget: config.enum_budget,
        mesh_rows: match &config.mesh {
            Some(m) if config.caps.placement_cost => m.rows,
            _ => 0,
        },
        mesh_cols: match &config.mesh {
            Some(m) if config.caps.placement_cost => m.cols,
            _ => 0,
        },
        hop_cycles: match &config.mesh {
            Some(m) if config.caps.placement_cost => m.hop_cycles,
            _ => 0.0,
        },
    }
}

fn tune_error(msg: &str) -> MachineError {
    MachineError::Ir(polymem_ir::IrError::UnknownName(format!("tune: {msg}")))
}

/// Derive a candidate space for an arbitrary affine program from the
/// §4.1 permutable-band analysis. `tile_sizes` is the per-dimension
/// size menu (e.g. `[2, 4, 8]`); up to two loops are tiled.
pub fn generic_candidates(
    program: &Program,
    params: &[i64],
    base: &MachineConfig,
    tile_sizes: &[i64],
) -> Result<Vec<TuneCandidate>> {
    let band = find_permutable_band(program).map_err(MachineError::Poly)?;
    let Some(lead) = program.stmts.first() else {
        return Ok(Vec::new());
    };
    let names = lead.domain.space().dims().to_vec();
    let space_names: Vec<String> = band
        .space_loops()
        .iter()
        .map(|&l| names[l].clone())
        .collect();

    // Choose round dims and the (up to two) loops worth tiling.
    let mut round_dims: Vec<String> = Vec::new();
    let tile_dims: Vec<String> = if !space_names.is_empty() {
        space_names.iter().take(2).cloned().collect()
    } else if let Some(&first) = band.loops.first() {
        // All-time band (unskewed stencil): outermost time loop
        // becomes device-sync rounds, deeper loops become the tiling
        // targets (legality-checked per candidate).
        round_dims.push(names[first].clone());
        names.iter().skip(first + 1).take(2).cloned().collect()
    } else {
        Vec::new()
    };

    fn push_desc(program: &Program, out: &mut Vec<TuneCandidate>, desc: MappingDesc) -> Result<()> {
        if let Some(kernel) = tile_kernel(program, &desc)? {
            out.push(TuneCandidate {
                desc,
                kernel,
                preset: false,
            });
        }
        Ok(())
    }

    // Untiled whole-program mappings (single block per round): the
    // only option when nothing is tilable, and the fallback when
    // every tile combo fails the legality check below.
    let untiled = |spad: bool| MappingDesc {
        scheme: "tile".into(),
        tiles: vec![],
        round_dims: round_dims.clone(),
        block_dims: vec![],
        seq_dims: vec![],
        thread_dims: vec![],
        use_scratchpad: spad,
        double_buffer: false,
        hierarchy: false,
        residency: false,
        vector_width: base.vector_width,
    };
    let mut out: Vec<TuneCandidate> = Vec::new();
    if tile_dims.is_empty() {
        push_desc(program, &mut out, untiled(true))?;
        push_desc(program, &mut out, untiled(false))?;
        return Ok(out);
    }

    let combos: Vec<Vec<i64>> = if tile_dims.len() == 1 {
        tile_sizes.iter().map(|&a| vec![a]).collect()
    } else {
        let mut c = Vec::new();
        for &a in tile_sizes {
            for &b in tile_sizes {
                c.push(vec![a, b]);
            }
        }
        c
    };
    let mut unstaged_done = false;
    for combo in combos {
        let tiles: Vec<(String, i64)> = tile_dims
            .iter()
            .cloned()
            .zip(combo.iter().copied())
            .collect();
        let spec_pairs: Vec<(&str, i64)> = tiles.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let spec = TileSpec::new(&spec_pairs, "T");
        match check_tiling(program, &spec, Some(params)) {
            Ok(Ok(())) => {}
            Ok(Err(_)) => continue,
            Err(e) => return Err(MachineError::Poly(e)),
        }
        let block_all: Vec<String> = tile_dims.iter().map(|n| format!("{n}T")).collect();
        let thread = vec![tile_dims[0].clone()];
        let base_desc = MappingDesc {
            scheme: "tile".into(),
            tiles: tiles.clone(),
            round_dims: round_dims.clone(),
            block_dims: block_all.clone(),
            seq_dims: vec![],
            thread_dims: thread.clone(),
            use_scratchpad: true,
            double_buffer: false,
            hierarchy: false,
            residency: false,
            vector_width: base.vector_width,
        };
        // All tile dims across blocks.
        push_desc(program, &mut out, base_desc.clone())?;
        if !unstaged_done {
            push_desc(
                program,
                &mut out,
                MappingDesc {
                    use_scratchpad: false,
                    ..base_desc.clone()
                },
            )?;
            unstaged_done = true;
        }
        // Innermost tile loop sequential inside the block: the shape
        // residency and double buffering exploit.
        if block_all.len() >= 2 {
            let seq_desc = MappingDesc {
                block_dims: block_all[..block_all.len() - 1].to_vec(),
                seq_dims: vec![block_all[block_all.len() - 1].clone()],
                residency: base.residency,
                ..base_desc.clone()
            };
            push_desc(program, &mut out, seq_desc.clone())?;
            push_desc(
                program,
                &mut out,
                MappingDesc {
                    double_buffer: true,
                    ..seq_desc
                },
            )?;
        }
    }
    if out.is_empty() {
        // Every tile combo failed the legality check: fall back to the
        // untiled single-block mappings so the space is never empty.
        push_desc(program, &mut out, untiled(true))?;
        push_desc(program, &mut out, untiled(false))?;
    }
    Ok(out)
}

struct SimResult {
    cycles: u64,
    exact: bool,
    best_ns: u128,
    note: String,
}

fn simulate_one(
    cand: &TuneCandidate,
    program: &Program,
    params: &[i64],
    init: &(dyn Fn(&mut ArrayStore) + Sync),
    reference: &ArrayStore,
    base: &MachineConfig,
    reps: u32,
) -> SimResult {
    let cfg = config_for(&cand.desc, base);
    let mut seed: Option<Arc<SymbolicPlan>> = None;
    let mut cycles = 0u64;
    let mut exact = true;
    let mut best_ns = u128::MAX;
    for _ in 0..reps.max(1) {
        let mut store = match ArrayStore::for_program(&cand.kernel.program, params) {
            Ok(s) => s,
            Err(e) => {
                return SimResult {
                    cycles: 0,
                    exact: false,
                    best_ns: 0,
                    note: format!("store: {e}"),
                }
            }
        };
        init(&mut store);
        let t0 = Instant::now();
        match execute_blocked_seeded(
            &cand.kernel,
            params,
            &mut store,
            &cfg,
            false,
            None,
            seed.as_ref(),
        ) {
            Ok((stats, warmed)) => {
                best_ns = best_ns.min(t0.elapsed().as_nanos());
                cycles = stats.modeled_cycles;
                if let Some((sp, _)) = warmed {
                    seed = Some(sp);
                }
                for a in &program.arrays {
                    if store.data(&a.name) != reference.data(&a.name) {
                        exact = false;
                    }
                }
            }
            Err(e) => {
                return SimResult {
                    cycles: 0,
                    exact: false,
                    best_ns: 0,
                    note: format!("{e}"),
                }
            }
        }
    }
    SimResult {
        cycles,
        exact,
        best_ns,
        note: String::new(),
    }
}

/// Run the pruned search over `candidates`.
///
/// `program` is the *base* (untiled) program: it defines the reference
/// semantics every simulated candidate is checked against bit-exactly,
/// and the tune key. `init` seeds the array store deterministically
/// (called once for the reference and once per simulation rep).
pub fn tune(
    program: &Program,
    params: &[i64],
    init: &(dyn Fn(&mut ArrayStore) + Sync),
    candidates: &[TuneCandidate],
    base: &MachineConfig,
    opts: &TuneOptions,
) -> Result<TuneOutcome> {
    if candidates.is_empty() {
        return Err(tune_error("empty candidate space"));
    }
    // The space description keys the artifact: any change to the
    // candidate set or the pruning shape re-searches.
    let mut space = format!(
        "{};k={};ex={}",
        opts.space_label,
        if opts.exhaustive { 0 } else { opts.top_k },
        opts.exhaustive as u8
    );
    for c in candidates {
        space.push('|');
        space.push_str(&c.desc.to_line());
        if c.preset {
            space.push('*');
        }
    }
    let key = tune_key(program, params, &machine_salt(base), &space);
    let art_dir = base.artifact_dir.clone();
    if !opts.force {
        if let Some(dir) = &art_dir {
            if let Some(art) = TuneArtifact::load(Path::new(dir), &key) {
                return Ok(TuneOutcome {
                    key,
                    plan_source: "artifact",
                    simulated: 0,
                    total: candidates.len(),
                    winner: art.winner,
                    winner_predicted: art.winner_predicted,
                    winner_cycles: art.winner_cycles,
                    rows: art.rows,
                    sim_ns: Vec::new(),
                });
            }
        }
    }

    // Reference outputs from the sequential interpreter.
    let mut reference = ArrayStore::for_program(program, params).map_err(MachineError::Ir)?;
    init(&mut reference);
    exec_program(program, params, &mut reference).map_err(MachineError::Ir)?;

    // Analytic pass: plan symbolically (through the PR-8 artifact
    // store, so re-tunes reuse compiled plans) and price each
    // candidate. No simulation happens here.
    let mut priced: Vec<(usize, Option<CostEstimate>, String)> = Vec::new();
    for (ci, cand) in candidates.iter().enumerate() {
        let cfg = config_for(&cand.desc, base);
        let est = structure_of(&cand.kernel, params, &cfg).and_then(|st| {
            let sp = if cand.kernel.use_scratchpad {
                warm_plan(&cand.kernel, params, &cfg, None, None)?.map(|(sp, _)| sp)
            } else {
                None
            };
            estimate(
                &cand.kernel.program,
                sp.as_deref(),
                params,
                &st,
                &cost_constants(&cfg),
            )
            .map_err(MachineError::Smem)
        });
        match est {
            Ok(e) => {
                let need =
                    e.smem_words * cfg.word_bytes * if cand.desc.double_buffer { 2 } else { 1 };
                if cfg.smem_bytes > 0 && need > cfg.smem_bytes {
                    priced.push((
                        ci,
                        None,
                        format!("infeasible: needs {need} B of {} B", cfg.smem_bytes),
                    ));
                } else {
                    priced.push((ci, Some(e), String::new()));
                }
            }
            Err(e) => priced.push((ci, None, format!("estimate: {e}"))),
        }
    }

    // Rank feasible candidates by predicted cycles; the frontier is
    // the top-K plus every preset.
    let mut order: Vec<usize> = (0..priced.len())
        .filter(|&i| priced[i].1.is_some())
        .collect();
    order.sort_by_key(|&i| (priced[i].1.as_ref().unwrap().predicted_cycles, i));
    let frontier: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(rank, &i)| {
            opts.exhaustive || *rank < opts.top_k.max(1) || candidates[priced[i].0].preset
        })
        .map(|(_, &i)| i)
        .collect();

    // Simulate the frontier in parallel (scoped worker pool, one warm
    // plan seed per worker carried across its candidates).
    let results: Vec<Mutex<Option<SimResult>>> = priced.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let n_workers = if opts.workers == 0 {
        frontier.len().clamp(1, 8)
    } else {
        opts.workers.min(frontier.len().max(1))
    };
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&pi) = frontier.get(k) else { break };
                let cand = &candidates[priced[pi].0];
                let r = simulate_one(cand, program, params, init, &reference, base, opts.reps);
                *results[pi].lock().unwrap() = Some(r);
            });
        }
    });

    // Assemble the ranked table: feasible candidates by predicted
    // order, then the infeasible/failed ones.
    let mut rows: Vec<TuneRow> = Vec::new();
    let mut sim_ns: Vec<Option<u128>> = Vec::new();
    let mut row_of: Vec<(usize, Option<u64>, bool)> = Vec::new();
    let mut emit = |pi: usize| {
        let (ci, est, note) = &priced[pi];
        let sim = results[pi].lock().unwrap().take();
        let (simulated, exact, note, ns) = match sim {
            Some(s) if s.note.is_empty() => {
                (Some(s.cycles), s.exact, note.clone(), Some(s.best_ns))
            }
            Some(s) => (None, false, s.note, None),
            None => (None, true, note.clone(), None),
        };
        sim_ns.push(ns);
        row_of.push((rows.len(), simulated, exact));
        rows.push(TuneRow {
            desc: candidates[*ci].desc.clone(),
            predicted: est.as_ref().map(|e| e.predicted_cycles).unwrap_or(u64::MAX),
            simulated,
            exact,
            preset: candidates[*ci].preset,
            note,
        });
    };
    for &pi in &order {
        emit(pi);
    }
    let infeasible: Vec<usize> = (0..priced.len())
        .filter(|&pi| priced[pi].1.is_none())
        .collect();
    for pi in infeasible {
        emit(pi);
    }

    let winner_row = row_of
        .iter()
        .filter(|(_, sim, exact)| sim.is_some() && *exact)
        .min_by_key(|(ri, sim, _)| (sim.unwrap(), *ri))
        .map(|(ri, _, _)| *ri)
        .ok_or_else(|| tune_error("no candidate simulated successfully"))?;
    let winner = rows[winner_row].desc.clone();
    let winner_predicted = rows[winner_row].predicted;
    let winner_cycles = rows[winner_row].simulated.unwrap();

    let art = TuneArtifact {
        key,
        winner: winner.clone(),
        winner_predicted,
        winner_cycles,
        rows: rows.clone(),
    };
    if let Some(dir) = &art_dir {
        art.save(Path::new(dir))
            .map_err(|e| tune_error(&format!("artifact save: {e}")))?;
    }
    Ok(TuneOutcome {
        key,
        plan_source: "search",
        simulated: frontier.len(),
        total: candidates.len(),
        winner,
        winner_predicted,
        winner_cycles,
        rows,
        sim_ns,
    })
}
