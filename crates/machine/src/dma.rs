//! Tagged-channel DMA engine with a setup-latency + bandwidth cost
//! model.
//!
//! Each outer unit owns [`MachineConfig::dma_channels`] channels.
//! Issuing a [`TransferDescriptor`] picks the least-busy channel and
//! charges `dma_setup_cycles + ceil(bytes / dma_bytes_per_cycle)`
//! cycles on it; the returned [`DmaTag`] records the completion cycle,
//! and [`DmaEngine::wait`] advances the caller's clock (accumulating
//! stall cycles) only if the transfer has not already finished in the
//! shadow of compute. Synchronous staging issues and waits back to
//! back, so every busy cycle is a stall; the double-buffered executor
//! issues ahead and most busy cycles are hidden — the difference is
//! the [`DmaStats::overlap_fraction`].
//!
//! Everything here is deterministic simulated time (integer cycles),
//! so stats survive the executor's sequential-vs-parallel equality
//! test.

use crate::config::MachineConfig;
use polymem_core::smem::{TransferDescriptor, TransferList};

/// Number of log2 buckets in the bytes-per-descriptor histogram
/// (bucket `k` counts descriptors with `bytes in [2^k, 2^(k+1))`;
/// the last bucket absorbs everything larger).
pub const DMA_HIST_BUCKETS: usize = 16;

/// Observability block for the DMA engine, absorbed across blocks
/// into [`ExecStats`](crate::ExecStats).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Descriptors issued.
    pub descriptors: u64,
    /// Elements moved by those descriptors.
    pub elements: u64,
    /// Bytes moved by those descriptors.
    pub bytes: u64,
    /// Busy cycles per channel (transfer + setup time charged to it).
    pub channel_busy_cycles: Vec<u64>,
    /// Cycles the issuing unit stalled waiting on a tag.
    pub stall_cycles: u64,
    /// Bytes-per-descriptor histogram, log2 buckets
    /// ([`DMA_HIST_BUCKETS`] of them).
    pub bytes_hist: Vec<u64>,
}

impl DmaStats {
    /// Total busy cycles across all channels.
    pub fn total_busy_cycles(&self) -> u64 {
        self.channel_busy_cycles.iter().sum()
    }

    /// Fraction of DMA busy time hidden behind compute: busy cycles
    /// the issuer did *not* stall for, over all busy cycles. 0.0 for
    /// fully synchronous staging, → 1.0 for perfect overlap.
    pub fn overlap_fraction(&self) -> f64 {
        let busy = self.total_busy_cycles();
        if busy == 0 {
            return 0.0;
        }
        let hidden = busy.saturating_sub(self.stall_cycles);
        hidden as f64 / busy as f64
    }

    /// Mean bytes per descriptor (0 if none were issued).
    pub fn mean_descriptor_bytes(&self) -> f64 {
        if self.descriptors == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.descriptors as f64
    }

    /// Accumulate another engine's stats (used by
    /// `ExecStats::absorb` when merging per-block results).
    pub fn absorb(&mut self, o: &DmaStats) {
        self.descriptors += o.descriptors;
        self.elements += o.elements;
        self.bytes += o.bytes;
        if self.channel_busy_cycles.len() < o.channel_busy_cycles.len() {
            self.channel_busy_cycles
                .resize(o.channel_busy_cycles.len(), 0);
        }
        for (a, b) in self
            .channel_busy_cycles
            .iter_mut()
            .zip(&o.channel_busy_cycles)
        {
            *a += b;
        }
        self.stall_cycles += o.stall_cycles;
        if self.bytes_hist.len() < o.bytes_hist.len() {
            self.bytes_hist.resize(o.bytes_hist.len(), 0);
        }
        for (a, b) in self.bytes_hist.iter_mut().zip(&o.bytes_hist) {
            *a += b;
        }
    }

    /// One-line human-readable summary for `--profile`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "dma: {} descriptors, {} elements, {} B ({:.1} B/desc), overlap {:.1}%, \
             stalls {} cy, busy {} cy on {} channels",
            self.descriptors,
            self.elements,
            self.bytes,
            self.mean_descriptor_bytes(),
            self.overlap_fraction() * 100.0,
            self.stall_cycles,
            self.total_busy_cycles(),
            self.channel_busy_cycles.len(),
        );
        if self.descriptors > 0 {
            s.push_str("\n  bytes/desc histogram:");
            for (k, &n) in self.bytes_hist.iter().enumerate() {
                if n > 0 {
                    s.push_str(&format!(" [2^{k}:{n}]"));
                }
            }
        }
        s
    }
}

/// Handle for an in-flight transfer: which channel it went to and
/// the cycle it completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaTag {
    /// Channel index the transfer was queued on.
    pub channel: usize,
    /// Absolute cycle at which the transfer completes.
    pub done: u64,
}

impl DmaTag {
    /// A tag that is already complete (for empty transfer lists).
    pub fn immediate(now: u64) -> DmaTag {
        DmaTag {
            channel: 0,
            done: now,
        }
    }
}

/// Per-block DMA engine: `n` channels, each a busy-until clock.
#[derive(Clone, Debug)]
pub struct DmaEngine {
    channels: Vec<u64>,
    setup_cycles: f64,
    bytes_per_cycle: f64,
    /// NoC route cycles every descriptor pays on top of setup +
    /// bandwidth — the inter-PE hop cost on spatial machines (the
    /// issuing block's placement fixes the hop count for the whole
    /// block). 0 on machines without placement-priced movement.
    route_cycles: u64,
    /// Accumulated observability counters.
    pub stats: DmaStats,
}

impl DmaEngine {
    /// Build an engine from the machine description (at least one
    /// channel, even if the config says 0 — issuing is then simply
    /// never attempted by the executor).
    pub fn new(config: &MachineConfig) -> DmaEngine {
        DmaEngine::with_route(config, 0)
    }

    /// Build an engine whose descriptors each pay `route_cycles` of
    /// NoC routing (a spatial block's placement-determined hop cost).
    pub fn with_route(config: &MachineConfig, route_cycles: u64) -> DmaEngine {
        let n = config.dma_channels.max(1) as usize;
        DmaEngine {
            channels: vec![0; n],
            setup_cycles: config.dma_setup_cycles.max(0.0),
            bytes_per_cycle: config.dma_bytes_per_cycle.max(1e-9),
            route_cycles,
            stats: DmaStats {
                channel_busy_cycles: vec![0; n],
                bytes_hist: vec![0; DMA_HIST_BUCKETS],
                ..DmaStats::default()
            },
        }
    }

    /// Cycles one descriptor occupies a channel.
    fn transfer_cycles(&self, bytes: u64) -> u64 {
        let xfer = (bytes as f64 / self.bytes_per_cycle).ceil();
        (self.setup_cycles + xfer).round().max(1.0) as u64 + self.route_cycles
    }

    /// Queue one descriptor. The transfer starts no earlier than
    /// `max(now, earliest)` and no earlier than the chosen channel is
    /// free; the least-busy channel wins (deterministic tie-break on
    /// index).
    pub fn issue(
        &mut self,
        d: &TransferDescriptor,
        word_bytes: u64,
        now: u64,
        earliest: u64,
    ) -> DmaTag {
        let bytes = d.bytes(word_bytes);
        let ch = self
            .channels
            .iter()
            .enumerate()
            .min_by_key(|(i, &busy)| (busy, *i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let start = now.max(earliest).max(self.channels[ch]);
        let cost = self.transfer_cycles(bytes);
        let done = start + cost;
        self.channels[ch] = done;
        self.stats.descriptors += 1;
        self.stats.elements += d.elements();
        self.stats.bytes += bytes;
        self.stats.channel_busy_cycles[ch] += cost;
        let bucket = (64 - bytes.max(1).leading_zeros() as usize - 1).min(DMA_HIST_BUCKETS - 1);
        self.stats.bytes_hist[bucket] += 1;
        DmaTag { channel: ch, done }
    }

    /// Queue a whole transfer list; the returned tag completes when
    /// the last descriptor does.
    pub fn issue_list(
        &mut self,
        list: &TransferList,
        word_bytes: u64,
        now: u64,
        earliest: u64,
    ) -> DmaTag {
        let mut last = DmaTag::immediate(now);
        for d in &list.descriptors {
            let t = self.issue(d, word_bytes, now, earliest);
            if t.done > last.done {
                last = t;
            }
        }
        last
    }

    /// Block until the tag completes: returns the new clock value and
    /// accumulates any stall cycles.
    pub fn wait(&mut self, tag: &DmaTag, now: u64) -> u64 {
        if tag.done > now {
            self.stats.stall_cycles += tag.done - now;
            tag.done
        } else {
            now
        }
    }

    /// Block until every channel is idle (end-of-block fence).
    pub fn drain(&mut self, now: u64) -> u64 {
        let done = self.channels.iter().copied().max().unwrap_or(0);
        let tag = DmaTag { channel: 0, done };
        self.wait(&tag, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(elems: i64) -> TransferDescriptor {
        TransferDescriptor {
            global_base: 0,
            local_base: 0,
            elem_count: elems,
            stride: 1,
            n_rows: 1,
            global_row_stride: 0,
            local_stride: 1,
            local_row_stride: 0,
        }
    }

    fn engine(channels: u64, setup: f64, bpc: f64) -> DmaEngine {
        let mut cfg = MachineConfig::geforce_8800_gtx();
        cfg.dma_channels = channels;
        cfg.dma_setup_cycles = setup;
        cfg.dma_bytes_per_cycle = bpc;
        DmaEngine::new(&cfg)
    }

    #[test]
    fn issue_charges_setup_plus_bandwidth() {
        let mut e = engine(1, 100.0, 4.0);
        // 8 elements × 4 B = 32 B → 8 transfer cycles + 100 setup.
        let tag = e.issue(&desc(8), 4, 0, 0);
        assert_eq!(tag.done, 108);
        assert_eq!(e.stats.descriptors, 1);
        assert_eq!(e.stats.elements, 8);
        assert_eq!(e.stats.bytes, 32);
        assert_eq!(e.stats.total_busy_cycles(), 108);
        // 32 B lands in the 2^5 bucket.
        assert_eq!(e.stats.bytes_hist[5], 1);
    }

    #[test]
    fn route_cycles_are_charged_per_descriptor() {
        let mut cfg = MachineConfig::geforce_8800_gtx();
        cfg.dma_channels = 1;
        cfg.dma_setup_cycles = 100.0;
        cfg.dma_bytes_per_cycle = 4.0;
        let mut e = DmaEngine::with_route(&cfg, 7);
        let t0 = e.issue(&desc(8), 4, 0, 0); // 100 + 8 + 7 per hop term
        assert_eq!(t0.done, 115);
        let t1 = e.issue(&desc(8), 4, 0, 0); // queues behind, pays again
        assert_eq!(t1.done, 230);
    }

    #[test]
    fn channels_round_robin_by_load() {
        let mut e = engine(2, 10.0, 4.0);
        let t0 = e.issue(&desc(4), 4, 0, 0); // ch 0, done 14
        let t1 = e.issue(&desc(4), 4, 0, 0); // ch 1, done 14
        assert_ne!(t0.channel, t1.channel);
        // Third transfer queues behind whichever frees first.
        let t2 = e.issue(&desc(4), 4, 0, 0);
        assert_eq!(t2.done, 28);
    }

    #[test]
    fn sync_wait_accumulates_stalls_async_hides_them() {
        // Synchronous: issue, wait immediately → all busy is stalled.
        let mut e = engine(1, 50.0, 4.0);
        let tag = e.issue(&desc(4), 4, 0, 0);
        let now = e.wait(&tag, 0);
        assert_eq!(now, tag.done);
        assert_eq!(e.stats.stall_cycles, e.stats.total_busy_cycles());
        assert_eq!(e.stats.overlap_fraction(), 0.0);
        // Asynchronous: compute long enough to hide the transfer.
        let mut e = engine(1, 50.0, 4.0);
        let tag = e.issue(&desc(4), 4, 0, 0);
        let now = e.wait(&tag, 1000); // clock already past completion
        assert_eq!(now, 1000);
        assert_eq!(e.stats.stall_cycles, 0);
        assert_eq!(e.stats.overlap_fraction(), 1.0);
    }

    #[test]
    fn issue_list_returns_last_completion_and_drain_fences() {
        let mut e = engine(2, 10.0, 4.0);
        let list = TransferList {
            descriptors: vec![desc(4), desc(4), desc(4)],
            elements: 12,
        };
        let tag = e.issue_list(&list, 4, 0, 0);
        assert_eq!(tag.done, 28); // two channels, third queues behind
        let now = e.drain(0);
        assert_eq!(now, 28);
        let now = e.drain(now);
        assert_eq!(now, 28); // idempotent once idle
    }

    #[test]
    fn absorb_merges_all_fields() {
        let mut e1 = engine(2, 10.0, 4.0);
        e1.issue(&desc(4), 4, 0, 0);
        let mut e2 = engine(2, 10.0, 4.0);
        let t = e2.issue(&desc(100), 4, 0, 0);
        e2.wait(&t, 0);
        let mut total = DmaStats::default();
        total.absorb(&e1.stats);
        total.absorb(&e2.stats);
        assert_eq!(total.descriptors, 2);
        assert_eq!(total.elements, 104);
        assert_eq!(total.bytes, 416);
        assert_eq!(
            total.total_busy_cycles(),
            e1.stats.total_busy_cycles() + e2.stats.total_busy_cycles()
        );
        assert_eq!(total.stall_cycles, e2.stats.stall_cycles);
        assert_eq!(
            total.bytes_hist.iter().sum::<u64>(),
            2,
            "every descriptor lands in exactly one histogram bucket"
        );
        assert!(total.render().contains("descriptors"));
    }
}
