//! Per-array flat-offset write overlays.
//!
//! While a round executes, blocks buffer their global writes instead
//! of touching the shared [`ArrayStore`]; the overlays are merged in
//! block order after the round's barrier. The old representation was
//! one `HashMap<(usize, Vec<i64>), i64>` — every insert and lookup
//! allocated a `Vec<i64>` key and hashed it. This one keys each
//! array's writes by *flat row-major offset* (one `usize` hash, no
//! allocation) and merges into the store by contiguous runs.
//!
//! Indices are validated against the array extents when a write
//! enters the overlay, so out-of-bounds writes surface as typed
//! [`IrError::OutOfBounds`] at the writing block, not at merge time.

use polymem_ir::{ArrayStore, IrError, Program};
use std::collections::HashMap;

/// Flatten a row-major multi-index against `extents`. `None` if the
/// rank mismatches or any coordinate is out of range.
pub(crate) fn flatten(index: &[i64], extents: &[i64]) -> Option<usize> {
    if index.len() != extents.len() {
        return None;
    }
    let mut off: i64 = 0;
    for (&i, &e) in index.iter().zip(extents) {
        if i < 0 || i >= e {
            return None;
        }
        off = off * e + i;
    }
    Some(off as usize)
}

/// Reconstruct the multi-index of a flat offset (error paths only).
fn unflatten(mut off: usize, extents: &[i64]) -> Vec<i64> {
    let mut idx = vec![0i64; extents.len()];
    for d in (0..extents.len()).rev() {
        let e = extents[d].max(1) as usize;
        idx[d] = (off % e) as i64;
        off /= e;
    }
    idx
}

/// Buffered global writes of one block (or one round worker), keyed
/// `[array id][flat offset]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Overlay {
    arrays: Vec<HashMap<usize, i64>>,
}

impl Overlay {
    /// An empty overlay for a program with `n_arrays` arrays.
    pub fn new(n_arrays: usize) -> Overlay {
        Overlay {
            arrays: vec![HashMap::new(); n_arrays],
        }
    }

    /// Latest buffered value at a flat offset, if any.
    #[inline]
    pub fn get(&self, array: usize, off: usize) -> Option<i64> {
        self.arrays[array].get(&off).copied()
    }

    /// Buffer a write at a pre-validated flat offset.
    #[inline]
    pub fn set(&mut self, array: usize, off: usize, value: i64) {
        self.arrays[array].insert(off, value);
    }

    /// Buffer a write at a multi-index, validating it against the
    /// array extents.
    pub fn set_idx(
        &mut self,
        array: usize,
        name: &str,
        index: &[i64],
        extents: &[i64],
        value: i64,
    ) -> Result<(), IrError> {
        match flatten(index, extents) {
            Some(off) => {
                self.set(array, off, value);
                Ok(())
            }
            None => Err(IrError::OutOfBounds {
                array: name.to_string(),
                index: index.to_vec(),
            }),
        }
    }

    /// Total number of buffered writes.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.arrays.iter().map(HashMap::len).sum()
    }

    /// Write every buffered value into `store`, array by array in
    /// program order, offsets ascending, coalesced into maximal
    /// contiguous runs so each run costs one slice borrow.
    pub fn merge_into(&self, program: &Program, store: &mut ArrayStore) -> Result<(), IrError> {
        for (a, writes) in self.arrays.iter().enumerate() {
            if writes.is_empty() {
                continue;
            }
            let name = &program.arrays[a].name;
            let mut offs: Vec<usize> = writes.keys().copied().collect();
            offs.sort_unstable();
            let extents = store.extents(name)?.to_vec();
            let data = store.data_mut(name)?;
            let mut run = 0;
            while run < offs.len() {
                let start = offs[run];
                let mut end = run + 1;
                while end < offs.len() && offs[end] == offs[end - 1] + 1 {
                    end += 1;
                }
                let last = offs[end - 1];
                if last >= data.len() {
                    // The store disagrees with the program's extents
                    // (caller passed a foreign store): surface the
                    // same typed error the old per-element merge did.
                    return Err(IrError::OutOfBounds {
                        array: name.clone(),
                        index: unflatten(last, &extents),
                    });
                }
                let seg = &mut data[start..=last];
                for (i, off) in offs[run..end].iter().enumerate() {
                    debug_assert_eq!(start + i, *off);
                    seg[i] = writes[off];
                }
                run = end;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem_ir::builder::ProgramBuilder;
    use polymem_ir::expr::{v, Expr, LinExpr};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new("p", ["N"]);
        b.array("A", &[v("N"), v("N")]);
        b.array("B", &[v("N")]);
        b.stmt("S")
            .loops(&[("i", LinExpr::c(0), v("N") - 1)])
            .write("A", &[v("i"), v("i")])
            .body(Expr::Const(0))
            .done();
        b.build().unwrap()
    }

    #[test]
    fn set_idx_validates_and_merge_applies_runs() {
        let p = sample_program();
        let mut store = ArrayStore::for_program(&p, &[4]).unwrap();
        let mut ov = Overlay::new(p.arrays.len());
        let ext_a = [4i64, 4];
        // A contiguous run (row 1) plus a stray element, plus B.
        for j in 0..4 {
            ov.set_idx(0, "A", &[1, j], &ext_a, 10 + j).unwrap();
        }
        ov.set_idx(0, "A", &[3, 2], &ext_a, 99).unwrap();
        ov.set_idx(1, "B", &[0], &[4], 7).unwrap();
        assert_eq!(ov.len(), 6);
        ov.merge_into(&p, &mut store).unwrap();
        assert_eq!(store.data("A").unwrap()[4..8], [10, 11, 12, 13]);
        assert_eq!(store.get("A", &[3, 2]).unwrap(), 99);
        assert_eq!(store.get("B", &[0]).unwrap(), 7);
        // Untouched cells stay zero.
        assert_eq!(store.get("A", &[0, 0]).unwrap(), 0);
    }

    #[test]
    fn oob_write_is_typed_at_insert_time() {
        let mut ov = Overlay::new(1);
        let err = ov.set_idx(0, "A", &[4, 0], &[4, 4], 1).unwrap_err();
        match err {
            IrError::OutOfBounds { array, index } => {
                assert_eq!(array, "A");
                assert_eq!(index, vec![4, 0]);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Rank mismatch too.
        assert!(ov.set_idx(0, "A", &[0], &[4, 4], 1).is_err());
    }
}
