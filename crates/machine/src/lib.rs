//! Two-level parallel machine simulator with explicitly managed
//! memories.
//!
//! The paper evaluates on an NVIDIA GeForce 8800 GTX; polymem has no
//! GPU, so this crate provides the substitution documented in
//! DESIGN.md: a machine model with the architecture of §4.1/§5 —
//! a slow global memory, outer-level parallel units (multiprocessors /
//! thread blocks), inner-level SIMD units (threads, warp-granular),
//! and a per-outer-unit scratchpad shared by the inner units —
//! plus:
//!
//! * [`config`] — machine descriptions with presets calibrated to the
//!   paper's testbed (GeForce 8800 GTX, a Cell-like must-copy machine,
//!   and the host CPU baseline);
//! * [`profile`] — the analytic timing model: given a kernel's
//!   per-block compute/memory/movement profile it produces execution
//!   time, honouring the occupancy rule (concurrent blocks limited by
//!   scratchpad use, §5), warp-granular parallelism, and device-wide
//!   synchronisation costs;
//! * [`exec`] — a *functional* executor that actually runs mapped
//!   tiled programs block-parallel (scoped threads) with optional
//!   scratchpad staging driven by the §3 framework's movement code,
//!   validating end-to-end correctness against the reference
//!   interpreter and collecting the access counts that cross-check the
//!   analytic profile.
//!
//! Absolute times are model estimates, not silicon measurements; the
//! reproduction targets the paper's *shapes* (scratchpad vs DRAM-only
//! gaps, tile-size optima, thread-block sweet spots), which are driven
//! by the ratios this model captures explicitly.

mod compiled;
pub mod config;
pub mod desc;
pub mod dma;
pub mod exec;
mod overlay;
pub mod profile;
pub mod trace;
pub mod tune;

pub use config::{Capabilities, MachineConfig, MeshDesc};
pub use desc::{MachineDesc, MemLevel};
pub use dma::{DmaEngine, DmaStats, DmaTag};
pub use exec::{
    execute_blocked, execute_blocked_profiled, execute_blocked_seeded, plan_artifact_key,
    warm_plan, BlockedKernel, ExecStats, FallbackStats, PlanSource, WarmedPlan,
};
pub use profile::{KernelProfile, TimeBreakdown};
pub use trace::{PassKind, PassProfiler, PassReport, Phase, Timeline};
pub use tune::{
    config_for, cost_constants, generic_candidates, structure_of, tile_kernel, tune, TuneCandidate,
    TuneOptions, TuneOutcome,
};

use std::fmt;

/// Errors from the simulator.
#[derive(Debug)]
pub enum MachineError {
    /// IR-level failure during functional execution.
    Ir(polymem_ir::IrError),
    /// Polyhedral failure while enumerating blocks.
    Poly(polymem_poly::PolyError),
    /// Data-management failure while staging scratchpad buffers.
    Smem(polymem_core::SmemError),
    /// A block requires more scratchpad than the machine has.
    ScratchpadOverflow {
        /// Bytes requested by one block.
        requested: u64,
        /// Bytes available per outer-level unit.
        available: u64,
    },
    /// Double buffering needs two sub-tile footprints resident at
    /// once and the sum does not fit the scratchpad. Distinct from
    /// [`ScratchpadOverflow`](MachineError::ScratchpadOverflow) so
    /// callers can fall back to synchronous staging instead of
    /// failing the whole mapping.
    DoubleBufferOverflow {
        /// Bytes needed for the two live sub-tile footprints.
        requested: u64,
        /// Bytes available per outer-level unit.
        available: u64,
    },
    /// One inner process's register frames (the level-2 plan's tiles
    /// at a concrete thread value) need more words than the machine's
    /// register file holds. The plan-time gate checks the
    /// representative block; this is the runtime check for blocks
    /// whose frames grow beyond it (e.g. triangular domains).
    RegisterOverflow {
        /// Words needed by the live frames of one inner process.
        requested: u64,
        /// Words available per inner process
        /// ([`MachineConfig::regs_per_inner`]).
        available: u64,
    },
    /// Enumerating rounds/blocks/instances exceeded the configured
    /// point budget ([`MachineConfig::enum_budget`]).
    EnumerationBudget {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A block worker thread panicked during parallel execution.
    WorkerPanicked {
        /// Index of the block (in round-local enumeration order)
        /// whose worker panicked.
        block: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Ir(e) => write!(f, "IR error: {e}"),
            MachineError::Poly(e) => write!(f, "polyhedral error: {e}"),
            MachineError::Smem(e) => write!(f, "data-management error: {e}"),
            MachineError::ScratchpadOverflow {
                requested,
                available,
            } => write!(
                f,
                "scratchpad overflow: block needs {requested} B, unit has {available} B"
            ),
            MachineError::DoubleBufferOverflow {
                requested,
                available,
            } => write!(
                f,
                "double-buffer overflow: two sub-tile footprints need {requested} B, \
                 unit has {available} B"
            ),
            MachineError::RegisterOverflow {
                requested,
                available,
            } => write!(
                f,
                "register overflow: inner process needs {requested} words, \
                 register file has {available}"
            ),
            MachineError::EnumerationBudget { budget } => {
                write!(f, "enumeration budget exhausted: more than {budget} points")
            }
            MachineError::WorkerPanicked { block } => {
                write!(f, "block worker panicked while executing block {block}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<polymem_ir::IrError> for MachineError {
    fn from(e: polymem_ir::IrError) -> Self {
        MachineError::Ir(e)
    }
}

impl From<polymem_poly::PolyError> for MachineError {
    fn from(e: polymem_poly::PolyError) -> Self {
        MachineError::Poly(e)
    }
}

impl From<polymem_core::SmemError> for MachineError {
    fn from(e: polymem_core::SmemError) -> Self {
        MachineError::Smem(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MachineError>;
