//! Properties of the declarative machine-description subsystem: every
//! preset survives the TOML file round-trip byte-for-byte, artifact
//! keys track every mapping-relevant description field (and only
//! those), and the §3 pipeline demonstrably answers differently per
//! machine — the GPU stages through its scratchpad, the PIM machine
//! computes in place with zero move-in, the spatial machine prices
//! NoC placement into its modeled cycles — all while staying
//! bit-exact against the reference interpreter.

use polymem_ir::{exec_program, ArrayStore};
use polymem_kernels::{matmul, me, tunespace};
use polymem_machine::{
    desc, execute_blocked, plan_artifact_key, BlockedKernel, MachineConfig, MachineDesc,
};
use proptest::prelude::*;

/// A staged workload (kernel, params, output array, init) used by the
/// divergence and key tests.
fn staged_workload(name: &str, size: i64) -> (BlockedKernel, Vec<i64>, &'static str) {
    match name {
        "matmul" => (matmul::blocked_kernel(4, 4, 8, true), vec![size], "C"),
        "me" => {
            let s = me::MeSize {
                ni: size,
                nj: size,
                ws: 4,
            };
            (me::blocked_kernel(4, 4, true), me::params(&s), "Sad")
        }
        other => panic!("no staged workload named {other}"),
    }
}

/// Run `kernel` on `cfg` from a freshly-seeded store; return the
/// stats and the output data, checked bit-exact against the
/// reference interpreter.
fn run_exact(name: &str, cfg: &MachineConfig) -> (polymem_machine::ExecStats, Vec<i64>) {
    let (kernel, params, out) = staged_workload(name, 8);
    let mut reference = ArrayStore::for_program(&kernel.program, &params).expect("store");
    tunespace::init_store(name, &mut reference, 7);
    let mut st = reference.clone();
    exec_program(&kernel.program, &params, &mut reference).expect("reference");
    let stats = execute_blocked(&kernel, &params, &mut st, cfg, true).expect("execute");
    assert_eq!(
        st.data(out).expect("output"),
        reference.data(out).expect("output"),
        "{name} on {:?} diverged from the reference interpreter",
        cfg.caps
    );
    (stats, st.data(out).expect("output").to_vec())
}

/// The plan-artifact key of the canonical matmul mapping under `d`.
fn key_of(d: &MachineDesc) -> String {
    let (kernel, params, _) = staged_workload("matmul", 8);
    plan_artifact_key(&kernel, &params, &d.config())
        .expect("key")
        .expect("staged kernel has a key")
        .to_string()
}

// ---------------------------------------------------------------------------
// Registry round-trips
// ---------------------------------------------------------------------------

#[test]
fn every_preset_round_trips_through_a_machine_file() {
    let dir = std::env::temp_dir().join("polymem_machines_props");
    std::fs::create_dir_all(&dir).expect("temp dir");
    for d in desc::all() {
        let path = dir.join(format!("{}.toml", d.name));
        std::fs::write(&path, d.to_toml()).expect("write");
        let back = MachineDesc::from_file(path.to_str().expect("utf8")).expect("load");
        assert_eq!(back, d, "{} did not survive the file round-trip", d.name);
        // The lowered runtime configs agree too.
        assert_eq!(format!("{:?}", back.config()), format!("{:?}", d.config()));
    }
}

#[test]
fn registry_rejects_unknown_names_and_resolves_aliases() {
    assert!(desc::lookup("not_a_machine").is_none());
    assert_eq!(desc::lookup("cpu").expect("alias").name, "host");
    assert_eq!(desc::lookup("geforce_8800_gtx").expect("alias").name, "gpu");
    for name in desc::NAMES {
        assert_eq!(desc::lookup(name).expect("preset").name, *name);
    }
}

proptest! {
    // The TOML codec is exact for arbitrary geometry and cost values:
    // Rust's shortest-repr float formatting parses back to the same
    // bits, so a description edited through a file never drifts.
    #[test]
    fn toml_codec_is_exact_for_arbitrary_values(
        rows in 1u64..32,
        cols in 1u64..32,
        hop in 0.0f64..1e6,
        spad in 64u64..(1 << 20),
        setup in 0.0f64..1e4,
    ) {
        let mut d = desc::spatial();
        let mesh = d.mesh.as_mut().expect("spatial has a mesh");
        mesh.rows = rows;
        mesh.cols = cols;
        mesh.hop_cycles = hop;
        d.n_outer = rows * cols;
        d.dma_setup_cycles = setup;
        for l in &mut d.levels {
            if l.name == "scratchpad" {
                l.capacity_bytes = spad;
            }
        }
        let back = MachineDesc::from_str(&d.to_toml()).expect("parse");
        prop_assert_eq!(back, d);
    }
}

// ---------------------------------------------------------------------------
// Artifact keys track mapping-relevant description fields
// ---------------------------------------------------------------------------

#[test]
fn plan_keys_differ_when_any_mapping_relevant_field_differs() {
    let base = desc::gpu();
    let base_key = key_of(&base);

    // Pure function of the description: stable across computations
    // and across an independent re-lowering of a cloned description.
    assert_eq!(base_key, key_of(&base));
    assert_eq!(base_key, key_of(&base.clone()));

    let mutations: Vec<(&str, Box<dyn Fn(&mut MachineDesc)>)> = vec![
        ("must_stage", Box::new(|d| d.caps.must_stage = true)),
        (
            "in_place_compute",
            Box::new(|d| d.caps.in_place_compute = true),
        ),
        ("hardware_cache", Box::new(|d| d.caps.hardware_cache = true)),
        ("placement_cost", Box::new(|d| d.caps.placement_cost = true)),
        ("word_bytes", Box::new(|d| d.word_bytes = 8)),
        ("vector_width", Box::new(|d| d.vector_width *= 2)),
        (
            "register file size",
            Box::new(|d| {
                for l in &mut d.levels {
                    if l.name == "register" {
                        l.capacity_bytes *= 2;
                    }
                }
            }),
        ),
        (
            "scratchpad capacity",
            Box::new(|d| {
                for l in &mut d.levels {
                    if l.name == "scratchpad" {
                        l.capacity_bytes /= 2;
                    }
                }
            }),
        ),
    ];
    for (label, mutate) in mutations {
        let mut d = base.clone();
        mutate(&mut d);
        assert_ne!(
            key_of(&d),
            base_key,
            "changing {label} must change the plan-artifact key"
        );
    }

    // Non-mapping fields (pure cycle pricing) leave the key alone:
    // the same plan is valid, only its predicted cost shifts.
    let mut d = base.clone();
    d.clock_ghz *= 2.0;
    d.sync_cycles += 1.0;
    assert_eq!(
        key_of(&d),
        base_key,
        "cycle pricing is not mapping-relevant"
    );
}

#[test]
fn pim_and_spatial_preset_keys_are_stable_constants() {
    // Guards cross-process stability: these keys are pure functions
    // of (kernel, params, description) with no environmental input,
    // so two different machines computing them must agree. A change
    // here means every stored artifact silently invalidates — bump
    // deliberately, never accidentally.
    let pim = key_of(&desc::pim());
    let spatial = key_of(&desc::spatial());
    assert_ne!(pim, spatial);
    assert_eq!(pim, key_of(&desc::pim()));
    assert_eq!(spatial, key_of(&desc::spatial()));
}

// ---------------------------------------------------------------------------
// Per-machine mapping divergence (directed)
// ---------------------------------------------------------------------------

#[test]
fn gpu_stages_while_pim_computes_in_place() {
    for name in ["matmul", "me"] {
        let (gpu, gout) = run_exact(name, &desc::gpu().config());
        let (pim, pout) = run_exact(name, &desc::pim().config());
        assert!(
            gpu.moved_in > 0 && gpu.max_smem_words > 0,
            "{name}: the GPU mapping must stage through the scratchpad"
        );
        assert_eq!(pim.moved_in, 0, "{name}: PIM must not move data in");
        assert_eq!(pim.moved_out, 0, "{name}: PIM must not move data out");
        assert_eq!(pim.max_smem_words, 0, "{name}: PIM allocates no buffers");
        assert!(
            pim.moved_in < gpu.moved_in,
            "{name}: PIM must stage strictly fewer words than the GPU"
        );
        assert_eq!(gout, pout, "{name}: machines must agree bit-exactly");
    }
}

#[test]
fn cell_must_stage_even_where_the_benefit_gate_would_decline() {
    // must_stage forces Algorithm 1's hand: staged words on cell are
    // always >= the GPU's benefit-gated staging for the same kernel.
    for name in ["matmul", "me"] {
        let (gpu, gout) = run_exact(name, &desc::gpu().config());
        let (cell, cout) = run_exact(name, &desc::cell().config());
        assert!(
            cell.moved_in >= gpu.moved_in,
            "{name}: mandatory staging moved fewer words than the GPU"
        );
        assert_eq!(gout, cout, "{name}: machines must agree bit-exactly");
    }
}

#[test]
fn spatial_placement_is_priced_and_only_there() {
    let spatial = desc::spatial().config();
    // Same machine with the placement capability masked off: the NoC
    // route term must be the only difference, and it must cost.
    let mut flat = spatial.clone();
    flat.caps.placement_cost = false;

    let (routed, rout) = run_exact("matmul", &spatial);
    let (unrouted, uout) = run_exact("matmul", &flat);
    assert_eq!(rout, uout, "routing is pure pricing, never semantics");
    assert_eq!(routed.moved_in, unrouted.moved_in);
    assert!(
        routed.modeled_cycles > unrouted.modeled_cycles,
        "placement-priced run must model strictly more cycles \
         ({} vs {})",
        routed.modeled_cycles,
        unrouted.modeled_cycles
    );

    // The executor's per-block route follows column-major placement.
    assert!(spatial.route_cycles(0) > 0);
    assert!(spatial.route_cycles(8) > spatial.route_cycles(0));
    assert_eq!(flat.route_cycles(8), 0);
}
