//! Randomized and directed legality checks for the inter-block
//! residency pass: with delta transfers enabled the machine must
//! produce bit-identical outputs to both the residency-off schedule
//! and the reference interpreter, across all five built-in kernels,
//! both machine models, both execution engines and both buffering
//! modes. Directed tests pin down the stale-flush interaction with
//! double-buffered prefetch, the counter semantics, and the
//! single-column sub-tile writeback path (a dropped buffer dimension
//! whose offset rides on the seq dim must not alias across sub-tiles).

use polymem_ir::ArrayStore;
use polymem_kernels::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_machine::{execute_blocked, BlockedKernel, ExecStats, MachineConfig};
use proptest::prelude::*;

struct CaseSpec {
    kernel: BlockedKernel,
    params: Vec<i64>,
    base: ArrayStore,
    reference: ArrayStore,
    check: &'static str,
    /// Run with the paper's Fig. 1 merged buffer layout
    /// (`partition = false`) so the sliding window shares one group.
    merged_layout: bool,
}

fn case(sel: u8) -> CaseSpec {
    match sel {
        0 => {
            let size = me::MeSize {
                ni: 8,
                nj: 8,
                ws: 4,
            };
            let p = me::program();
            let params = me::params(&size);
            let mut base = ArrayStore::for_program(&p, &params).unwrap();
            me::init_store(&mut base, 7);
            let mut reference = base.clone();
            me::reference(&mut reference, &size);
            CaseSpec {
                kernel: me::blocked_seq_kernel(8, 1, true),
                params,
                base,
                reference,
                check: "Sad",
                merged_layout: false,
            }
        }
        1 => {
            let size = jacobi::JacobiSize { n: 16, t: 2 };
            let p = jacobi::program();
            let params = jacobi::params(&size);
            let mut base = ArrayStore::for_program(&p, &params).unwrap();
            jacobi::init_store(&mut base, 8);
            let mut reference = base.clone();
            jacobi::reference(&mut reference, &size);
            CaseSpec {
                kernel: jacobi::stepwise_kernel(8, true),
                params,
                base,
                reference,
                check: "A",
                merged_layout: false,
            }
        }
        2 => {
            let (t, n) = (2, 16);
            let p = jacobi2d::program();
            let params = jacobi2d::params(t, n);
            let mut base = ArrayStore::for_program(&p, &params).unwrap();
            jacobi2d::init_store(&mut base, 9);
            let mut reference = base.clone();
            jacobi2d::reference(&mut reference, t, n);
            CaseSpec {
                kernel: jacobi2d::stepwise_seq_kernel(4, 1, true),
                params,
                base,
                reference,
                check: "A",
                merged_layout: true,
            }
        }
        3 => {
            let n = 8;
            let p = matmul::program();
            let params = vec![n];
            let mut base = ArrayStore::for_program(&p, &params).unwrap();
            matmul::init_store(&mut base, 10);
            let mut reference = base.clone();
            matmul::reference(&mut reference, n);
            CaseSpec {
                kernel: matmul::blocked_kernel_hoisted(4, 4, 4, true),
                params,
                base,
                reference,
                check: "C",
                merged_layout: false,
            }
        }
        _ => {
            let size = conv2d::ConvSize { n: 7, k: 3 };
            let p = conv2d::program();
            let params = conv2d::params(&size);
            let mut base = ArrayStore::for_program(&p, &params).unwrap();
            conv2d::init_store(&mut base, 11);
            let mut reference = base.clone();
            conv2d::reference(&mut reference, &size);
            CaseSpec {
                kernel: conv2d::blocked_seq_kernel(3, 3, true),
                params,
                base,
                reference,
                check: "Out",
                merged_layout: false,
            }
        }
    }
}

fn run(spec: &CaseSpec, cfg: &MachineConfig, residency: bool) -> (ArrayStore, ExecStats) {
    let mut config = cfg.clone();
    config.residency = residency;
    if spec.merged_layout {
        config.partition = false;
    }
    let mut store = spec.base.clone();
    let stats = execute_blocked(&spec.kernel, &spec.params, &mut store, &config, false)
        .expect("execution succeeds");
    (store, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Residency on, residency off and the reference interpreter all
    /// agree, and the pass leaves no counter trace when disabled —
    /// across kernels, machines, engines and buffering modes.
    #[test]
    fn residency_is_bit_exact_and_traceless(
        sel in 0u8..=4,
        machine in 0u8..=1,
        compiled in 0u8..=1,
        double_buffer in 0u8..=1,
    ) {
        // The compiled engine's interpreter oracle cross-checks every
        // block body while these tests run.
        std::env::set_var("POLYMEM_EXEC_CHECK", "1");
        let spec = case(sel);
        let mut cfg = if machine == 0 {
            MachineConfig::geforce_8800_gtx()
        } else {
            MachineConfig::cell_like()
        };
        cfg.compiled_exec = compiled == 1;
        cfg.double_buffer = double_buffer == 1;

        let (off_store, off_stats) = run(&spec, &cfg, false);
        let (on_store, on_stats) = run(&spec, &cfg, true);

        prop_assert_eq!(
            off_store.data(spec.check).unwrap(),
            spec.reference.data(spec.check).unwrap(),
            "residency-off output diverged from the reference"
        );
        prop_assert_eq!(
            on_store.data(spec.check).unwrap(),
            spec.reference.data(spec.check).unwrap(),
            "residency-on output diverged from the reference"
        );
        prop_assert_eq!(off_stats.residency_groups, 0);
        prop_assert_eq!(off_stats.retained_elems, 0);
        prop_assert_eq!(off_stats.delta_elems, 0);
        // Residency never costs modeled time.
        prop_assert!(
            on_stats.modeled_cycles <= off_stats.modeled_cycles,
            "modeled cycles regressed: {} -> {}",
            off_stats.modeled_cycles,
            on_stats.modeled_cycles
        );
    }
}

/// A flush of a dirty retained buffer must not be skipped when the
/// double-buffered prefetcher has already issued the next sub-tile's
/// delta: the ME accumulator is written every sub-tile while its
/// search window stays resident, so a stale flush shows up directly
/// as wrong `Sad` sums.
#[test]
fn stale_flush_is_legal_under_double_buffered_prefetch() {
    std::env::set_var("POLYMEM_EXEC_CHECK", "1");
    let spec = case(0);
    for machine in [
        MachineConfig::geforce_8800_gtx(),
        MachineConfig::cell_like(),
    ] {
        let mut cfg = machine;
        cfg.double_buffer = true;
        let (store, stats) = run(&spec, &cfg, true);
        assert_eq!(
            store.data("Sad").unwrap(),
            spec.reference.data("Sad").unwrap(),
            "stale flush corrupted the accumulator"
        );
        assert!(stats.residency_groups > 0, "residency never activated");
        assert_eq!(stats.interpreted_blocks, 0, "compiled engine fell back");
    }
}

/// Counter semantics on the merged-layout Jacobi-2D stencil: groups
/// and retained/delta element counts activate, and every retained
/// element is global traffic the off schedule actually paid for.
#[test]
fn residency_counters_track_saved_traffic() {
    let spec = case(2);
    let cfg = MachineConfig::geforce_8800_gtx();
    let (_, off) = run(&spec, &cfg, false);
    let (_, on) = run(&spec, &cfg, true);
    assert!(on.residency_groups > 0);
    assert!(on.retained_elems > 0);
    assert!(on.delta_elems > 0);
    assert!(
        on.moved_in + on.retained_elems <= off.moved_in,
        "retention did not reduce move-in traffic: {} + {} vs {}",
        on.moved_in,
        on.retained_elems,
        off.moved_in
    );
}

/// Overlapping in-place updates across consecutive sub-tiles: tile t
/// writes A columns [4t, 4t+5] and tile t+1 rewrites [4t+4, 4t+5], so
/// a legal flush delta skips those two columns at every interior
/// boundary. The `+=` updates commute, keeping the blocked order
/// bit-exact vs the reference — but a *wrongly* skipped element loses
/// an update and shows up directly in A.
#[test]
fn flush_delta_skips_successor_overwrites() {
    use polymem_core::tiling::transform::{tile_program, TileSpec};
    use polymem_ir::expr::v;
    use polymem_ir::{exec_program, Expr, LinExpr, ProgramBuilder};

    std::env::set_var("POLYMEM_EXEC_CHECK", "1");
    let mut b = ProgramBuilder::new("p", ["M", "N"]);
    b.array("A", &[v("M"), v("N") + 2]);
    b.array("B", &[v("M"), v("N")]);
    b.array("C", &[v("M"), v("N")]);
    b.stmt("S1")
        .loops(&[
            ("j", LinExpr::c(0), v("M") - 1),
            ("i", LinExpr::c(0), v("N") - 1),
        ])
        .write("A", &[v("j"), v("i")])
        .read("A", &[v("j"), v("i")])
        .read("B", &[v("j"), v("i")])
        .body(Expr::add(Expr::Read(0), Expr::Read(1)))
        .done();
    b.stmt("S2")
        .loops(&[
            ("j", LinExpr::c(0), v("M") - 1),
            ("i", LinExpr::c(0), v("N") - 1),
        ])
        .write("A", &[v("j"), v("i") + 2])
        .read("A", &[v("j"), v("i") + 2])
        .read("C", &[v("j"), v("i")])
        .body(Expr::add(Expr::Read(0), Expr::Read(1)))
        .done();
    let p = b.build().unwrap();
    let t = tile_program(&p, &TileSpec::new(&[("j", 4), ("i", 4)], "T")).unwrap();
    let kernel = BlockedKernel {
        program: t,
        round_dims: vec![],
        block_dims: vec!["jT".into()],
        seq_dims: vec!["iT".into()],
        thread_dims: vec![],
        use_scratchpad: true,
    };
    let params = vec![8, 12];
    let mut base = ArrayStore::for_program(&p, &params).unwrap();
    base.fill_with("A", |ix| ix[0] * 100 + ix[1]).unwrap();
    base.fill_with("B", |ix| ix[0] * 7 + ix[1] * 3 + 1).unwrap();
    base.fill_with("C", |ix| ix[0] * 5 + ix[1] * 11 + 2)
        .unwrap();
    let mut reference = base.clone();
    exec_program(&p, &params, &mut reference).unwrap();
    for machine in [
        MachineConfig::geforce_8800_gtx(),
        MachineConfig::cell_like(),
    ] {
        for double_buffer in [false, true] {
            let mut on = machine.clone();
            on.double_buffer = double_buffer;
            on.residency = true;
            let mut off = on.clone();
            off.residency = false;
            let mut st_on = base.clone();
            let stats_on = execute_blocked(&kernel, &params, &mut st_on, &on, false).unwrap();
            let mut st_off = base.clone();
            let stats_off = execute_blocked(&kernel, &params, &mut st_off, &off, false).unwrap();
            assert_eq!(
                st_off.data("A").unwrap(),
                reference.data("A").unwrap(),
                "residency-off output diverged (dbuf={double_buffer})"
            );
            assert_eq!(
                st_on.data("A").unwrap(),
                reference.data("A").unwrap(),
                "delta flush lost an update (dbuf={double_buffer})"
            );
            assert_eq!(stats_off.flushed_delta_elems, 0);
            assert!(
                stats_on.flushed_delta_elems > 0,
                "delta flush never engaged (dbuf={double_buffer})"
            );
            assert!(
                stats_on.moved_out < stats_off.moved_out,
                "skipped flushes did not reduce move-out traffic: {} vs {}",
                stats_on.moved_out,
                stats_off.moved_out
            );
        }
    }
}

/// Single-column sub-tiles drop the seq-coupled dimension from the
/// staged buffer (its extent is 1), leaving the kept-dim shape
/// identical across sub-tiles. The §4.2 hoist must not treat such a
/// buffer as persistent: its footprint still slides with the seq dim
/// through the dropped dimension's offset, and parking it aliases
/// every column onto one writeback.
#[test]
fn seq_coupled_dropped_dim_is_not_hoisted() {
    let spec = case(0);
    for machine in [
        MachineConfig::geforce_8800_gtx(),
        MachineConfig::cell_like(),
    ] {
        let (store, stats) = run(&spec, &machine, false);
        assert_eq!(
            store.data("Sad").unwrap(),
            spec.reference.data("Sad").unwrap(),
            "sliding accumulator column aliased across sub-tiles"
        );
        // Every Sad element is written back exactly once: 8x8 sums.
        assert_eq!(stats.moved_out, 64, "writebacks collapsed or duplicated");
    }
}
