//! Properties of the content-addressed plan-artifact store, driven
//! through the real kernels: the binary codec must round-trip every
//! plan the executor produces (5 kernels × GPU/Cell × hierarchy
//! on/off), loads must survive re-proof against the live program, and
//! every corruption class — wrong version, wrong schema, truncation,
//! payload bit-flips, checksum damage, key damage — must fall back to
//! `None`, never panic, never partial data.
//!
//! The restart test is the PR's headline property: a process with a
//! cold plan cache but a warm store skips the §3 passes entirely
//! (`PlanSource::Artifact`, zero compiler nanoseconds on the
//! profiler) and still executes bit-exactly.

use polymem_core::smem::artifact::{
    decode_artifact, encode_artifact, ArtifactStore, FORMAT_VERSION,
};
use polymem_ir::{exec_program, ArrayStore};
use polymem_kernels::{conv2d, jacobi, jacobi2d, matmul, me};
use polymem_machine::{
    execute_blocked_seeded, plan_artifact_key, warm_plan, BlockedKernel, MachineConfig,
    PassProfiler, PlanSource,
};
use proptest::prelude::*;

/// The kernels whose canonical mapping stages through the scratchpad
/// and therefore produces a plan artifact. `jacobi`'s overlapped
/// mapping runs scratchpad-off (asserted separately below).
const PLANNED: [&str; 4] = ["me", "jacobi2d", "matmul", "conv2d"];

/// The canonical blocked mapping + launch params of each built-in
/// kernel at a small size (mirrors the CLI's `run` table).
fn workload(name: &str, size: i64) -> (BlockedKernel, Vec<i64>, &'static str) {
    match name {
        "me" => {
            let s = me::MeSize {
                ni: size,
                nj: size,
                ws: 4,
            };
            (me::blocked_kernel(4, 4, true), me::params(&s), "Sad")
        }
        "jacobi" => {
            let s = jacobi::JacobiSize { n: size, t: 8 };
            (
                jacobi::overlapped_kernel(2, 8, false),
                jacobi::params(&s),
                "A",
            )
        }
        "jacobi2d" => (
            jacobi2d::stepwise_kernel(4, 4, true),
            jacobi2d::params(3, size),
            "A",
        ),
        "matmul" => (matmul::blocked_kernel(4, 4, 8, true), vec![size], "C"),
        "conv2d" => {
            let s = conv2d::ConvSize { n: size, k: 3 };
            (
                conv2d::blocked_kernel(4, 4, true),
                conv2d::params(&s),
                "Out",
            )
        }
        _ => unreachable!("unknown kernel {name}"),
    }
}

/// The untiled source program each mapping was derived from — the
/// reference semantics (the tiled loop nests are only equivalent
/// under the executor's round/block schedule).
fn base_program(name: &str) -> polymem_ir::Program {
    match name {
        "me" => me::program(),
        "jacobi" => jacobi::program(),
        "jacobi2d" => jacobi2d::program(),
        "matmul" => matmul::program(),
        "conv2d" => conv2d::program(),
        _ => unreachable!(),
    }
}

fn init(name: &str, st: &mut ArrayStore) {
    match name {
        "me" => me::init_store(st, 42),
        "jacobi" => jacobi::init_store(st, 42),
        "jacobi2d" => jacobi2d::init_store(st, 42),
        "matmul" => matmul::init_store(st, 42),
        "conv2d" => conv2d::init_store(st, 42),
        _ => unreachable!(),
    }
}

fn config(cell: bool, hierarchy: bool, dir: &std::path::Path) -> MachineConfig {
    let mut cfg = if cell {
        MachineConfig::cell_like()
    } else {
        MachineConfig::geforce_8800_gtx()
    };
    cfg.hierarchy = hierarchy;
    cfg.artifact_dir = Some(dir.to_string_lossy().into_owned());
    cfg
}

fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("polymem_artifact_props_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Warm one workload's plan into a fresh store and return the
/// on-disk bytes plus everything needed to reload them.
fn warmed_bytes(
    name: &str,
    cell: bool,
    hierarchy: bool,
    tag: &str,
) -> (
    Vec<u8>,
    BlockedKernel,
    polymem_core::smem::artifact::ArtifactKey,
    std::path::PathBuf,
) {
    let dir = temp_store(tag);
    let cfg = config(cell, hierarchy, &dir);
    let (kernel, params, _) = workload(name, 8);
    let warmed = warm_plan(&kernel, &params, &cfg, None, None)
        .expect("analysis succeeds")
        .expect("plan cache enabled");
    assert_eq!(warmed.1, PlanSource::Fresh, "{name}: first warm compiles");
    let key = plan_artifact_key(&kernel, &params, &cfg)
        .expect("key derives")
        .expect("scratchpad launch has a key");
    let store = ArtifactStore::open(&dir).unwrap();
    let path = store.path_for(&key);
    let bytes = std::fs::read(&path).expect("warm_plan persisted the artifact");
    (bytes, kernel, key, dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// serialize → deserialize ≡ identity, across every kernel ×
    /// machine × hierarchy combination: the decoded artifact re-proves
    /// against the live program and re-encodes to the identical bytes.
    #[test]
    fn artifact_round_trips_bit_exactly(
        k in 0usize..4,
        cell in 0u8..=1,
        hierarchy in 0u8..=1,
    ) {
        let name = PLANNED[k];
        let tag = format!("rt_{name}_{cell}_{hierarchy}");
        let (bytes, kernel, key, _dir) =
            warmed_bytes(name, cell == 1, hierarchy == 1, &tag);
        let decoded = decode_artifact(&bytes).expect("stored artifact decodes");
        prop_assert_eq!(decoded.key, key);
        prop_assert!(decoded.validate(&kernel.program), "{} re-proof", name);
        let reencoded = encode_artifact(&decoded);
        prop_assert_eq!(&reencoded, &bytes, "{}: encode∘decode is the identity", name);
        // Idempotent through a second cycle, too.
        let twice = encode_artifact(&decode_artifact(&reencoded).unwrap());
        prop_assert_eq!(&twice, &bytes);
    }
}

#[test]
fn version_mismatch_is_rejected() {
    let (mut bytes, kernel, key, dir) = warmed_bytes("me", false, true, "ver");
    // Envelope layout: MAGIC[0..4], FORMAT_VERSION u32 le [4..8].
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        FORMAT_VERSION
    );
    bytes[4] = bytes[4].wrapping_add(1);
    assert!(
        decode_artifact(&bytes).is_none(),
        "future format version must not decode"
    );
    // And through the store: overwrite the file, load falls back.
    let store = ArtifactStore::open(&dir).unwrap();
    std::fs::write(store.path_for(&key), &bytes).unwrap();
    assert!(store.load(&key, &kernel.program).is_none());
}

#[test]
fn schema_mismatch_is_rejected() {
    let (mut bytes, ..) = warmed_bytes("me", false, true, "schema");
    // schema_hash u64 le at [8..16].
    bytes[8] ^= 0xff;
    assert!(decode_artifact(&bytes).is_none());
}

#[test]
fn truncated_artifacts_are_rejected() {
    let (bytes, kernel, key, dir) = warmed_bytes("jacobi2d", false, true, "trunc");
    for cut in [bytes.len() - 1, bytes.len() / 2, 16, 4, 0] {
        assert!(
            decode_artifact(&bytes[..cut]).is_none(),
            "truncation to {cut} bytes must not decode"
        );
    }
    // Trailing garbage is corruption too, not ignorable padding.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(decode_artifact(&padded).is_none());
    let store = ArtifactStore::open(&dir).unwrap();
    std::fs::write(store.path_for(&key), &bytes[..bytes.len() / 2]).unwrap();
    assert!(store.load(&key, &kernel.program).is_none());
}

#[test]
fn payload_and_checksum_corruption_are_rejected() {
    let (bytes, ..) = warmed_bytes("matmul", false, false, "corrupt");
    // One flipped payload byte (anywhere after the 40-byte header)
    // breaks the FNV checksum; a flipped checksum byte mismatches
    // the intact payload.
    let mid = 40 + (bytes.len() - 48) / 2;
    for pos in [40, mid, bytes.len() - 1] {
        let mut b = bytes.clone();
        b[pos] ^= 0x01;
        assert!(
            decode_artifact(&b).is_none(),
            "flip at byte {pos} must not decode"
        );
    }
}

#[test]
fn key_corruption_is_rejected_by_the_store() {
    let (mut bytes, kernel, key, dir) = warmed_bytes("conv2d", false, true, "key");
    // The stored key lives at [16..32], outside the payload checksum:
    // the codec alone can't catch damage there, so the store's
    // key-equality check is the line of defence.
    bytes[16] ^= 0x01;
    let store = ArtifactStore::open(&dir).unwrap();
    std::fs::write(store.path_for(&key), &bytes).unwrap();
    assert!(
        store.load(&key, &kernel.program).is_none(),
        "artifact whose embedded key mismatches its address must not load"
    );
}

#[test]
fn non_scratchpad_launches_have_no_artifact() {
    // jacobi's canonical overlapped mapping runs scratchpad-off:
    // there is nothing to address, and both entry points say so
    // rather than manufacturing a key for a plan that doesn't exist.
    let dir = temp_store("jacobi_none");
    let cfg = config(false, true, &dir);
    let (kernel, params, _) = workload("jacobi", 8);
    assert!(!kernel.use_scratchpad);
    assert!(plan_artifact_key(&kernel, &params, &cfg)
        .expect("key derivation succeeds")
        .is_none());
    assert!(warm_plan(&kernel, &params, &cfg, None, None)
        .expect("warm succeeds")
        .is_none());
    let entries = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(entries, 0, "no artifact may be written");
}

#[test]
fn restart_with_warm_store_skips_analysis_and_stays_bit_exact() {
    for name in PLANNED {
        let dir = temp_store(&format!("restart_{name}"));
        let cfg = config(false, true, &dir);
        let (kernel, params, check) = workload(name, 8);

        // Reference result from the plain interpreter on the base
        // (untiled) program — arrays are name-addressed, so the same
        // store drives both.
        let base = base_program(name);
        let mut st = ArrayStore::for_program(&base, &params).unwrap();
        init(name, &mut st);
        let mut reference = st.clone();
        exec_program(&base, &params, &mut reference).unwrap();

        // "Process 1": cold store, compiles fresh and persists.
        let p1 = PassProfiler::new();
        let mut st1 = st.clone();
        let (_, warmed1) =
            execute_blocked_seeded(&kernel, &params, &mut st1, &cfg, true, Some(&p1), None)
                .unwrap();
        let (_, src1) = warmed1.expect("plan produced");
        assert_eq!(src1, PlanSource::Fresh, "{name}: first run compiles");
        assert!(
            p1.report().compiler_total() > std::time::Duration::ZERO,
            "{name}: fresh compile spends §3 time"
        );

        // "Process 2": a fresh profiler and a fresh internal plan
        // cache (each execute call builds its own), same store dir —
        // exactly what a daemon restart sees.
        let p2 = PassProfiler::new();
        let mut st2 = st.clone();
        let (_, warmed2) =
            execute_blocked_seeded(&kernel, &params, &mut st2, &cfg, true, Some(&p2), None)
                .unwrap();
        let (_, src2) = warmed2.expect("plan produced");
        assert_eq!(
            src2,
            PlanSource::Artifact,
            "{name}: restart must hit the store"
        );
        assert_eq!(
            p2.report().compiler_total(),
            std::time::Duration::ZERO,
            "{name}: artifact hit must skip the §3 passes"
        );

        // Bit-exact across fresh, artifact-loaded, and reference.
        assert_eq!(
            st1.data(check).unwrap(),
            st2.data(check).unwrap(),
            "{name}: artifact run diverged from fresh run"
        );
        assert_eq!(
            st2.data(check).unwrap(),
            reference.data(check).unwrap(),
            "{name}: artifact run diverged from reference"
        );
    }
}
