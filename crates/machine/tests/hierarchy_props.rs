//! Randomized functional equivalence for the register-tile level: with
//! `MachineConfig::hierarchy` on, execution must produce bit-identical
//! arrays to hierarchy-off runs (and to the reference interpreter)
//! across random affine accesses, random statement bodies, random
//! block shapes, both machine presets and every thread-dim choice.
//! Staging frames may only reshuffle scratchpad traffic — functional
//! global-memory traffic and flop counts must not change.
//!
//! The second proptest pins the unified engine: on the same hierarchy
//! plans, compiled execution (at every vector width) must agree with
//! the interpreter counter for counter and must actually *run*
//! compiled — zero silent fallbacks. A directed test checks the typed
//! `RegisterOverflow` surfaces identically from both engines.

use polymem_core::tiling::transform::{tile_program, TileSpec};
use polymem_ir::expr::v;
use polymem_ir::{exec_program, ArrayStore, Expr, LinExpr, Program, ProgramBuilder};
use polymem_machine::{execute_blocked, BlockedKernel, MachineConfig, MachineError};
use proptest::prelude::*;

/// Same access-shape family as `compiled_props`: a 2-D program whose
/// randomized reads stay inside A's padded extents, with an optional
/// second statement that rereads the output array.
fn random_program(shape: u8, body_sel: u8, c: (i64, i64, i64, i64)) -> Program {
    let (c0, c1, swap, c3) = c;
    let mut b = ProgramBuilder::new("rnd", ["N"]);
    b.array("A", &[v("N") + 4, v("N") + 4]);
    b.array("C", &[v("N"), v("N")]);
    let r1 = if swap == 1 {
        [v("j") + c3, v("i")]
    } else {
        [v("i") + c3, v("j") + c1]
    };
    let body = match body_sel {
        0 => Expr::add(Expr::Read(0), Expr::Read(1)),
        1 => Expr::mul(Expr::Read(0), Expr::Read(1)),
        2 => Expr::add(Expr::mul(Expr::Read(0), Expr::Const(3)), Expr::Iter(0)),
        3 => Expr::sub(Expr::Read(0), Expr::add(Expr::Read(1), Expr::Iter(1))),
        4 => Expr::add(Expr::div(Expr::Read(0), Expr::Const(3)), Expr::Read(1)),
        _ => Expr::sub(Expr::mul(Expr::Read(1), Expr::Param(0)), Expr::Read(0)),
    };
    b.stmt("S1")
        .loops(&[
            ("i", LinExpr::c(0), v("N") - 1),
            ("j", LinExpr::c(0), v("N") - 1),
        ])
        .write("C", &[v("i"), v("j")])
        .read("A", &[v("i") + c0, v("j") + c1])
        .read("A", &[r1[0].clone(), r1[1].clone()])
        .body(body)
        .done();
    if shape >= 1 {
        b.stmt("S2")
            .loops(&[
                ("i", LinExpr::c(0), v("N") - 1),
                ("j", LinExpr::c(0), v("N") - 1),
            ])
            .write("C", &[v("i"), v("j")])
            .read("C", &[v("i"), v("j")])
            .read("A", &[v("j"), v("i")])
            .body(Expr::add(
                Expr::mul(Expr::Read(0), Expr::Const(2)),
                Expr::Read(1),
            ))
            .done();
    }
    b.build().unwrap()
}

fn kernel_for(p: &Program, ti: u32, tj: u32, mode: u8, threads: u8) -> BlockedKernel {
    let t = tile_program(
        p,
        &TileSpec::new(&[("i", ti as i64), ("j", tj as i64)], "T"),
    )
    .unwrap();
    let thread_dims = match threads {
        0 => vec!["i".into()],
        1 => vec!["j".into()],
        _ => vec!["i".into(), "j".into()],
    };
    match mode {
        0 => BlockedKernel {
            program: t,
            round_dims: vec![],
            block_dims: vec!["iT".into(), "jT".into()],
            seq_dims: vec![],
            thread_dims,
            use_scratchpad: true,
        },
        _ => BlockedKernel {
            program: t,
            round_dims: vec![],
            block_dims: vec!["iT".into()],
            seq_dims: vec!["jT".into()],
            thread_dims,
            use_scratchpad: true,
        },
    }
}

fn fresh_store(p: &Program, n: i64) -> ArrayStore {
    let mut st = ArrayStore::for_program(p, &[n]).unwrap();
    st.fill_with("A", |ix| ix[0] * 101 + ix[1] * 7 - 50)
        .unwrap();
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Register-frame staging is purely an optimization: final arrays
    /// match the reference interpreter bit for bit, and functional
    /// global-memory traffic and flop counts are unchanged.
    #[test]
    fn hierarchy_on_matches_hierarchy_off(
        n in 6i64..=11,
        ti in 2u32..=4,
        tj in 2u32..=4,
        mode in 0u8..=1,
        threads in 0u8..=2,
        shape in 0u8..=2,
        body_sel in 0u8..=5,
        machine in 0u8..=1,
        c in (0i64..=2, 0i64..=2, 0i64..=1, 0i64..=2),
    ) {
        let p = random_program(shape, body_sel, c);
        let k = kernel_for(&p, ti, tj, mode, threads);
        let mut cfg = if machine == 1 {
            MachineConfig::cell_like()
        } else {
            MachineConfig::geforce_8800_gtx()
        };
        // Merged access groups can outgrow the representative thread
        // value here (offset reads drift with i/j); a roomy register
        // file keeps every case on the staging path. The runtime
        // overflow check has its own directed test.
        cfg.regs_per_inner = 4096;

        let mut reference = fresh_store(&p, n);
        exec_program(&p, &[n], &mut reference).unwrap();

        let mut off = fresh_store(&p, n);
        cfg.hierarchy = false;
        let s_off = execute_blocked(&k, &[n], &mut off, &cfg, false).unwrap();

        let mut on = fresh_store(&p, n);
        cfg.hierarchy = true;
        let s_on = execute_blocked(&k, &[n], &mut on, &cfg, false).unwrap();

        prop_assert_eq!(on.data("C").unwrap(), reference.data("C").unwrap());
        prop_assert_eq!(off.data("C").unwrap(), reference.data("C").unwrap());
        // Frames reshuffle scratchpad traffic only: what the program
        // exchanges with global memory (and executes) is invariant.
        prop_assert_eq!(s_on.global_reads, s_off.global_reads);
        prop_assert_eq!(s_on.global_writes, s_off.global_writes);
        prop_assert_eq!(s_on.instances, s_off.instances);
        if s_on.hier_groups == 0 {
            // No group survived the level-2 gates: execution must be
            // indistinguishable from hierarchy-off, counter for counter.
            prop_assert_eq!(s_on, s_off);
        } else {
            // Frames were staged, so data moved through them.
            prop_assert_eq!(s_on.reg_bytes_moved > 0, true);
        }
    }

    /// The compiled engine owns hierarchy plans: same arrays, same
    /// counters (including `smem_loads_saved` / `reg_bytes_moved` /
    /// `hier_groups`) as the interpreter, at every vector width, with
    /// zero interpreter fallbacks — the silent-drop bug stays fixed.
    #[test]
    fn compiled_matches_interpreter_on_hierarchy_plans(
        n in 6i64..=11,
        ti in 2u32..=4,
        tj in 2u32..=4,
        mode in 0u8..=1,
        threads in 0u8..=2,
        shape in 0u8..=2,
        body_sel in 0u8..=5,
        machine in 0u8..=1,
        vw in 0u8..=3,
        c in (0i64..=2, 0i64..=2, 0i64..=1, 0i64..=2),
    ) {
        let p = random_program(shape, body_sel, c);
        let k = kernel_for(&p, ti, tj, mode, threads);
        let mut cfg = if machine == 1 {
            MachineConfig::cell_like()
        } else {
            MachineConfig::geforce_8800_gtx()
        };
        cfg.hierarchy = true;
        cfg.regs_per_inner = 4096;
        cfg.vector_width = 1 << vw; // ablate 1, 2, 4, 8

        let mut reference = fresh_store(&p, n);
        exec_program(&p, &[n], &mut reference).unwrap();

        let mut interp = fresh_store(&p, n);
        cfg.compiled_exec = false;
        let s_interp = execute_blocked(&k, &[n], &mut interp, &cfg, false).unwrap();

        let mut compiled = fresh_store(&p, n);
        cfg.compiled_exec = true;
        let s_compiled = execute_blocked(&k, &[n], &mut compiled, &cfg, false).unwrap();

        prop_assert_eq!(compiled.data("C").unwrap(), reference.data("C").unwrap());
        prop_assert_eq!(interp.data("C").unwrap(), reference.data("C").unwrap());
        // Counter-for-counter equality (engine bookkeeping fields are
        // excluded from `ExecStats` equality by design).
        prop_assert_eq!(&s_compiled, &s_interp);
        // The engines really were what they claim: no silent drops.
        prop_assert_eq!(s_compiled.interpreted_blocks, 0);
        prop_assert_eq!(s_compiled.fallback.total(), 0);
        prop_assert_eq!(s_compiled.compiled_blocks > 0, true);
        prop_assert_eq!(s_interp.compiled_blocks, 0);
    }
}

#[test]
fn register_overflow_is_typed_in_both_engines() {
    // Triangular domain: the T frame holds row i's first i+1 elements,
    // so a merged group's footprint outgrows the representative
    // (i = 0) thread. The plan-time gate passes; both engines must
    // trip the identical typed runtime check at the same thread value.
    let mut b = ProgramBuilder::new("tri", ["N"]);
    b.array("T", &[v("N"), v("N")]);
    b.array("Out", &[v("N"), v("N")]);
    b.stmt("S")
        .loops(&[
            ("i", LinExpr::c(0), v("N") - 1),
            ("j", LinExpr::c(0), v("i")),
        ])
        .write("Out", &[v("i"), v("j")])
        .read("T", &[v("i"), v("j")])
        .read("T", &[v("i"), v("j")])
        .body(Expr::add(Expr::Read(0), Expr::Read(1)))
        .done();
    let p = b.build().unwrap();
    let k = BlockedKernel {
        program: p.clone(),
        round_dims: vec![],
        block_dims: vec![],
        seq_dims: vec![],
        thread_dims: vec!["i".into()],
        use_scratchpad: true,
    };
    let run = |regs: u64, compiled: bool| {
        let mut st = ArrayStore::for_program(&p, &[8]).unwrap();
        st.fill_with("T", |ix| ix[0] * 10 + ix[1]).unwrap();
        let mut cfg = MachineConfig::geforce_8800_gtx();
        cfg.hierarchy = true;
        cfg.compiled_exec = compiled;
        cfg.regs_per_inner = regs;
        execute_blocked(&k, &[8], &mut st, &cfg, false)
    };
    for compiled in [false, true] {
        assert!(
            run(8, compiled).is_ok(),
            "the largest row (8 words) must fit (compiled={compiled})"
        );
        match run(4, compiled) {
            Err(MachineError::RegisterOverflow {
                requested,
                available,
            }) => {
                assert_eq!(requested, 5, "row i = 4 is the first to overflow");
                assert_eq!(available, 4);
            }
            other => panic!("expected RegisterOverflow (compiled={compiled}), got {other:?}"),
        }
    }
}
